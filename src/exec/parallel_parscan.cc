#include "exec/parallel_parscan.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "storage/mvcc.h"

namespace uindex {
namespace exec {

Result<QueryResult> ParallelParscan(const UIndex& index, const Query& query,
                                    ThreadPool* pool,
                                    const ParallelScanOptions& options) {
  Result<CompiledQuery> compiled = index.CompileParscan(query);
  if (!compiled.ok()) return compiled.status();
  const CompiledQuery& cq = compiled.value();

  const size_t n = cq.intervals().size();
  QueryResult merged;
  if (n == 0) return merged;

  size_t shards = options.shards != 0 ? options.shards : pool->size();
  shards = std::min(shards, n);
  if (shards <= 1) {
    UINDEX_RETURN_IF_ERROR(index.ParscanIntervals(cq, 0, n, &merged));
    return merged;
  }

  // Contiguous, even split of the sorted interval list. The last shard runs
  // on the calling thread: it overlaps with the workers and keeps a
  // single-worker pool from serializing submit-then-wait.
  std::vector<QueryResult> partials(shards);
  std::vector<Future<Status>> futures;
  futures.reserve(shards - 1);
  const size_t chunk = n / shards;
  const size_t remainder = n % shards;
  size_t lo = 0;
  for (size_t s = 0; s < shards; ++s) {
    const size_t hi = lo + chunk + (s < remainder ? 1 : 0);
    if (s + 1 < shards) {
      // Workers inherit the caller's epoch: the thread-local EpochContext
      // does not cross thread boundaries, so re-establish the pinned read
      // epoch on each shard — every shard must resolve the same snapshot.
      const uint64_t epoch = EpochContext::current();
      futures.push_back(pool->Submit([&index, &cq, lo, hi, epoch,
                                      out = &partials[s]]() -> Status {
        ScopedEpoch scope(epoch);
        return index.ParscanIntervals(cq, lo, hi, out);
      }));
    } else {
      UINDEX_RETURN_IF_ERROR(
          index.ParscanIntervals(cq, lo, hi, &partials[s]));
    }
    lo = hi;
  }

  Status failed = Status::OK();
  for (Future<Status>& f : futures) {
    // Always drain every future — partials must outlive the workers.
    Status s = f.Take();
    if (!s.ok() && failed.ok()) failed = std::move(s);
  }
  UINDEX_RETURN_IF_ERROR(failed);

  size_t total_rows = 0;
  for (const QueryResult& p : partials) total_rows += p.rows.size();
  merged.rows.reserve(total_rows);
  for (QueryResult& p : partials) {
    merged.entries_scanned += p.entries_scanned;
    std::move(p.rows.begin(), p.rows.end(), std::back_inserter(merged.rows));
  }
  return merged;
}

}  // namespace exec
}  // namespace uindex
