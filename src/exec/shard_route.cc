#include "exec/shard_route.h"

#include <algorithm>

#include "util/slice.h"

namespace uindex {
namespace exec {

std::vector<size_t> CandidateShards(
    const std::vector<ByteInterval>& spans,
    const std::vector<std::string>& boundaries) {
  std::vector<size_t> out;
  if (boundaries.empty()) return out;
  for (const ByteInterval& span : spans) {
    // First shard whose range can reach span.lo: the last boundary <=
    // span.lo (boundaries[0] == "" guarantees one exists).
    size_t i = static_cast<size_t>(
                   std::upper_bound(boundaries.begin(), boundaries.end(),
                                    span.lo) -
                   boundaries.begin());
    i = i == 0 ? 0 : i - 1;
    for (; i < boundaries.size(); ++i) {
      // Shard i's range starts at boundaries[i]; stop once it starts at or
      // past the span's end.
      if (!span.hi.empty() && !(Slice(boundaries[i]) < Slice(span.hi))) break;
      if (out.empty() || out.back() != i) out.push_back(i);
    }
  }
  // Spans are sorted and disjoint, so appends are non-decreasing; dedup
  // adjacent repeats from spans that fall in the same shard.
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace exec
}  // namespace uindex
