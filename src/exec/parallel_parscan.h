#ifndef UINDEX_EXEC_PARALLEL_PARSCAN_H_
#define UINDEX_EXEC_PARALLEL_PARSCAN_H_

#include <cstddef>

#include "core/query.h"
#include "core/uindex.h"
#include "exec/thread_pool.h"

namespace uindex {
namespace exec {

/// Tuning for `ParallelParscan`.
struct ParallelScanOptions {
  /// Number of shards to split the plan's intervals into; 0 means one
  /// shard per pool worker. Clamped to the interval count.
  size_t shards = 0;
};

/// The paper's Algorithm 1, actually parallel.
///
/// §3.4 notes the partial-key descent "can easily be parallelized": each
/// partial key's search is independent. This function realizes that — it
/// compiles `query` into its sorted partial-key intervals (the paper's
/// partial key array), splits them into contiguous shards, and runs each
/// shard's B-tree descent on a pool worker over a shared read snapshot of
/// the tree.
///
/// Determinism guarantees (asserted by tests/parallel_determinism_test):
///  * rows — shards are contiguous ranges of the sorted, disjoint interval
///    list, and every key cluster lies inside one interval, so
///    concatenating shard results in shard order is byte-identical to the
///    serial scan;
///  * page reads — every worker fetches through the index's shared
///    `BufferManager` epoch, whose residency set dedupes across threads:
///    the union of pages the shards visit equals the serial scan's visited
///    set, so the charged total is identical regardless of interleaving.
///
/// Workers descend through the tree's decoded-node cache (BTree::FetchNode):
/// a node visited by several shards is front-decompressed once and shared as
/// an immutable `std::shared_ptr<const Node>`, instead of each worker paying
/// its own `Node::Parse`. This moves only the `nodes_parsed` counter — the
/// page-read guarantee above is unaffected.
///
/// The tree must not be mutated while the scan runs (hold the database's
/// shared latch, or quiesce writers). The caller brackets the query epoch
/// (`QueryCost` / `BeginQuery`) as for a serial scan.
Result<QueryResult> ParallelParscan(const UIndex& index, const Query& query,
                                    ThreadPool* pool,
                                    const ParallelScanOptions& options = {});

}  // namespace exec
}  // namespace uindex

#endif  // UINDEX_EXEC_PARALLEL_PARSCAN_H_
