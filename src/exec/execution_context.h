#ifndef UINDEX_EXEC_EXECUTION_CONTEXT_H_
#define UINDEX_EXEC_EXECUTION_CONTEXT_H_

#include <cstddef>
#include <memory>

#include "exec/thread_pool.h"

namespace uindex {
namespace exec {

/// Execution resources handed to query sessions: the worker pool and the
/// parallelism policy. One context is typically process-wide and shared by
/// every `Session` (the pool is thread-safe); a context with
/// `parallelism() <= 1` (or a null pool) degrades every parallel entry
/// point to the serial algorithm, which is how `.parallel 0` in the shell
/// and single-threaded tests run through the same code path.
class ExecutionContext {
 public:
  /// A context owning a fresh pool of `num_threads` workers. 0 threads
  /// means serial execution (no pool is created).
  explicit ExecutionContext(size_t num_threads) {
    if (num_threads > 1) {
      owned_pool_ = std::make_unique<ThreadPool>(num_threads);
      pool_ = owned_pool_.get();
    }
  }

  /// A context borrowing an existing pool (not owned; may be null).
  explicit ExecutionContext(ThreadPool* shared_pool) : pool_(shared_pool) {}

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  /// The worker pool, or null when execution is serial.
  ThreadPool* pool() const { return pool_; }

  /// Workers available to one query (1 = serial).
  size_t parallelism() const { return pool_ != nullptr ? pool_->size() : 1; }

 private:
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;
};

}  // namespace exec
}  // namespace uindex

#endif  // UINDEX_EXEC_EXECUTION_CONTEXT_H_
