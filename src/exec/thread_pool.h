#ifndef UINDEX_EXEC_THREAD_POOL_H_
#define UINDEX_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace uindex {
namespace exec {

/// A one-shot completion handle for a value produced on another thread.
///
/// The repo is exception-free, so this is deliberately smaller than
/// `std::future`: no exception transport (tasks return `Status`/`Result`
/// to signal failure), single consumer, and `Take()` both waits and moves
/// the value out. Obtain one from `Promise<T>::GetFuture` or
/// `ThreadPool::Submit`.
template <typename T>
class Future {
 public:
  Future() = default;

  /// True when this future is connected to a promise.
  bool valid() const { return state_ != nullptr; }

  /// Blocks until the value is set.
  void Wait() const {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->value.has_value(); });
  }

  /// Blocks until the value is set, then moves it out. Call at most once.
  T Take() {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->value.has_value(); });
    T out = std::move(*state_->value);
    state_->value.reset();
    return out;
  }

 private:
  template <typename U>
  friend class Promise;

  struct State {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<T> value;
  };

  explicit Future(std::shared_ptr<State> state) : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// The producing end of a `Future<T>`. Copyable (the shared state is
/// reference-counted) so it can be captured into a `std::function` task.
template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<typename Future<T>::State>()) {}

  Future<T> GetFuture() const { return Future<T>(state_); }

  /// Publishes the value and wakes the waiter. Call exactly once.
  void Set(T value) {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      state_->value.emplace(std::move(value));
    }
    state_->cv.notify_all();
  }

 private:
  std::shared_ptr<typename Future<T>::State> state_;
};

/// A fixed-size pool of worker threads draining one FIFO queue.
///
/// Deliberately work-stealing-free: the unit of work here is a Parscan
/// interval shard — coarse, pre-partitioned, and uniform enough that a
/// single queue keeps all workers busy without stealing's complexity.
/// Tasks must not block on other tasks' futures unless more workers than
/// dependency depth exist (no re-entrant execution on `Take`).
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return threads_.size(); }

  /// Tasks enqueued but not yet picked up by a worker. Approximate under
  /// concurrency; a diagnostic for sizing (e.g. whether a prefetch window
  /// outruns its I/O pool), not a synchronization primitive.
  size_t queued() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  /// Enqueues fire-and-forget work.
  void Schedule(std::function<void()> fn);

  /// Enqueues `fn` and returns the handle to its result.
  template <typename Fn>
  auto Submit(Fn fn) -> Future<decltype(fn())> {
    using R = decltype(fn());
    Promise<R> promise;
    Future<R> future = promise.GetFuture();
    Schedule([promise, fn = std::move(fn)]() mutable { promise.Set(fn()); });
    return future;
  }

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace exec
}  // namespace uindex

#endif  // UINDEX_EXEC_THREAD_POOL_H_
