#include "exec/thread_pool.h"

namespace uindex {
namespace exec {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Schedule(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      // Drain the queue even when stopping: submitted futures must resolve.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace exec
}  // namespace uindex
