#ifndef UINDEX_EXEC_SHARD_ROUTE_H_
#define UINDEX_EXEC_SHARD_ROUTE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/query.h"

namespace uindex {
namespace exec {

/// Intersects a query's sorted, disjoint class-code spans (empty `hi` =
/// +infinity, as in `CompiledQuery::intervals`) with a shard map's sorted
/// range boundaries and returns the ascending indices of every shard whose
/// served range [boundaries[i], boundaries[i+1]) — the last range is
/// unbounded above — overlaps at least one span. `boundaries` must be
/// non-empty, start with "" (the map covers the whole code space), and be
/// strictly increasing; the result is the router's scatter set, so pruning
/// here is what turns an exact-class query into a single-shard probe.
std::vector<size_t> CandidateShards(const std::vector<ByteInterval>& spans,
                                    const std::vector<std::string>& boundaries);

}  // namespace exec
}  // namespace uindex

#endif  // UINDEX_EXEC_SHARD_ROUTE_H_
