#include "btree/node_cache.h"

#include <cstdlib>
#include <cstring>
#include <utility>

namespace uindex {

NodeCache::NodeCache(const BufferManager* buffers, size_t byte_budget)
    : buffers_(buffers),
      shard_budget_(byte_budget / kShards == 0 ? 1
                                               : byte_budget / kShards) {}

bool NodeCache::EnvEnabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("UINDEX_NODE_CACHE");
    if (env == nullptr) return true;
    return std::strcmp(env, "off") != 0 && std::strcmp(env, "OFF") != 0 &&
           std::strcmp(env, "0") != 0 && std::strcmp(env, "false") != 0;
  }();
  return enabled;
}

std::shared_ptr<const Node> NodeCache::Lookup(PageId id) {
  if (!enabled()) return nullptr;
  Shard& shard = shards_[id % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(id);
  if (it == shard.map.end()) return nullptr;
  if (!(buffers_->page_version(id) == it->second.version)) {
    EraseLocked(&shard, it);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  return it->second.node;
}

void NodeCache::Insert(PageId id, const BufferManager::PageVersion& version,
                       std::shared_ptr<const Node> node) {
  if (!enabled() || node == nullptr) return;
  const size_t bytes = node->DecodedBytes();
  if (bytes > shard_budget_) return;
  Shard& shard = shards_[id % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(id);
  if (it != shard.map.end()) EraseLocked(&shard, it);
  shard.lru.push_front(id);
  Entry entry;
  entry.node = std::move(node);
  entry.version = version;
  entry.bytes = bytes;
  entry.lru_it = shard.lru.begin();
  shard.map.emplace(id, std::move(entry));
  shard.bytes += bytes;
  while (shard.bytes > shard_budget_ && !shard.lru.empty()) {
    EraseLocked(&shard, shard.map.find(shard.lru.back()));
  }
}

void NodeCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
    shard.lru.clear();
    shard.bytes = 0;
  }
}

void NodeCache::set_enabled(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
  if (!on) Clear();
}

size_t NodeCache::bytes_cached() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(const_cast<Shard&>(shard).mu);
    total += shard.bytes;
  }
  return total;
}

size_t NodeCache::entry_count() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(const_cast<Shard&>(shard).mu);
    total += shard.map.size();
  }
  return total;
}

void NodeCache::EraseLocked(
    Shard* shard, std::unordered_map<PageId, Entry>::iterator it) {
  shard->bytes -= it->second.bytes;
  shard->lru.erase(it->second.lru_it);
  shard->map.erase(it);
}

}  // namespace uindex
