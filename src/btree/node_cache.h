#ifndef UINDEX_BTREE_NODE_CACHE_H_
#define UINDEX_BTREE_NODE_CACHE_H_

#include <atomic>
#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "btree/node.h"
#include "storage/buffer_manager.h"
#include "storage/page.h"

namespace uindex {

/// A sharded, versioned cache of decoded B-tree nodes.
///
/// The paper's economics make front compression free at the I/O level —
/// more entries per page, fewer pages read — but our in-memory form pays
/// for it in CPU: `Node::Parse` decompresses every entry of a page into
/// per-entry heap strings on each fetch. This cache is the second level on
/// top of the `BufferManager`'s page accounting: read paths fetch a
/// `std::shared_ptr<const Node>` keyed by `PageId` and only parse on a
/// miss, so a resident page is decoded once, not once per descent.
///
/// Correctness is delegated to the `BufferManager`'s page versions: every
/// entry is tagged with the `PageVersion` read *before* the page bytes
/// were parsed, and `Lookup` revalidates against the current version —
/// any `FetchForWrite`/`Free`/`SetCapacity` in between makes the entry
/// stale and it is dropped. The cache therefore never needs write hooks of
/// its own, and a tree mutated through any path (splits, merges, frees,
/// even a different `BTree` object attached to the same pager) can never
/// be served a stale decoded node.
///
/// Page-read accounting is untouched: callers charge `BufferManager::Fetch`
/// before consulting this cache, so `pages_read` is byte-identical with
/// the cache on, off, or thrashing. The cache only moves `nodes_parsed`.
///
/// Thread-safety: all methods are safe to call concurrently (entries are
/// immutable `shared_ptr<const Node>`s under per-shard mutexes); the usual
/// external contract that writers are excluded while readers run is
/// inherited from the `BufferManager`.
///
/// Eviction: least-recently-used per shard, bounded by an overall byte
/// budget of decoded bytes (`Node::DecodedBytes`), split evenly across
/// shards.
class NodeCache {
 public:
  /// `byte_budget` bounds the decoded bytes retained (minimum one node per
  /// shard is always admitted if it fits its shard budget).
  NodeCache(const BufferManager* buffers, size_t byte_budget);

  NodeCache(const NodeCache&) = delete;
  NodeCache& operator=(const NodeCache&) = delete;

  /// False when the UINDEX_NODE_CACHE environment variable is "off", "0",
  /// or "false" — the global escape hatch that forces every tree onto the
  /// reference Parse-per-fetch path. Read once per process.
  static bool EnvEnabled();

  /// Returns the cached decoded node for `id` if present and still valid
  /// against the buffer manager's current page version; null on a miss
  /// (stale entries are dropped on the way). Refreshes LRU recency.
  std::shared_ptr<const Node> Lookup(PageId id);

  /// Caches `node` for `id`, tagged with `version` — which the caller must
  /// have read from the buffer manager BEFORE reading the page bytes it
  /// parsed (so an intervening write makes the entry self-invalidating).
  /// Evicts LRU entries beyond the shard's byte budget. No-op while
  /// disabled or when the node alone exceeds the shard budget.
  void Insert(PageId id, const BufferManager::PageVersion& version,
              std::shared_ptr<const Node> node);

  /// Drops every entry.
  void Clear();

  /// Runtime toggle (benchmark A/B legs and the escape hatch). Disabling
  /// clears the cache so a later re-enable starts cold.
  void set_enabled(bool on);
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  size_t byte_budget() const { return shard_budget_ * kShards; }

  /// Decoded bytes currently retained (sums shards; approximate under
  /// concurrency).
  size_t bytes_cached() const;

  /// Entries currently retained (sums shards; approximate under
  /// concurrency).
  size_t entry_count() const;

 private:
  static constexpr size_t kShards = 8;

  struct Entry {
    std::shared_ptr<const Node> node;
    BufferManager::PageVersion version;
    size_t bytes = 0;
    std::list<PageId>::iterator lru_it;
  };

  struct Shard {
    std::mutex mu;
    std::unordered_map<PageId, Entry> map;
    std::list<PageId> lru;  // Most recent at the front.
    size_t bytes = 0;
  };

  // Removes `it` from `shard` (caller holds the shard lock).
  void EraseLocked(Shard* shard,
                   std::unordered_map<PageId, Entry>::iterator it);

  const BufferManager* buffers_;
  size_t shard_budget_;
  std::atomic<bool> enabled_{true};
  Shard shards_[kShards];
};

}  // namespace uindex

#endif  // UINDEX_BTREE_NODE_CACHE_H_
