#ifndef UINDEX_BTREE_OPTIONS_H_
#define UINDEX_BTREE_OPTIONS_H_

#include <cstddef>
#include <cstdint>

namespace uindex {

/// Tuning knobs for a `BTree`.
struct BTreeOptions {
  /// Front-compress keys within each node: entry i stores only the suffix
  /// that differs from entry i-1. This is the compression the U-index paper
  /// leans on to make long encoded paths cheap (§3.2); turn it off only for
  /// the ablation benchmark.
  bool prefix_compression = true;

  /// A node is considered underfull (and is rebalanced) when its serialized
  /// size drops below page_size / underflow_divisor after a deletion.
  uint32_t underflow_divisor = 3;

  /// Optional hard cap on entries per node, on top of the byte-size limit.
  /// The paper's first experiment uses "a small node size m = 10" records
  /// per node; 0 means no cap (page size is the only limit).
  uint32_t max_entries_per_node = 0;

  /// Byte budget of the tree's decoded-node cache (btree/node_cache.h):
  /// decompressed `Node` images shared by read paths so a hot page is
  /// front-decoded once, not on every descent. 0 disables the cache; the
  /// environment variable UINDEX_NODE_CACHE=off disables it globally
  /// (the reference escape hatch — CI runs the full suite both ways).
  /// Page-read accounting is identical either way.
  size_t node_cache_bytes = size_t{8} << 20;

  /// Leaf-chain readahead window for forward iterators: while a
  /// `PrefetchScheduler` is attached to the buffer manager, an iterator
  /// keeps up to this many upcoming leaves (enumerated from the internal
  /// nodes of its descent path) in background reads ahead of its position.
  /// 0 disables readahead for this tree; UINDEX_PREFETCH=off disables the
  /// whole prefetch pipeline globally. Page-read accounting is identical
  /// either way.
  uint32_t readahead_leaves = 8;
};

}  // namespace uindex

#endif  // UINDEX_BTREE_OPTIONS_H_
