#include "btree/node.h"

#include <algorithm>

#include "util/coding.h"
#include "util/hex.h"

namespace uindex {

namespace {

constexpr uint8_t kInternalTag = 1;
constexpr uint8_t kLeafTag = 2;

// Per-entry fixed overhead on the page.
//   internal: prefix_len(2) suffix_len(2) child(4)
//   leaf:     prefix_len(2) suffix_len(2) value_len(2)
constexpr uint32_t kInternalEntryOverhead = 8;
constexpr uint32_t kLeafEntryOverhead = 6;

}  // namespace

Result<Node> Node::Parse(const Page& page) {
  const char* p = page.data();
  const char* limit = page.data() + page.size();
  if (page.size() < kHeaderSize) {
    return Status::Corruption("page smaller than node header");
  }
  const uint8_t tag = static_cast<uint8_t>(p[0]);
  if (tag != kInternalTag && tag != kLeafTag) {
    return Status::Corruption("bad node tag");
  }
  Node node;
  node.is_leaf_ = (tag == kLeafTag);
  const uint16_t count = DecodeFixed16(p + 2);
  node.aux_ = DecodeFixed32(p + 4);
  p += kHeaderSize;

  node.entries_.reserve(count);
  std::string prev_key;
  for (uint16_t i = 0; i < count; ++i) {
    const uint32_t overhead =
        node.is_leaf_ ? kLeafEntryOverhead : kInternalEntryOverhead;
    if (p + overhead > limit) {
      return Status::Corruption("entry header overruns page");
    }
    const uint16_t prefix_len = DecodeFixed16(p);
    const uint16_t suffix_len = DecodeFixed16(p + 2);
    NodeEntry entry;
    uint16_t value_len = 0;
    if (node.is_leaf_) {
      value_len = DecodeFixed16(p + 4);
      p += kLeafEntryOverhead;
    } else {
      entry.child = DecodeFixed32(p + 4);
      p += kInternalEntryOverhead;
    }
    if (prefix_len > prev_key.size()) {
      return Status::Corruption("prefix length exceeds previous key");
    }
    if (p + suffix_len + value_len > limit) {
      return Status::Corruption("entry body overruns page");
    }
    entry.key.assign(prev_key, 0, prefix_len);
    entry.key.append(p, suffix_len);
    p += suffix_len;
    if (node.is_leaf_) {
      entry.value.assign(p, value_len);
      p += value_len;
    }
    prev_key = entry.key;
    node.entries_.push_back(std::move(entry));
  }
  return node;
}

Result<Node::CompressedSearch> Node::SearchCompressed(const Page& page,
                                                      const Slice& target) {
  const char* p = page.data();
  const char* limit = page.data() + page.size();
  if (page.size() < kHeaderSize) {
    return Status::Corruption("page smaller than node header");
  }
  const uint8_t tag = static_cast<uint8_t>(p[0]);
  if (tag != kInternalTag && tag != kLeafTag) {
    return Status::Corruption("bad node tag");
  }
  CompressedSearch out;
  out.is_leaf = (tag == kLeafTag);
  out.count = DecodeFixed16(p + 2);
  out.aux = DecodeFixed32(p + 4);
  out.child = out.aux;  // Leftmost child until an entry key is <= target.
  out.lower_bound = out.count;
  p += kHeaderSize;

  const uint32_t overhead =
      out.is_leaf ? kLeafEntryOverhead : kInternalEntryOverhead;
  // Invariant entering iteration i: every entry before i is < target,
  // `match` is the exact length of the common prefix of target and entry
  // i-1's key, and `prev_len` is that key's length.
  size_t match = 0;
  size_t prev_len = 0;
  for (uint16_t i = 0; i < out.count; ++i) {
    if (p + overhead > limit) {
      return Status::Corruption("entry header overruns page");
    }
    const uint16_t prefix_len = DecodeFixed16(p);
    const uint16_t suffix_len = DecodeFixed16(p + 2);
    uint16_t value_len = 0;
    PageId entry_child = kInvalidPageId;
    if (out.is_leaf) {
      value_len = DecodeFixed16(p + 4);
      p += kLeafEntryOverhead;
    } else {
      entry_child = DecodeFixed32(p + 4);
      p += kInternalEntryOverhead;
    }
    if (prefix_len > prev_len) {
      return Status::Corruption("prefix length exceeds previous key");
    }
    if (p + suffix_len + value_len > limit) {
      return Status::Corruption("entry body overruns page");
    }
    const Slice suffix(p, suffix_len);

    int cmp;
    if (prefix_len > match) {
      // The entry shares more of the previous key than the target does, so
      // it diverges from the target exactly where the previous key did —
      // below it. `match` is unchanged.
      cmp = -1;
    } else {
      // First prefix_len bytes equal target's; the suffix decides.
      Slice rest = target;
      rest.RemovePrefix(prefix_len);
      cmp = suffix.Compare(rest);
      if (cmp < 0) match = prefix_len + suffix.CommonPrefixLength(rest);
    }

    if (cmp >= 0) {
      out.lower_bound = i;
      out.found = (cmp == 0);
      if (out.found) {
        if (out.is_leaf) {
          out.value.assign(p + suffix_len, value_len);
        } else {
          // UpperBound(target) == i + 1: the separator routes right.
          out.child = entry_child;
        }
      }
      return out;
    }
    if (!out.is_leaf) out.child = entry_child;
    p += suffix_len + value_len;
    prev_len = static_cast<size_t>(prefix_len) + suffix_len;
  }
  return out;
}

size_t Node::DecodedBytes() const {
  size_t bytes = sizeof(Node) + entries_.capacity() * sizeof(NodeEntry);
  for (const NodeEntry& e : entries_) {
    bytes += e.key.size() + e.value.size();
  }
  return bytes;
}

size_t Node::LowerBound(const Slice& key) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const NodeEntry& e, const Slice& k) { return Slice(e.key) < k; });
  return static_cast<size_t>(it - entries_.begin());
}

size_t Node::UpperBound(const Slice& key) const {
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), key,
      [](const Slice& k, const NodeEntry& e) { return k < Slice(e.key); });
  return static_cast<size_t>(it - entries_.begin());
}

PageId Node::ChildFor(const Slice& key) const {
  // Child i holds keys in [entries[i].key, entries[i+1].key); the leftmost
  // child holds keys below entries[0].key.
  const size_t idx = UpperBound(key);
  if (idx == 0) return aux_;
  return entries_[idx - 1].child;
}

uint32_t Node::SerializedSize(const BTreeOptions& opts) const {
  uint32_t size = kHeaderSize;
  const uint32_t overhead =
      is_leaf_ ? kLeafEntryOverhead : kInternalEntryOverhead;
  const std::string* prev = nullptr;
  for (const NodeEntry& e : entries_) {
    size_t prefix_len = 0;
    if (opts.prefix_compression && prev != nullptr) {
      prefix_len = Slice(*prev).CommonPrefixLength(Slice(e.key));
    }
    size += overhead;
    size += static_cast<uint32_t>(e.key.size() - prefix_len);
    if (is_leaf_) size += static_cast<uint32_t>(e.value.size());
    prev = &e.key;
  }
  return size;
}

bool Node::Fits(uint32_t page_size, const BTreeOptions& opts) const {
  if (opts.max_entries_per_node != 0 &&
      entries_.size() > opts.max_entries_per_node) {
    return false;
  }
  return SerializedSize(opts) <= page_size;
}

Status Node::SerializeTo(Page* page, const BTreeOptions& opts) const {
  if (SerializedSize(opts) > page->size()) {
    return Status::Corruption("node does not fit in page");
  }
  if (entries_.size() > 0xFFFF) {
    return Status::Corruption("too many entries for node format");
  }
  page->Clear();
  char* p = page->data();
  p[0] = static_cast<char>(is_leaf_ ? kLeafTag : kInternalTag);
  p[1] = 0;
  EncodeFixed16(p + 2, static_cast<uint16_t>(entries_.size()));
  EncodeFixed32(p + 4, aux_);
  EncodeFixed32(p + 8, 0);
  p += kHeaderSize;

  const std::string* prev = nullptr;
  for (const NodeEntry& e : entries_) {
    size_t prefix_len = 0;
    if (opts.prefix_compression && prev != nullptr) {
      prefix_len = Slice(*prev).CommonPrefixLength(Slice(e.key));
    }
    const size_t suffix_len = e.key.size() - prefix_len;
    EncodeFixed16(p, static_cast<uint16_t>(prefix_len));
    EncodeFixed16(p + 2, static_cast<uint16_t>(suffix_len));
    if (is_leaf_) {
      EncodeFixed16(p + 4, static_cast<uint16_t>(e.value.size()));
      p += kLeafEntryOverhead;
    } else {
      EncodeFixed32(p + 4, e.child);
      p += kInternalEntryOverhead;
    }
    std::memcpy(p, e.key.data() + prefix_len, suffix_len);
    p += suffix_len;
    if (is_leaf_) {
      std::memcpy(p, e.value.data(), e.value.size());
      p += e.value.size();
    }
    prev = &e.key;
  }
  return Status::OK();
}

std::string Node::DebugString() const {
  std::string out = is_leaf_ ? "leaf[" : "internal[";
  if (!is_leaf_) {
    out += "L=" + std::to_string(aux_) + " ";
  }
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) out += ", ";
    out += EscapeBytes(Slice(entries_[i].key));
    if (!is_leaf_) out += "->" + std::to_string(entries_[i].child);
  }
  out += "]";
  return out;
}

}  // namespace uindex
