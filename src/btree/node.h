#ifndef UINDEX_BTREE_NODE_H_
#define UINDEX_BTREE_NODE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "btree/options.h"
#include "storage/page.h"
#include "util/slice.h"
#include "util/status.h"

namespace uindex {

/// One key/payload pair inside a node (held decompressed in memory).
///
/// For leaf entries `value` is the payload and `child` is unused; for
/// internal entries `child` is the subtree holding keys >= `key` (up to the
/// next entry's key) and `value` is unused.
struct NodeEntry {
  std::string key;
  std::string value;
  PageId child = kInvalidPageId;
};

/// In-memory image of one B-tree node.
///
/// Nodes live on `Page`s in a front-compressed format: entry i stores the
/// length of the prefix it shares with entry i-1 plus the differing suffix
/// ("variable-length, front-compressed keys", paper §3.2.1). `Node` is the
/// parsed, fully decompressed form used to read and mutate a node; it
/// serializes itself back to a page. Whether a node "fits" is decided by its
/// serialized (compressed) size against the page size, so compression
/// directly increases fanout — the effect the paper's storage analysis
/// (§4.2) relies on.
class Node {
 public:
  /// On-page header size in bytes.
  static constexpr uint32_t kHeaderSize = 12;

  Node() = default;

  /// Builds an empty node of the given kind.
  static Node MakeLeaf() {
    Node n;
    n.is_leaf_ = true;
    return n;
  }
  static Node MakeInternal() {
    Node n;
    n.is_leaf_ = false;
    return n;
  }

  /// Parses the node stored in `page`. Fails with Corruption on a malformed
  /// image.
  static Result<Node> Parse(const Page& page);

  /// Outcome of `SearchCompressed`: one descent/lookup step answered
  /// directly from the compressed page image.
  struct CompressedSearch {
    bool is_leaf = false;
    uint16_t count = 0;           ///< Entries in the node.
    PageId aux = kInvalidPageId;  ///< next_leaf (leaf) / leftmost_child.
    size_t lower_bound = 0;  ///< First index whose key is >= the target.
    bool found = false;      ///< entries[lower_bound].key == target.
    std::string value;       ///< Leaf and found: the payload.
    PageId child = kInvalidPageId;  ///< Internal: ChildFor(target).
  };

  /// Searches the node image in `page` for `target` without materializing
  /// any entry: a single left-to-right pass over the front-compressed
  /// entries that tracks only the length of the prefix the target is known
  /// to share with the previous key, so each step compares at most the
  /// entry's stored suffix (cf. the sequential search of prefix B-trees).
  /// The one allocation is the matched payload on an exact leaf hit.
  ///
  /// Exactly equivalent to `Parse` + `LowerBound`/`ChildFor`/payload read
  /// on any image `Parse` accepts (it does not assume the stored prefix
  /// lengths are maximal, only that keys are increasing — the node
  /// invariant). Malformed images fail with Corruption; the scan validates
  /// every entry it passes, and stops validating at the answer just as it
  /// stops decompressing.
  static Result<CompressedSearch> SearchCompressed(const Page& page,
                                                   const Slice& target);

  bool is_leaf() const { return is_leaf_; }

  /// Leaf only: id of the next leaf in key order (kInvalidPageId at end).
  PageId next_leaf() const { return aux_; }
  void set_next_leaf(PageId id) { aux_ = id; }

  /// Internal only: child holding keys strictly below entries[0].key.
  PageId leftmost_child() const { return aux_; }
  void set_leftmost_child(PageId id) { aux_ = id; }

  const std::vector<NodeEntry>& entries() const { return entries_; }
  std::vector<NodeEntry>& entries() { return entries_; }
  size_t entry_count() const { return entries_.size(); }

  /// Index of the first entry whose key is >= `key` (== entry_count() if
  /// none). Keys within a node are strictly increasing.
  size_t LowerBound(const Slice& key) const;

  /// Index of the first entry whose key is > `key`.
  size_t UpperBound(const Slice& key) const;

  /// Internal only: the child to descend into when searching for `key`.
  PageId ChildFor(const Slice& key) const;

  /// Serialized size in bytes under `opts` (header + compressed entries).
  uint32_t SerializedSize(const BTreeOptions& opts) const;

  /// Approximate heap footprint of the decompressed form: the budget unit
  /// of the decoded-node cache (btree/node_cache.h).
  size_t DecodedBytes() const;

  /// True if the node fits in a page of `page_size` bytes under `opts`
  /// (including the optional max-entries cap).
  bool Fits(uint32_t page_size, const BTreeOptions& opts) const;

  /// Writes the node image into `page`. The caller must have checked
  /// `Fits`; returns Corruption if it does not fit after all.
  Status SerializeTo(Page* page, const BTreeOptions& opts) const;

  /// Renders keys/children for debugging.
  std::string DebugString() const;

 private:
  bool is_leaf_ = true;
  PageId aux_ = kInvalidPageId;  // next_leaf (leaf) or leftmost_child.
  std::vector<NodeEntry> entries_;
};

}  // namespace uindex

#endif  // UINDEX_BTREE_NODE_H_
