#include "btree/btree.h"

#include <cassert>

#include "storage/prefetch.h"
#include "util/hex.h"

namespace uindex {

namespace {

// Finds a split position for an over-full node: the smallest index at which
// the left half reaches half of the node's (uncompressed) payload. Returns
// an index in [1, n-1]; the caller interprets it per node kind.
size_t FindSplitIndex(const Node& node) {
  const auto& entries = node.entries();
  assert(entries.size() >= 2);
  size_t total = 0;
  for (const NodeEntry& e : entries) total += e.key.size() + e.value.size();
  size_t acc = 0;
  for (size_t i = 0; i < entries.size() - 1; ++i) {
    acc += entries[i].key.size() + entries[i].value.size();
    if (acc * 2 >= total) return i + 1;
  }
  return entries.size() - 1;
}

}  // namespace

BTree::BTree(BufferManager* buffers, BTreeOptions options)
    : buffers_(buffers), options_(options) {
  if (options_.node_cache_bytes > 0 && NodeCache::EnvEnabled()) {
    node_cache_ =
        std::make_unique<NodeCache>(buffers_, options_.node_cache_bytes);
  }
  root_ = buffers_->Allocate();
  Node root = Node::MakeLeaf();
  Status s = WriteNode(root_, root);
  assert(s.ok());
  (void)s;
}

BTree::BTree(BufferManager* buffers, PageId root, uint64_t size,
             BTreeOptions options)
    : buffers_(buffers), options_(options), root_(root), size_(size) {
  assert(buffers_->pager()->IsLive(root_) && "attached root must be live");
  if (options_.node_cache_bytes > 0 && NodeCache::EnvEnabled()) {
    node_cache_ =
        std::make_unique<NodeCache>(buffers_, options_.node_cache_bytes);
  }
}

BTree::BTree(BufferManager* buffers, PageId root, uint64_t size,
             BTreeOptions options, NodeCache* borrowed_cache)
    : buffers_(buffers), options_(options), root_(root), size_(size),
      borrowed_cache_(borrowed_cache) {
  assert(buffers_->pager()->IsLive(root_) && "attached root must be live");
}

Result<Node> BTree::LoadNode(PageId id) const {
  PageRef page = buffers_->Fetch(id);
  if (page == nullptr) {
    return Status::Corruption("missing page " + std::to_string(id));
  }
  Result<Node> node = Node::Parse(*page);
  if (node.ok()) buffers_->RecordNodeParse(node.value().DecodedBytes());
  return node;
}

Result<std::shared_ptr<const Node>> BTree::FetchNode(PageId id) const {
  if (cache() == nullptr) {
    Result<Node> r = LoadNode(id);
    if (!r.ok()) return r.status();
    return std::make_shared<const Node>(std::move(r).value());
  }
  // Read the version BEFORE the page bytes: a write that lands in between
  // bumps it, so the entry we might insert below is already stale and the
  // next Lookup drops it instead of serving it.
  const BufferManager::PageVersion version = buffers_->page_version(id);
  // Always charge the page read first — pages_read must be byte-identical
  // whether the decoded image then comes from the cache or a fresh parse.
  PageRef page = buffers_->Fetch(id);
  if (page == nullptr) {
    return Status::Corruption("missing page " + std::to_string(id));
  }
  if (page.versioned()) {
    // An MVCC chain revision: these bytes are not the base page's, so the
    // decoded-node cache (keyed by base-page versions) must neither serve
    // nor learn them. Parse directly; the read was charged identically.
    Result<Node> r = Node::Parse(*page);
    if (!r.ok()) return r.status();
    auto node = std::make_shared<const Node>(std::move(r).value());
    buffers_->RecordNodeParse(node->DecodedBytes());
    return node;
  }
  if (std::shared_ptr<const Node> cached = cache()->Lookup(id)) {
    buffers_->RecordNodeCacheHit();
    return cached;
  }
  Result<Node> r = Node::Parse(*page);
  if (!r.ok()) return r.status();
  auto node = std::make_shared<const Node>(std::move(r).value());
  buffers_->RecordNodeParse(node->DecodedBytes());
  cache()->Insert(id, version, node);
  return node;
}

void BTree::WarmNode(PageId id) const {
  if (cache() == nullptr || !cache()->enabled()) return;
  // Version BEFORE bytes, exactly like FetchNode: a write landing between
  // the two makes the inserted entry stale and Lookup drops it. This also
  // covers reclamation's fold-to-base (storage/mvcc.h): the copy is
  // bracketed by two bumps, so a parse spanning it is keyed with the
  // mid-window version and can never validate.
  const BufferManager::PageVersion version = buffers_->page_version(id);
  PageRef page = buffers_->FetchUncounted(id);
  if (page == nullptr) return;  // Freed while queued; nothing to warm.
  // A chain revision's bytes are not the base page's: inserting them under
  // the base version would serve revision content to base-byte readers.
  if (page.versioned()) return;
  Result<Node> r = Node::Parse(*page);
  if (!r.ok()) return;  // The demand fetch will surface the corruption.
  cache()->Insert(id, version,
                  std::make_shared<const Node>(std::move(r).value()));
}

std::shared_ptr<const Node> BTree::TryGetWarmNode(PageId id) const {
  if (cache() != nullptr) {
    if (std::shared_ptr<const Node> cached = cache()->Lookup(id)) {
      return cached;
    }
  }
  PrefetchScheduler* prefetcher = buffers_->prefetcher();
  if (prefetcher == nullptr || !prefetcher->IsStaged(id)) return nullptr;
  Result<Node> r = LoadNodeUncounted(id);
  if (!r.ok()) return nullptr;
  return std::make_shared<const Node>(std::move(r).value());
}

Result<Node> BTree::LoadNodeUncounted(PageId id) const {
  PageRef page = buffers_->FetchUncounted(id);
  if (page == nullptr) {
    return Status::Corruption("missing page " + std::to_string(id));
  }
  return Node::Parse(*page);
}

Status BTree::WriteNode(PageId id, const Node& node) {
  PageRef page = buffers_->FetchForWrite(id);
  if (page == nullptr) {
    return Status::Corruption("missing page " + std::to_string(id));
  }
  return node.SerializeTo(page.get(), options_);
}

Status BTree::DescendToLeaf(const Slice& key, std::vector<PathStep>* path,
                            PageId* leaf_id, Node* leaf,
                            std::string* upper_bound) const {
  if (upper_bound != nullptr) upper_bound->clear();
  PageId id = root_;
  for (;;) {
    Result<Node> r = LoadNode(id);
    if (!r.ok()) return r.status();
    Node node = std::move(r).value();
    if (node.is_leaf()) {
      *leaf_id = id;
      *leaf = std::move(node);
      return Status::OK();
    }
    const size_t child_index = node.UpperBound(key);
    const PageId child = child_index == 0
                             ? node.leftmost_child()
                             : node.entries()[child_index - 1].child;
    // Deeper right-hand separators are always tighter than shallower ones.
    if (upper_bound != nullptr && child_index < node.entry_count()) {
      *upper_bound = node.entries()[child_index].key;
    }
    if (path != nullptr) {
      path->push_back(PathStep{id, std::move(node), child_index});
    }
    id = child;
  }
}

Result<std::string> BTree::Get(const Slice& key) const {
  // Cold point lookups are the worst case for front compression: a classic
  // descent pays a full Node::Parse (every entry decompressed into heap
  // strings) per level just to follow one child pointer. Answer each step
  // from the compressed page image instead — a cached decoded node when one
  // is current, otherwise SearchCompressed, which materializes nothing but
  // the matched payload. Page reads are charged exactly as before.
  PageId id = root_;
  for (;;) {
    PageRef page = buffers_->Fetch(id);
    if (page == nullptr) {
      return Status::Corruption("missing page " + std::to_string(id));
    }
    // A versioned ref's bytes are not the base page's — skip the cache
    // (see FetchNode) and search the revision's compressed image below.
    if (!page.versioned() && cache() != nullptr) {
      if (std::shared_ptr<const Node> cached = cache()->Lookup(id)) {
        buffers_->RecordNodeCacheHit();
        if (cached->is_leaf()) {
          const size_t pos = cached->LowerBound(key);
          if (pos < cached->entry_count() &&
              Slice(cached->entries()[pos].key) == key) {
            return cached->entries()[pos].value;
          }
          return Status::NotFound("key " + EscapeBytes(key));
        }
        id = cached->ChildFor(key);
        continue;
      }
    }
    Result<Node::CompressedSearch> r = Node::SearchCompressed(*page, key);
    if (!r.ok()) return r.status();
    Node::CompressedSearch& found = r.value();
    if (found.is_leaf) {
      if (found.found) return std::move(found.value);
      return Status::NotFound("key " + EscapeBytes(key));
    }
    id = found.child;
  }
}

bool BTree::Contains(const Slice& key) const { return Get(key).ok(); }

Status BTree::Insert(const Slice& key, const Slice& value) {
  std::vector<PathStep> path;
  PageId leaf_id = kInvalidPageId;
  Node leaf;
  UINDEX_RETURN_IF_ERROR(DescendToLeaf(key, &path, &leaf_id, &leaf));
  const size_t pos = leaf.LowerBound(key);
  if (pos < leaf.entry_count() && Slice(leaf.entries()[pos].key) == key) {
    return Status::AlreadyExists("key " + EscapeBytes(key));
  }
  NodeEntry entry;
  entry.key = key.ToString();
  entry.value = value.ToString();
  leaf.entries().insert(leaf.entries().begin() + static_cast<ptrdiff_t>(pos),
                        std::move(entry));
  ++size_;
  return StoreWithSplits(std::move(path), leaf_id, std::move(leaf));
}

Status BTree::InsertBatch(
    const std::vector<std::pair<std::string, std::string>>& entries) {
  for (size_t i = 1; i < entries.size(); ++i) {
    if (!(Slice(entries[i - 1].first) < Slice(entries[i].first))) {
      return Status::InvalidArgument(
          "batch keys must be strictly increasing");
    }
  }
  size_t i = 0;
  while (i < entries.size()) {
    std::vector<PathStep> path;
    PageId leaf_id = kInvalidPageId;
    Node leaf;
    std::string upper_bound;
    UINDEX_RETURN_IF_ERROR(DescendToLeaf(Slice(entries[i].first), &path,
                                         &leaf_id, &leaf, &upper_bound));
    // Drain every batch key routed to this leaf in one pass.
    size_t inserted = 0;
    while (i < entries.size() &&
           (upper_bound.empty() ||
            Slice(entries[i].first) < Slice(upper_bound))) {
      const Slice key(entries[i].first);
      const size_t pos = leaf.LowerBound(key);
      if (pos < leaf.entry_count() &&
          Slice(leaf.entries()[pos].key) == key) {
        // Persist what was added so far, then report the collision.
        size_ += inserted;
        UINDEX_RETURN_IF_ERROR(
            StoreWithSplits(std::move(path), leaf_id, std::move(leaf)));
        return Status::AlreadyExists("key " + EscapeBytes(key));
      }
      NodeEntry entry;
      entry.key = entries[i].first;
      entry.value = entries[i].second;
      leaf.entries().insert(
          leaf.entries().begin() + static_cast<ptrdiff_t>(pos),
          std::move(entry));
      ++inserted;
      ++i;
    }
    size_ += inserted;
    UINDEX_RETURN_IF_ERROR(
        StoreWithSplits(std::move(path), leaf_id, std::move(leaf)));
  }
  return Status::OK();
}

Status BTree::Put(const Slice& key, const Slice& value) {
  std::vector<PathStep> path;
  PageId leaf_id = kInvalidPageId;
  Node leaf;
  UINDEX_RETURN_IF_ERROR(DescendToLeaf(key, &path, &leaf_id, &leaf));
  const size_t pos = leaf.LowerBound(key);
  if (pos < leaf.entry_count() && Slice(leaf.entries()[pos].key) == key) {
    leaf.entries()[pos].value = value.ToString();
  } else {
    NodeEntry entry;
    entry.key = key.ToString();
    entry.value = value.ToString();
    leaf.entries().insert(
        leaf.entries().begin() + static_cast<ptrdiff_t>(pos),
        std::move(entry));
    ++size_;
  }
  return StoreWithSplits(std::move(path), leaf_id, std::move(leaf));
}

namespace {

// Splits `node` (oversized) into itself (left half) plus a new right
// sibling, returning the promoted separator. Leaf chaining is fixed by the
// caller once the right sibling's page id is known.
std::string SplitOnce(Node* node, Node* right) {
  const size_t split = FindSplitIndex(*node);
  *right = node->is_leaf() ? Node::MakeLeaf() : Node::MakeInternal();
  std::string separator;
  auto& entries = node->entries();
  if (node->is_leaf()) {
    separator = entries[split].key;
    right->entries().assign(
        std::make_move_iterator(entries.begin() +
                                static_cast<ptrdiff_t>(split)),
        std::make_move_iterator(entries.end()));
    entries.erase(entries.begin() + static_cast<ptrdiff_t>(split),
                  entries.end());
  } else {
    // The separator entry moves up; its child seeds the right node.
    separator = entries[split].key;
    right->set_leftmost_child(entries[split].child);
    right->entries().assign(
        std::make_move_iterator(entries.begin() +
                                static_cast<ptrdiff_t>(split) + 1),
        std::make_move_iterator(entries.end()));
    entries.erase(entries.begin() + static_cast<ptrdiff_t>(split),
                  entries.end());
  }
  return separator;
}

}  // namespace

Status BTree::StoreWithSplits(std::vector<PathStep> path, PageId node_id,
                              Node node) {
  for (;;) {
    if (node.Fits(buffers_->page_size(), options_)) {
      UINDEX_RETURN_IF_ERROR(WriteNode(node_id, node));
      return Status::OK();
    }

    // Split into however many pieces fit (batch inserts can overfill a
    // node by more than 2x). pieces[0] stays on node_id; seps[i]
    // separates pieces[i] and pieces[i+1].
    std::vector<Node> pieces;
    std::vector<std::string> seps;
    pieces.push_back(std::move(node));
    for (size_t idx = 0; idx < pieces.size(); ++idx) {
      while (!pieces[idx].Fits(buffers_->page_size(), options_)) {
        if (pieces[idx].entry_count() < 2) {
          return Status::InvalidArgument(
              "entry too large for page size " +
              std::to_string(buffers_->page_size()));
        }
        Node right;
        std::string sep = SplitOnce(&pieces[idx], &right);
        pieces.insert(pieces.begin() + static_cast<ptrdiff_t>(idx) + 1,
                      std::move(right));
        seps.insert(seps.begin() + static_cast<ptrdiff_t>(idx),
                    std::move(sep));
      }
    }

    // Allocate pages for the new pieces and restore the leaf chain.
    std::vector<PageId> ids(pieces.size());
    ids[0] = node_id;
    for (size_t k = 1; k < pieces.size(); ++k) ids[k] = buffers_->Allocate();
    if (pieces[0].is_leaf()) {
      const PageId after = pieces[0].next_leaf();
      for (size_t k = 0; k + 1 < pieces.size(); ++k) {
        pieces[k].set_next_leaf(ids[k + 1]);
      }
      pieces.back().set_next_leaf(after);
    }
    for (size_t k = 0; k < pieces.size(); ++k) {
      UINDEX_RETURN_IF_ERROR(WriteNode(ids[k], pieces[k]));
    }

    if (path.empty()) {
      // Splitting the root: grow the tree by one level.
      Node new_root = Node::MakeInternal();
      new_root.set_leftmost_child(node_id);
      for (size_t k = 0; k < seps.size(); ++k) {
        NodeEntry up;
        up.key = std::move(seps[k]);
        up.child = ids[k + 1];
        new_root.entries().push_back(std::move(up));
      }
      const PageId new_root_id = buffers_->Allocate();
      root_ = new_root_id;
      // The new root itself can overflow for very wide splits; recurse
      // with an empty path so it splits again if needed.
      return StoreWithSplits({}, new_root_id, std::move(new_root));
    }

    PathStep parent = std::move(path.back());
    path.pop_back();
    for (size_t k = 0; k < seps.size(); ++k) {
      NodeEntry up;
      up.key = std::move(seps[k]);
      up.child = ids[k + 1];
      parent.node.entries().insert(
          parent.node.entries().begin() +
              static_cast<ptrdiff_t>(parent.child_index + k),
          std::move(up));
    }
    node_id = parent.page_id;
    node = std::move(parent.node);
  }
}

bool BTree::IsUnderfull(const Node& node) const {
  if (node.entry_count() == 0) return true;
  if (options_.max_entries_per_node != 0) {
    return node.entry_count() * options_.underflow_divisor <
           options_.max_entries_per_node;
  }
  return node.SerializedSize(options_) * options_.underflow_divisor <
         buffers_->page_size();
}

Status BTree::Delete(const Slice& key) {
  std::vector<PathStep> path;
  PageId leaf_id = kInvalidPageId;
  Node leaf;
  UINDEX_RETURN_IF_ERROR(DescendToLeaf(key, &path, &leaf_id, &leaf));
  const size_t pos = leaf.LowerBound(key);
  if (pos == leaf.entry_count() || Slice(leaf.entries()[pos].key) != key) {
    return Status::NotFound("key " + EscapeBytes(key));
  }
  leaf.entries().erase(leaf.entries().begin() + static_cast<ptrdiff_t>(pos));
  --size_;
  return RebalanceAfterDelete(std::move(path), leaf_id, std::move(leaf));
}

Status BTree::RebalanceAfterDelete(std::vector<PathStep> path, PageId node_id,
                                   Node node) {
  for (;;) {
    if (path.empty()) {
      // At the root. Collapse empty internal roots down onto their only
      // child; an empty leaf root just means an empty tree.
      UINDEX_RETURN_IF_ERROR(WriteNode(node_id, node));
      while (node_id == root_ && !node.is_leaf() && node.entry_count() == 0) {
        const PageId only_child = node.leftmost_child();
        buffers_->Free(node_id);
        root_ = only_child;
        node_id = only_child;
        Result<Node> r = LoadNodeUncounted(node_id);
        if (!r.ok()) return r.status();
        node = std::move(r).value();
      }
      return Status::OK();
    }
    if (!IsUnderfull(node)) {
      return WriteNode(node_id, node);
    }

    PathStep parent = std::move(path.back());
    path.pop_back();
    Node& pnode = parent.node;
    const size_t my_index = parent.child_index;
    const size_t child_count = pnode.entry_count() + 1;

    auto child_at = [&pnode](size_t c) -> PageId {
      return c == 0 ? pnode.leftmost_child() : pnode.entries()[c - 1].child;
    };

    // Pick the pair (left_index, left_index + 1) to merge or borrow across;
    // prefer our left neighbour, else our right.
    size_t left_index;
    if (my_index > 0) {
      left_index = my_index - 1;
    } else if (my_index + 1 < child_count) {
      left_index = my_index;
    } else {
      // Root with a single child pointer (only possible transiently).
      UINDEX_RETURN_IF_ERROR(WriteNode(node_id, node));
      node = std::move(pnode);
      node_id = parent.page_id;
      continue;
    }
    const size_t right_index = left_index + 1;
    const PageId left_id = child_at(left_index);
    const PageId right_id = child_at(right_index);

    // Load the sibling (the other side of the pair).
    Node left_node, right_node;
    if (left_id == node_id) {
      left_node = std::move(node);
      Result<Node> r = LoadNode(right_id);
      if (!r.ok()) return r.status();
      right_node = std::move(r).value();
    } else {
      right_node = std::move(node);
      Result<Node> r = LoadNode(left_id);
      if (!r.ok()) return r.status();
      left_node = std::move(r).value();
    }
    // The separator between the pair is parent entry `left_index`.
    NodeEntry& separator = pnode.entries()[left_index];

    // Try a merge: fold `right_node` into `left_node`.
    Node merged = left_node.is_leaf() ? Node::MakeLeaf()
                                      : Node::MakeInternal();
    merged.entries() = left_node.entries();
    if (left_node.is_leaf()) {
      merged.set_next_leaf(right_node.next_leaf());
      merged.entries().insert(merged.entries().end(),
                              right_node.entries().begin(),
                              right_node.entries().end());
    } else {
      merged.set_leftmost_child(left_node.leftmost_child());
      NodeEntry down;
      down.key = separator.key;
      down.child = right_node.leftmost_child();
      merged.entries().push_back(std::move(down));
      merged.entries().insert(merged.entries().end(),
                              right_node.entries().begin(),
                              right_node.entries().end());
    }
    if (merged.Fits(buffers_->page_size(), options_)) {
      UINDEX_RETURN_IF_ERROR(WriteNode(left_id, merged));
      buffers_->Free(right_id);
      pnode.entries().erase(pnode.entries().begin() +
                            static_cast<ptrdiff_t>(left_index));
      node = std::move(pnode);
      node_id = parent.page_id;
      continue;
    }

    // Merge impossible: borrow one entry across the pair towards the
    // underfull side, then stop (occupancy is best-effort for variable-
    // length entries, correctness does not depend on it).
    const bool underfull_is_left = (left_id == node_id);
    if (left_node.is_leaf()) {
      if (underfull_is_left && right_node.entry_count() > 1) {
        left_node.entries().push_back(right_node.entries().front());
        right_node.entries().erase(right_node.entries().begin());
        separator.key = right_node.entries().front().key;
      } else if (!underfull_is_left && left_node.entry_count() > 1) {
        right_node.entries().insert(right_node.entries().begin(),
                                    left_node.entries().back());
        left_node.entries().pop_back();
        separator.key = right_node.entries().front().key;
      }
    } else {
      if (underfull_is_left && right_node.entry_count() > 1) {
        NodeEntry down;
        down.key = separator.key;
        down.child = right_node.leftmost_child();
        left_node.entries().push_back(std::move(down));
        separator.key = right_node.entries().front().key;
        right_node.set_leftmost_child(right_node.entries().front().child);
        right_node.entries().erase(right_node.entries().begin());
      } else if (!underfull_is_left && left_node.entry_count() > 1) {
        NodeEntry down;
        down.key = separator.key;
        down.child = right_node.leftmost_child();
        right_node.entries().insert(right_node.entries().begin(),
                                    std::move(down));
        separator.key = left_node.entries().back().key;
        right_node.set_leftmost_child(left_node.entries().back().child);
        left_node.entries().pop_back();
      }
    }
    if (!left_node.Fits(buffers_->page_size(), options_) ||
        !right_node.Fits(buffers_->page_size(), options_)) {
      return Status::Corruption("borrow produced oversized node");
    }
    UINDEX_RETURN_IF_ERROR(WriteNode(left_id, left_node));
    UINDEX_RETURN_IF_ERROR(WriteNode(right_id, right_node));
    // The borrow replaced the pair's separator with a sibling boundary key
    // that can be *longer* than the one it displaced, so a full parent can
    // overflow here — store it through the insert-side split path. The
    // parent never shrinks, so rebalancing stops either way.
    return StoreWithSplits(std::move(path), parent.page_id,
                           std::move(pnode));
  }
}

Status BTree::Clear() {
  // Free the whole subtree, then start over with a fresh root leaf.
  std::vector<PageId> stack = {root_};
  while (!stack.empty()) {
    const PageId id = stack.back();
    stack.pop_back();
    Result<Node> node = LoadNodeUncounted(id);
    if (!node.ok()) return node.status();
    if (!node.value().is_leaf()) {
      stack.push_back(node.value().leftmost_child());
      for (const NodeEntry& e : node.value().entries()) {
        stack.push_back(e.child);
      }
    }
    buffers_->Free(id);
  }
  root_ = buffers_->Allocate();
  size_ = 0;
  return WriteNode(root_, Node::MakeLeaf());
}

Result<BTree::TreeStats> BTree::ComputeStats() const {
  TreeStats stats;
  uint32_t leaf_depth = 0;
  UINDEX_RETURN_IF_ERROR(ComputeStatsSubtree(root_, 1, &stats, &leaf_depth));
  stats.height = leaf_depth;
  return stats;
}

Status BTree::ComputeStatsSubtree(PageId id, uint32_t depth, TreeStats* stats,
                                  uint32_t* leaf_depth) const {
  Result<Node> r = LoadNodeUncounted(id);
  if (!r.ok()) return r.status();
  const Node node = std::move(r).value();
  stats->total_bytes += node.SerializedSize(options_);
  if (node.is_leaf()) {
    ++stats->leaf_nodes;
    stats->entries += node.entry_count();
    *leaf_depth = depth;
    return Status::OK();
  }
  ++stats->internal_nodes;
  UINDEX_RETURN_IF_ERROR(
      ComputeStatsSubtree(node.leftmost_child(), depth + 1, stats,
                          leaf_depth));
  for (const NodeEntry& e : node.entries()) {
    UINDEX_RETURN_IF_ERROR(
        ComputeStatsSubtree(e.child, depth + 1, stats, leaf_depth));
  }
  return Status::OK();
}

Status BTree::Validate() const {
  uint64_t entries = 0;
  std::vector<PageId> leaves_in_order;

  // First pass establishes the uniform leaf depth.
  uint32_t leaf_depth = 1;
  {
    PageId id = root_;
    for (;;) {
      Result<Node> r = LoadNodeUncounted(id);
      if (!r.ok()) return r.status();
      if (r.value().is_leaf()) break;
      id = r.value().leftmost_child();
      ++leaf_depth;
    }
  }

  UINDEX_RETURN_IF_ERROR(ValidateSubtree(root_, nullptr, nullptr, 1,
                                         leaf_depth, &entries,
                                         &leaves_in_order));
  if (entries != size_) {
    return Status::Corruption("entry count mismatch: counted " +
                              std::to_string(entries) + " tracked " +
                              std::to_string(size_));
  }
  // The leaf chain must visit exactly the in-order leaves.
  for (size_t i = 0; i + 1 < leaves_in_order.size(); ++i) {
    Result<Node> r = LoadNodeUncounted(leaves_in_order[i]);
    if (!r.ok()) return r.status();
    if (r.value().next_leaf() != leaves_in_order[i + 1]) {
      return Status::Corruption("broken leaf chain after page " +
                                std::to_string(leaves_in_order[i]));
    }
  }
  if (!leaves_in_order.empty()) {
    Result<Node> r = LoadNodeUncounted(leaves_in_order.back());
    if (!r.ok()) return r.status();
    if (r.value().next_leaf() != kInvalidPageId) {
      return Status::Corruption("last leaf has a successor");
    }
  }
  return Status::OK();
}

Status BTree::ValidateSubtree(PageId id, const std::string* lo,
                              const std::string* hi, uint32_t depth,
                              uint32_t leaf_depth, uint64_t* entries,
                              std::vector<PageId>* leaves_in_order) const {
  Result<Node> r = LoadNodeUncounted(id);
  if (!r.ok()) return r.status();
  const Node node = std::move(r).value();

  if (node.SerializedSize(options_) > buffers_->page_size()) {
    return Status::Corruption("oversized node " + std::to_string(id));
  }
  const auto& es = node.entries();
  for (size_t i = 0; i < es.size(); ++i) {
    if (i > 0 && !(Slice(es[i - 1].key) < Slice(es[i].key))) {
      return Status::Corruption("keys out of order in node " +
                                std::to_string(id));
    }
    if (lo != nullptr && Slice(es[i].key) < Slice(*lo)) {
      return Status::Corruption("key below lower bound in node " +
                                std::to_string(id));
    }
    if (hi != nullptr && !(Slice(es[i].key) < Slice(*hi))) {
      return Status::Corruption("key above upper bound in node " +
                                std::to_string(id));
    }
  }

  if (node.is_leaf()) {
    if (depth != leaf_depth) {
      return Status::Corruption("leaf at non-uniform depth, node " +
                                std::to_string(id));
    }
    *entries += node.entry_count();
    leaves_in_order->push_back(id);
    return Status::OK();
  }

  // Children: [lo, e0), [e0, e1), ..., [eN-1, hi).
  const std::string* child_lo = lo;
  for (size_t i = 0; i <= es.size(); ++i) {
    const std::string* child_hi = i < es.size() ? &es[i].key : hi;
    const PageId child = i == 0 ? node.leftmost_child() : es[i - 1].child;
    UINDEX_RETURN_IF_ERROR(ValidateSubtree(child, child_lo, child_hi,
                                           depth + 1, leaf_depth, entries,
                                           leaves_in_order));
    child_lo = child_hi;
  }
  return Status::OK();
}

}  // namespace uindex
