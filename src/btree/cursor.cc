#include "btree/btree.h"

#include "storage/prefetch.h"

namespace uindex {

// Iterators read leaves through the tree's decoded-node cache (FetchNode):
// a scan that revisits a hot leaf chain — or runs next to other scans —
// shares one immutable decoded image per page instead of re-parsing the
// front-compressed entries on every load. Page reads are charged exactly as
// with LoadNode.
//
// When a PrefetchScheduler is attached, the seek descent additionally arms
// leaf-chain readahead (see the Iterator class comment in btree.h): the
// internal nodes just visited enumerate the upcoming leaves, so the demand
// loads below find their pages already read in the background. Readahead
// never charges a page read and never blocks the scan.

void BTree::Iterator::LoadLeaf(PageId id) {
  page_id_ = id;
  index_ = 0;
  valid_ = false;
  if (id == kInvalidPageId) return;
  if (ra_active_) {
    ++ra_consumed_;
    TopUpReadahead();
  }
  Result<std::shared_ptr<const Node>> r = tree_->FetchNode(id);
  if (!r.ok()) {
    status_ = r.status();
    return;
  }
  node_ = std::move(r).value();
  valid_ = true;
}

void BTree::Iterator::SkipEmptyLeaves() {
  while (valid_ && index_ >= node_->entry_count()) {
    const PageId next = node_->next_leaf();
    if (next == kInvalidPageId) {
      valid_ = false;
      return;
    }
    LoadLeaf(next);
  }
}

void BTree::Iterator::SeekToFirst() {
  status_ = Status::OK();
  std::vector<RaStep> path;
  PageId id = tree_->root();
  for (;;) {
    Result<std::shared_ptr<const Node>> r = tree_->FetchNode(id);
    if (!r.ok()) {
      status_ = r.status();
      valid_ = false;
      return;
    }
    if (r.value()->is_leaf()) break;
    id = r.value()->leftmost_child();
    path.push_back({std::move(r).value(), 1, path.size()});
  }
  ArmReadahead(std::move(path));
  LoadLeaf(id);
  SkipEmptyLeaves();
}

void BTree::Iterator::Seek(const Slice& target) {
  status_ = Status::OK();
  std::vector<RaStep> path;
  PageId id = tree_->root();
  for (;;) {
    Result<std::shared_ptr<const Node>> r = tree_->FetchNode(id);
    if (!r.ok()) {
      status_ = r.status();
      valid_ = false;
      return;
    }
    if (r.value()->is_leaf()) break;
    // ChildFor(target) is the child before the first entry with key >
    // target; record the index form so readahead can resume at the next
    // sibling.
    const std::shared_ptr<const Node>& node = r.value();
    const size_t child_index = node->UpperBound(target);
    id = child_index == 0 ? node->leftmost_child()
                          : node->entries()[child_index - 1].child;
    path.push_back({std::move(r).value(), child_index + 1, path.size()});
  }
  ArmReadahead(std::move(path));
  LoadLeaf(id);
  if (!valid_) return;
  index_ = node_->LowerBound(target);
  SkipEmptyLeaves();
}

void BTree::Iterator::Next() {
  if (!valid_) return;
  ++index_;
  SkipEmptyLeaves();
}

void BTree::Iterator::ArmReadahead(std::vector<RaStep> path) {
  ra_active_ = false;
  ra_stall_ = kInvalidPageId;
  ra_issued_ = 0;
  ra_consumed_ = 0;
  if (path.empty()) return;  // Root is the leaf: nothing to enumerate.
  if (tree_->options().readahead_leaves == 0) return;
  if (tree_->buffers()->prefetcher() == nullptr) return;
  ra_path_ = std::move(path);
  ra_leaf_parent_depth_ = ra_path_.size() - 1;
  ra_active_ = true;
  TopUpReadahead();
}

void BTree::Iterator::TopUpReadahead() {
  PrefetchScheduler* prefetcher = tree_->buffers()->prefetcher();
  if (prefetcher == nullptr) {
    ra_active_ = false;
    return;
  }
  const BTree* tree = tree_;
  PrefetchScheduler::WarmFn warm = [tree](PageId id) { tree->WarmNode(id); };
  const size_t window = tree_->options().readahead_leaves;
  std::vector<PageId> batch;
  while (ra_active_ && ra_issued_ < ra_consumed_ + window) {
    const PageId id = NextReadaheadLeaf();
    if (id == kInvalidPageId) break;
    ++ra_issued_;
    batch.push_back(id);
  }
  if (!batch.empty()) prefetcher->Prefetch(batch, warm);
  if (ra_stall_ != kInvalidPageId) {
    // (Re-)issue the discovery read; dedup makes this free while it is
    // still in flight, and it revives a read dropped by an epoch reset.
    prefetcher->Prefetch(&ra_stall_, 1, warm);
  }
}

PageId BTree::Iterator::NextReadaheadLeaf() {
  for (;;) {
    if (ra_stall_ != kInvalidPageId) {
      std::shared_ptr<const Node> node = tree_->TryGetWarmNode(ra_stall_);
      if (node == nullptr) return kInvalidPageId;  // Still in flight.
      ra_stall_ = kInvalidPageId;
      if (node->is_leaf()) {
        // Only possible if the tree was mutated under us; drop readahead
        // rather than enumerate garbage (the iterator is invalid anyway).
        ra_active_ = false;
        return kInvalidPageId;
      }
      ra_path_.push_back({std::move(node), 0, ra_stall_depth_});
    }
    if (ra_path_.empty()) {
      ra_active_ = false;  // Whole tree enumerated.
      return kInvalidPageId;
    }
    RaStep& step = ra_path_.back();
    if (step.next_child > step.node->entry_count()) {
      ra_path_.pop_back();
      continue;
    }
    const size_t child_index = step.next_child++;
    const PageId child = child_index == 0
                             ? step.node->leftmost_child()
                             : step.node->entries()[child_index - 1].child;
    if (step.depth == ra_leaf_parent_depth_) return child;
    // An internal node the demand scan will never read (the leaf chain
    // crosses subtrees on its own): read it in the background and stall
    // until it is staged. TopUpReadahead issues the actual prefetch.
    ra_stall_ = child;
    ra_stall_depth_ = step.depth + 1;
    return kInvalidPageId;
  }
}

}  // namespace uindex
