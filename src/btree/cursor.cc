#include "btree/btree.h"

namespace uindex {

// Iterators read leaves through the tree's decoded-node cache (FetchNode):
// a scan that revisits a hot leaf chain — or runs next to other scans —
// shares one immutable decoded image per page instead of re-parsing the
// front-compressed entries on every load. Page reads are charged exactly as
// with LoadNode.

void BTree::Iterator::LoadLeaf(PageId id) {
  page_id_ = id;
  index_ = 0;
  valid_ = false;
  if (id == kInvalidPageId) return;
  Result<std::shared_ptr<const Node>> r = tree_->FetchNode(id);
  if (!r.ok()) return;
  node_ = std::move(r).value();
  valid_ = true;
}

void BTree::Iterator::SkipEmptyLeaves() {
  while (valid_ && index_ >= node_->entry_count()) {
    const PageId next = node_->next_leaf();
    if (next == kInvalidPageId) {
      valid_ = false;
      return;
    }
    LoadLeaf(next);
  }
}

void BTree::Iterator::SeekToFirst() {
  PageId id = tree_->root();
  for (;;) {
    Result<std::shared_ptr<const Node>> r = tree_->FetchNode(id);
    if (!r.ok()) {
      valid_ = false;
      return;
    }
    if (r.value()->is_leaf()) break;
    id = r.value()->leftmost_child();
  }
  LoadLeaf(id);
  SkipEmptyLeaves();
}

void BTree::Iterator::Seek(const Slice& target) {
  PageId id = tree_->root();
  for (;;) {
    Result<std::shared_ptr<const Node>> r = tree_->FetchNode(id);
    if (!r.ok()) {
      valid_ = false;
      return;
    }
    if (r.value()->is_leaf()) break;
    id = r.value()->ChildFor(target);
  }
  LoadLeaf(id);
  if (!valid_) return;
  index_ = node_->LowerBound(target);
  SkipEmptyLeaves();
}

void BTree::Iterator::Next() {
  if (!valid_) return;
  ++index_;
  SkipEmptyLeaves();
}

}  // namespace uindex
