#include "btree/btree.h"

namespace uindex {

void BTree::Iterator::LoadLeaf(PageId id) {
  page_id_ = id;
  index_ = 0;
  valid_ = false;
  if (id == kInvalidPageId) return;
  Result<Node> r = tree_->LoadNode(id);
  if (!r.ok()) return;
  node_ = std::move(r).value();
  valid_ = true;
}

void BTree::Iterator::SkipEmptyLeaves() {
  while (valid_ && index_ >= node_.entry_count()) {
    const PageId next = node_.next_leaf();
    if (next == kInvalidPageId) {
      valid_ = false;
      return;
    }
    LoadLeaf(next);
  }
}

void BTree::Iterator::SeekToFirst() {
  PageId id = tree_->root();
  for (;;) {
    Result<Node> r = tree_->LoadNode(id);
    if (!r.ok()) {
      valid_ = false;
      return;
    }
    if (r.value().is_leaf()) break;
    id = r.value().leftmost_child();
  }
  LoadLeaf(id);
  SkipEmptyLeaves();
}

void BTree::Iterator::Seek(const Slice& target) {
  PageId id = tree_->root();
  for (;;) {
    Result<Node> r = tree_->LoadNode(id);
    if (!r.ok()) {
      valid_ = false;
      return;
    }
    if (r.value().is_leaf()) break;
    id = r.value().ChildFor(target);
  }
  LoadLeaf(id);
  if (!valid_) return;
  index_ = node_.LowerBound(target);
  SkipEmptyLeaves();
}

void BTree::Iterator::Next() {
  if (!valid_) return;
  ++index_;
  SkipEmptyLeaves();
}

}  // namespace uindex
