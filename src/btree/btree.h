#ifndef UINDEX_BTREE_BTREE_H_
#define UINDEX_BTREE_BTREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "btree/node.h"
#include "btree/node_cache.h"
#include "btree/options.h"
#include "storage/buffer_manager.h"
#include "util/slice.h"
#include "util/status.h"

namespace uindex {

/// A single-rooted B+-tree over a `BufferManager`, with variable-length,
/// front-compressed keys.
///
/// This is the substrate of the U-index (paper §3.2): "the index is built
/// with a B-tree with variable-length, front-compressed keys". It also backs
/// the H-tree and path/nested-index baselines. Keys are unique byte strings
/// ordered by `memcmp`; leaf entries carry an opaque payload. Every node
/// access for reads and mutations goes through the buffer manager, so page
/// reads are accounted exactly as in the paper's experiments.
///
/// Thread-compatibility: a `BTree` is not internally synchronized; callers
/// serialize access. Iterators are invalidated by any mutation.
class BTree {
 public:
  /// Creates an empty tree (allocates a root leaf page).
  BTree(BufferManager* buffers, BTreeOptions options = BTreeOptions());

  /// Attaches to an existing tree on `buffers`'s pager — e.g. one restored
  /// from a `PagerSnapshot` — whose root page id and entry count were
  /// persisted by the caller. `options` must match the ones the tree was
  /// built with (compression affects the on-page format's size budget).
  BTree(BufferManager* buffers, PageId root, uint64_t size,
        BTreeOptions options);

  /// Attaches as a read-only *view* sharing `borrowed_cache` (may be null)
  /// instead of owning a decoded-node cache — the MVCC snapshot path:
  /// per-query `UIndex` views wrap the published root/size of a live tree
  /// and borrow its cache, so snapshot reads keep hitting warm decoded
  /// nodes. The borrowed cache must outlive the view (the database holds
  /// the shared latch over both for the view's whole life).
  BTree(BufferManager* buffers, PageId root, uint64_t size,
        BTreeOptions options, NodeCache* borrowed_cache);

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Inserts a new key. Fails with AlreadyExists if the key is present.
  Status Insert(const Slice& key, const Slice& value);

  /// Inserts a strictly-increasing run of new keys, descending once per
  /// target leaf instead of once per key — the batch B-tree update of
  /// Tsur/Gudes ([4] in the paper) that §3.5 leans on: because entries for
  /// one object cluster, its index updates hit few leaves. Fails with
  /// InvalidArgument on an unsorted batch and AlreadyExists on a
  /// collision; earlier keys of the batch stay inserted in that case.
  Status InsertBatch(
      const std::vector<std::pair<std::string, std::string>>& entries);

  /// Inserts or overwrites.
  Status Put(const Slice& key, const Slice& value);

  /// Removes a key. Fails with NotFound if absent.
  Status Delete(const Slice& key);

  /// Frees every page of the tree and resets it to an empty root leaf.
  Status Clear();

  /// Returns the payload stored under `key`, or NotFound.
  Result<std::string> Get(const Slice& key) const;

  bool Contains(const Slice& key) const;

  /// Number of live entries.
  uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  PageId root() const { return root_; }
  const BTreeOptions& options() const { return options_; }
  BufferManager* buffers() const { return buffers_; }

  /// Loads and parses a node, charging a page read. Exposed so that the
  /// U-index "parallel" retrieval algorithm (paper Algorithm 1) can drive
  /// its own descent over internal nodes. Always pays a full `Node::Parse`;
  /// read paths that tolerate a shared immutable node should prefer
  /// `FetchNode`.
  Result<Node> LoadNode(PageId id) const;

  /// Like `LoadNode` but served through the decoded-node cache: charges the
  /// page read identically, then returns the cached decoded image when its
  /// page version is still current, parsing (and caching) only on a miss.
  /// The returned node is immutable and may be shared by concurrent
  /// readers; it stays valid after tree mutations (it just goes stale).
  Result<std::shared_ptr<const Node>> FetchNode(PageId id) const;

  /// The tree's decoded-node cache — owned or borrowed — or null when
  /// disabled (`BTreeOptions::node_cache_bytes == 0` or
  /// UINDEX_NODE_CACHE=off).
  NodeCache* node_cache() const { return cache(); }

  /// Background warm hook for the prefetch scheduler (storage/prefetch.h):
  /// decodes page `id` into the decoded-node cache under the usual
  /// version-before-bytes protocol, charging nothing — the demand fetch
  /// that later consumes the page gets the parse for free. Tolerates a
  /// freed/invalid id and a disabled cache (both are no-ops); thread-safe
  /// against concurrent readers (writers are excluded by the scheduler's
  /// drain contract).
  void WarmNode(PageId id) const;

  /// Uncounted lookup of a decoded node that is already in memory: served
  /// from the decoded-node cache, or parsed from the pager's bytes when the
  /// prefetch scheduler has the page staged. Returns null when the page is
  /// not known to be in memory — callers must NOT treat that as an error,
  /// and must NOT use this on a demand path (it would bypass page-read
  /// accounting); it exists for iterator readahead to walk discovery
  /// internal nodes without charging reads the demand scan never performs.
  std::shared_ptr<const Node> TryGetWarmNode(PageId id) const;

  /// Forward scanner over leaf entries in key order. Obtain via
  /// `NewIterator`; invalidated by tree mutation.
  ///
  /// While a `PrefetchScheduler` is attached to the tree's buffer manager
  /// (and `BTreeOptions::readahead_leaves > 0`), the iterator keeps a
  /// window of upcoming leaves in background reads ahead of its position.
  /// The leaf ids come from the internal nodes recorded during the seek
  /// descent — a parent names many consecutive leaves, so readahead runs a
  /// full window deep instead of the one-step lookahead a `next_leaf`
  /// pointer would allow. Crossing into the next parent's subtree requires
  /// that parent's sibling, which the demand scan never reads (the leaf
  /// chain crosses on its own): readahead fetches such discovery internals
  /// in the background too, reads them via `TryGetWarmNode` (uncounted),
  /// and stalls — never blocks — while one is still in flight. Those
  /// discovery reads surface as `prefetch_wasted` by design; `pages_read`
  /// stays byte-identical with readahead on or off.
  class Iterator {
   public:
    /// Positions at the first entry (invalid if the tree is empty).
    void SeekToFirst();

    /// Positions at the first entry with key >= `target`.
    void Seek(const Slice& target);

    bool Valid() const { return valid_; }

    /// OK while positioned or cleanly exhausted; the `FetchNode` error
    /// (Corruption/NotFound) that stopped the scan otherwise. Callers that
    /// treat `!Valid()` as end-of-scan must check this — a failed node
    /// load also clears `Valid()`.
    const Status& status() const { return status_; }

    /// Advances to the next entry in key order, following the leaf chain.
    void Next();

    Slice key() const { return Slice(node_->entries()[index_].key); }
    Slice value() const { return Slice(node_->entries()[index_].value); }

    /// Page id of the leaf currently under the iterator.
    PageId page_id() const { return page_id_; }

   private:
    friend class BTree;
    explicit Iterator(const BTree* tree) : tree_(tree) {}

    void LoadLeaf(PageId id);
    void SkipEmptyLeaves();

    // One internal level of the readahead enumerator's position. `depth`
    // is the level's distance from the root; children of the deepest
    // recorded level are leaves.
    struct RaStep {
      std::shared_ptr<const Node> node;
      size_t next_child;  // Next child index to enumerate (0 = leftmost).
      size_t depth;
    };

    // Starts readahead from the internal nodes visited by a seek descent
    // (each paired with the child index the descent took); no-op when no
    // scheduler is attached or the window is 0.
    void ArmReadahead(std::vector<RaStep> path);
    // Issues background leaf reads until the window is full, the
    // enumerator stalls on a discovery internal, or the tree is exhausted.
    void TopUpReadahead();
    // Next upcoming leaf id in chain order; kInvalidPageId when stalled
    // (discovery read in flight) or done.
    PageId NextReadaheadLeaf();

    const BTree* tree_;
    PageId page_id_ = kInvalidPageId;
    std::shared_ptr<const Node> node_;
    size_t index_ = 0;
    bool valid_ = false;
    Status status_;

    // Readahead state; dead weight unless ArmReadahead enables it.
    bool ra_active_ = false;
    std::vector<RaStep> ra_path_;
    size_t ra_leaf_parent_depth_ = 0;
    PageId ra_stall_ = kInvalidPageId;  // Discovery internal in flight.
    size_t ra_stall_depth_ = 0;
    size_t ra_issued_ = 0;    // Leaf ids handed to the scheduler.
    size_t ra_consumed_ = 0;  // Leaves the scan moved onto since arming.
  };

  Iterator NewIterator() const { return Iterator(this); }

  /// Structure counters gathered by a full (uncounted) walk.
  struct TreeStats {
    uint64_t internal_nodes = 0;
    uint64_t leaf_nodes = 0;
    uint64_t entries = 0;
    uint32_t height = 0;  ///< 1 for a lone root leaf.
    uint64_t total_bytes = 0;  ///< Sum of serialized node sizes.
  };

  /// Walks the whole tree without touching read counters.
  Result<TreeStats> ComputeStats() const;

  /// Exhaustively checks structural invariants (key order, separator
  /// bounds, node sizes, uniform leaf depth, leaf-chain consistency, entry
  /// count). Intended for tests; does not touch read counters.
  Status Validate() const;

 private:
  // One step of a root-to-leaf descent: the node visited and which child
  // pointer was taken (0 = leftmost, c = entries[c-1].child).
  struct PathStep {
    PageId page_id;
    Node node;
    size_t child_index;
  };

  Result<Node> LoadNodeUncounted(PageId id) const;
  Status WriteNode(PageId id, const Node& node);

  // Descends to the leaf that would hold `key`, filling `path` with the
  // internal steps (counted reads). If `upper_bound` is non-null it
  // receives the tightest separator bounding the leaf's key range from
  // above (empty = unbounded).
  Status DescendToLeaf(const Slice& key, std::vector<PathStep>* path,
                       PageId* leaf_id, Node* leaf,
                       std::string* upper_bound = nullptr) const;

  // Writes back `node` (which may violate the size limit), splitting and
  // propagating up through `path` as needed.
  Status StoreWithSplits(std::vector<PathStep> path, PageId node_id,
                         Node node);

  // Rebalances after a deletion made the node at the end of the implied
  // path underfull.
  Status RebalanceAfterDelete(std::vector<PathStep> path, PageId node_id,
                              Node node);

  bool IsUnderfull(const Node& node) const;

  Status ValidateSubtree(PageId id, const std::string* lo,
                         const std::string* hi, uint32_t depth,
                         uint32_t leaf_depth, uint64_t* entries,
                         std::vector<PageId>* leaves_in_order) const;

  Status ComputeStatsSubtree(PageId id, uint32_t depth, TreeStats* stats,
                             uint32_t* leaf_depth) const;

  // Owned cache, or the borrowed one (snapshot views), or null.
  NodeCache* cache() const {
    return borrowed_cache_ != nullptr ? borrowed_cache_ : node_cache_.get();
  }

  BufferManager* buffers_;
  BTreeOptions options_;
  PageId root_;
  uint64_t size_ = 0;
  // Decoded-node cache shared by read paths; null when disabled. Mutations
  // need no hooks into it: invalidation rides on the buffer manager's page
  // versions (see btree/node_cache.h). Snapshot views borrow the live
  // tree's cache instead of owning one.
  std::unique_ptr<NodeCache> node_cache_;
  NodeCache* borrowed_cache_ = nullptr;
};

}  // namespace uindex

#endif  // UINDEX_BTREE_BTREE_H_
