#ifndef UINDEX_UTIL_JSON_H_
#define UINDEX_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace uindex {
namespace json {

/// A parsed JSON document node. The tree is plain value-semantics data:
/// arrays own their items, objects own their members (insertion order
/// preserved, duplicate keys rejected by the parser — the HTTP gateway's
/// request bodies have no legitimate use for them).
///
/// Numbers keep their syntactic shape: an integer literal that fits int64
/// is `kInt`; everything else numeric is `kDouble`. The gateway's DML
/// endpoint wants that distinction — object attributes are int64 or
/// string, never floating point.
class Value {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Value() = default;

  static Value Null() { return Value(); }
  static Value Bool(bool b) {
    Value v;
    v.kind_ = Kind::kBool;
    v.bool_ = b;
    return v;
  }
  static Value Int(int64_t i) {
    Value v;
    v.kind_ = Kind::kInt;
    v.int_ = i;
    return v;
  }
  static Value Double(double d) {
    Value v;
    v.kind_ = Kind::kDouble;
    v.double_ = d;
    return v;
  }
  static Value Str(std::string s) {
    Value v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(s);
    return v;
  }
  static Value Array() {
    Value v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static Value Object() {
    Value v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_double() const { return kind_ == Kind::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  int64_t AsInt() const { return int_; }
  double AsDouble() const {
    return kind_ == Kind::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& AsString() const { return string_; }

  std::vector<Value>& items() { return items_; }
  const std::vector<Value>& items() const { return items_; }
  std::vector<std::pair<std::string, Value>>& members() { return members_; }
  const std::vector<std::pair<std::string, Value>>& members() const {
    return members_;
  }

  /// Object member lookup; null when absent or this is not an object.
  const Value* Find(const std::string& key) const {
    if (kind_ != Kind::kObject) return nullptr;
    for (const auto& [k, v] : members_) {
      if (k == key) return &v;
    }
    return nullptr;
  }

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<std::pair<std::string, Value>> members_;
};

/// Strictly parses one complete JSON document (RFC 8259 grammar: any value
/// at top level, no trailing content, no comments, no trailing commas, no
/// NaN/Infinity, strings must be valid escape sequences with \uXXXX
/// surrogate pairs folded to UTF-8). Nesting deeper than 64 levels and
/// duplicate object keys are rejected.
///
/// Errors are `InvalidArgument` carrying the byte offset and a caret
/// context snippet (util/diag.h), exactly like the OQL parser's
/// diagnostics:
///
///   expected ':' after object key at byte 9
///     {"oql" "SELECT"}
///              ^
Result<Value> Parse(const std::string& text);

/// Appends `s` as a quoted JSON string literal (escaping `"`/`\`/control
/// bytes; everything else passes through, so valid UTF-8 stays UTF-8).
void AppendQuoted(std::string* out, const std::string& s);

/// Serializes a tree back to compact JSON (writer half of the round trip;
/// the gateway mostly assembles responses directly with AppendQuoted).
std::string Dump(const Value& value);

}  // namespace json
}  // namespace uindex

#endif  // UINDEX_UTIL_JSON_H_
