#include "util/hex.h"

namespace uindex {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";
}  // namespace

std::string EscapeBytes(const Slice& bytes) {
  std::string out;
  out.reserve(bytes.size());
  for (size_t i = 0; i < bytes.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(bytes[i]);
    if (c >= 0x20 && c < 0x7F && c != '\\') {
      out.push_back(static_cast<char>(c));
    } else {
      out += "\\x";
      out.push_back(kHexDigits[c >> 4]);
      out.push_back(kHexDigits[c & 0xF]);
    }
  }
  return out;
}

std::string ToHex(const Slice& bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (size_t i = 0; i < bytes.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(bytes[i]);
    out.push_back(kHexDigits[c >> 4]);
    out.push_back(kHexDigits[c & 0xF]);
  }
  return out;
}

}  // namespace uindex
