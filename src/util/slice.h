#ifndef UINDEX_UTIL_SLICE_H_
#define UINDEX_UTIL_SLICE_H_

#include <cassert>
#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace uindex {

/// A borrowed, non-owning view over a byte range.
///
/// Index keys are raw byte strings whose `memcmp` order is their logical
/// order, so `Slice` exposes byte-wise comparison helpers. The referenced
/// storage must outlive the slice.
class Slice {
 public:
  Slice() : data_(""), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  /// Views a NUL-terminated C string (NUL excluded).
  Slice(const char* cstr) : data_(cstr), size_(std::strlen(cstr)) {}
  /// Views the contents of `str`; `str` must outlive the slice.
  Slice(const std::string& str) : data_(str.data()), size_(str.size()) {}

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  /// Drops the first `n` bytes.
  void RemovePrefix(size_t n) {
    assert(n <= size_);
    data_ += n;
    size_ -= n;
  }

  /// Returns the first `n` bytes as a new slice.
  Slice Prefix(size_t n) const {
    assert(n <= size_);
    return Slice(data_, n);
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view ToView() const { return std::string_view(data_, size_); }

  /// Three-way byte-wise comparison: <0, 0, >0 as in `memcmp`.
  int Compare(const Slice& other) const {
    const size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = min_len == 0 ? 0 : std::memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) r = -1;
      else if (size_ > other.size_) r = +1;
    }
    return r;
  }

  bool StartsWith(const Slice& prefix) const {
    return size_ >= prefix.size_ &&
           (prefix.size_ == 0 ||
            std::memcmp(data_, prefix.data_, prefix.size_) == 0);
  }

  /// Length of the longest common prefix with `other`.
  size_t CommonPrefixLength(const Slice& other) const {
    const size_t min_len = size_ < other.size_ ? size_ : other.size_;
    size_t i = 0;
    while (i < min_len && data_[i] == other.data_[i]) ++i;
    return i;
  }

 private:
  const char* data_;
  size_t size_;
};

inline bool operator==(const Slice& a, const Slice& b) {
  return a.size() == b.size() &&
         (a.size() == 0 || std::memcmp(a.data(), b.data(), a.size()) == 0);
}
inline bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }
inline bool operator<(const Slice& a, const Slice& b) {
  return a.Compare(b) < 0;
}

}  // namespace uindex

#endif  // UINDEX_UTIL_SLICE_H_
