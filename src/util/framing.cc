#include "util/framing.h"

#include <algorithm>

#include "storage/env/env.h"
#include "util/coding.h"
#include "util/crc32.h"

namespace uindex {

FrameHeader DecodeFrameHeader(const char* bytes) {
  FrameHeader h;
  h.len = DecodeFixed32(bytes);
  h.crc = DecodeFixed32(bytes + 4);
  return h;
}

void AppendFrame(const Slice& payload, std::string* out) {
  PutFixed32(out, static_cast<uint32_t>(payload.size()));
  PutFixed32(out, Crc32(payload));
  out->append(payload.data(), payload.size());
}

Status CheckFrameLength(const FrameHeader& header, uint32_t max_len) {
  if (header.len > max_len) {
    return Status::Corruption("frame length " + std::to_string(header.len) +
                              " exceeds limit " + std::to_string(max_len));
  }
  return Status::OK();
}

Status VerifyFramePayload(const FrameHeader& header, const Slice& payload) {
  if (payload.size() != header.len) {
    return Status::Corruption("frame payload length mismatch");
  }
  if (Crc32(payload) != header.crc) {
    return Status::Corruption("frame checksum mismatch");
  }
  return Status::OK();
}

Result<FrameRead> ReadFrameFromFile(std::FILE* file, std::string* payload,
                                    uint32_t max_len, size_t* consumed) {
  char header_bytes[kFrameHeaderSize];
  const size_t got = std::fread(header_bytes, 1, sizeof(header_bytes), file);
  if (got == 0) return FrameRead::kEnd;
  if (got < sizeof(header_bytes)) return FrameRead::kTorn;
  const FrameHeader header = DecodeFrameHeader(header_bytes);
  UINDEX_RETURN_IF_ERROR(CheckFrameLength(header, max_len));
  payload->resize(header.len);
  if (std::fread(payload->data(), 1, header.len, file) != header.len) {
    return FrameRead::kTorn;
  }
  UINDEX_RETURN_IF_ERROR(VerifyFramePayload(header, Slice(*payload)));
  if (consumed != nullptr) *consumed += kFrameHeaderSize + header.len;
  return FrameRead::kFrame;
}

Status WriteFrameToFile(std::FILE* file, const Slice& payload) {
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  AppendFrame(payload, &frame);
  if (std::fwrite(frame.data(), 1, frame.size(), file) != frame.size()) {
    return Status::ResourceExhausted("frame write failed");
  }
  return Status::OK();
}

namespace {

// True iff `file` has no bytes left. Consumes at most one byte, which is
// fine: every caller stops reading on the paths that probe.
Result<bool> AtEof(SequentialFile* file) {
  char probe;
  Result<size_t> got = file->Read(1, &probe);
  if (!got.ok()) return got.status();
  return got.value() == 0;
}

}  // namespace

Result<FrameRead> ReadFrameFromFile(SequentialFile* file,
                                    std::string* payload, uint32_t max_len,
                                    size_t* consumed) {
  char header_bytes[kFrameHeaderSize];
  Result<size_t> got = file->Read(kFrameHeaderSize, header_bytes);
  if (!got.ok()) return got.status();
  if (got.value() == 0) return FrameRead::kEnd;
  if (got.value() < kFrameHeaderSize) return FrameRead::kTorn;
  const FrameHeader header = DecodeFrameHeader(header_bytes);

  if (header.len > max_len) {
    // An oversized length in the final header is what a torn header looks
    // like (garbage length bytes); only if at least `max_len` + 1 payload
    // bytes actually follow is this mid-stream corruption.
    char skip[4096];
    uint64_t remaining = static_cast<uint64_t>(max_len) + 1;
    while (remaining > 0) {
      const size_t want =
          static_cast<size_t>(std::min<uint64_t>(remaining, sizeof(skip)));
      Result<size_t> r = file->Read(want, skip);
      if (!r.ok()) return r.status();
      if (r.value() < want) return FrameRead::kTorn;
      remaining -= r.value();
    }
    return Status::Corruption(
        "frame length " + std::to_string(header.len) + " exceeds limit " +
        std::to_string(max_len));
  }

  payload->resize(header.len);
  got = file->Read(header.len, payload->data());
  if (!got.ok()) return got.status();
  if (got.value() < header.len) return FrameRead::kTorn;

  if (Crc32(Slice(*payload)) != header.crc) {
    Result<bool> eof = AtEof(file);
    if (!eof.ok()) return eof.status();
    // A corrupt frame that is the last thing in the file is the shape of
    // a crash mid-append (torn sectors): recoverable. Corruption with
    // trusted-looking bytes after it is not.
    if (eof.value()) return FrameRead::kTorn;
    return Status::Corruption("frame checksum mismatch mid-stream");
  }
  if (consumed != nullptr) *consumed += kFrameHeaderSize + header.len;
  return FrameRead::kFrame;
}

Status WriteFrameToFile(WritableFile* file, const Slice& payload) {
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  AppendFrame(payload, &frame);
  return file->Append(Slice(frame));
}

}  // namespace uindex
