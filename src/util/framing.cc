#include "util/framing.h"

#include "util/coding.h"
#include "util/crc32.h"

namespace uindex {

FrameHeader DecodeFrameHeader(const char* bytes) {
  FrameHeader h;
  h.len = DecodeFixed32(bytes);
  h.crc = DecodeFixed32(bytes + 4);
  return h;
}

void AppendFrame(const Slice& payload, std::string* out) {
  PutFixed32(out, static_cast<uint32_t>(payload.size()));
  PutFixed32(out, Crc32(payload));
  out->append(payload.data(), payload.size());
}

Status CheckFrameLength(const FrameHeader& header, uint32_t max_len) {
  if (header.len > max_len) {
    return Status::Corruption("frame length " + std::to_string(header.len) +
                              " exceeds limit " + std::to_string(max_len));
  }
  return Status::OK();
}

Status VerifyFramePayload(const FrameHeader& header, const Slice& payload) {
  if (payload.size() != header.len) {
    return Status::Corruption("frame payload length mismatch");
  }
  if (Crc32(payload) != header.crc) {
    return Status::Corruption("frame checksum mismatch");
  }
  return Status::OK();
}

Result<FrameRead> ReadFrameFromFile(std::FILE* file, std::string* payload,
                                    uint32_t max_len, size_t* consumed) {
  char header_bytes[kFrameHeaderSize];
  const size_t got = std::fread(header_bytes, 1, sizeof(header_bytes), file);
  if (got == 0) return FrameRead::kEnd;
  if (got < sizeof(header_bytes)) return FrameRead::kTorn;
  const FrameHeader header = DecodeFrameHeader(header_bytes);
  UINDEX_RETURN_IF_ERROR(CheckFrameLength(header, max_len));
  payload->resize(header.len);
  if (std::fread(payload->data(), 1, header.len, file) != header.len) {
    return FrameRead::kTorn;
  }
  UINDEX_RETURN_IF_ERROR(VerifyFramePayload(header, Slice(*payload)));
  if (consumed != nullptr) *consumed += kFrameHeaderSize + header.len;
  return FrameRead::kFrame;
}

Status WriteFrameToFile(std::FILE* file, const Slice& payload) {
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  AppendFrame(payload, &frame);
  if (std::fwrite(frame.data(), 1, frame.size(), file) != frame.size()) {
    return Status::ResourceExhausted("frame write failed");
  }
  return Status::OK();
}

}  // namespace uindex
