#ifndef UINDEX_UTIL_HEX_H_
#define UINDEX_UTIL_HEX_H_

#include <string>

#include "util/slice.h"

namespace uindex {

/// Renders `bytes` for debugging: printable characters verbatim, everything
/// else as `\xNN`. Used by dump/DebugString helpers across the library.
std::string EscapeBytes(const Slice& bytes);

/// Plain lowercase hex rendering of `bytes`.
std::string ToHex(const Slice& bytes);

}  // namespace uindex

#endif  // UINDEX_UTIL_HEX_H_
