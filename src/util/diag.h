#ifndef UINDEX_UTIL_DIAG_H_
#define UINDEX_UTIL_DIAG_H_

#include <string>

#include "util/status.h"

namespace uindex {

/// A two-line context snippet for a diagnostic at byte `offset` of `text`:
/// the line containing the offset, then a caret under the offending column.
/// Offsets past the end clamp to end-of-input (errors like "expected more
/// tokens" point just past the last character).
std::string CaretContext(const std::string& text, size_t offset);

/// The one parse-error shape both query languages use
/// (db/oql, core/query_parser):
///
///   <message> at byte <offset>
///     SELECT v FROM Vehicle* v WHRE v.Color = 'Red'
///                               ^
Status ParseErrorAt(const std::string& text, size_t offset,
                    const std::string& message);

}  // namespace uindex

#endif  // UINDEX_UTIL_DIAG_H_
