#ifndef UINDEX_UTIL_FRAMING_H_
#define UINDEX_UTIL_FRAMING_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "util/slice.h"
#include "util/status.h"

namespace uindex {

/// The repo's one record-framing convention, shared by the durability
/// journal (db/journal) and the wire protocol (net/protocol):
///
///   [len u32][crc u32][payload]
///
/// `len` is the payload byte length, `crc` is CRC-32 of the payload, both
/// little-endian fixed32. The corruption policy is likewise shared:
///
///  * A *torn tail* — the stream ends mid-header or mid-payload — is
///    tolerated and reported as `FrameRead::kTorn`; it is the expected
///    shape of a crash mid-append (journal) and is treated as a protocol
///    violation by the connection layer (net), but never misread as data.
///  * A *corrupt record* — CRC mismatch, or a length beyond the caller's
///    limit — is `Status::Corruption`; whatever follows it cannot be
///    trusted, so readers stop there. One refinement applies to the
///    `Env`-backed file reader below: a corrupt frame that ends *exactly at
///    end of file* has the shape of a crash (a torn sector in the final
///    append), so it is reported as `kTorn` — recoverable — while a corrupt
///    frame with bytes after it is mid-stream corruption and stays fatal.
inline constexpr size_t kFrameHeaderSize = 8;

class SequentialFile;  // storage/env/env.h
class WritableFile;

struct FrameHeader {
  uint32_t len = 0;
  uint32_t crc = 0;
};

/// Decodes the 8-byte header at `bytes` (which must hold at least
/// `kFrameHeaderSize` bytes).
FrameHeader DecodeFrameHeader(const char* bytes);

/// Appends `[len][crc][payload]` for `payload` to `*out`.
void AppendFrame(const Slice& payload, std::string* out);

/// Verifies `payload` against `header`: length and CRC must both match.
/// `max_len` rejects oversized frames before any payload is read — pass
/// the protocol's frame limit, or `UINT32_MAX` for no limit (the journal,
/// whose records are bounded by what `Append` wrote).
Status VerifyFramePayload(const FrameHeader& header, const Slice& payload);
Status CheckFrameLength(const FrameHeader& header, uint32_t max_len);

enum class FrameRead {
  kFrame,  ///< One well-formed frame was read into `*payload`.
  kEnd,    ///< Clean end of stream at a frame boundary.
  kTorn,   ///< Stream ended mid-frame (tolerated tail; stop reading).
};

/// Reads the next frame from `file` into `*payload`. Returns the outcome
/// above, `Status::Corruption` on a CRC mismatch or a header whose length
/// exceeds `max_len`. On `kFrame`, `*consumed` (if non-null) is advanced
/// by the frame's total byte size (header + payload).
Result<FrameRead> ReadFrameFromFile(std::FILE* file, std::string* payload,
                                    uint32_t max_len,
                                    size_t* consumed = nullptr);

/// Writes `[len][crc][payload]` to `file` (no flush — the caller owns the
/// durability policy). Returns ResourceExhausted on a short write.
Status WriteFrameToFile(std::FILE* file, const Slice& payload);

/// `Env`-backed variants, used by the durability journal so the same code
/// runs against `PosixEnv` and `FaultInjectingEnv`. The reader applies the
/// crash-shaped-tail policy documented above: torn or CRC-corrupt frames
/// ending exactly at EOF are `kTorn`; corruption followed by more bytes is
/// `Status::Corruption`.
Result<FrameRead> ReadFrameFromFile(SequentialFile* file,
                                    std::string* payload, uint32_t max_len,
                                    size_t* consumed = nullptr);

/// Writes one frame via `WritableFile::Append` (one write call per frame,
/// so a crash can tear at most the final frame). No sync — the caller owns
/// the durability policy.
Status WriteFrameToFile(WritableFile* file, const Slice& payload);

}  // namespace uindex

#endif  // UINDEX_UTIL_FRAMING_H_
