#ifndef UINDEX_UTIL_CODING_H_
#define UINDEX_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace uindex {

// Little-endian fixed-width encodings used by on-page node formats, plus
// big-endian (order-preserving) encodings used inside index keys.

inline void EncodeFixed16(char* dst, uint16_t v) { std::memcpy(dst, &v, 2); }
inline void EncodeFixed32(char* dst, uint32_t v) { std::memcpy(dst, &v, 4); }
inline void EncodeFixed64(char* dst, uint64_t v) { std::memcpy(dst, &v, 8); }

inline uint16_t DecodeFixed16(const char* src) {
  uint16_t v;
  std::memcpy(&v, src, 2);
  return v;
}
inline uint32_t DecodeFixed32(const char* src) {
  uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
inline uint64_t DecodeFixed64(const char* src) {
  uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}

inline void PutFixed16(std::string* dst, uint16_t v) {
  char buf[2];
  EncodeFixed16(buf, v);
  dst->append(buf, 2);
}
inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  EncodeFixed32(buf, v);
  dst->append(buf, 4);
}
inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  EncodeFixed64(buf, v);
  dst->append(buf, 8);
}

/// Appends `v` big-endian, so that the byte-wise (memcmp) order of the
/// encodings equals the numeric order — the property index keys rely on.
inline void PutBigEndian64(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 7; i >= 0; --i) {
    buf[i] = static_cast<char>(v & 0xFF);
    v >>= 8;
  }
  dst->append(buf, 8);
}

inline uint64_t DecodeBigEndian64(const char* src) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<unsigned char>(src[i]);
  }
  return v;
}

/// Appends `v` big-endian in 4 bytes (order-preserving for uint32 values).
inline void PutBigEndian32(std::string* dst, uint32_t v) {
  char buf[4];
  for (int i = 3; i >= 0; --i) {
    buf[i] = static_cast<char>(v & 0xFF);
    v >>= 8;
  }
  dst->append(buf, 4);
}

inline uint32_t DecodeBigEndian32(const char* src) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v = (v << 8) | static_cast<unsigned char>(src[i]);
  }
  return v;
}

}  // namespace uindex

#endif  // UINDEX_UTIL_CODING_H_
