#ifndef UINDEX_UTIL_CRC32_H_
#define UINDEX_UTIL_CRC32_H_

#include <cstdint>

#include "util/slice.h"

namespace uindex {

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `data`, continuing from
/// `seed` (pass 0 to start). Used to detect snapshot corruption.
uint32_t Crc32(const Slice& data, uint32_t seed = 0);

}  // namespace uindex

#endif  // UINDEX_UTIL_CRC32_H_
