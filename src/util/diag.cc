#include "util/diag.h"

namespace uindex {

std::string CaretContext(const std::string& text, size_t offset) {
  if (offset > text.size()) offset = text.size();
  size_t line_start = 0;
  if (offset > 0) {
    const size_t nl = text.rfind('\n', offset - 1);
    if (nl != std::string::npos) line_start = nl + 1;
  }
  size_t line_end = text.find('\n', offset);
  if (line_end == std::string::npos) line_end = text.size();
  std::string out = "  ";
  out.append(text, line_start, line_end - line_start);
  out += "\n  ";
  out.append(offset - line_start, ' ');
  out += '^';
  return out;
}

Status ParseErrorAt(const std::string& text, size_t offset,
                    const std::string& message) {
  return Status::InvalidArgument(message + " at byte " +
                                 std::to_string(offset > text.size()
                                                    ? text.size()
                                                    : offset) +
                                 "\n" + CaretContext(text, offset));
}

}  // namespace uindex
