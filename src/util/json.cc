#include "util/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/diag.h"

namespace uindex {
namespace json {

namespace {

// Recursion is bounded explicitly: the parser is fed by the network.
constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Value> ParseDocument() {
    SkipWs();
    Value root;
    UINDEX_RETURN_IF_ERROR(ParseValue(&root, 0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing content after JSON value");
    }
    return root;
  }

 private:
  Status Error(const std::string& message) const {
    return ParseErrorAt(text_, pos_, message);
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  Status ParseValue(Value* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting deeper than 64 levels");
    if (AtEnd()) return Error("expected a JSON value");
    switch (Peek()) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        UINDEX_RETURN_IF_ERROR(ParseString(&s));
        *out = Value::Str(std::move(s));
        return Status::OK();
      }
      case 't':
        UINDEX_RETURN_IF_ERROR(Literal("true"));
        *out = Value::Bool(true);
        return Status::OK();
      case 'f':
        UINDEX_RETURN_IF_ERROR(Literal("false"));
        *out = Value::Bool(false);
        return Status::OK();
      case 'n':
        UINDEX_RETURN_IF_ERROR(Literal("null"));
        *out = Value::Null();
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status Literal(const char* word) {
    const size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) {
      return Error(std::string("expected '") + word + "'");
    }
    pos_ += len;
    return Status::OK();
  }

  Status ParseObject(Value* out, int depth) {
    ++pos_;  // '{'
    *out = Value::Object();
    SkipWs();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return Status::OK();
    }
    for (;;) {
      SkipWs();
      if (AtEnd() || Peek() != '"') {
        return Error("expected a quoted object key");
      }
      std::string key;
      UINDEX_RETURN_IF_ERROR(ParseString(&key));
      if (out->Find(key) != nullptr) {
        return Error("duplicate object key \"" + key + "\"");
      }
      SkipWs();
      if (AtEnd() || Peek() != ':') {
        return Error("expected ':' after object key");
      }
      ++pos_;
      SkipWs();
      Value member;
      UINDEX_RETURN_IF_ERROR(ParseValue(&member, depth + 1));
      out->members().emplace_back(std::move(key), std::move(member));
      SkipWs();
      if (AtEnd()) return Error("unterminated object");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return Status::OK();
      }
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(Value* out, int depth) {
    ++pos_;  // '['
    *out = Value::Array();
    SkipWs();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return Status::OK();
    }
    for (;;) {
      SkipWs();
      Value item;
      UINDEX_RETURN_IF_ERROR(ParseValue(&item, depth + 1));
      out->items().push_back(std::move(item));
      SkipWs();
      if (AtEnd()) return Error("unterminated array");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return Status::OK();
      }
      return Error("expected ',' or ']' in array");
    }
  }

  // Appends `cp` (a Unicode scalar value) to `*out` as UTF-8.
  static void AppendUtf8(std::string* out, uint32_t cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status Hex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) {
      return Error("truncated \\u escape");
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("bad hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    for (;;) {
      if (AtEnd()) return Error("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) {
        return Error("raw control byte in string (escape it)");
      }
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;
      if (AtEnd()) return Error("truncated escape sequence");
      const char e = text_[pos_];
      ++pos_;
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          UINDEX_RETURN_IF_ERROR(Hex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: the low half must follow immediately.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("high surrogate without a \\u low surrogate");
            }
            pos_ += 2;
            uint32_t lo = 0;
            UINDEX_RETURN_IF_ERROR(Hex4(&lo));
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(out, cp);
          break;
        }
        default:
          --pos_;  // Point the caret at the bad escape character.
          return Error("unknown escape sequence");
      }
    }
  }

  Status ParseNumber(Value* out) {
    const size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    if (AtEnd() || Peek() < '0' || Peek() > '9') {
      pos_ = start;
      return Error("expected a JSON value");
    }
    // Integer part: a leading zero admits no more digits (RFC 8259).
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    bool integral = true;
    if (!AtEnd() && Peek() == '.') {
      integral = false;
      ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Error("expected digits after decimal point");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Error("expected digits in exponent");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        *out = Value::Int(static_cast<int64_t>(v));
        return Status::OK();
      }
      // Out of int64 range: fall through to double like every other
      // magnitude-losing literal.
    }
    errno = 0;
    const double d = std::strtod(token.c_str(), nullptr);
    if (errno != 0 || !std::isfinite(d)) {
      pos_ = start;
      return Error("number out of range");
    }
    *out = Value::Double(d);
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

void DumpInto(const Value& v, std::string* out) {
  switch (v.kind()) {
    case Value::Kind::kNull:
      *out += "null";
      return;
    case Value::Kind::kBool:
      *out += v.AsBool() ? "true" : "false";
      return;
    case Value::Kind::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(v.AsInt()));
      *out += buf;
      return;
    }
    case Value::Kind::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", v.AsDouble());
      *out += buf;
      return;
    }
    case Value::Kind::kString:
      AppendQuoted(out, v.AsString());
      return;
    case Value::Kind::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < v.items().size(); ++i) {
        if (i > 0) out->push_back(',');
        DumpInto(v.items()[i], out);
      }
      out->push_back(']');
      return;
    }
    case Value::Kind::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < v.members().size(); ++i) {
        if (i > 0) out->push_back(',');
        AppendQuoted(out, v.members()[i].first);
        out->push_back(':');
        DumpInto(v.members()[i].second, out);
      }
      out->push_back('}');
      return;
    }
  }
}

}  // namespace

Result<Value> Parse(const std::string& text) {
  return Parser(text).ParseDocument();
}

void AppendQuoted(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(ch);
        }
    }
  }
  out->push_back('"');
}

std::string Dump(const Value& value) {
  std::string out;
  DumpInto(value, &out);
  return out;
}

}  // namespace json
}  // namespace uindex
