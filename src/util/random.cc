#include "util/random.h"

#include <cassert>
#include <unordered_set>

#include <algorithm>

namespace uindex {

Random::Random(uint64_t seed) : state_(seed ? seed : 0x9E3779B97F4A7C15ull) {}

uint64_t Random::Next() {
  // xorshift64* (Vigna). Good enough statistical quality for workload
  // generation and fully deterministic across platforms.
  uint64_t x = state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  state_ = x;
  return x * 0x2545F4914F6CDD1Dull;
}

uint64_t Random::Uniform(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

uint64_t Random::UniformRange(uint64_t lo, uint64_t hi) {
  assert(lo <= hi);
  return lo + Uniform(hi - lo + 1);
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return (Next() >> 11) * (1.0 / 9007199254740992.0) < p;
}

std::vector<uint64_t> Random::SampleWithoutReplacement(uint64_t n,
                                                       uint64_t k) {
  assert(k <= n);
  std::vector<uint64_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (k * 2 >= n) {
    // Dense case: shuffle the full range and take a prefix.
    std::vector<uint64_t> all(n);
    for (uint64_t i = 0; i < n; ++i) all[i] = i;
    Shuffle(all);
    out.assign(all.begin(), all.begin() + static_cast<ptrdiff_t>(k));
  } else {
    std::unordered_set<uint64_t> seen;
    while (seen.size() < k) seen.insert(Uniform(n));
    out.assign(seen.begin(), seen.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace uindex
