#ifndef UINDEX_UTIL_STATUS_H_
#define UINDEX_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace uindex {

/// Outcome of a fallible operation.
///
/// The library does not use C++ exceptions; every operation that can fail
/// returns a `Status` (or a `Result<T>` when it also produces a value).
/// A default-constructed `Status` is OK. The set of codes is deliberately
/// small: callers branch on "ok or not" and occasionally on `IsNotFound`.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kInvalidArgument = 3,
    kAlreadyExists = 4,
    kNotSupported = 5,
    kResourceExhausted = 6,
    /// A dependency (e.g. a shard behind the router) failed or timed out;
    /// the operation may succeed on retry once it recovers.
    kUnavailable = 7,
    /// The caller acted on stale versioned metadata (e.g. a shard-map
    /// version the server has moved past); refresh and retry.
    kStaleVersion = 8,
    /// A mutation would create — or an enumeration ran into — a reference
    /// cycle along an indexed path (an object reached again through its
    /// own references). The mutation was rolled back.
    kCycleDetected = 9,
  };

  /// Creates an OK status.
  Status() : code_(Code::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  static Status StaleVersion(std::string msg) {
    return Status(Code::kStaleVersion, std::move(msg));
  }
  static Status CycleDetected(std::string msg) {
    return Status(Code::kCycleDetected, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsStaleVersion() const { return code_ == Code::kStaleVersion; }
  bool IsCycleDetected() const { return code_ == Code::kCycleDetected; }

  Code code() const { return code_; }

  /// Human-readable message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// Renders e.g. "NotFound: key missing" (or "OK").
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// A value-or-error pair. Access `value()` only when `ok()`.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value marks success.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit construction from a non-OK status marks failure.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result from Status requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace uindex

/// Evaluates `expr` (a Status expression) and early-returns it on failure.
#define UINDEX_RETURN_IF_ERROR(expr)             \
  do {                                           \
    ::uindex::Status _uindex_status = (expr);    \
    if (!_uindex_status.ok()) return _uindex_status; \
  } while (0)

#endif  // UINDEX_UTIL_STATUS_H_
