#include "util/status.h"

namespace uindex {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kResourceExhausted:
      return "ResourceExhausted";
    case Status::Code::kUnavailable:
      return "Unavailable";
    case Status::Code::kStaleVersion:
      return "StaleVersion";
    case Status::Code::kCycleDetected:
      return "CycleDetected";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace uindex
