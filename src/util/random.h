#ifndef UINDEX_UTIL_RANDOM_H_
#define UINDEX_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace uindex {

/// Deterministic pseudo-random generator (xorshift64*), seeded explicitly so
/// every experiment in the paper reproduction is replayable bit-for-bit.
class Random {
 public:
  explicit Random(uint64_t seed);

  /// Uniform value in [0, 2^64).
  uint64_t Next();

  /// Uniform value in [0, n); `n` must be positive.
  uint64_t Uniform(uint64_t n);

  /// Uniform value in [lo, hi]; requires lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi);

  /// True with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// k distinct values sampled uniformly from [0, n) without replacement;
  /// requires k <= n. Output is sorted ascending.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

 private:
  uint64_t state_;
};

}  // namespace uindex

#endif  // UINDEX_UTIL_RANDOM_H_
