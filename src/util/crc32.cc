#include "util/crc32.h"

namespace uindex {

namespace {

// Table generated at first use from the reflected polynomial 0xEDB88320.
struct Crc32Table {
  uint32_t entries[256];

  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0xEDB88320u : 0);
      }
      entries[i] = crc;
    }
  }
};

const Crc32Table& Table() {
  static const Crc32Table* table = new Crc32Table();
  return *table;
}

}  // namespace

uint32_t Crc32(const Slice& data, uint32_t seed) {
  const Crc32Table& table = Table();
  uint32_t crc = ~seed;
  for (size_t i = 0; i < data.size(); ++i) {
    crc = (crc >> 8) ^
          table.entries[(crc ^ static_cast<unsigned char>(data[i])) & 0xFF];
  }
  return ~crc;
}

}  // namespace uindex
