#include "workload/paper_schema.h"

#include <cassert>

namespace uindex {

PaperSchema PaperSchema::Build() {
  PaperSchema out;
  Schema& s = out.schema;
  auto cls = [&s](const std::string& name) {
    Result<ClassId> r = s.AddClass(name);
    assert(r.ok());
    return r.value();
  };
  auto sub = [&s](const std::string& name, ClassId parent) {
    Result<ClassId> r = s.AddSubclass(name, parent);
    assert(r.ok());
    return r.value();
  };

  // Creation order fixes the topological tie-break, reproducing the
  // paper's COD table.
  out.employee = cls("Employee");
  out.company = cls("Company");
  out.city = cls("City");
  out.division = cls("Division");
  out.vehicle = cls("Vehicle");

  out.automobile = sub("Automobile", out.vehicle);
  out.compact_automobile = sub("CompactAutomobile", out.automobile);
  out.foreign_auto = sub("ForeignAuto", out.automobile);
  out.service_auto = sub("ServiceAuto", out.automobile);
  out.truck = sub("Truck", out.vehicle);
  out.heavy_truck = sub("HeavyTruck", out.truck);
  out.light_truck = sub("LightTruck", out.truck);
  out.bus = sub("Bus", out.vehicle);
  out.military_bus = sub("MilitaryBus", out.bus);
  out.tourist_bus = sub("TouristBus", out.bus);
  out.passenger_bus = sub("PassengerBus", out.bus);

  out.auto_company = sub("AutoCompany", out.company);
  out.japanese_auto_company = sub("JapaneseAutoCompany", out.auto_company);
  out.truck_company = sub("TruckCompany", out.company);

  Status st = s.AddReference(out.vehicle, out.company, "manufactured-by");
  assert(st.ok());
  st = s.AddReference(out.company, out.employee, "president");
  assert(st.ok());
  st = s.AddReference(out.division, out.company, "belongs");
  assert(st.ok());
  st = s.AddReference(out.division, out.city, "located-in");
  assert(st.ok());
  (void)st;
  return out;
}

std::vector<ClassId> PaperSchema::vehicle_classes() const {
  return {vehicle,     automobile,  compact_automobile, foreign_auto,
          service_auto, truck,      heavy_truck,        light_truck,
          bus,          military_bus, tourist_bus,      passenger_bus};
}

}  // namespace uindex
