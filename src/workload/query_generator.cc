#include "workload/query_generator.h"

#include <algorithm>
#include <cassert>

namespace uindex {

std::vector<size_t> ChooseNearSets(size_t total, size_t m, Random& rng) {
  assert(m >= 1 && m <= total);
  const size_t start = static_cast<size_t>(rng.Uniform(total - m + 1));
  std::vector<size_t> out(m);
  for (size_t i = 0; i < m; ++i) out[i] = start + i;
  return out;
}

std::vector<size_t> ChooseDistantSets(size_t total, size_t m, Random& rng) {
  assert(m >= 1 && m <= total);
  if (m * 2 > total) {
    // Separation impossible: random subset (paper's observation for
    // "30 out of 40").
    std::vector<uint64_t> picks = rng.SampleWithoutReplacement(total, m);
    return std::vector<size_t>(picks.begin(), picks.end());
  }
  // Evenly spaced with a random rotation, then jittered within each slot so
  // consecutive picks never touch.
  const size_t stride = total / m;
  const size_t offset = static_cast<size_t>(rng.Uniform(total));
  std::vector<size_t> out(m);
  for (size_t i = 0; i < m; ++i) {
    const size_t jitter =
        stride > 2 ? static_cast<size_t>(rng.Uniform(stride - 1)) : 0;
    out[i] = (offset + i * stride + jitter) % total;
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  // Collisions via modulo wrap are rare; refill randomly if any.
  while (out.size() < m) {
    const size_t extra = static_cast<size_t>(rng.Uniform(total));
    if (std::find(out.begin(), out.end(), extra) == out.end()) {
      out.push_back(extra);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

SetQuerySpec MakeExactMatchQuery(const SetWorkloadConfig& cfg, size_t m,
                                 bool near, Random& rng) {
  SetQuerySpec q;
  q.lo = q.hi = static_cast<int64_t>(rng.Uniform(cfg.num_distinct_keys));
  q.set_indexes = near ? ChooseNearSets(cfg.num_sets, m, rng)
                       : ChooseDistantSets(cfg.num_sets, m, rng);
  return q;
}

SetQuerySpec MakeRangeQuery(const SetWorkloadConfig& cfg, double fraction,
                            size_t m, bool near, Random& rng) {
  SetQuerySpec q;
  const uint64_t keys = cfg.num_distinct_keys;
  uint64_t span = static_cast<uint64_t>(fraction * static_cast<double>(keys));
  if (span == 0) span = 1;
  if (span > keys) span = keys;
  const uint64_t lo = rng.Uniform(keys - span + 1);
  q.lo = static_cast<int64_t>(lo);
  q.hi = static_cast<int64_t>(lo + span - 1);
  q.set_indexes = near ? ChooseNearSets(cfg.num_sets, m, rng)
                       : ChooseDistantSets(cfg.num_sets, m, rng);
  return q;
}

}  // namespace uindex
