#ifndef UINDEX_WORKLOAD_ROLLUP_GENERATOR_H_
#define UINDEX_WORKLOAD_ROLLUP_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "objects/object_store.h"
#include "schema/encoder.h"
#include "schema/schema.h"
#include "util/status.h"

namespace uindex {

class Database;

/// The indexed attribute every roll-up object carries.
extern const char* const kRollupValueAttr;

/// Parameters of the roll-up workload: two three-level containment
/// ontologies — day ⊑ month ⊑ year and city ⊑ state ⊑ country — encoded as
/// class hierarchies, with fact objects (events / sensor readings) living
/// on the *leaf* classes. A roll-up aggregate at any level ("all events in
/// 1987", "all readings in Utah") is then exactly one Parscan code-range
/// scan over the ancestor's sub-tree — the uniformity claim stretched past
/// the paper's 12-class Fig. 1 hierarchy to thousands of classes.
///
/// The sibling counts are deliberately pushed past `kTailChars` (34) so
/// token assignment crosses the 'Y' → "Z1" and "ZY" → "ZZ1" boundaries:
/// every extended-token ordering bug becomes a wrong roll-up answer here.
struct RollupConfig {
  // Time ontology: day ⊑ month ⊑ year.
  uint32_t years = 40;  ///< > 34 siblings forces Z*-extended tokens.
  uint32_t months_per_year = 12;
  uint32_t days_per_month = 28;  ///< Crosses the Y→Z1 boundary per month.
  // Geo ontology: city ⊑ state ⊑ country.
  uint32_t countries = 4;
  uint32_t states_per_country = 120;  ///< Hundreds of siblings, deep Z*.
  uint32_t cities_per_state = 12;
  uint32_t num_events = 60000;    ///< Facts on day leaves.
  uint32_t num_readings = 60000;  ///< Facts on city leaves.
  int64_t num_distinct_values = 500;
  uint64_t seed = 1996;

  /// Scaled-down preset for smoke runs; still crosses the Y→Z* token
  /// boundary at the year and state levels (36 > 34 siblings).
  static RollupConfig Quick();
};

/// One generated three-level ontology, root → level1 → level2 → leaves.
struct RollupOntology {
  ClassId root = kInvalidClassId;
  std::vector<ClassId> level1;
  std::vector<std::vector<ClassId>> level2;            // [l1][l2]
  std::vector<std::vector<std::vector<ClassId>>> leaves;  // [l1][l2][leaf]
};

/// The generated roll-up database: schema, codes, populated store, and the
/// fact oids per ontology. Non-movable: `store` points into `schema`.
struct RollupWorkload {
  RollupWorkload() = default;
  RollupWorkload(const RollupWorkload&) = delete;
  RollupWorkload& operator=(const RollupWorkload&) = delete;

  Schema schema;
  RollupOntology time;
  RollupOntology geo;
  std::unique_ptr<ClassCoder> coder;
  std::unique_ptr<ObjectStore> store;
  std::vector<Oid> events;    ///< Objects on time leaves.
  std::vector<Oid> readings;  ///< Objects on geo leaves.
};

/// Generates the roll-up database into `*out` (a fresh RollupWorkload):
/// both ontologies, then facts spread uniformly over the leaf classes with
/// uniform values in [0, num_distinct_values).
Status GenerateRollup(const RollupConfig& cfg, RollupWorkload* out);

/// Concrete leaf classes (no subclasses) of the sub-tree rooted at `cls`,
/// in hierarchy preorder — the class sets a per-class baseline (CG-tree,
/// H-tree, NIX) must enumerate to answer a roll-up the U-index answers
/// with one code range.
std::vector<ClassId> LeafClassesUnder(const Schema& schema, ClassId cls);

/// Brute-force roll-up reference answer: sorted oids of instances of
/// `cls`'s sub-tree whose `kRollupValueAttr` lies in [lo, hi].
std::vector<Oid> RollupScan(const ObjectStore& store, ClassId cls,
                            int64_t lo, int64_t hi);

/// The same roll-up database loaded through the `Database` façade (DDL +
/// DML + CreateIndex), for end-to-end runs on either backend under
/// concurrent readers.
struct RollupDbInfo {
  RollupOntology time;
  RollupOntology geo;
  size_t time_index = 0;  ///< Index position of the time-ontology U-index.
  size_t geo_index = 0;   ///< Index position of the geo-ontology U-index.
  std::vector<Oid> events;
  std::vector<Oid> readings;
};

Status LoadRollupIntoDatabase(const RollupConfig& cfg, Database* db,
                              RollupDbInfo* out);

}  // namespace uindex

#endif  // UINDEX_WORKLOAD_ROLLUP_GENERATOR_H_
