#include "workload/path_generator.h"

#include <cmath>
#include <utility>

#include "core/update.h"
#include "db/database.h"
#include "util/random.h"

namespace uindex {

const char* const kPathValueAttr = "Value";

DeepPathConfig DeepPathConfig::Quick() {
  DeepPathConfig cfg;
  cfg.hops = 6;
  cfg.subclasses_per_level = 2;
  cfg.heads = 1500;
  cfg.min_level_objects = 32;
  cfg.num_distinct_values = 120;
  return cfg;
}

namespace {

// Power-law-skewed index into [0, n): u^skew concentrates mass near 0, so
// early-created targets are "popular" and fan out into many chains.
size_t SkewedIndex(Random& rng, size_t n, double skew) {
  const double u =
      static_cast<double>(rng.Next() >> 11) * 0x1.0p-53;  // [0, 1)
  const size_t idx = static_cast<size_t>(std::pow(u, skew) *
                                         static_cast<double>(n));
  return idx >= n ? n - 1 : idx;
}

// Objects at each level: heads at level 0, shrinking geometrically.
std::vector<uint32_t> LevelPopulations(const DeepPathConfig& cfg) {
  std::vector<uint32_t> sizes(cfg.hops);
  double n = static_cast<double>(cfg.heads);
  for (uint32_t i = 0; i < cfg.hops; ++i) {
    sizes[i] = static_cast<uint32_t>(n) < cfg.min_level_objects
                   ? cfg.min_level_objects
                   : static_cast<uint32_t>(n);
    n *= cfg.level_shrink;
  }
  return sizes;
}

std::string LevelName(uint32_t level) {
  return "Hop" + std::to_string(level);
}

}  // namespace

PathSpec DeepPathWorkload::spec() const {
  PathSpec s;
  s.classes = roots;
  s.ref_attrs = ref_attrs;
  s.indexed_attr = kPathValueAttr;
  s.value_kind = Value::Kind::kInt;
  s.include_subclasses = true;
  return s;
}

Status GenerateDeepPaths(const DeepPathConfig& cfg, DeepPathWorkload* out) {
  if (cfg.hops < 3) {
    return Status::InvalidArgument("deep-path workload needs >= 3 hops");
  }
  Schema& schema = out->schema;
  out->roots.resize(cfg.hops);
  out->classes.resize(cfg.hops);
  // Tail-first creation keeps creation order aligned with code order (the
  // façade loader requires it; here it just makes the two layouts match).
  for (uint32_t level = cfg.hops; level-- > 0;) {
    const std::string name = LevelName(level);
    Result<ClassId> root = schema.AddClass(name);
    if (!root.ok()) return root.status();
    out->roots[level] = root.value();
    out->classes[level].push_back(root.value());
    for (uint32_t s = 0; s < cfg.subclasses_per_level; ++s) {
      Result<ClassId> sub =
          schema.AddSubclass(name + "Sub" + std::to_string(s), root.value());
      if (!sub.ok()) return sub.status();
      out->classes[level].push_back(sub.value());
    }
  }
  out->ref_attrs.reserve(cfg.hops - 1);
  for (uint32_t i = 0; i + 1 < cfg.hops; ++i) {
    out->ref_attrs.push_back("hop" + std::to_string(i));
    UINDEX_RETURN_IF_ERROR(schema.AddReference(
        out->roots[i], out->roots[i + 1], out->ref_attrs.back()));
  }

  Result<ClassCoder> coder = ClassCoder::Assign(schema);
  if (!coder.ok()) return coder.status();
  out->coder = std::make_unique<ClassCoder>(std::move(coder).value());
  out->store = std::make_unique<ObjectStore>(&schema);

  Random rng(cfg.seed);
  const std::vector<uint32_t> sizes = LevelPopulations(cfg);
  out->oids.resize(cfg.hops);
  for (uint32_t level = cfg.hops; level-- > 0;) {
    out->oids[level].reserve(sizes[level]);
    for (uint32_t i = 0; i < sizes[level]; ++i) {
      const std::vector<ClassId>& pool = out->classes[level];
      Result<Oid> oid = out->store->Create(pool[rng.Uniform(pool.size())]);
      if (!oid.ok()) return oid.status();
      out->oids[level].push_back(oid.value());
      if (level + 1 == cfg.hops) {
        const int64_t v = static_cast<int64_t>(
            rng.Uniform(static_cast<uint64_t>(cfg.num_distinct_values)));
        UINDEX_RETURN_IF_ERROR(out->store->SetAttr(
            oid.value(), kPathValueAttr, Value::Int(v)));
      } else if (!rng.Bernoulli(cfg.null_ref_fraction)) {
        const std::vector<Oid>& targets = out->oids[level + 1];
        UINDEX_RETURN_IF_ERROR(out->store->SetAttr(
            oid.value(), out->ref_attrs[level],
            Value::Ref(targets[SkewedIndex(rng, targets.size(),
                                           cfg.skew)])));
      }
    }
  }
  return Status::OK();
}

Result<size_t> ChurnRereference(DeepPathWorkload* w, IndexedDatabase* idb,
                                size_t count, uint64_t seed) {
  const size_t hops = w->roots.size();
  if (hops < 3) return Status::InvalidArgument("not a deep-path workload");
  Random rng(seed);
  for (size_t i = 0; i < count; ++i) {
    // Mid-path levels only: never the head (whose entries are cheap) and
    // never the tail (which has no outgoing ref).
    const size_t level = 1 + rng.Uniform(hops - 2);
    const std::vector<Oid>& sources = w->oids[level];
    const std::vector<Oid>& targets = w->oids[level + 1];
    const Oid source = sources[rng.Uniform(sources.size())];
    const Oid target = targets[SkewedIndex(rng, targets.size(), 2.5)];
    UINDEX_RETURN_IF_ERROR(idb->SetAttr(source, w->ref_attrs[level],
                                        Value::Ref(target)));
  }
  return count;
}

Status LoadDeepPathsIntoDatabase(const DeepPathConfig& cfg, Database* db,
                                 DeepPathDbInfo* out) {
  if (cfg.hops < 3) {
    return Status::InvalidArgument("deep-path workload needs >= 3 hops");
  }
  out->roots.resize(cfg.hops);
  out->classes.resize(cfg.hops);
  for (uint32_t level = cfg.hops; level-- > 0;) {
    const std::string name = LevelName(level);
    Result<ClassId> root = db->CreateClass(name);
    if (!root.ok()) return root.status();
    out->roots[level] = root.value();
    out->classes[level].push_back(root.value());
    for (uint32_t s = 0; s < cfg.subclasses_per_level; ++s) {
      Result<ClassId> sub =
          db->CreateSubclass(name + "Sub" + std::to_string(s), root.value());
      if (!sub.ok()) return sub.status();
      out->classes[level].push_back(sub.value());
    }
  }
  out->ref_attrs.reserve(cfg.hops - 1);
  for (uint32_t i = 0; i + 1 < cfg.hops; ++i) {
    out->ref_attrs.push_back("hop" + std::to_string(i));
    UINDEX_RETURN_IF_ERROR(db->CreateReference(
        out->roots[i], out->roots[i + 1], out->ref_attrs.back()));
  }

  Random rng(cfg.seed);
  const std::vector<uint32_t> sizes = LevelPopulations(cfg);
  out->oids.resize(cfg.hops);
  for (uint32_t level = cfg.hops; level-- > 0;) {
    out->oids[level].reserve(sizes[level]);
    for (uint32_t i = 0; i < sizes[level]; ++i) {
      const std::vector<ClassId>& pool = out->classes[level];
      Result<Oid> oid = db->CreateObject(pool[rng.Uniform(pool.size())]);
      if (!oid.ok()) return oid.status();
      out->oids[level].push_back(oid.value());
      if (level + 1 == cfg.hops) {
        const int64_t v = static_cast<int64_t>(
            rng.Uniform(static_cast<uint64_t>(cfg.num_distinct_values)));
        UINDEX_RETURN_IF_ERROR(
            db->SetAttr(oid.value(), kPathValueAttr, Value::Int(v)));
      } else if (!rng.Bernoulli(cfg.null_ref_fraction)) {
        const std::vector<Oid>& targets = out->oids[level + 1];
        UINDEX_RETURN_IF_ERROR(db->SetAttr(
            oid.value(), out->ref_attrs[level],
            Value::Ref(targets[SkewedIndex(rng, targets.size(),
                                           cfg.skew)])));
      }
    }
  }

  PathSpec spec;
  spec.classes = out->roots;
  spec.ref_attrs = out->ref_attrs;
  spec.indexed_attr = kPathValueAttr;
  spec.value_kind = Value::Kind::kInt;
  spec.include_subclasses = true;
  Result<size_t> pos = db->CreateIndex(spec);
  if (!pos.ok()) return pos.status();
  out->index_pos = pos.value();
  return Status::OK();
}

}  // namespace uindex
