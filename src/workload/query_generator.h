#ifndef UINDEX_WORKLOAD_QUERY_GENERATOR_H_
#define UINDEX_WORKLOAD_QUERY_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "util/random.h"
#include "workload/database_generator.h"

namespace uindex {

/// One query of the §5.1 experiments: an inclusive key interval plus the
/// indexes (into the experiment's set list) of the queried sets.
struct SetQuerySpec {
  int64_t lo = 0;
  int64_t hi = 0;
  std::vector<size_t> set_indexes;
};

/// Picks `m` sets *adjacent* in the hierarchy (a consecutive run — adjacent
/// class codes, the paper's "near sets" case).
std::vector<size_t> ChooseNearSets(size_t total, size_t m, Random& rng);

/// Picks `m` sets spread apart ("distant"/non-near). When m*2 > total, true
/// separation is impossible (the paper notes the same) and the choice
/// degenerates to a random subset.
std::vector<size_t> ChooseDistantSets(size_t total, size_t m, Random& rng);

/// An exact-match query on a uniform random key over `m` near/distant sets.
SetQuerySpec MakeExactMatchQuery(const SetWorkloadConfig& cfg, size_t m,
                                 bool near, Random& rng);

/// A range query spanning `fraction` of the keyspace (10%, 2%, 0.5%, 0.2%
/// in the paper) over `m` near/distant sets.
SetQuerySpec MakeRangeQuery(const SetWorkloadConfig& cfg, double fraction,
                            size_t m, bool near, Random& rng);

}  // namespace uindex

#endif  // UINDEX_WORKLOAD_QUERY_GENERATOR_H_
