#ifndef UINDEX_WORKLOAD_DATABASE_GENERATOR_H_
#define UINDEX_WORKLOAD_DATABASE_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "objects/object_store.h"
#include "schema/encoder.h"
#include "util/random.h"
#include "util/status.h"
#include "workload/paper_schema.h"

namespace uindex {

/// Colors used by the Table-1 database. Their alphabetic order matters for
/// range queries ("colors Blue to Red" spans Blue, Green, Red as in §3.3).
extern const char* const kColors[];
extern const size_t kColorCount;

/// Parameters of the paper's first experiment (Table 1): 12,000 vehicle
/// records over the enhanced Fig. 1 schema, with companies and presidents
/// behind them, indexed with a small B-tree node (m = 10 records).
struct PaperDatabaseConfig {
  uint32_t num_vehicles = 12000;
  uint32_t num_companies = 60;
  uint32_t num_employees = 80;
  uint32_t min_age = 20;
  uint32_t max_age = 70;
  uint64_t seed = 1996;
};

/// The generated Table-1 database: schema, codes, and populated store.
/// Non-movable: `store` points into `ids.schema`.
struct PaperDatabase {
  PaperDatabase() = default;
  PaperDatabase(const PaperDatabase&) = delete;
  PaperDatabase& operator=(const PaperDatabase&) = delete;

  PaperSchema ids;
  std::unique_ptr<ClassCoder> coder;
  std::unique_ptr<ObjectStore> store;
};

/// Generates the Table-1 database into `*out` (a fresh PaperDatabase).
/// Vehicles are spread uniformly over the 12 vehicle classes with uniform
/// colors and manufacturers; companies over the company hierarchy with
/// uniform presidents; ages uniform in [min_age, max_age].
Status GeneratePaperDatabase(const PaperDatabaseConfig& cfg,
                             PaperDatabase* out);

/// One posting of the §5.1 class-hierarchy ("multiple sets") experiments.
struct Posting {
  int64_t key = 0;
  size_t set_index = 0;  ///< Index into the experiment's set list.
  Oid oid = kInvalidOid;
};

/// Parameters of the §5.1 experiments: 150,000 4-byte oids spread uniformly
/// over 8 or 40 sets, with 100 / 1,000 / 150,000 (unique) distinct keys,
/// page size 1,024 bytes.
struct SetWorkloadConfig {
  uint32_t num_objects = 150000;
  uint32_t num_sets = 8;
  uint64_t num_distinct_keys = 100;  ///< == num_objects means unique keys.
  uint32_t page_size = 1024;
  uint64_t seed = 0x5EED;

  bool unique_keys() const { return num_distinct_keys >= num_objects; }
};

/// Generates the posting list for a §5.1 experiment. With unique keys every
/// key 0..n-1 appears exactly once (shuffled over sets); otherwise keys are
/// uniform over [0, num_distinct_keys).
std::vector<Posting> GeneratePostings(const SetWorkloadConfig& cfg);

/// The flat "sets" hierarchy used to encode the §5.1 experiments for the
/// U-index: an abstract root with `num_sets` concrete subclasses, so
/// adjacent sets have adjacent class codes (the paper's "near" sets).
struct SetHierarchy {
  Schema schema;
  ClassId root = kInvalidClassId;
  std::vector<ClassId> sets;
  std::unique_ptr<ClassCoder> coder;
};

Result<SetHierarchy> BuildSetHierarchy(uint32_t num_sets);

}  // namespace uindex

#endif  // UINDEX_WORKLOAD_DATABASE_GENERATOR_H_
