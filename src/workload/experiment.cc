#include "workload/experiment.h"

#include <unistd.h>

#include <atomic>

#include "baselines/chtree/chtree.h"
#include "baselines/cgtree/cgtree.h"
#include "baselines/htree/htree.h"
#include "storage/env/env.h"
#include "storage/file_pager.h"

namespace uindex {

namespace {

std::string NextExperimentDataPath(const std::string& dir) {
  static std::atomic<uint64_t> counter{0};
  return dir + "/uindex-exp-" + std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

UIndexSetAdapter::UIndexSetAdapter(BufferManager* buffers,
                                   const SetHierarchy* hierarchy,
                                   BTreeOptions options)
    : hierarchy_(hierarchy),
      spec_(PathSpec::ClassHierarchy(hierarchy->root, "key",
                                     Value::Kind::kInt)),
      index_(buffers, &hierarchy->schema, hierarchy->coder.get(), spec_,
             options) {}

Status UIndexSetAdapter::Insert(const Value& key, ClassId set, Oid oid) {
  UIndex::Entry entry;
  entry.path = {{set, oid}};
  entry.key = index_.key_encoder().EncodeEntry(key, entry.path);
  return index_.InsertEntry(entry);
}

Status UIndexSetAdapter::Remove(const Value& key, ClassId set, Oid oid) {
  UIndex::Entry entry;
  entry.path = {{set, oid}};
  entry.key = index_.key_encoder().EncodeEntry(key, entry.path);
  return index_.RemoveEntry(entry);
}

Query UIndexSetAdapter::BuildQuery(const Value& lo, const Value& hi,
                                   const std::vector<ClassId>& sets) const {
  Query q = Query::Range(lo, hi);
  ClassSelector selector;
  for (const ClassId set : sets) {
    selector.include.push_back({set, /*with_subclasses=*/false});
  }
  q.With(std::move(selector), ValueSlot::Wanted());
  return q;
}

Result<std::vector<Oid>> UIndexSetAdapter::Search(
    const Value& lo, const Value& hi,
    const std::vector<ClassId>& sets) const {
  const Query q = BuildQuery(lo, hi, sets);
  Result<QueryResult> r =
      use_parscan_ ? index_.Parscan(q) : index_.ForwardScan(q);
  if (!r.ok()) return r.status();
  std::vector<Oid> out;
  out.reserve(r.value().rows.size());
  for (const auto& row : r.value().rows) out.push_back(row[0]);
  return out;
}

Result<std::unique_ptr<SetExperiment>> SetExperiment::Create(
    const Options& opts) {
  std::unique_ptr<SetExperiment> exp(new SetExperiment(opts));
  Result<SetHierarchy> hierarchy = BuildSetHierarchy(opts.workload.num_sets);
  if (!hierarchy.ok()) return hierarchy.status();
  exp->hierarchy_ = std::move(hierarchy).value();

  auto add = [&exp, &opts](const std::string& name,
                           auto make) -> Result<SetIndex*> {
    Owned owned;
    owned.name = name;
    if (opts.file_backend) {
      owned.data_path = NextExperimentDataPath(opts.data_dir);
      Result<std::unique_ptr<FilePager>> pager = FilePager::Create(
          Env::Default(), owned.data_path, opts.workload.page_size);
      if (!pager.ok()) return pager.status();
      owned.pager = std::move(pager).value();
    } else {
      owned.pager = std::make_unique<Pager>(opts.workload.page_size);
    }
    owned.buffers = std::make_unique<BufferManager>(
        owned.pager.get(), opts.cache_pages, opts.eviction);
    owned.index = make(owned.buffers.get());
    SetIndex* raw = owned.index.get();
    exp->owned_.push_back(std::move(owned));
    return raw;
  };

  const SetHierarchy* hier = &exp->hierarchy_;
  UINDEX_RETURN_IF_ERROR(
      add("U-index",
          [hier](BufferManager* buffers) {
            return std::make_unique<UIndexSetAdapter>(buffers, hier);
          })
          .status());
  UINDEX_RETURN_IF_ERROR(add("CG-tree",
                             [](BufferManager* buffers) {
                               return std::make_unique<CgTree>(
                                   buffers, Value::Kind::kInt);
                             })
                             .status());
  if (opts.with_chtree) {
    UINDEX_RETURN_IF_ERROR(add("CH-tree",
                               [](BufferManager* buffers) {
                                 return std::make_unique<ChTree>(
                                     buffers, Value::Kind::kInt);
                               })
                               .status());
  }
  if (opts.with_htree) {
    UINDEX_RETURN_IF_ERROR(add("H-tree",
                               [](BufferManager* buffers) {
                                 return std::make_unique<HTree>(
                                     buffers, Value::Kind::kInt);
                               })
                               .status());
  }
  if (opts.with_forward_uindex) {
    Result<SetIndex*> fwd =
        add("U-index(forward)", [hier](BufferManager* buffers) {
          return std::make_unique<UIndexSetAdapter>(buffers, hier);
        });
    if (!fwd.ok()) return fwd.status();
    static_cast<UIndexSetAdapter*>(fwd.value())->set_use_parscan(false);
  }

  // Load the same postings into every structure.
  const std::vector<Posting> postings = GeneratePostings(opts.workload);
  for (Owned& owned : exp->owned_) {
    for (const Posting& p : postings) {
      UINDEX_RETURN_IF_ERROR(owned.index->Insert(
          Value::Int(p.key), exp->hierarchy_.sets[p.set_index], p.oid));
    }
    owned.buffers->ResetStats();
  }

  // Attach background I/O after loading: the structures are read-only from
  // here on, so schedulers need no drain coordination with mutations.
  if (opts.prefetch_threads > 0 && PrefetchScheduler::EnvEnabled()) {
    exp->io_pool_ =
        std::make_unique<exec::ThreadPool>(opts.prefetch_threads);
    for (Owned& owned : exp->owned_) {
      owned.prefetcher = std::make_unique<PrefetchScheduler>(
          owned.buffers.get(), exp->io_pool_.get());
      owned.buffers->SetPrefetcher(owned.prefetcher.get());
    }
  }
  return exp;
}

SetExperiment::~SetExperiment() {
  // Data files are scratch (each run rebuilds them); drop them with the
  // structures. Files must outlive the buffer managers, so only the paths
  // are removed here — the stores close in owned_'s destruction.
  for (Owned& owned : owned_) {
    if (!owned.data_path.empty()) Env::Default()->RemoveFile(owned.data_path);
  }
}

void SetExperiment::SetPrefetchEnabled(bool on) {
  for (Owned& owned : owned_) {
    if (owned.prefetcher == nullptr) continue;
    if (on) {
      owned.buffers->SetPrefetcher(owned.prefetcher.get());
    } else {
      // Detach first so no new demand fetch joins, then let in-flight
      // reads finish; stale staged entries are accounted wasted at the
      // next epoch reset.
      owned.buffers->SetPrefetcher(nullptr);
      owned.prefetcher->Drain();
    }
  }
}

std::vector<SetExperiment::Structure> SetExperiment::structures() {
  std::vector<Structure> out;
  for (Owned& owned : owned_) {
    out.push_back(Structure{owned.name, owned.index.get(),
                            owned.buffers.get()});
  }
  return out;
}

SetQuerySpec SetExperiment::NextQuery(size_t sets_queried, bool near,
                                      double fraction, Random& rng) const {
  if (fraction < 0) {
    return MakeExactMatchQuery(opts_.workload, sets_queried, near, rng);
  }
  return MakeRangeQuery(opts_.workload, fraction, sets_queried, near, rng);
}

Result<double> SetExperiment::Measure(const Structure& structure,
                                      size_t sets_queried, bool near,
                                      double fraction, int reps,
                                      uint64_t seed,
                                      uint64_t* oid_hash) const {
  Random rng(seed);
  uint64_t total_pages = 0;
  uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis.
  auto fold = [&hash](uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (v >> (8 * byte)) & 0xff;
      hash *= 1099511628211ull;  // FNV-1a prime.
    }
  };
  for (int rep = 0; rep < reps; ++rep) {
    const SetQuerySpec q = NextQuery(sets_queried, near, fraction, rng);
    std::vector<ClassId> classes;
    classes.reserve(q.set_indexes.size());
    for (const size_t i : q.set_indexes) {
      classes.push_back(hierarchy_.sets[i]);
    }
    QueryCost cost(structure.buffers);
    Result<std::vector<Oid>> r = structure.index->Search(
        Value::Int(q.lo), Value::Int(q.hi), classes);
    if (!r.ok()) return r.status();
    total_pages += cost.PagesRead();
    if (oid_hash != nullptr) {
      fold(r.value().size());  // Rep boundary: oids can't shift across reps.
      for (const Oid oid : r.value()) fold(oid);
    }
  }
  if (oid_hash != nullptr) *oid_hash = hash;
  return static_cast<double>(total_pages) / reps;
}

Status SetExperiment::CrossCheck(size_t sets_queried, double fraction,
                                 int reps, uint64_t seed) {
  for (int rep = 0; rep < reps; ++rep) {
    Random rng(seed + static_cast<uint64_t>(rep));
    const SetQuerySpec q = NextQuery(sets_queried, /*near=*/rep % 2 == 0,
                                     fraction, rng);
    std::vector<ClassId> classes;
    for (const size_t i : q.set_indexes) {
      classes.push_back(hierarchy_.sets[i]);
    }
    size_t expected = 0;
    bool first = true;
    for (Owned& owned : owned_) {
      owned.buffers->BeginQuery();
      Result<std::vector<Oid>> r = owned.index->Search(
          Value::Int(q.lo), Value::Int(q.hi), classes);
      if (!r.ok()) return r.status();
      if (first) {
        expected = r.value().size();
        first = false;
      } else if (r.value().size() != expected) {
        return Status::Corruption(
            "structure " + owned.name + " returned " +
            std::to_string(r.value().size()) + " oids, expected " +
            std::to_string(expected));
      }
    }
  }
  return Status::OK();
}

}  // namespace uindex
