#include "workload/rollup_generator.h"

#include <algorithm>
#include <string>
#include <utility>

#include "core/index_spec.h"
#include "db/database.h"
#include "util/random.h"

namespace uindex {

const char* const kRollupValueAttr = "Value";

RollupConfig RollupConfig::Quick() {
  RollupConfig cfg;
  cfg.years = 36;  // Still > kTailChars: years 26..35 carry Z* tokens.
  cfg.months_per_year = 6;
  cfg.days_per_month = 8;
  cfg.countries = 3;
  cfg.states_per_country = 36;
  cfg.cities_per_state = 10;
  cfg.num_events = 15000;
  cfg.num_readings = 15000;
  cfg.num_distinct_values = 200;
  return cfg;
}

namespace {

// The per-level sibling counts of one ontology, plus the naming scheme:
// root "Time", then "Year12", "Year12Month3", "Year12Month3Day7".
struct OntologyShape {
  const char* root_name;
  const char* l1_prefix;
  const char* l2_prefix;
  const char* leaf_prefix;
  uint32_t l1_count;
  uint32_t l2_count;
  uint32_t leaf_count;
};

// `AddSubclass` through a declarative three-level loop. Names concatenate
// the ancestor name, so they are unique schema-wide by construction.
template <typename AddRoot, typename AddSub>
Status BuildOntology(const OntologyShape& shape, AddRoot add_root,
                     AddSub add_sub, RollupOntology* out) {
  Result<ClassId> root = add_root(shape.root_name);
  if (!root.ok()) return root.status();
  out->root = root.value();
  out->level1.reserve(shape.l1_count);
  for (uint32_t a = 0; a < shape.l1_count; ++a) {
    const std::string l1_name = shape.l1_prefix + std::to_string(a);
    Result<ClassId> l1 = add_sub(l1_name, out->root);
    if (!l1.ok()) return l1.status();
    out->level1.push_back(l1.value());
    out->level2.emplace_back();
    out->leaves.emplace_back();
    for (uint32_t b = 0; b < shape.l2_count; ++b) {
      const std::string l2_name = l1_name + shape.l2_prefix +
                                  std::to_string(b);
      Result<ClassId> l2 = add_sub(l2_name, out->level1.back());
      if (!l2.ok()) return l2.status();
      out->level2.back().push_back(l2.value());
      out->leaves.back().emplace_back();
      for (uint32_t c = 0; c < shape.leaf_count; ++c) {
        Result<ClassId> leaf =
            add_sub(l2_name + shape.leaf_prefix + std::to_string(c),
                    out->level2.back().back());
        if (!leaf.ok()) return leaf.status();
        out->leaves.back().back().push_back(leaf.value());
      }
    }
  }
  return Status::OK();
}

OntologyShape TimeShape(const RollupConfig& cfg) {
  return {"Time", "Year",    "Month",          "Day",
          cfg.years, cfg.months_per_year, cfg.days_per_month};
}

OntologyShape GeoShape(const RollupConfig& cfg) {
  return {"Geo",        "Country",              "State",
          "City",       cfg.countries,          cfg.states_per_country,
          cfg.cities_per_state};
}

// Flattens an ontology's leaf classes for uniform fact placement.
std::vector<ClassId> AllLeaves(const RollupOntology& o) {
  std::vector<ClassId> out;
  for (const auto& l2 : o.leaves) {
    for (const auto& leaves : l2) {
      out.insert(out.end(), leaves.begin(), leaves.end());
    }
  }
  return out;
}

}  // namespace

Status GenerateRollup(const RollupConfig& cfg, RollupWorkload* out) {
  Schema& schema = out->schema;
  auto add_root = [&schema](const std::string& name) {
    return schema.AddClass(name);
  };
  auto add_sub = [&schema](const std::string& name, ClassId parent) {
    return schema.AddSubclass(name, parent);
  };
  UINDEX_RETURN_IF_ERROR(
      BuildOntology(TimeShape(cfg), add_root, add_sub, &out->time));
  UINDEX_RETURN_IF_ERROR(
      BuildOntology(GeoShape(cfg), add_root, add_sub, &out->geo));

  Result<ClassCoder> coder = ClassCoder::Assign(schema);
  if (!coder.ok()) return coder.status();
  out->coder = std::make_unique<ClassCoder>(std::move(coder).value());
  out->store = std::make_unique<ObjectStore>(&schema);

  Random rng(cfg.seed);
  const std::vector<ClassId> days = AllLeaves(out->time);
  const std::vector<ClassId> cities = AllLeaves(out->geo);
  auto place = [&](const std::vector<ClassId>& leaves, uint32_t count,
                   std::vector<Oid>* oids) -> Status {
    oids->reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      Result<Oid> oid = out->store->Create(leaves[rng.Uniform(leaves.size())]);
      if (!oid.ok()) return oid.status();
      const int64_t v = static_cast<int64_t>(
          rng.Uniform(static_cast<uint64_t>(cfg.num_distinct_values)));
      UINDEX_RETURN_IF_ERROR(
          out->store->SetAttr(oid.value(), kRollupValueAttr, Value::Int(v)));
      oids->push_back(oid.value());
    }
    return Status::OK();
  };
  UINDEX_RETURN_IF_ERROR(place(days, cfg.num_events, &out->events));
  UINDEX_RETURN_IF_ERROR(place(cities, cfg.num_readings, &out->readings));
  return Status::OK();
}

std::vector<ClassId> LeafClassesUnder(const Schema& schema, ClassId cls) {
  std::vector<ClassId> out;
  for (ClassId c : schema.SubtreeOf(cls)) {
    if (schema.SubclassesOf(c).empty()) out.push_back(c);
  }
  return out;
}

std::vector<Oid> RollupScan(const ObjectStore& store, ClassId cls,
                            int64_t lo, int64_t hi) {
  std::vector<Oid> out;
  for (Oid oid : store.DeepExtentOf(cls)) {
    Result<const Object*> obj = store.Get(oid);
    if (!obj.ok()) continue;
    const Value* v = obj.value()->FindAttr(kRollupValueAttr);
    if (v == nullptr || v->kind() != Value::Kind::kInt) continue;
    if (v->AsInt() >= lo && v->AsInt() <= hi) out.push_back(oid);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status LoadRollupIntoDatabase(const RollupConfig& cfg, Database* db,
                              RollupDbInfo* out) {
  auto add_root = [db](const std::string& name) {
    return db->CreateClass(name);
  };
  auto add_sub = [db](const std::string& name, ClassId parent) {
    return db->CreateSubclass(name, parent);
  };
  UINDEX_RETURN_IF_ERROR(
      BuildOntology(TimeShape(cfg), add_root, add_sub, &out->time));
  UINDEX_RETURN_IF_ERROR(
      BuildOntology(GeoShape(cfg), add_root, add_sub, &out->geo));

  Random rng(cfg.seed);
  const std::vector<ClassId> days = AllLeaves(out->time);
  const std::vector<ClassId> cities = AllLeaves(out->geo);
  auto place = [&](const std::vector<ClassId>& leaves, uint32_t count,
                   std::vector<Oid>* oids) -> Status {
    oids->reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      Result<Oid> oid = db->CreateObject(leaves[rng.Uniform(leaves.size())]);
      if (!oid.ok()) return oid.status();
      const int64_t v = static_cast<int64_t>(
          rng.Uniform(static_cast<uint64_t>(cfg.num_distinct_values)));
      UINDEX_RETURN_IF_ERROR(
          db->SetAttr(oid.value(), kRollupValueAttr, Value::Int(v)));
      oids->push_back(oid.value());
    }
    return Status::OK();
  };
  UINDEX_RETURN_IF_ERROR(place(days, cfg.num_events, &out->events));
  UINDEX_RETURN_IF_ERROR(place(cities, cfg.num_readings, &out->readings));

  // Indexes are created after the facts (bulk BuildFrom); later DML then
  // exercises incremental maintenance against them.
  Result<size_t> time_index = db->CreateIndex(PathSpec::ClassHierarchy(
      out->time.root, kRollupValueAttr, Value::Kind::kInt));
  if (!time_index.ok()) return time_index.status();
  out->time_index = time_index.value();
  Result<size_t> geo_index = db->CreateIndex(PathSpec::ClassHierarchy(
      out->geo.root, kRollupValueAttr, Value::Kind::kInt));
  if (!geo_index.ok()) return geo_index.status();
  out->geo_index = geo_index.value();
  return Status::OK();
}

}  // namespace uindex
