#ifndef UINDEX_WORKLOAD_PAPER_SCHEMA_H_
#define UINDEX_WORKLOAD_PAPER_SCHEMA_H_

#include "schema/encoder.h"
#include "schema/schema.h"

namespace uindex {

/// The paper's running example schema (Fig. 1/Fig. 2) with the §5
/// experimental enhancements (Foreign/Service automobiles, Heavy/Light
/// trucks, the Bus sub-hierarchy). Class creation order reproduces the
/// paper's codes exactly: Employee=C1, Company=C2, City=C3, Division=C4,
/// Vehicle=C5, Automobile=C5A, CompactAutomobile=C5AA, ForeignAuto=C5AB,
/// ServiceAuto=C5AC, Truck=C5B, HeavyTruck=C5BA, LightTruck=C5BB, Bus=C5C,
/// MilitaryBus=C5CA, TouristBus=C5CB, PassengerBus=C5CC, AutoCompany=C2A,
/// JapaneseAutoCompany=C2AA, TruckCompany=C2B.
struct PaperSchema {
  Schema schema;

  ClassId employee, company, city, division, vehicle;
  ClassId automobile, compact_automobile, foreign_auto, service_auto;
  ClassId truck, heavy_truck, light_truck;
  ClassId bus, military_bus, tourist_bus, passenger_bus;
  ClassId auto_company, japanese_auto_company, truck_company;

  /// All 12 concrete vehicle-hierarchy classes, preorder.
  std::vector<ClassId> vehicle_classes() const;

  static PaperSchema Build();
};

}  // namespace uindex

#endif  // UINDEX_WORKLOAD_PAPER_SCHEMA_H_
