#ifndef UINDEX_WORKLOAD_PATH_GENERATOR_H_
#define UINDEX_WORKLOAD_PATH_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/index_spec.h"
#include "objects/object_store.h"
#include "schema/encoder.h"
#include "schema/schema.h"
#include "util/status.h"

namespace uindex {

class Database;
class IndexedDatabase;

/// The indexed attribute carried by the tail class of every deep path.
extern const char* const kPathValueAttr;

/// Parameters of the deep-path workload: a reference chain of `hops`
/// hierarchies (head → ... → tail, each a root plus subclasses, linked by
/// single-valued REF attributes "hop0", "hop1", ...), far past the paper's
/// 3-hop Vehicle→Company→Employee example. Object populations shrink
/// geometrically toward the tail (the m:1 "many point at few" shape) and
/// reference targets are power-law skewed, so popular tail objects fan out
/// into many full chains.
struct DeepPathConfig {
  uint32_t hops = 8;  ///< Path positions (classes); ISSUE range is 6–12.
  uint32_t subclasses_per_level = 3;  ///< Structure predicates need these.
  uint32_t heads = 9000;              ///< Objects at the head level.
  double level_shrink = 0.6;  ///< Level i+1 population = level i * shrink.
  uint32_t min_level_objects = 64;
  double skew = 2.5;  ///< Power-law exponent for reference-target choice.
  double null_ref_fraction = 0.03;  ///< Chains broken by an unset ref.
  int64_t num_distinct_values = 400;
  uint64_t seed = 96;

  static DeepPathConfig Quick();
};

/// The generated deep-path database. Non-movable: `store` points into
/// `schema`. All per-level vectors run head (index 0) → tail.
struct DeepPathWorkload {
  DeepPathWorkload() = default;
  DeepPathWorkload(const DeepPathWorkload&) = delete;
  DeepPathWorkload& operator=(const DeepPathWorkload&) = delete;

  Schema schema;
  std::vector<ClassId> roots;  ///< Hierarchy root per level.
  std::vector<std::vector<ClassId>> classes;  ///< Per level: root + subs.
  std::vector<std::string> ref_attrs;  ///< ref_attrs[i]: level i → i+1.
  std::unique_ptr<ClassCoder> coder;
  std::unique_ptr<ObjectStore> store;
  std::vector<std::vector<Oid>> oids;  ///< Per level, creation order.

  /// The full-length combined class-hierarchy/path spec (subclasses
  /// admitted at every position) over the tail's `kPathValueAttr`.
  PathSpec spec() const;
};

/// Generates the deep-path database into `*out` (a fresh DeepPathWorkload).
Status GenerateDeepPaths(const DeepPathConfig& cfg, DeepPathWorkload* out);

/// Mid-path re-reference churn: re-points `count` references at random
/// non-head levels to fresh power-law-skewed targets through the
/// maintainer, so every affected chain's index entries are torn down and
/// rebuilt. Levels are distinct hierarchies, so no churn can close a
/// reference cycle — every call must succeed. Returns the applied count.
Result<size_t> ChurnRereference(DeepPathWorkload* w, IndexedDatabase* idb,
                                size_t count, uint64_t seed);

/// The same deep-path database loaded through the `Database` façade.
/// Levels are created tail-first so every REF edge points at an
/// already-coded (smaller-code) hierarchy, matching the incremental
/// evolution constraint of `CreateReference`.
struct DeepPathDbInfo {
  std::vector<ClassId> roots;  ///< Head → tail, as in DeepPathWorkload.
  std::vector<std::vector<ClassId>> classes;
  std::vector<std::string> ref_attrs;
  std::vector<std::vector<Oid>> oids;
  size_t index_pos = 0;  ///< Position of the full-path U-index.
};

Status LoadDeepPathsIntoDatabase(const DeepPathConfig& cfg, Database* db,
                                 DeepPathDbInfo* out);

}  // namespace uindex

#endif  // UINDEX_WORKLOAD_PATH_GENERATOR_H_
