#ifndef UINDEX_WORKLOAD_EXPERIMENT_H_
#define UINDEX_WORKLOAD_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/set_index.h"
#include "core/uindex.h"
#include "exec/thread_pool.h"
#include "storage/buffer_manager.h"
#include "storage/pager.h"
#include "storage/prefetch.h"
#include "workload/database_generator.h"
#include "workload/query_generator.h"

namespace uindex {

/// Adapts a class-hierarchy `UIndex` to the experiment-facing `SetIndex`
/// interface: a set is one concrete subclass of the flat hierarchy, a
/// search is an attribute-range query whose single component selects the
/// queried classes exactly.
class UIndexSetAdapter : public SetIndex {
 public:
  UIndexSetAdapter(BufferManager* buffers, const SetHierarchy* hierarchy,
                   BTreeOptions options = BTreeOptions());

  Status Insert(const Value& key, ClassId set, Oid oid) override;
  Status Remove(const Value& key, ClassId set, Oid oid) override;
  Result<std::vector<Oid>> Search(
      const Value& lo, const Value& hi,
      const std::vector<ClassId>& sets) const override;
  std::string name() const override {
    return use_parscan_ ? "U-index" : "U-index(forward)";
  }

  /// Selects the retrieval algorithm: Parscan (default, Algorithm 1) or
  /// pure forward scanning (the Table-1 comparison column).
  void set_use_parscan(bool on) { use_parscan_ = on; }

  const UIndex& index() const { return index_; }
  UIndex& index() { return index_; }

 private:
  Query BuildQuery(const Value& lo, const Value& hi,
                   const std::vector<ClassId>& sets) const;

  const SetHierarchy* hierarchy_;
  PathSpec spec_;
  UIndex index_;
  bool use_parscan_ = true;
};

/// A fully built §5.1 experiment: the posting workload loaded into a
/// U-index and a CG-tree (optionally also CH-tree and H-tree), each on its
/// own pager so page reads are attributed per structure.
class SetExperiment {
 public:
  struct Options {
    SetWorkloadConfig workload;
    bool with_chtree = false;
    bool with_htree = false;
    /// Extra U-index variant that retrieves by pure forward scanning.
    bool with_forward_uindex = false;
    /// Workers for a background I/O pool shared by all structures; when
    /// > 0 (and UINDEX_PREFETCH is not off) every structure's buffer
    /// manager gets a PrefetchScheduler, so iterator readahead and Parscan
    /// child prefetch run during `Measure`. 0 (the default) keeps the
    /// harness fully synchronous. Page-read measurements are identical
    /// either way — prefetch only moves wall-clock time.
    size_t prefetch_threads = 0;
    /// Build every structure on a `FilePager` (one data file per
    /// structure, removed on destruction) behind a bounded buffer pool of
    /// `cache_pages` frames (0 → 256) evicting with `eviction` — the
    /// bench_pager configuration. Page-read measurements are identical to
    /// the in-memory default; only real I/O moves.
    bool file_backend = false;
    size_t cache_pages = 0;
    /// Directory the per-structure data files are created in.
    std::string data_dir = "/tmp";
    BufferPool::Eviction eviction = BufferPool::Eviction::kLru;
  };

  /// One measurable structure.
  struct Structure {
    std::string name;
    SetIndex* index = nullptr;
    BufferManager* buffers = nullptr;
  };

  static Result<std::unique_ptr<SetExperiment>> Create(const Options& opts);

  /// Removes the per-structure data files of a file-backend experiment.
  ~SetExperiment();

  const SetWorkloadConfig& config() const { return opts_.workload; }
  const SetHierarchy& hierarchy() const { return hierarchy_; }

  std::vector<Structure> structures();

  /// Average pages read by `structure` over `reps` random queries; exact
  /// match when fraction < 0, else a range covering `fraction` of the
  /// keyspace. The same seed re-generates the same query sequence, letting
  /// callers measure different structures on identical queries. When
  /// `oid_hash` is non-null it receives an FNV-1a digest of every result
  /// row across all reps (rep boundaries included), so two runs answered
  /// byte-identically iff pages AND hash agree.
  Result<double> Measure(const Structure& structure, size_t sets_queried,
                         bool near, double fraction, int reps, uint64_t seed,
                         uint64_t* oid_hash = nullptr) const;

  /// Verifies all structures return the same number of oids on a sample of
  /// queries (used by integration tests).
  Status CrossCheck(size_t sets_queried, double fraction, int reps,
                    uint64_t seed);

  /// Runtime A/B toggle for the prefetch pipeline built by
  /// `Options::prefetch_threads`: detaches (draining first) or re-attaches
  /// every structure's scheduler, so a benchmark can run the identical
  /// query sequence with and without background I/O. No-op when the
  /// pipeline was never built.
  void SetPrefetchEnabled(bool on);

 private:
  explicit SetExperiment(const Options& opts) : opts_(opts) {}

  SetQuerySpec NextQuery(size_t sets_queried, bool near, double fraction,
                         Random& rng) const;

  Options opts_;
  SetHierarchy hierarchy_;

  // Declared before owned_ so the pool outlives every structure's
  // scheduler (each Owned's prefetcher drains and detaches on destruction
  // while its buffers and pager are still alive — members destroy in
  // reverse order).
  std::unique_ptr<exec::ThreadPool> io_pool_;

  struct Owned {
    std::string name;
    std::unique_ptr<PageStore> pager;
    std::unique_ptr<BufferManager> buffers;
    std::unique_ptr<SetIndex> index;
    std::unique_ptr<PrefetchScheduler> prefetcher;  // Null when disabled.
    std::string data_path;  // File backend: this structure's data file.
  };
  std::vector<Owned> owned_;
};

}  // namespace uindex

#endif  // UINDEX_WORKLOAD_EXPERIMENT_H_
