#include "workload/database_generator.h"

namespace uindex {

const char* const kColors[] = {"Black", "Blue",  "Green", "Red",
                               "White", "Yellow"};
const size_t kColorCount = sizeof(kColors) / sizeof(kColors[0]);

namespace {

// The paper generated its 12,000-record database "randomly" without
// publishing the distribution; these weights are calibrated so the
// Table-1 query populations (buses, passenger buses, automobiles,
// compact-or-service automobiles, red/blue/green shares) land in the same
// region as the published node counts (see EXPERIMENTS.md).
constexpr uint32_t kColorWeights[kColorCount] = {130, 150, 120,
                                                 400, 120, 80};

// Weights for the 12 vehicle classes, in PaperSchema::vehicle_classes()
// order: Vehicle, Automobile, Compact, Foreign, Service, Truck, Heavy,
// Light, Bus, Military, Tourist, Passenger.
constexpr uint32_t kVehicleClassWeights[12] = {833, 4, 13, 17, 8, 50,
                                               25,  25, 4,  3,  3, 15};

// Picks an index by weight (weights need not sum to a particular value).
size_t WeightedPick(const uint32_t* weights, size_t n, Random& rng) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) total += weights[i];
  uint64_t r = rng.Uniform(total);
  for (size_t i = 0; i < n; ++i) {
    if (r < weights[i]) return i;
    r -= weights[i];
  }
  return n - 1;
}

}  // namespace

Status GeneratePaperDatabase(const PaperDatabaseConfig& cfg,
                             PaperDatabase* out) {
  PaperDatabase& db = *out;
  db.ids = PaperSchema::Build();
  Result<ClassCoder> coder = ClassCoder::Assign(db.ids.schema);
  if (!coder.ok()) return coder.status();
  db.coder = std::make_unique<ClassCoder>(std::move(coder).value());
  db.store = std::make_unique<ObjectStore>(&db.ids.schema);

  Random rng(cfg.seed);
  ObjectStore& store = *db.store;

  // Employees with ages cycling through the whole [min, max] span so every
  // age (notably the paper's Age=50 query point) has holders.
  std::vector<Oid> employees;
  const uint32_t age_span = cfg.max_age - cfg.min_age + 1;
  for (uint32_t i = 0; i < cfg.num_employees; ++i) {
    Result<Oid> oid = store.Create(db.ids.employee);
    if (!oid.ok()) return oid.status();
    const int64_t age = cfg.min_age + (i * 7) % age_span;
    UINDEX_RETURN_IF_ERROR(
        store.SetAttr(oid.value(), "Age", Value::Int(age)));
    employees.push_back(oid.value());
  }

  // Companies spread over the company hierarchy, each with a president.
  const ClassId company_classes[] = {db.ids.company, db.ids.auto_company,
                                     db.ids.japanese_auto_company,
                                     db.ids.truck_company};
  std::vector<Oid> companies;
  for (uint32_t i = 0; i < cfg.num_companies; ++i) {
    const ClassId cls = company_classes[rng.Uniform(4)];
    Result<Oid> oid = store.Create(cls);
    if (!oid.ok()) return oid.status();
    // Round-robin presidents: every employee age that fits gets a company,
    // so exact-age path queries (Table 1, query 5a) have answers.
    UINDEX_RETURN_IF_ERROR(store.SetAttr(
        oid.value(), "president",
        Value::Ref(employees[i % employees.size()])));
    companies.push_back(oid.value());
  }

  // Vehicles over the 12 vehicle classes and colors, weighted as above.
  const std::vector<ClassId> vehicle_classes = db.ids.vehicle_classes();
  for (uint32_t i = 0; i < cfg.num_vehicles; ++i) {
    const ClassId cls =
        vehicle_classes[WeightedPick(kVehicleClassWeights, 12, rng)];
    Result<Oid> oid = store.Create(cls);
    if (!oid.ok()) return oid.status();
    UINDEX_RETURN_IF_ERROR(store.SetAttr(
        oid.value(), "Color",
        Value::Str(kColors[WeightedPick(kColorWeights, kColorCount, rng)])));
    UINDEX_RETURN_IF_ERROR(store.SetAttr(
        oid.value(), "manufactured-by",
        Value::Ref(companies[rng.Uniform(companies.size())])));
  }
  return Status::OK();
}

std::vector<Posting> GeneratePostings(const SetWorkloadConfig& cfg) {
  Random rng(cfg.seed);
  std::vector<Posting> postings(cfg.num_objects);
  if (cfg.unique_keys()) {
    // Exactly one record per key value: a shuffled permutation of 0..n-1.
    std::vector<uint64_t> keys(cfg.num_objects);
    for (uint32_t i = 0; i < cfg.num_objects; ++i) keys[i] = i;
    rng.Shuffle(keys);
    for (uint32_t i = 0; i < cfg.num_objects; ++i) {
      postings[i].key = static_cast<int64_t>(keys[i]);
    }
  } else {
    for (uint32_t i = 0; i < cfg.num_objects; ++i) {
      postings[i].key =
          static_cast<int64_t>(rng.Uniform(cfg.num_distinct_keys));
    }
  }
  for (uint32_t i = 0; i < cfg.num_objects; ++i) {
    postings[i].set_index = static_cast<size_t>(rng.Uniform(cfg.num_sets));
    postings[i].oid = static_cast<Oid>(i + 1);
  }
  return postings;
}

Result<SetHierarchy> BuildSetHierarchy(uint32_t num_sets) {
  SetHierarchy out;
  Result<ClassId> root = out.schema.AddClass("Root");
  if (!root.ok()) return root.status();
  out.root = root.value();
  for (uint32_t i = 0; i < num_sets; ++i) {
    Result<ClassId> cls =
        out.schema.AddSubclass("Set" + std::to_string(i), out.root);
    if (!cls.ok()) return cls.status();
    out.sets.push_back(cls.value());
  }
  Result<ClassCoder> coder = ClassCoder::Assign(out.schema);
  if (!coder.ok()) return coder.status();
  out.coder = std::make_unique<ClassCoder>(std::move(coder).value());
  return out;
}

}  // namespace uindex
