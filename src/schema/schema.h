#ifndef UINDEX_SCHEMA_SCHEMA_H_
#define UINDEX_SCHEMA_SCHEMA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace uindex {

/// Identifier of a class within a `Schema`.
using ClassId = uint32_t;

constexpr ClassId kInvalidClassId = 0xFFFFFFFF;

/// A reference (REF) attribute: objects of `source` hold the oid of an
/// object of `target` under attribute `attribute` — an m:1 relationship
/// pointing from the "many" side to the "one" side (paper §2). When
/// `multi_valued` is true the attribute holds a *set* of oids instead
/// (the m:n case discussed in §4.3).
struct RefEdge {
  ClassId source = kInvalidClassId;
  ClassId target = kInvalidClassId;
  std::string attribute;
  bool multi_valued = false;
};

/// An OODB schema: classes, a single-inheritance "is-a" forest (SUP edges),
/// and named REF relationships.
///
/// This models the paper's running example (Fig. 1/Fig. 2): `Vehicle SUP
/// Automobile`, `Vehicle REF Company` via "manufactured-by", and so on.
/// Class-hierarchy indexes are built over SUP sub-trees; path indexes are
/// built along chains of REF edges.
class Schema {
 public:
  Schema() = default;

  /// Registers a new root class. Fails with AlreadyExists on a duplicate
  /// name.
  Result<ClassId> AddClass(const std::string& name);

  /// Registers a new class as a subclass of `parent`.
  Result<ClassId> AddSubclass(const std::string& name, ClassId parent);

  /// Declares `attribute` of `source` to reference objects of `target`.
  Status AddReference(ClassId source, ClassId target,
                      const std::string& attribute,
                      bool multi_valued = false);

  size_t class_count() const { return names_.size(); }
  bool IsValidClass(ClassId id) const { return id < names_.size(); }

  const std::string& NameOf(ClassId id) const { return names_[id]; }
  Result<ClassId> FindClass(const std::string& name) const;

  /// Parent in the is-a forest, or kInvalidClassId for hierarchy roots.
  ClassId SuperclassOf(ClassId id) const { return supers_[id]; }
  const std::vector<ClassId>& SubclassesOf(ClassId id) const {
    return subs_[id];
  }

  /// True if `cls` equals `ancestor` or lies below it in the is-a forest.
  bool IsSubclassOf(ClassId cls, ClassId ancestor) const;

  /// Root of the hierarchy containing `cls`.
  ClassId HierarchyRootOf(ClassId cls) const;

  /// The classes of the sub-tree rooted at `root`, in preorder (the order
  /// the U-index clusters them in).
  std::vector<ClassId> SubtreeOf(ClassId root) const;

  /// All hierarchy roots, in creation order.
  std::vector<ClassId> HierarchyRoots() const;

  const std::vector<RefEdge>& references() const { return refs_; }

  /// The REF edge leaving `source` (or any of its superclasses) under
  /// `attribute`, or NotFound.
  Result<RefEdge> FindReference(ClassId source,
                                const std::string& attribute) const;

  /// Checks that REF edges impose no cycle between hierarchy roots (the
  /// paper's precondition for a valid encoding, §4.3) and returns the
  /// hierarchy roots in a REF-respecting topological order: if X REF Y,
  /// then root(Y) precedes root(X), so referenced classes get smaller
  /// codes. Edges listed in `ignored_edges` (by index into `references()`)
  /// are skipped — this is the paper's cycle-breaking device of encoding a
  /// class "in duplicate names" in a separate index graph.
  Result<std::vector<ClassId>> TopologicalRootOrder(
      const std::vector<size_t>& ignored_edges = {}) const;

  /// Finds a minimal set of REF-edge indexes whose removal makes the root
  /// graph acyclic (greedy back-edge elimination). Empty when the schema is
  /// already acyclic.
  std::vector<size_t> FindCycleBreakingEdges() const;

 private:
  std::vector<std::string> names_;
  std::vector<ClassId> supers_;
  std::vector<std::vector<ClassId>> subs_;
  std::unordered_map<std::string, ClassId> by_name_;
  std::vector<RefEdge> refs_;
};

}  // namespace uindex

#endif  // UINDEX_SCHEMA_SCHEMA_H_
