#include "schema/schema.h"

#include <algorithm>
#include <queue>

namespace uindex {

Result<ClassId> Schema::AddClass(const std::string& name) {
  if (by_name_.count(name) != 0) {
    return Status::AlreadyExists("class " + name);
  }
  const ClassId id = static_cast<ClassId>(names_.size());
  names_.push_back(name);
  supers_.push_back(kInvalidClassId);
  subs_.emplace_back();
  by_name_[name] = id;
  return id;
}

Result<ClassId> Schema::AddSubclass(const std::string& name, ClassId parent) {
  if (!IsValidClass(parent)) {
    return Status::InvalidArgument("bad parent class id");
  }
  Result<ClassId> r = AddClass(name);
  if (!r.ok()) return r;
  const ClassId id = r.value();
  supers_[id] = parent;
  subs_[parent].push_back(id);
  return id;
}

Status Schema::AddReference(ClassId source, ClassId target,
                            const std::string& attribute, bool multi_valued) {
  if (!IsValidClass(source) || !IsValidClass(target)) {
    return Status::InvalidArgument("bad class id in reference");
  }
  for (const RefEdge& e : refs_) {
    if (e.source == source && e.attribute == attribute) {
      return Status::AlreadyExists("reference " + names_[source] + "." +
                                   attribute);
    }
  }
  refs_.push_back(RefEdge{source, target, attribute, multi_valued});
  return Status::OK();
}

Result<ClassId> Schema::FindClass(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return Status::NotFound("class " + name);
  return it->second;
}

bool Schema::IsSubclassOf(ClassId cls, ClassId ancestor) const {
  while (cls != kInvalidClassId) {
    if (cls == ancestor) return true;
    cls = supers_[cls];
  }
  return false;
}

ClassId Schema::HierarchyRootOf(ClassId cls) const {
  while (supers_[cls] != kInvalidClassId) cls = supers_[cls];
  return cls;
}

std::vector<ClassId> Schema::SubtreeOf(ClassId root) const {
  std::vector<ClassId> out;
  std::vector<ClassId> stack = {root};
  while (!stack.empty()) {
    const ClassId cls = stack.back();
    stack.pop_back();
    out.push_back(cls);
    // Push children in reverse so preorder visits them in creation order.
    const auto& kids = subs_[cls];
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

std::vector<ClassId> Schema::HierarchyRoots() const {
  std::vector<ClassId> roots;
  for (ClassId id = 0; id < names_.size(); ++id) {
    if (supers_[id] == kInvalidClassId) roots.push_back(id);
  }
  return roots;
}

Result<RefEdge> Schema::FindReference(ClassId source,
                                      const std::string& attribute) const {
  // An attribute declared on a superclass is inherited by subclasses.
  for (ClassId cls = source; cls != kInvalidClassId; cls = supers_[cls]) {
    for (const RefEdge& e : refs_) {
      if (e.source == cls && e.attribute == attribute) return e;
    }
  }
  return Status::NotFound("reference " + names_[source] + "." + attribute);
}

Result<std::vector<ClassId>> Schema::TopologicalRootOrder(
    const std::vector<size_t>& ignored_edges) const {
  const std::vector<ClassId> roots = HierarchyRoots();
  std::unordered_map<ClassId, size_t> root_index;
  for (size_t i = 0; i < roots.size(); ++i) root_index[roots[i]] = i;

  // adj[u] lists root indexes that must come after u; Kahn's algorithm with
  // a smallest-first tie-break keeps the order stable (creation order).
  std::vector<std::vector<size_t>> adj(roots.size());
  std::vector<size_t> indegree(roots.size(), 0);
  for (size_t e = 0; e < refs_.size(); ++e) {
    if (std::find(ignored_edges.begin(), ignored_edges.end(), e) !=
        ignored_edges.end()) {
      continue;
    }
    const size_t from = root_index.at(HierarchyRootOf(refs_[e].target));
    const size_t to = root_index.at(HierarchyRootOf(refs_[e].source));
    if (from == to) {
      return Status::InvalidArgument(
          "REF edge " + names_[refs_[e].source] + "." + refs_[e].attribute +
          " stays within one hierarchy; break the cycle first (see "
          "FindCycleBreakingEdges)");
    }
    adj[from].push_back(to);
    ++indegree[to];
  }

  std::priority_queue<size_t, std::vector<size_t>, std::greater<>> ready;
  for (size_t i = 0; i < roots.size(); ++i) {
    if (indegree[i] == 0) ready.push(i);
  }
  std::vector<ClassId> order;
  order.reserve(roots.size());
  while (!ready.empty()) {
    const size_t u = ready.top();
    ready.pop();
    order.push_back(roots[u]);
    for (size_t v : adj[u]) {
      if (--indegree[v] == 0) ready.push(v);
    }
  }
  if (order.size() != roots.size()) {
    return Status::InvalidArgument(
        "REF relationships form a cycle between hierarchies; break it with "
        "FindCycleBreakingEdges and encode the offenders separately");
  }
  return order;
}

std::vector<size_t> Schema::FindCycleBreakingEdges() const {
  // Greedy: keep admitting edges; an edge is dropped if it would close a
  // cycle in the admitted-edge graph (checked by reachability).
  const std::vector<ClassId> roots = HierarchyRoots();
  std::unordered_map<ClassId, size_t> root_index;
  for (size_t i = 0; i < roots.size(); ++i) root_index[roots[i]] = i;

  std::vector<std::vector<size_t>> adj(roots.size());
  std::vector<size_t> dropped;

  auto reaches = [&adj](size_t from, size_t to) {
    std::vector<size_t> stack = {from};
    std::vector<bool> seen(adj.size(), false);
    while (!stack.empty()) {
      const size_t u = stack.back();
      stack.pop_back();
      if (u == to) return true;
      if (seen[u]) continue;
      seen[u] = true;
      for (size_t v : adj[u]) stack.push_back(v);
    }
    return false;
  };

  for (size_t e = 0; e < refs_.size(); ++e) {
    const size_t from = root_index.at(HierarchyRootOf(refs_[e].target));
    const size_t to = root_index.at(HierarchyRootOf(refs_[e].source));
    if (from == to || reaches(to, from)) {
      dropped.push_back(e);
    } else {
      adj[from].push_back(to);
    }
  }
  return dropped;
}

}  // namespace uindex
