#include "schema/class_code.h"

#include <cassert>
#include <cstdint>

namespace uindex {

namespace {

// Non-'Z' token tail characters, in lexicographic order.
constexpr char kTailChars[] = "123456789ABCDEFGHIJKLMNOPQRSTUVWXY";
constexpr size_t kTailCount = sizeof(kTailChars) - 1;  // 34

bool IsTailChar(char c) {
  return (c >= '1' && c <= '9') || (c >= 'A' && c <= 'Y');
}

}  // namespace

std::string TokenForIndex(size_t index) {
  std::string token(index / kTailCount, 'Z');
  token.push_back(kTailChars[index % kTailCount]);
  return token;
}

size_t IndexForToken(const Slice& token) {
  if (token.empty()) return SIZE_MAX;
  size_t z = 0;
  while (z < token.size() && token[z] == 'Z') ++z;
  if (z + 1 != token.size() || !IsTailChar(token[z])) return SIZE_MAX;
  const char tail = token[z];
  const size_t tail_index = tail <= '9'
                                ? static_cast<size_t>(tail - '1')
                                : 9 + static_cast<size_t>(tail - 'A');
  return z * kTailCount + tail_index;
}

size_t FirstTokenLength(const Slice& code) {
  size_t i = 0;
  while (i < code.size() && code[i] == 'Z') ++i;
  if (i < code.size() && IsTailChar(code[i])) return i + 1;
  return 0;
}

bool CodeIsSelfOrDescendant(const Slice& code, const Slice& ancestor) {
  return code.StartsWith(ancestor);
}

std::string SubtreeUpperBound(const Slice& code) {
  assert(!code.empty());
  std::string bound = code.ToString();
  // Token characters are all below 0x7F, so the increment never wraps.
  ++bound.back();
  return bound;
}

}  // namespace uindex
