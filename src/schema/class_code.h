#ifndef UINDEX_SCHEMA_CLASS_CODE_H_
#define UINDEX_SCHEMA_CLASS_CODE_H_

#include <cstddef>
#include <string>

#include "util/slice.h"

namespace uindex {

/// Tokens for class codes (the paper's `COD` relation, §3).
///
/// A class code is a concatenation of tokens: one token per level of the
/// is-a hierarchy, prefixed by a leading 'C' (`Vehicle → C5`,
/// `Automobile → C5A`, `CompactAutomobile → C5AA`). Tokens come from the
/// sequence "1".."9", "A".."Y", "Z1".."Z9", "ZA".."ZY", "ZZ1", ... which is
///   * unbounded (the paper: "the limit on the number of distinct letters
///     in the alphabet ... is not a real problem"),
///   * lexicographically increasing with its index, and
///   * uniquely decodable (every token is Z* followed by one non-Z
///     character), so no token — and hence no class code — is a prefix of a
///     *sibling's* code; prefix-ness coincides exactly with is-a descent.
///
/// The '$' separator used between a code and an oid in index keys sorts
/// below every token character ('$' = 0x24 < '1' = 0x31 < 'A' = 0x41),
/// which gives the paper's clustering: all entries of class C precede the
/// entries of C's first subclass.
constexpr char kCodeOidSeparator = '$';

/// The i-th token (0-based) in the token sequence above.
std::string TokenForIndex(size_t index);

/// Inverse of TokenForIndex: the sequence index of a well-formed token, or
/// SIZE_MAX for malformed input.
size_t IndexForToken(const Slice& token);

/// Number of leading bytes of `code` forming its first token, or 0 if the
/// bytes do not start with a well-formed token.
size_t FirstTokenLength(const Slice& code);

/// True if `code` denotes `ancestor` itself or a descendant of it (i.e.
/// `ancestor`'s token sequence is a prefix of `code`'s). Because tokens are
/// uniquely decodable this is plain byte-prefix testing.
bool CodeIsSelfOrDescendant(const Slice& code, const Slice& ancestor);

/// The exclusive upper bound of the code range covering `code` and all of
/// its descendants: `code` with its last byte incremented. Every string in
/// [code, bound) starts with `code`.
std::string SubtreeUpperBound(const Slice& code);

}  // namespace uindex

#endif  // UINDEX_SCHEMA_CLASS_CODE_H_
