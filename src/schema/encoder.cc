#include "schema/encoder.h"

#include <algorithm>
#include <cassert>
#include <cstdint>

namespace uindex {

Result<ClassCoder> ClassCoder::Assign(
    const Schema& schema, const std::vector<size_t>& ignored_edges) {
  Result<std::vector<ClassId>> order =
      schema.TopologicalRootOrder(ignored_edges);
  if (!order.ok()) return order.status();

  ClassCoder coder;
  for (const ClassId root : order.value()) {
    std::string root_code = "C";
    root_code += TokenForIndex(coder.next_root_index_++);
    // Preorder DFS assigns child tokens in declaration order, giving the
    // paper's C5 / C5A / C5AA / C5B layout.
    struct Frame {
      ClassId cls;
      std::string code;
    };
    std::vector<Frame> stack = {{root, root_code}};
    while (!stack.empty()) {
      Frame frame = std::move(stack.back());
      stack.pop_back();
      coder.code_of_[frame.cls] = frame.code;
      coder.class_of_[frame.code] = frame.cls;
      const auto& kids = schema.SubclassesOf(frame.cls);
      // Tokens are handed out in declaration order; push in reverse so the
      // stack pops them in order (cosmetic — codes are order-correct either
      // way).
      for (size_t i = kids.size(); i > 0; --i) {
        stack.push_back(
            {kids[i - 1], frame.code + TokenForIndex(9 + (i - 1))});
        coder.next_child_index_[frame.cls] = kids.size();
      }
    }
  }
  return coder;
}

Result<ClassCoder> ClassCoder::FromAssignments(
    const std::vector<std::pair<ClassId, std::string>>& assignments) {
  ClassCoder coder;
  for (const auto& [cls, code] : assignments) {
    if (code.size() < 2 || code[0] != 'C') {
      return Status::InvalidArgument("malformed class code: " + code);
    }
    if (coder.code_of_.count(cls) != 0 ||
        coder.class_of_.count(code) != 0) {
      return Status::InvalidArgument("duplicate assignment: " + code);
    }
    coder.code_of_[cls] = code;
    coder.class_of_[code] = cls;
  }
  // Recover allocation state: for every code, its last token bumps the
  // parent's next-child counter (or the root counter).
  for (const auto& [cls, code] : coder.code_of_) {
    (void)cls;
    // Split off the last token: walk tokens from position 1 (after 'C').
    size_t pos = 1;
    size_t last_start = 1;
    while (pos < code.size()) {
      const size_t len =
          FirstTokenLength(Slice(code.data() + pos, code.size() - pos));
      if (len == 0) {
        return Status::InvalidArgument("undecodable class code: " + code);
      }
      last_start = pos;
      pos += len;
    }
    const Slice last_token(code.data() + last_start,
                           code.size() - last_start);
    const size_t token_index = IndexForToken(last_token);
    if (token_index == SIZE_MAX) {
      return Status::InvalidArgument("bad token in class code: " + code);
    }
    if (last_start == 1) {
      coder.next_root_index_ =
          std::max(coder.next_root_index_, token_index + 1);
    } else {
      const std::string parent_code = code.substr(0, last_start);
      auto parent = coder.class_of_.find(parent_code);
      if (parent == coder.class_of_.end()) {
        return Status::InvalidArgument("orphan class code: " + code);
      }
      // Child tokens start at index 9 ("A").
      if (token_index < 9) {
        return Status::InvalidArgument("non-child token in code: " + code);
      }
      size_t& next = coder.next_child_index_[parent->second];
      next = std::max(next, token_index - 9 + 1);
    }
  }
  return coder;
}

const std::string& ClassCoder::CodeOf(ClassId cls) const {
  auto it = code_of_.find(cls);
  assert(it != code_of_.end() && "class has no code; call AssignNewClass");
  return it->second;
}

Result<ClassId> ClassCoder::ClassOf(const Slice& code) const {
  auto it = class_of_.find(code.ToString());
  if (it == class_of_.end()) {
    return Status::NotFound("code " + code.ToString());
  }
  return it->second;
}

bool ClassCoder::HasCode(ClassId cls) const {
  return code_of_.count(cls) != 0;
}

std::string ClassCoder::SubtreeUpperBoundOf(ClassId cls) const {
  return SubtreeUpperBound(Slice(CodeOf(cls)));
}

std::string ClassCoder::NextChildToken(ClassId parent) {
  // Child tokens start at index 9 ("A"), matching the paper's letters.
  const size_t index = next_child_index_[parent]++;
  return TokenForIndex(9 + index);
}

Status ClassCoder::AssignNewClass(const Schema& schema, ClassId cls) {
  if (HasCode(cls)) {
    return Status::AlreadyExists("class already coded: " +
                                 schema.NameOf(cls));
  }
  const ClassId parent = schema.SuperclassOf(cls);
  std::string code;
  if (parent == kInvalidClassId) {
    // New hierarchy: appended after all existing roots (paper Fig. 4b). If
    // new REF edges require it to sort earlier, Verify will flag the need
    // for a re-encode.
    code = "C";
    code += TokenForIndex(next_root_index_++);
  } else {
    if (!HasCode(parent)) {
      return Status::InvalidArgument("parent not coded yet: " +
                                     schema.NameOf(parent));
    }
    code = code_of_[parent] + NextChildToken(parent);
  }
  code_of_[cls] = code;
  class_of_[code] = cls;
  return Status::OK();
}

Status ClassCoder::Verify(const Schema& schema,
                          const std::vector<size_t>& ignored_edges) const {
  // Every class must be coded.
  for (ClassId cls = 0; cls < schema.class_count(); ++cls) {
    if (code_of_.count(cls) == 0) {
      return Status::InvalidArgument("class not coded: " +
                                     schema.NameOf(cls));
    }
  }
  // Hierarchy: a subclass's code must extend its parent's code.
  for (ClassId cls = 0; cls < schema.class_count(); ++cls) {
    const ClassId parent = schema.SuperclassOf(cls);
    if (parent == kInvalidClassId) continue;
    if (!CodeIsSelfOrDescendant(Slice(code_of_.at(cls)),
                                Slice(code_of_.at(parent)))) {
      return Status::InvalidArgument("code of " + schema.NameOf(cls) +
                                     " does not extend its superclass");
    }
  }
  // REF: referenced hierarchy sorts strictly before the referencing one.
  const auto& refs = schema.references();
  for (size_t e = 0; e < refs.size(); ++e) {
    bool ignored = false;
    for (size_t ig : ignored_edges) ignored = ignored || ig == e;
    if (ignored) continue;
    const std::string& target_root =
        code_of_.at(schema.HierarchyRootOf(refs[e].target));
    const std::string& source_root =
        code_of_.at(schema.HierarchyRootOf(refs[e].source));
    if (!(Slice(target_root) < Slice(source_root))) {
      return Status::InvalidArgument(
          "REF " + schema.NameOf(refs[e].source) + "." + refs[e].attribute +
          " violates code order; re-encode required");
    }
  }
  return Status::OK();
}

}  // namespace uindex
