#ifndef UINDEX_SCHEMA_ENCODER_H_
#define UINDEX_SCHEMA_ENCODER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "schema/class_code.h"
#include "schema/schema.h"
#include "util/slice.h"
#include "util/status.h"

namespace uindex {

/// The `COD` relation of the paper: a bijection between classes and codes
/// whose lexicographic order matches (a) a REF-respecting topological order
/// of hierarchy roots and (b) preorder within each is-a hierarchy.
///
/// Build one with `Assign` over a whole schema; evolve it with
/// `AssignNewClass` as classes are added (paper Fig. 4). If later schema
/// changes (new REF edges) invalidate the order, `Verify` reports it and the
/// index must be re-encoded — the documented trade-off of the scheme.
class ClassCoder {
 public:
  /// An empty coder; fill it via Assign/FromAssignments (assignment) or
  /// AssignNewClass.
  ClassCoder() = default;

  /// Codes every class in `schema`. REF edges at indexes in `ignored_edges`
  /// are excluded from the ordering constraints (cycle breaking, §4.3).
  static Result<ClassCoder> Assign(const Schema& schema,
                                   const std::vector<size_t>& ignored_edges =
                                       {});

  /// Rebuilds a coder from persisted (class, code) assignments (e.g. a
  /// SchemaCatalog load). Token allocation state is recovered so
  /// AssignNewClass continues where the persisted coder left off.
  static Result<ClassCoder> FromAssignments(
      const std::vector<std::pair<ClassId, std::string>>& assignments);

  /// Code of a class. The class must have been assigned.
  const std::string& CodeOf(ClassId cls) const;

  /// Class owning exactly `code`, or NotFound.
  Result<ClassId> ClassOf(const Slice& code) const;

  bool HasCode(ClassId cls) const;

  /// Exclusive upper bound of the code range of `cls` and its descendants.
  std::string SubtreeUpperBoundOf(ClassId cls) const;

  /// Assigns a code to a class added to `schema` after this coder was
  /// built: a subclass extends its parent's code with the next free child
  /// token; a new hierarchy root is appended after all existing roots.
  Status AssignNewClass(const Schema& schema, ClassId cls);

  /// Re-checks that the code order still satisfies every (non-ignored) REF
  /// constraint of `schema`; failure means a re-encode is required.
  Status Verify(const Schema& schema,
                const std::vector<size_t>& ignored_edges = {}) const;

  /// Number of coded classes.
  size_t size() const { return code_of_.size(); }

 private:
  std::string NextChildToken(ClassId parent);

  std::unordered_map<ClassId, std::string> code_of_;
  std::unordered_map<std::string, ClassId> class_of_;
  std::unordered_map<ClassId, size_t> next_child_index_;
  size_t next_root_index_ = 0;
};

}  // namespace uindex

#endif  // UINDEX_SCHEMA_ENCODER_H_
