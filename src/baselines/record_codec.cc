#include "baselines/record_codec.h"

#include "storage/overflow.h"
#include "util/coding.h"

namespace uindex {

namespace {
constexpr char kInlineTag = 0x01;
constexpr char kSpilledTag = 0x02;
}  // namespace

Result<std::string> RecordCodec::Store(BufferManager* buffers,
                                       const Slice& payload,
                                       uint32_t inline_limit) {
  std::string out;
  if (payload.size() <= inline_limit) {
    out.push_back(kInlineTag);
    out.append(payload.data(), payload.size());
    return out;
  }
  Result<PageId> head = OverflowChain::Write(buffers, payload);
  if (!head.ok()) return head.status();
  out.push_back(kSpilledTag);
  PutFixed32(&out, head.value());
  return out;
}

Result<std::string> RecordCodec::Load(BufferManager* buffers,
                                      const Slice& stored) {
  if (stored.empty()) return Status::Corruption("empty record");
  if (stored[0] == kInlineTag) {
    return std::string(stored.data() + 1, stored.size() - 1);
  }
  if (stored[0] == kSpilledTag && stored.size() == 5) {
    return OverflowChain::Read(buffers, DecodeFixed32(stored.data() + 1));
  }
  return Status::Corruption("bad record tag");
}

Status RecordCodec::Free(BufferManager* buffers, const Slice& stored) {
  if (stored.empty()) return Status::Corruption("empty record");
  if (stored[0] == kSpilledTag && stored.size() == 5) {
    return OverflowChain::Free(buffers, DecodeFixed32(stored.data() + 1));
  }
  return Status::OK();
}

}  // namespace uindex
