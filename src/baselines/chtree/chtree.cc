#include "baselines/chtree/chtree.h"

#include <algorithm>

#include "baselines/record_codec.h"
#include "core/key_encoding.h"
#include "util/coding.h"

namespace uindex {

ChTree::ChTree(BufferManager* buffers, Value::Kind kind, BTreeOptions options)
    : buffers_(buffers),
      kind_(kind),
      tree_(buffers, options),
      inline_limit_(buffers->page_size() / 4) {}

std::string ChTree::EncodeKey(const Value& v) const {
  std::string out;
  v.AppendOrderPreserving(&out);
  if (kind_ == Value::Kind::kString) out.push_back('\0');
  return out;
}

std::string ChTree::EncodeDirectory(
    const std::vector<std::pair<ClassId, std::vector<Oid>>>& dir) {
  std::string out;
  for (const auto& [cls, oids] : dir) {
    PutFixed32(&out, cls);
    PutFixed32(&out, static_cast<uint32_t>(oids.size()));
    for (const Oid oid : oids) PutFixed32(&out, oid);
  }
  return out;
}

Result<std::vector<std::pair<ClassId, std::vector<Oid>>>>
ChTree::DecodeDirectory(const Slice& bytes) {
  std::vector<std::pair<ClassId, std::vector<Oid>>> dir;
  size_t pos = 0;
  while (pos < bytes.size()) {
    if (pos + 8 > bytes.size()) return Status::Corruption("bad directory");
    const ClassId cls = DecodeFixed32(bytes.data() + pos);
    const uint32_t count = DecodeFixed32(bytes.data() + pos + 4);
    pos += 8;
    if (pos + 4ull * count > bytes.size()) {
      return Status::Corruption("bad directory length");
    }
    std::vector<Oid> oids(count);
    for (uint32_t i = 0; i < count; ++i) {
      oids[i] = DecodeFixed32(bytes.data() + pos + 4ull * i);
    }
    pos += 4ull * count;
    dir.emplace_back(cls, std::move(oids));
  }
  return dir;
}

Status ChTree::Insert(const Value& key, ClassId set, Oid oid) {
  const std::string k = EncodeKey(key);
  std::vector<std::pair<ClassId, std::vector<Oid>>> dir;
  Result<std::string> stored = tree_.Get(Slice(k));
  if (stored.ok()) {
    Result<std::string> payload =
        RecordCodec::Load(buffers_, Slice(stored.value()));
    if (!payload.ok()) return payload.status();
    Result<decltype(dir)> decoded = DecodeDirectory(Slice(payload.value()));
    if (!decoded.ok()) return decoded.status();
    dir = std::move(decoded).value();
    UINDEX_RETURN_IF_ERROR(
        RecordCodec::Free(buffers_, Slice(stored.value())));
  } else if (!stored.status().IsNotFound()) {
    return stored.status();
  }

  auto it = std::find_if(dir.begin(), dir.end(),
                         [set](const auto& e) { return e.first == set; });
  if (it == dir.end()) {
    dir.emplace_back(set, std::vector<Oid>{oid});
    std::sort(dir.begin(), dir.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  } else {
    it->second.push_back(oid);
  }
  Result<std::string> restored =
      RecordCodec::Store(buffers_, Slice(EncodeDirectory(dir)),
                         inline_limit_);
  if (!restored.ok()) return restored.status();
  return tree_.Put(Slice(k), Slice(restored.value()));
}

Status ChTree::Remove(const Value& key, ClassId set, Oid oid) {
  const std::string k = EncodeKey(key);
  Result<std::string> stored = tree_.Get(Slice(k));
  if (!stored.ok()) return stored.status();
  Result<std::string> payload =
      RecordCodec::Load(buffers_, Slice(stored.value()));
  if (!payload.ok()) return payload.status();
  Result<std::vector<std::pair<ClassId, std::vector<Oid>>>> decoded =
      DecodeDirectory(Slice(payload.value()));
  if (!decoded.ok()) return decoded.status();
  auto dir = std::move(decoded).value();

  bool found = false;
  for (auto it = dir.begin(); it != dir.end(); ++it) {
    if (it->first != set) continue;
    auto pos = std::find(it->second.begin(), it->second.end(), oid);
    if (pos == it->second.end()) break;
    it->second.erase(pos);
    if (it->second.empty()) dir.erase(it);
    found = true;
    break;
  }
  if (!found) return Status::NotFound("posting");

  UINDEX_RETURN_IF_ERROR(RecordCodec::Free(buffers_, Slice(stored.value())));
  if (dir.empty()) return tree_.Delete(Slice(k));
  Result<std::string> restored =
      RecordCodec::Store(buffers_, Slice(EncodeDirectory(dir)),
                         inline_limit_);
  if (!restored.ok()) return restored.status();
  return tree_.Put(Slice(k), Slice(restored.value()));
}

Result<std::vector<Oid>> ChTree::Search(
    const Value& lo, const Value& hi,
    const std::vector<ClassId>& sets) const {
  const std::string klo = EncodeKey(lo);
  const std::string khi_bound = BytesSuccessor(Slice(EncodeKey(hi)));

  std::vector<Oid> out;
  BTree::Iterator it = tree_.NewIterator();
  for (it.Seek(Slice(klo)); it.Valid(); it.Next()) {
    if (!khi_bound.empty() && !(it.key() < Slice(khi_bound))) break;
    // Key grouping: the whole directory is materialized (chain reads and
    // all) even when only a few of its classes are wanted.
    Result<std::string> payload = RecordCodec::Load(buffers_, it.value());
    if (!payload.ok()) return payload.status();
    Result<std::vector<std::pair<ClassId, std::vector<Oid>>>> decoded =
        DecodeDirectory(Slice(payload.value()));
    if (!decoded.ok()) return decoded.status();
    for (const auto& [cls, oids] : decoded.value()) {
      if (std::find(sets.begin(), sets.end(), cls) == sets.end()) continue;
      out.insert(out.end(), oids.begin(), oids.end());
    }
  }
  return out;
}

}  // namespace uindex
