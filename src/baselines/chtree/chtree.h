#ifndef UINDEX_BASELINES_CHTREE_CHTREE_H_
#define UINDEX_BASELINES_CHTREE_CHTREE_H_

#include <string>
#include <vector>

#include "baselines/set_index.h"
#include "btree/btree.h"
#include "storage/buffer_manager.h"

namespace uindex {

/// The classic class-hierarchy index of Kim/Bertino ([7],[9] in the paper):
/// a B-tree keyed by attribute value whose leaf record is a *set directory*
/// — for each class of the hierarchy holding the value, the list of member
/// oids.
///
/// This is the archetypal key-grouping scheme: all postings of one key are
/// clustered regardless of class, so exact-match queries are optimal but
/// range / multi-set queries must read every key's whole directory in the
/// range, relevant or not (paper §2). Directories larger than a fraction of
/// a page spill into overflow chains.
class ChTree : public SetIndex {
 public:
  ChTree(BufferManager* buffers, Value::Kind kind,
         BTreeOptions options = BTreeOptions());

  Status Insert(const Value& key, ClassId set, Oid oid) override;
  Status Remove(const Value& key, ClassId set, Oid oid) override;
  Result<std::vector<Oid>> Search(
      const Value& lo, const Value& hi,
      const std::vector<ClassId>& sets) const override;
  std::string name() const override { return "CH-tree"; }

  const BTree& btree() const { return tree_; }

 private:
  // Directory wire format: repeated [class 4B][count 4B][oids 4B each].
  static std::string EncodeDirectory(
      const std::vector<std::pair<ClassId, std::vector<Oid>>>& dir);
  static Result<std::vector<std::pair<ClassId, std::vector<Oid>>>>
  DecodeDirectory(const Slice& bytes);

  std::string EncodeKey(const Value& v) const;

  BufferManager* buffers_;
  Value::Kind kind_;
  BTree tree_;
  uint32_t inline_limit_;
};

}  // namespace uindex

#endif  // UINDEX_BASELINES_CHTREE_CHTREE_H_
