#ifndef UINDEX_BASELINES_HTREE_HTREE_H_
#define UINDEX_BASELINES_HTREE_HTREE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/set_index.h"
#include "btree/btree.h"
#include "storage/buffer_manager.h"

namespace uindex {

/// The H-tree of Lu/Low/Ooi ([8] in the paper): "a separate B+-tree for
/// every set", the pure set-grouping scheme.
///
/// Each class gets its own B+-tree keyed by `enc(value) ∥ oid`; a query
/// searches the tree of every queried set, so retrieval cost is directly
/// proportional to the number of sets — best-in-class for range queries
/// over few sets, worst for exact matches over many (paper §2, §4.4).
///
/// The original maintains nesting links between parent- and sub-class
/// trees to answer whole-hierarchy queries without naming every class; the
/// experiments here always name the queried sets explicitly, where the
/// links do not change the page counts, so they are omitted (see
/// DESIGN.md).
class HTree : public SetIndex {
 public:
  HTree(BufferManager* buffers, Value::Kind kind,
        BTreeOptions options = BTreeOptions());

  Status Insert(const Value& key, ClassId set, Oid oid) override;
  Status Remove(const Value& key, ClassId set, Oid oid) override;
  Result<std::vector<Oid>> Search(
      const Value& lo, const Value& hi,
      const std::vector<ClassId>& sets) const override;
  std::string name() const override { return "H-tree"; }

  /// Number of per-set trees materialized so far.
  size_t tree_count() const { return trees_.size(); }

 private:
  std::string EncodeKey(const Value& v, Oid oid) const;

  BTree* TreeFor(ClassId set);
  const BTree* TreeFor(ClassId set) const;

  BufferManager* buffers_;
  Value::Kind kind_;
  BTreeOptions options_;
  std::map<ClassId, std::unique_ptr<BTree>> trees_;
};

}  // namespace uindex

#endif  // UINDEX_BASELINES_HTREE_HTREE_H_
