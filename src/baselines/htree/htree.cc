#include "baselines/htree/htree.h"

#include "core/key_encoding.h"
#include "util/coding.h"

namespace uindex {

HTree::HTree(BufferManager* buffers, Value::Kind kind, BTreeOptions options)
    : buffers_(buffers), kind_(kind), options_(options) {}

std::string HTree::EncodeKey(const Value& v, Oid oid) const {
  std::string out;
  v.AppendOrderPreserving(&out);
  if (kind_ == Value::Kind::kString) out.push_back('\0');
  PutBigEndian32(&out, oid);
  return out;
}

BTree* HTree::TreeFor(ClassId set) {
  auto it = trees_.find(set);
  if (it == trees_.end()) {
    it = trees_.emplace(set, std::make_unique<BTree>(buffers_, options_))
             .first;
  }
  return it->second.get();
}

const BTree* HTree::TreeFor(ClassId set) const {
  auto it = trees_.find(set);
  return it == trees_.end() ? nullptr : it->second.get();
}

Status HTree::Insert(const Value& key, ClassId set, Oid oid) {
  return TreeFor(set)->Insert(Slice(EncodeKey(key, oid)), Slice());
}

Status HTree::Remove(const Value& key, ClassId set, Oid oid) {
  BTree* tree = TreeFor(set);
  return tree->Delete(Slice(EncodeKey(key, oid)));
}

Result<std::vector<Oid>> HTree::Search(
    const Value& lo, const Value& hi,
    const std::vector<ClassId>& sets) const {
  std::string klo;
  lo.AppendOrderPreserving(&klo);
  if (kind_ == Value::Kind::kString) klo.push_back('\0');
  std::string khi_prefix;
  hi.AppendOrderPreserving(&khi_prefix);
  if (kind_ == Value::Kind::kString) khi_prefix.push_back('\0');
  const std::string bound = BytesSuccessor(Slice(khi_prefix));

  std::vector<Oid> out;
  for (const ClassId set : sets) {
    const BTree* tree = TreeFor(set);
    if (tree == nullptr) continue;  // Set never populated.
    BTree::Iterator it = tree->NewIterator();
    for (it.Seek(Slice(klo)); it.Valid(); it.Next()) {
      if (!bound.empty() && !(it.key() < Slice(bound))) break;
      const Slice k = it.key();
      out.push_back(DecodeBigEndian32(k.data() + k.size() - 4));
    }
  }
  return out;
}

}  // namespace uindex
