#ifndef UINDEX_BASELINES_SET_INDEX_H_
#define UINDEX_BASELINES_SET_INDEX_H_

#include <string>
#include <vector>

#include "objects/object.h"
#include "schema/schema.h"
#include "util/status.h"

namespace uindex {

/// Common interface of the class-hierarchy ("multiple set") index
/// structures compared in the paper's experiments (§5). Following [Kilger/
/// Moerkotte], a *set* is one class of the hierarchy; a query names an
/// attribute value (or range) and the sets whose members it wants.
///
/// Implementations route all node/page access through a BufferManager, so
/// `QueryCost` measures any of them uniformly.
class SetIndex {
 public:
  virtual ~SetIndex() = default;

  /// Adds `oid` (a member of `set`) under `key`.
  virtual Status Insert(const Value& key, ClassId set, Oid oid) = 0;

  /// Removes a previously inserted posting.
  virtual Status Remove(const Value& key, ClassId set, Oid oid) = 0;

  /// All oids of members of any of `sets` with key in [lo, hi] (inclusive).
  /// Order is unspecified.
  virtual Result<std::vector<Oid>> Search(
      const Value& lo, const Value& hi,
      const std::vector<ClassId>& sets) const = 0;

  /// Display name for experiment output.
  virtual std::string name() const = 0;
};

}  // namespace uindex

#endif  // UINDEX_BASELINES_SET_INDEX_H_
