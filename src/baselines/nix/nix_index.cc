#include "baselines/nix/nix_index.h"

#include <algorithm>

#include "baselines/record_codec.h"
#include "core/key_encoding.h"
#include "util/coding.h"

namespace uindex {

NixIndex::NixIndex(BufferManager* buffers, const Schema* schema,
                   PathSpec spec, BTreeOptions options)
    : buffers_(buffers),
      schema_(schema),
      spec_(std::move(spec)),
      options_(options),
      primary_(buffers, options),
      inline_limit_(buffers->page_size() / 4) {}

std::string NixIndex::EncodeKey(const Value& v) const {
  std::string out;
  v.AppendOrderPreserving(&out);
  if (spec_.value_kind == Value::Kind::kString) out.push_back('\0');
  return out;
}

std::string NixIndex::EncodeDirectory(const Directory& dir) {
  std::string out;
  for (const auto& [cls, postings] : dir) {
    PutFixed32(&out, cls);
    PutFixed32(&out, static_cast<uint32_t>(postings.size()));
    for (const auto& [oid, refs] : postings) {
      PutFixed32(&out, oid);
      PutFixed32(&out, refs);
    }
  }
  return out;
}

Result<NixIndex::Directory> NixIndex::DecodeDirectory(const Slice& bytes) {
  Directory dir;
  size_t pos = 0;
  while (pos < bytes.size()) {
    if (pos + 8 > bytes.size()) return Status::Corruption("bad NIX record");
    const ClassId cls = DecodeFixed32(bytes.data() + pos);
    const uint32_t count = DecodeFixed32(bytes.data() + pos + 4);
    pos += 8;
    if (pos + 8ull * count > bytes.size()) {
      return Status::Corruption("bad NIX record length");
    }
    std::vector<std::pair<Oid, uint32_t>> postings(count);
    for (uint32_t i = 0; i < count; ++i) {
      postings[i].first = DecodeFixed32(bytes.data() + pos + 8ull * i);
      postings[i].second = DecodeFixed32(bytes.data() + pos + 8ull * i + 4);
    }
    pos += 8ull * count;
    dir.emplace_back(cls, std::move(postings));
  }
  return dir;
}

Result<NixIndex::Directory> NixIndex::LoadDirectory(const Slice& key,
                                                    bool* found) const {
  Result<std::string> stored = primary_.Get(key);
  if (!stored.ok()) {
    if (stored.status().IsNotFound()) {
      *found = false;
      return Directory{};
    }
    return stored.status();
  }
  *found = true;
  Result<std::string> payload =
      RecordCodec::Load(buffers_, Slice(stored.value()));
  if (!payload.ok()) return payload.status();
  return DecodeDirectory(Slice(payload.value()));
}

Status NixIndex::StoreDirectory(const Slice& key, const Directory& dir) {
  Result<std::string> stored = primary_.Get(key);
  if (stored.ok()) {
    UINDEX_RETURN_IF_ERROR(
        RecordCodec::Free(buffers_, Slice(stored.value())));
  } else if (!stored.status().IsNotFound()) {
    return stored.status();
  }
  if (dir.empty()) {
    if (stored.ok()) return primary_.Delete(key);
    return Status::OK();
  }
  Result<std::string> restored = RecordCodec::Store(
      buffers_, Slice(EncodeDirectory(dir)), inline_limit_);
  if (!restored.ok()) return restored.status();
  return primary_.Put(key, Slice(restored.value()));
}

Status NixIndex::BumpPrimary(const std::string& key, ClassId cls, Oid oid,
                             int delta) {
  bool found = false;
  Result<Directory> loaded = LoadDirectory(Slice(key), &found);
  if (!loaded.ok()) return loaded.status();
  Directory dir = std::move(loaded).value();

  auto cls_it = std::find_if(dir.begin(), dir.end(),
                             [cls](const auto& e) { return e.first == cls; });
  if (cls_it == dir.end()) {
    if (delta < 0) return Status::NotFound("NIX class entry");
    dir.emplace_back(cls, std::vector<std::pair<Oid, uint32_t>>{{oid, 1}});
    std::sort(dir.begin(), dir.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return StoreDirectory(Slice(key), dir);
  }
  auto& postings = cls_it->second;
  auto it = std::find_if(postings.begin(), postings.end(),
                         [oid](const auto& p) { return p.first == oid; });
  if (it == postings.end()) {
    if (delta < 0) return Status::NotFound("NIX posting");
    postings.push_back({oid, 1});
  } else if (delta > 0) {
    ++it->second;
  } else {
    if (--it->second == 0) postings.erase(it);
    if (postings.empty()) dir.erase(cls_it);
  }
  return StoreDirectory(Slice(key), dir);
}

BTree* NixIndex::AuxFor(size_t pos) {
  auto it = aux_.find(pos);
  if (it == aux_.end()) {
    it = aux_.emplace(pos, std::make_unique<BTree>(buffers_, options_))
             .first;
  }
  return it->second.get();
}

const BTree* NixIndex::AuxFor(size_t pos) const {
  auto it = aux_.find(pos);
  return it == aux_.end() ? nullptr : it->second.get();
}

Status NixIndex::BumpAux(size_t pos, Oid child, Oid parent, int delta) {
  BTree* tree = AuxFor(pos);
  std::string key;
  PutBigEndian32(&key, child);

  std::vector<std::pair<Oid, uint32_t>> parents;
  Result<std::string> stored = tree->Get(Slice(key));
  if (stored.ok()) {
    Result<std::string> loaded =
        RecordCodec::Load(buffers_, Slice(stored.value()));
    if (!loaded.ok()) return loaded.status();
    const std::string& bytes = loaded.value();
    parents.resize(bytes.size() / 8);
    for (size_t i = 0; i < parents.size(); ++i) {
      parents[i].first = DecodeFixed32(bytes.data() + 8 * i);
      parents[i].second = DecodeFixed32(bytes.data() + 8 * i + 4);
    }
    UINDEX_RETURN_IF_ERROR(
        RecordCodec::Free(buffers_, Slice(stored.value())));
  } else if (!stored.status().IsNotFound()) {
    return stored.status();
  }

  auto it = std::find_if(parents.begin(), parents.end(),
                         [parent](const auto& p) {
                           return p.first == parent;
                         });
  if (it == parents.end()) {
    if (delta < 0) return Status::NotFound("NIX aux parent");
    parents.push_back({parent, 1});
  } else if (delta > 0) {
    ++it->second;
  } else if (--it->second == 0) {
    parents.erase(it);
  }

  if (parents.empty()) return tree->Delete(Slice(key));
  std::string payload;
  for (const auto& [p, refs] : parents) {
    PutFixed32(&payload, p);
    PutFixed32(&payload, refs);
  }
  Result<std::string> restored =
      RecordCodec::Store(buffers_, Slice(payload), inline_limit_);
  if (!restored.ok()) return restored.status();
  return tree->Put(Slice(key), Slice(restored.value()));
}

Status NixIndex::BuildFrom(const ObjectStore& store) {
  return ForEachInstantiation(
      store, spec_, [this, &store](const PathInstantiation& inst) {
        std::vector<std::pair<ClassId, Oid>> path;
        path.reserve(inst.oids.size());
        for (const Oid oid : inst.oids) {
          Result<const Object*> obj = store.Get(oid);
          if (!obj.ok()) return obj.status();
          path.emplace_back(obj.value()->cls, oid);
        }
        return Insert(inst.attr, path);
      });
}

Status NixIndex::Insert(const Value& key,
                        const std::vector<std::pair<ClassId, Oid>>& path) {
  if (path.size() != spec_.Length()) {
    return Status::InvalidArgument("tuple arity mismatch");
  }
  const std::string k = EncodeKey(key);
  for (size_t pos = 0; pos < path.size(); ++pos) {
    UINDEX_RETURN_IF_ERROR(
        BumpPrimary(k, path[pos].first, path[pos].second, +1));
    if (pos > 0) {
      UINDEX_RETURN_IF_ERROR(
          BumpAux(pos, path[pos].second, path[pos - 1].second, +1));
    }
  }
  return Status::OK();
}

Status NixIndex::Remove(const Value& key,
                        const std::vector<std::pair<ClassId, Oid>>& path) {
  if (path.size() != spec_.Length()) {
    return Status::InvalidArgument("tuple arity mismatch");
  }
  const std::string k = EncodeKey(key);
  for (size_t pos = 0; pos < path.size(); ++pos) {
    UINDEX_RETURN_IF_ERROR(
        BumpPrimary(k, path[pos].first, path[pos].second, -1));
    if (pos > 0) {
      UINDEX_RETURN_IF_ERROR(
          BumpAux(pos, path[pos].second, path[pos - 1].second, -1));
    }
  }
  return Status::OK();
}

Result<std::vector<Oid>> NixIndex::Lookup(const Value& lo, const Value& hi,
                                          ClassId cls,
                                          bool with_subclasses) const {
  const std::string klo = EncodeKey(lo);
  const std::string bound = BytesSuccessor(Slice(EncodeKey(hi)));

  std::vector<Oid> out;
  BTree::Iterator it = primary_.NewIterator();
  for (it.Seek(Slice(klo)); it.Valid(); it.Next()) {
    if (!bound.empty() && !(it.key() < Slice(bound))) break;
    Result<std::string> payload = RecordCodec::Load(buffers_, it.value());
    if (!payload.ok()) return payload.status();
    Result<Directory> dir = DecodeDirectory(Slice(payload.value()));
    if (!dir.ok()) return dir.status();
    for (const auto& [entry_cls, postings] : dir.value()) {
      const bool match = with_subclasses
                             ? schema_->IsSubclassOf(entry_cls, cls)
                             : entry_cls == cls;
      if (!match) continue;
      for (const auto& [oid, refs] : postings) {
        (void)refs;
        out.push_back(oid);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<std::vector<Oid>> NixIndex::ParentsOf(size_t pos, Oid oid) const {
  const BTree* tree = AuxFor(pos);
  if (tree == nullptr) return std::vector<Oid>{};
  std::string key;
  PutBigEndian32(&key, oid);
  Result<std::string> stored = tree->Get(Slice(key));
  if (!stored.ok()) {
    if (stored.status().IsNotFound()) return std::vector<Oid>{};
    return stored.status();
  }
  Result<std::string> loaded =
      RecordCodec::Load(buffers_, Slice(stored.value()));
  if (!loaded.ok()) return loaded.status();
  std::vector<Oid> parents(loaded.value().size() / 8);
  for (size_t i = 0; i < parents.size(); ++i) {
    parents[i] = DecodeFixed32(loaded.value().data() + 8 * i);
  }
  return parents;
}

Result<std::vector<Oid>> NixIndex::LookupRestricted(
    const Value& lo, const Value& hi, ClassId cls, bool with_subclasses,
    size_t position, const std::vector<Oid>& through) const {
  Result<std::vector<Oid>> heads = Lookup(lo, hi, cls, with_subclasses);
  if (!heads.ok()) return heads.status();

  // NIX stores no path structure, so each candidate chases the auxiliary
  // parent chain... inverted: `position` is below the head, so walk from
  // the restricted objects up to heads? The aux trees map child -> parent
  // (towards the head), so instead resolve which heads descend to one of
  // `through`: chase parents from `through` upwards and intersect.
  std::vector<Oid> reachable;
  std::vector<Oid> frontier = through;
  for (size_t pos = position; pos > 0; --pos) {
    std::vector<Oid> next;
    for (const Oid oid : frontier) {
      Result<std::vector<Oid>> parents = ParentsOf(pos, oid);
      if (!parents.ok()) return parents.status();
      next.insert(next.end(), parents.value().begin(),
                  parents.value().end());
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    frontier = std::move(next);
  }
  std::sort(frontier.begin(), frontier.end());
  std::set_intersection(heads.value().begin(), heads.value().end(),
                        frontier.begin(), frontier.end(),
                        std::back_inserter(reachable));
  return reachable;
}

}  // namespace uindex
