#ifndef UINDEX_BASELINES_NIX_NIX_INDEX_H_
#define UINDEX_BASELINES_NIX_NIX_INDEX_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/pathindex/nested_index.h"
#include "btree/btree.h"
#include "core/index_spec.h"
#include "objects/object_store.h"
#include "storage/buffer_manager.h"

namespace uindex {

/// The Nested-Inherited Index (NIX) of Bertino/Foscoli ([3] in the paper),
/// reconstructed from §2's description — the only prior structure that,
/// like the U-index, serves combined class-hierarchy/path queries:
///
///  * a *primary* B-tree keyed by attribute value whose leaf record is a
///    directory with one entry per class along the path (subclasses
///    included), each holding the oids of that class's instances on some
///    path reaching the value — a key-grouping scheme like CH-trees;
///  * *auxiliary* per-class B+-structures mapping each object to its
///    parents along the path ("used to speed up the update process"),
///    kept bidirectionally consistent with the primary structure.
///
/// Queries naming a class (or a class sub-tree) at any position read the
/// value's directory; queries that *restrict* an in-path position to
/// specific objects must chase the auxiliary trees per candidate — the
/// U-index's stored-full-path advantage in §4.4. Directory oids carry
/// reference counts because one company serves many vehicles under the
/// same key value.
class NixIndex {
 public:
  NixIndex(BufferManager* buffers, const Schema* schema, PathSpec spec,
           BTreeOptions options = BTreeOptions());

  const PathSpec& spec() const { return spec_; }

  /// Populates primary and auxiliary structures from every complete path
  /// instantiation in `store`.
  Status BuildFrom(const ObjectStore& store);

  /// Adds/removes one instantiation: (actual class, oid) per position,
  /// head → tail, full length.
  Status Insert(const Value& key,
                const std::vector<std::pair<ClassId, Oid>>& path);
  Status Remove(const Value& key,
                const std::vector<std::pair<ClassId, Oid>>& path);

  /// Oids of instances of `cls` (optionally with its whole sub-tree)
  /// appearing on any indexed path with value in [lo, hi]. Sorted,
  /// distinct.
  Result<std::vector<Oid>> Lookup(const Value& lo, const Value& hi,
                                  ClassId cls, bool with_subclasses) const;

  /// As Lookup over the head class, but additionally requiring the path to
  /// pass through one of `through` at head-based `position`; resolved by
  /// chasing the auxiliary parent trees (costing their page reads).
  Result<std::vector<Oid>> LookupRestricted(
      const Value& lo, const Value& hi, ClassId cls, bool with_subclasses,
      size_t position, const std::vector<Oid>& through) const;

  /// Auxiliary lookup: parents (objects at head-based position `pos - 1`)
  /// of object `oid` at position `pos`.
  Result<std::vector<Oid>> ParentsOf(size_t pos, Oid oid) const;

  const BTree& primary() const { return primary_; }

 private:
  // Primary record: repeated [class 4B][n 4B] n*( [oid 4B][refcount 4B] ).
  using Directory = std::vector<
      std::pair<ClassId, std::vector<std::pair<Oid, uint32_t>>>>;

  static std::string EncodeDirectory(const Directory& dir);
  static Result<Directory> DecodeDirectory(const Slice& bytes);

  std::string EncodeKey(const Value& v) const;

  Result<Directory> LoadDirectory(const Slice& key, bool* found) const;
  Status StoreDirectory(const Slice& key, const Directory& dir);

  // Adjusts the refcount of (cls, oid) under `key` by +1/-1.
  Status BumpPrimary(const std::string& key, ClassId cls, Oid oid,
                     int delta);
  // Adjusts the refcount of parent under the auxiliary tree of position
  // `pos`.
  Status BumpAux(size_t pos, Oid child, Oid parent, int delta);

  BTree* AuxFor(size_t pos);
  const BTree* AuxFor(size_t pos) const;

  BufferManager* buffers_;
  const Schema* schema_;
  PathSpec spec_;
  BTreeOptions options_;
  BTree primary_;
  uint32_t inline_limit_;
  // aux_[p] serves path position p (1-based: parents of position p live at
  // p-1); positions 1..L-1 have trees, created lazily.
  mutable std::map<size_t, std::unique_ptr<BTree>> aux_;
};

}  // namespace uindex

#endif  // UINDEX_BASELINES_NIX_NIX_INDEX_H_
