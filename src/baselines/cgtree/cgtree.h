#ifndef UINDEX_BASELINES_CGTREE_CGTREE_H_
#define UINDEX_BASELINES_CGTREE_CGTREE_H_

#include <string>
#include <vector>

#include "baselines/set_index.h"
#include "btree/btree.h"
#include "storage/buffer_manager.h"

namespace uindex {

/// The CG-tree of Kilger/Moerkotte ([6] in the paper), reconstructed from
/// the feature list the paper's own re-implementation used (§5.1):
///
///  * a *set directory* (like CH-trees) locating per-set data,
///  * **link pointers between leaf pages of the same set** — every set's
///    data pages form a chain in key order,
///  * **sharing of multiple key entries in one leaf page** — a data page
///    holds postings of many keys (of one set),
///  * **only non-NULL references** are kept in directory nodes,
///  * **best-splitting-key search** when a data page overflows,
///  * leaf balancing *not* implemented — exactly the one feature the
///    paper's implementation also omitted.
///
/// Layout: data pages are per-set, doubly linked, containing
/// `[key, oid-list]` records in key order (a single key's postings may
/// spill across consecutive pages). A B-tree directory maps
/// `set ∥ flag ∥ max-key ∥ page-id` to the data page; each set's last page
/// carries an "infinite" separator (flag = 1). Range retrieval descends the
/// directory once per set (upper levels shared across sets within a query)
/// and then walks only that set's chain — the set-grouping that makes
/// CG-trees beat key-grouping schemes on ranges while staying close to
/// CH-trees on exact matches.
class CgTree : public SetIndex {
 public:
  CgTree(BufferManager* buffers, Value::Kind kind,
         BTreeOptions directory_options = BTreeOptions());

  Status Insert(const Value& key, ClassId set, Oid oid) override;
  Status Remove(const Value& key, ClassId set, Oid oid) override;
  Result<std::vector<Oid>> Search(
      const Value& lo, const Value& hi,
      const std::vector<ClassId>& sets) const override;
  std::string name() const override { return "CG-tree"; }

  /// Structural counters (uncounted walk) for tests and reports.
  struct Stats {
    uint64_t data_pages = 0;
    uint64_t postings = 0;
    uint64_t directory_entries = 0;
  };
  Result<Stats> ComputeStats() const;

  /// Checks chain ordering, directory consistency, and page sizes.
  Status Validate() const;

  const BTree& directory() const { return directory_; }

 private:
  struct DataRecord {
    std::string key;
    std::vector<Oid> oids;
  };

  // In-memory image of one data page.
  struct DataPage {
    PageId next = kInvalidPageId;
    PageId prev = kInvalidPageId;
    ClassId set = kInvalidClassId;
    std::string dir_key;  // This page's current directory key.
    std::vector<DataRecord> records;

    uint32_t SerializedSize() const;
    Status SerializeTo(Page* page) const;
    static Result<DataPage> Parse(const Page& page);
  };

  std::string EncodeKey(const Value& v) const;
  static std::string DirKey(ClassId set, const Slice& max_key, PageId page);
  static std::string DirKeyInfinite(ClassId set, PageId page);
  static std::string DirSeekKey(ClassId set, const Slice& enc);
  static bool DirKeyIsSet(const Slice& dir_key, ClassId set);

  // First data page of `set` that may contain keys >= enc; kInvalidPageId
  // if the set has no pages. Counted directory descent.
  Result<PageId> FindStart(ClassId set, const Slice& enc) const;

  Result<DataPage> LoadDataPage(PageId id) const;
  Result<DataPage> LoadDataPageUncounted(PageId id) const;
  Status StoreDataPage(PageId id, const DataPage& page);

  // Splits `page` (stored at `id`) which exceeds capacity; uses the best
  // splitting key; maintains chain links and directory entries.
  Status SplitDataPage(PageId id, DataPage page);

  BufferManager* buffers_;
  Value::Kind kind_;
  BTree directory_;
};

}  // namespace uindex

#endif  // UINDEX_BASELINES_CGTREE_CGTREE_H_
