#include "baselines/cgtree/cgtree.h"

#include <algorithm>
#include <cassert>

#include "core/key_encoding.h"
#include "util/coding.h"

namespace uindex {

namespace {
// Data page header:
//   [next 4][prev 4][set 4][record count 2][dir key len 2] [dir key bytes]
constexpr uint32_t kDataHeaderSize = 16;
constexpr char kFlagFinite = 0x00;
constexpr char kFlagInfinite = 0x01;
}  // namespace

// ---------------------------------------------------------------------------
// DataPage serialization
// ---------------------------------------------------------------------------

uint32_t CgTree::DataPage::SerializedSize() const {
  uint32_t size = kDataHeaderSize + static_cast<uint32_t>(dir_key.size());
  for (const DataRecord& r : records) {
    size += 2 + static_cast<uint32_t>(r.key.size()) + 2 +
            4 * static_cast<uint32_t>(r.oids.size());
  }
  return size;
}

Status CgTree::DataPage::SerializeTo(Page* page) const {
  if (SerializedSize() > page->size()) {
    return Status::Corruption("CG data page overflow");
  }
  page->Clear();
  char* p = page->data();
  EncodeFixed32(p, next);
  EncodeFixed32(p + 4, prev);
  EncodeFixed32(p + 8, set);
  EncodeFixed16(p + 12, static_cast<uint16_t>(records.size()));
  EncodeFixed16(p + 14, static_cast<uint16_t>(dir_key.size()));
  p += kDataHeaderSize;
  std::memcpy(p, dir_key.data(), dir_key.size());
  p += dir_key.size();
  for (const DataRecord& r : records) {
    EncodeFixed16(p, static_cast<uint16_t>(r.key.size()));
    std::memcpy(p + 2, r.key.data(), r.key.size());
    p += 2 + r.key.size();
    EncodeFixed16(p, static_cast<uint16_t>(r.oids.size()));
    p += 2;
    for (const Oid oid : r.oids) {
      EncodeFixed32(p, oid);
      p += 4;
    }
  }
  return Status::OK();
}

Result<CgTree::DataPage> CgTree::DataPage::Parse(const Page& page) {
  if (page.size() < kDataHeaderSize) {
    return Status::Corruption("short CG data page");
  }
  const char* p = page.data();
  const char* limit = page.data() + page.size();
  DataPage out;
  out.next = DecodeFixed32(p);
  out.prev = DecodeFixed32(p + 4);
  out.set = DecodeFixed32(p + 8);
  const uint16_t count = DecodeFixed16(p + 12);
  const uint16_t dir_len = DecodeFixed16(p + 14);
  p += kDataHeaderSize;
  if (p + dir_len > limit) return Status::Corruption("bad CG dir key");
  out.dir_key.assign(p, dir_len);
  p += dir_len;
  out.records.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    if (p + 2 > limit) return Status::Corruption("bad CG record");
    const uint16_t key_len = DecodeFixed16(p);
    p += 2;
    if (p + key_len + 2 > limit) return Status::Corruption("bad CG record");
    DataRecord r;
    r.key.assign(p, key_len);
    p += key_len;
    const uint16_t oid_count = DecodeFixed16(p);
    p += 2;
    if (p + 4 * oid_count > limit) return Status::Corruption("bad CG oids");
    r.oids.resize(oid_count);
    for (uint16_t j = 0; j < oid_count; ++j) {
      r.oids[j] = DecodeFixed32(p + 4 * j);
    }
    p += 4 * oid_count;
    out.records.push_back(std::move(r));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Key helpers
// ---------------------------------------------------------------------------

std::string CgTree::EncodeKey(const Value& v) const {
  std::string out;
  v.AppendOrderPreserving(&out);
  if (kind_ == Value::Kind::kString) out.push_back('\0');
  return out;
}

std::string CgTree::DirKey(ClassId set, const Slice& max_key, PageId page) {
  std::string out;
  PutBigEndian32(&out, set);
  out.push_back(kFlagFinite);
  out.append(max_key.data(), max_key.size());
  PutBigEndian32(&out, page);
  return out;
}

std::string CgTree::DirKeyInfinite(ClassId set, PageId page) {
  std::string out;
  PutBigEndian32(&out, set);
  out.push_back(kFlagInfinite);
  PutBigEndian32(&out, page);
  return out;
}

std::string CgTree::DirSeekKey(ClassId set, const Slice& enc) {
  std::string out;
  PutBigEndian32(&out, set);
  out.push_back(kFlagFinite);
  out.append(enc.data(), enc.size());
  return out;
}

bool CgTree::DirKeyIsSet(const Slice& dir_key, ClassId set) {
  return dir_key.size() >= 5 && DecodeBigEndian32(dir_key.data()) == set;
}

// ---------------------------------------------------------------------------
// Construction and page access
// ---------------------------------------------------------------------------

CgTree::CgTree(BufferManager* buffers, Value::Kind kind,
               BTreeOptions directory_options)
    : buffers_(buffers), kind_(kind),
      directory_(buffers, directory_options) {}

Result<PageId> CgTree::FindStart(ClassId set, const Slice& enc) const {
  // The first directory entry with separator >= enc belongs to the first
  // page that may hold keys >= enc; the set's infinite entry (flag = 1)
  // sorts after all finite ones, so a non-empty set is always hit before
  // the iterator leaves it.
  BTree::Iterator it = directory_.NewIterator();
  it.Seek(Slice(DirSeekKey(set, enc)));
  if (!it.Valid() || !DirKeyIsSet(it.key(), set)) return kInvalidPageId;
  return static_cast<PageId>(DecodeFixed32(it.value().data()));
}

Result<CgTree::DataPage> CgTree::LoadDataPage(PageId id) const {
  PageRef page = buffers_->Fetch(id);
  if (page == nullptr) return Status::Corruption("missing CG data page");
  return DataPage::Parse(*page);
}

Result<CgTree::DataPage> CgTree::LoadDataPageUncounted(PageId id) const {
  PageRef page = buffers_->FetchUncounted(id);
  if (page == nullptr) return Status::Corruption("missing CG data page");
  return DataPage::Parse(*page);
}

Status CgTree::StoreDataPage(PageId id, const DataPage& page) {
  PageRef raw = buffers_->FetchForWrite(id);
  if (raw == nullptr) return Status::Corruption("missing CG data page");
  return page.SerializeTo(raw.get());
}

// ---------------------------------------------------------------------------
// Mutation
// ---------------------------------------------------------------------------

Status CgTree::Insert(const Value& key, ClassId set, Oid oid) {
  const std::string enc = EncodeKey(key);
  Result<PageId> start = FindStart(set, Slice(enc));
  if (!start.ok()) return start.status();

  if (start.value() == kInvalidPageId) {
    // First posting of this set: one fresh page, one infinite directory
    // entry (non-NULL references only — sets without postings own nothing).
    const PageId id = buffers_->Allocate();
    DataPage page;
    page.set = set;
    page.dir_key = DirKeyInfinite(set, id);
    page.records.push_back(DataRecord{enc, {oid}});
    std::string value;
    PutFixed32(&value, id);
    UINDEX_RETURN_IF_ERROR(
        directory_.Insert(Slice(page.dir_key), Slice(value)));
    return StoreDataPage(id, page);
  }

  const PageId id = start.value();
  Result<DataPage> loaded = LoadDataPage(id);
  if (!loaded.ok()) return loaded.status();
  DataPage page = std::move(loaded).value();

  // Insert into the sorted record list; append the oid to the last record
  // carrying this key (records of one key may be split across pages).
  auto it = std::upper_bound(
      page.records.begin(), page.records.end(), enc,
      [](const std::string& k, const DataRecord& r) {
        return Slice(k) < Slice(r.key);
      });
  if (it != page.records.begin() && (it - 1)->key == enc) {
    (it - 1)->oids.push_back(oid);
  } else {
    page.records.insert(it, DataRecord{enc, {oid}});
  }

  if (page.SerializedSize() <= buffers_->page_size()) {
    return StoreDataPage(id, page);
  }
  return SplitDataPage(id, std::move(page));
}

Status CgTree::SplitDataPage(PageId id, DataPage page) {
  // Best splitting key search: the record boundary that most evenly splits
  // the page's bytes. A one-record page splits the record's oid list.
  DataPage right;
  right.set = page.set;
  if (page.records.size() >= 2) {
    uint32_t total = 0;
    for (const DataRecord& r : page.records) {
      total += 2 + static_cast<uint32_t>(r.key.size()) + 2 +
               4 * static_cast<uint32_t>(r.oids.size());
    }
    uint32_t acc = 0;
    size_t best = 1;
    uint32_t best_imbalance = total;
    for (size_t i = 0; i + 1 < page.records.size(); ++i) {
      const DataRecord& r = page.records[i];
      acc += 2 + static_cast<uint32_t>(r.key.size()) + 2 +
             4 * static_cast<uint32_t>(r.oids.size());
      const uint32_t imbalance =
          acc * 2 > total ? acc * 2 - total : total - acc * 2;
      if (imbalance < best_imbalance) {
        best_imbalance = imbalance;
        best = i + 1;
      }
    }
    right.records.assign(
        std::make_move_iterator(page.records.begin() +
                                static_cast<ptrdiff_t>(best)),
        std::make_move_iterator(page.records.end()));
    page.records.erase(page.records.begin() + static_cast<ptrdiff_t>(best),
                       page.records.end());
  } else {
    DataRecord& r = page.records.front();
    const size_t half = r.oids.size() / 2;
    if (half == 0) return Status::InvalidArgument("oversized CG posting");
    DataRecord spill;
    spill.key = r.key;
    spill.oids.assign(r.oids.begin() + static_cast<ptrdiff_t>(half),
                      r.oids.end());
    r.oids.erase(r.oids.begin() + static_cast<ptrdiff_t>(half), r.oids.end());
    right.records.push_back(std::move(spill));
  }

  const PageId right_id = buffers_->Allocate();
  // Chain: ... <-> page <-> right <-> old next ...
  right.next = page.next;
  right.prev = id;
  page.next = right_id;
  if (right.next != kInvalidPageId) {
    Result<DataPage> successor = LoadDataPage(right.next);
    if (!successor.ok()) return successor.status();
    DataPage fixed = std::move(successor).value();
    fixed.prev = right_id;
    UINDEX_RETURN_IF_ERROR(StoreDataPage(right.next, fixed));
  }

  // Directory: the right page inherits the old separator (re-keyed to its
  // page id); the left page gets a new finite separator at its new max key.
  const std::string old_dir_key = page.dir_key;
  UINDEX_RETURN_IF_ERROR(directory_.Delete(Slice(old_dir_key)));

  if (old_dir_key.size() >= 5 && old_dir_key[4] == kFlagInfinite) {
    right.dir_key = DirKeyInfinite(right.set, right_id);
  } else {
    // Finite key layout: set(4) flag(1) max-key(...) page(4).
    const Slice max_key(old_dir_key.data() + 5, old_dir_key.size() - 9);
    right.dir_key = DirKey(right.set, max_key, right_id);
  }
  page.dir_key = DirKey(page.set, Slice(page.records.back().key), id);

  std::string left_value, right_value;
  PutFixed32(&left_value, id);
  PutFixed32(&right_value, right_id);
  UINDEX_RETURN_IF_ERROR(
      directory_.Insert(Slice(page.dir_key), Slice(left_value)));
  UINDEX_RETURN_IF_ERROR(
      directory_.Insert(Slice(right.dir_key), Slice(right_value)));

  UINDEX_RETURN_IF_ERROR(StoreDataPage(id, page));
  UINDEX_RETURN_IF_ERROR(StoreDataPage(right_id, right));

  // Extremely long postings may still overflow the right page; recurse.
  if (right.SerializedSize() > buffers_->page_size()) {
    return SplitDataPage(right_id, std::move(right));
  }
  return Status::OK();
}

Status CgTree::Remove(const Value& key, ClassId set, Oid oid) {
  const std::string enc = EncodeKey(key);
  Result<PageId> start = FindStart(set, Slice(enc));
  if (!start.ok()) return start.status();

  PageId id = start.value();
  while (id != kInvalidPageId) {
    Result<DataPage> loaded = LoadDataPage(id);
    if (!loaded.ok()) return loaded.status();
    DataPage page = std::move(loaded).value();

    bool removed = false;
    bool past_key = false;
    for (auto it = page.records.begin(); it != page.records.end(); ++it) {
      if (Slice(enc) < Slice(it->key)) {
        past_key = true;
        break;
      }
      if (it->key != enc) continue;
      auto pos = std::find(it->oids.begin(), it->oids.end(), oid);
      if (pos == it->oids.end()) continue;  // Maybe in a spilled record.
      it->oids.erase(pos);
      if (it->oids.empty()) page.records.erase(it);
      removed = true;
      break;
    }

    if (removed) {
      if (!page.records.empty()) return StoreDataPage(id, page);

      // Page emptied: unlink from the chain and drop its directory entry.
      UINDEX_RETURN_IF_ERROR(directory_.Delete(Slice(page.dir_key)));
      if (page.prev != kInvalidPageId) {
        Result<DataPage> prev = LoadDataPage(page.prev);
        if (!prev.ok()) return prev.status();
        DataPage fixed = std::move(prev).value();
        fixed.next = page.next;
        // If the removed page carried the set's infinite separator, its
        // predecessor becomes the last page and takes it over.
        if (page.dir_key.size() >= 5 && page.dir_key[4] == kFlagInfinite) {
          UINDEX_RETURN_IF_ERROR(directory_.Delete(Slice(fixed.dir_key)));
          fixed.dir_key = DirKeyInfinite(fixed.set, page.prev);
          std::string value;
          PutFixed32(&value, page.prev);
          UINDEX_RETURN_IF_ERROR(
              directory_.Insert(Slice(fixed.dir_key), Slice(value)));
        }
        UINDEX_RETURN_IF_ERROR(StoreDataPage(page.prev, fixed));
      }
      if (page.next != kInvalidPageId) {
        Result<DataPage> next = LoadDataPage(page.next);
        if (!next.ok()) return next.status();
        DataPage fixed = std::move(next).value();
        fixed.prev = page.prev;
        UINDEX_RETURN_IF_ERROR(StoreDataPage(page.next, fixed));
      }
      buffers_->Free(id);
      return Status::OK();
    }
    if (past_key) break;
    id = page.next;
  }
  return Status::NotFound("posting");
}

// ---------------------------------------------------------------------------
// Retrieval
// ---------------------------------------------------------------------------

Result<std::vector<Oid>> CgTree::Search(
    const Value& lo, const Value& hi,
    const std::vector<ClassId>& sets) const {
  const std::string enc_lo = EncodeKey(lo);
  const std::string enc_hi = EncodeKey(hi);

  std::vector<Oid> out;
  for (const ClassId set : sets) {
    Result<PageId> start = FindStart(set, Slice(enc_lo));
    if (!start.ok()) return start.status();
    PageId id = start.value();
    while (id != kInvalidPageId) {
      Result<DataPage> loaded = LoadDataPage(id);
      if (!loaded.ok()) return loaded.status();
      const DataPage page = std::move(loaded).value();
      bool past_hi = false;
      for (const DataRecord& r : page.records) {
        if (Slice(r.key) < Slice(enc_lo)) continue;
        if (Slice(enc_hi) < Slice(r.key)) {
          past_hi = true;
          break;
        }
        out.insert(out.end(), r.oids.begin(), r.oids.end());
      }
      if (past_hi) break;
      id = page.next;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

Result<CgTree::Stats> CgTree::ComputeStats() const {
  Stats stats;
  BTree::Iterator it = directory_.NewIterator();
  // Uncounted-ish: the directory iterator charges reads; snapshot and
  // restore is unnecessary for tests, which reset stats themselves.
  std::vector<PageId> heads;
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    ++stats.directory_entries;
    const Slice dir_key = it.key();
    // Chain heads are pages with no predecessor; count pages via records.
    const PageId id = static_cast<PageId>(DecodeFixed32(it.value().data()));
    Result<DataPage> page = LoadDataPageUncounted(id);
    if (!page.ok()) return page.status();
    ++stats.data_pages;
    for (const DataRecord& r : page.value().records) {
      stats.postings += r.oids.size();
    }
    (void)dir_key;
  }
  return stats;
}

Status CgTree::Validate() const {
  BTree::Iterator it = directory_.NewIterator();
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    const PageId id = static_cast<PageId>(DecodeFixed32(it.value().data()));
    Result<DataPage> loaded = LoadDataPageUncounted(id);
    if (!loaded.ok()) return loaded.status();
    const DataPage& page = loaded.value();
    if (page.dir_key != it.key().ToString()) {
      return Status::Corruption("CG page dir_key out of sync");
    }
    if (page.SerializedSize() > buffers_->page_size()) {
      return Status::Corruption("CG page oversized");
    }
    // Records sorted, and sorted across the chain boundary.
    for (size_t i = 1; i < page.records.size(); ++i) {
      if (Slice(page.records[i].key) < Slice(page.records[i - 1].key)) {
        return Status::Corruption("CG records out of order");
      }
    }
    if (page.records.empty()) {
      return Status::Corruption("empty CG page still linked");
    }
    if (page.next != kInvalidPageId) {
      Result<DataPage> next = LoadDataPageUncounted(page.next);
      if (!next.ok()) return next.status();
      if (next.value().set != page.set) {
        return Status::Corruption("CG chain crosses sets");
      }
      if (next.value().prev != id) {
        return Status::Corruption("CG chain prev link broken");
      }
      if (!next.value().records.empty() &&
          Slice(next.value().records.front().key) <
              Slice(page.records.back().key)) {
        return Status::Corruption("CG chain keys out of order");
      }
    }
  }
  return Status::OK();
}

}  // namespace uindex
