#ifndef UINDEX_BASELINES_RECORD_CODEC_H_
#define UINDEX_BASELINES_RECORD_CODEC_H_

#include <string>

#include "storage/buffer_manager.h"
#include "util/slice.h"
#include "util/status.h"

namespace uindex {

/// Inline-or-overflow record payloads for the baseline indexes.
///
/// Key-grouping structures (CH-tree, nested/path index) keep one record per
/// key whose directory can outgrow a node; small payloads embed directly in
/// the B-tree leaf, large ones move to an `OverflowChain` and the leaf holds
/// just the head pointer. Reading a spilled record costs one page read per
/// chain link — the key-grouping tax the experiments measure.
class RecordCodec {
 public:
  /// Stored form: [0x01][payload] (inline) or [0x02][head page id, 4B].
  /// Spills when the payload exceeds `inline_limit` bytes.
  static Result<std::string> Store(BufferManager* buffers,
                                   const Slice& payload,
                                   uint32_t inline_limit);

  /// Recovers the payload (charging chain reads if spilled).
  static Result<std::string> Load(BufferManager* buffers,
                                  const Slice& stored);

  /// Releases the overflow chain, if any.
  static Status Free(BufferManager* buffers, const Slice& stored);
};

}  // namespace uindex

#endif  // UINDEX_BASELINES_RECORD_CODEC_H_
