#include "baselines/pathindex/path_index.h"

#include <algorithm>

#include "baselines/record_codec.h"
#include "core/key_encoding.h"
#include "util/coding.h"

namespace uindex {

PathIndex::PathIndex(BufferManager* buffers, PathSpec spec,
                     BTreeOptions options)
    : buffers_(buffers),
      spec_(std::move(spec)),
      tree_(buffers, options),
      inline_limit_(buffers->page_size() / 4) {}

std::string PathIndex::EncodeKey(const Value& v) const {
  std::string out;
  v.AppendOrderPreserving(&out);
  if (spec_.value_kind == Value::Kind::kString) out.push_back('\0');
  return out;
}

std::string PathIndex::EncodeTuples(
    const std::vector<std::vector<Oid>>& tuples) const {
  std::string out;
  for (const auto& tuple : tuples) {
    for (const Oid o : tuple) PutFixed32(&out, o);
  }
  return out;
}

std::vector<std::vector<Oid>> PathIndex::DecodeTuples(
    const Slice& bytes) const {
  const size_t arity = spec_.Length();
  const size_t stride = 4 * arity;
  std::vector<std::vector<Oid>> tuples;
  for (size_t pos = 0; pos + stride <= bytes.size(); pos += stride) {
    std::vector<Oid> tuple(arity);
    for (size_t i = 0; i < arity; ++i) {
      tuple[i] = DecodeFixed32(bytes.data() + pos + 4 * i);
    }
    tuples.push_back(std::move(tuple));
  }
  return tuples;
}

Result<std::vector<std::vector<Oid>>> PathIndex::LoadTuples(
    const Slice& stored) const {
  Result<std::string> payload = RecordCodec::Load(buffers_, stored);
  if (!payload.ok()) return payload.status();
  return DecodeTuples(Slice(payload.value()));
}

Status PathIndex::BuildFrom(const ObjectStore& store) {
  return ForEachInstantiation(
      store, spec_, [this](const PathInstantiation& inst) {
        return Insert(inst.attr, inst.oids);
      });
}

Status PathIndex::Insert(const Value& key, const std::vector<Oid>& oids) {
  if (oids.size() != spec_.Length()) {
    return Status::InvalidArgument("tuple arity mismatch");
  }
  const std::string k = EncodeKey(key);
  std::vector<std::vector<Oid>> tuples;
  Result<std::string> stored = tree_.Get(Slice(k));
  if (stored.ok()) {
    Result<std::vector<std::vector<Oid>>> loaded =
        LoadTuples(Slice(stored.value()));
    if (!loaded.ok()) return loaded.status();
    tuples = std::move(loaded).value();
    UINDEX_RETURN_IF_ERROR(
        RecordCodec::Free(buffers_, Slice(stored.value())));
  } else if (!stored.status().IsNotFound()) {
    return stored.status();
  }
  tuples.push_back(oids);
  Result<std::string> restored = RecordCodec::Store(
      buffers_, Slice(EncodeTuples(tuples)), inline_limit_);
  if (!restored.ok()) return restored.status();
  return tree_.Put(Slice(k), Slice(restored.value()));
}

Status PathIndex::Remove(const Value& key, const std::vector<Oid>& oids) {
  const std::string k = EncodeKey(key);
  Result<std::string> stored = tree_.Get(Slice(k));
  if (!stored.ok()) return stored.status();
  Result<std::vector<std::vector<Oid>>> loaded =
      LoadTuples(Slice(stored.value()));
  if (!loaded.ok()) return loaded.status();
  auto tuples = std::move(loaded).value();
  auto it = std::find(tuples.begin(), tuples.end(), oids);
  if (it == tuples.end()) return Status::NotFound("tuple");
  tuples.erase(it);
  UINDEX_RETURN_IF_ERROR(RecordCodec::Free(buffers_, Slice(stored.value())));
  if (tuples.empty()) return tree_.Delete(Slice(k));
  Result<std::string> restored = RecordCodec::Store(
      buffers_, Slice(EncodeTuples(tuples)), inline_limit_);
  if (!restored.ok()) return restored.status();
  return tree_.Put(Slice(k), Slice(restored.value()));
}

Result<std::vector<std::vector<Oid>>> PathIndex::Lookup(
    const Value& lo, const Value& hi,
    const std::vector<PositionFilter>& filters) const {
  const std::string klo = EncodeKey(lo);
  const std::string bound = BytesSuccessor(Slice(EncodeKey(hi)));

  std::vector<std::vector<Oid>> out;
  BTree::Iterator it = tree_.NewIterator();
  for (it.Seek(Slice(klo)); it.Valid(); it.Next()) {
    if (!bound.empty() && !(it.key() < Slice(bound))) break;
    Result<std::vector<std::vector<Oid>>> loaded = LoadTuples(it.value());
    if (!loaded.ok()) return loaded.status();
    for (auto& tuple : loaded.value()) {
      bool pass = true;
      for (const PositionFilter& f : filters) {
        if (f.position >= tuple.size() ||
            std::find(f.oids.begin(), f.oids.end(), tuple[f.position]) ==
                f.oids.end()) {
          pass = false;
          break;
        }
      }
      if (pass) out.push_back(std::move(tuple));
    }
  }
  return out;
}

}  // namespace uindex
