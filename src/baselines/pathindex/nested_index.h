#ifndef UINDEX_BASELINES_PATHINDEX_NESTED_INDEX_H_
#define UINDEX_BASELINES_PATHINDEX_NESTED_INDEX_H_

#include <functional>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "core/index_spec.h"
#include "objects/object_store.h"
#include "storage/buffer_manager.h"

namespace uindex {

/// One complete path instantiation: `oids[0]` is the head object, the last
/// element the tail object owning the indexed attribute; `attr` is that
/// attribute's value.
struct PathInstantiation {
  Value attr;
  std::vector<Oid> oids;  // head → tail.
};

/// Enumerates every complete instantiation of `spec` in `store`, invoking
/// `fn` for each. Shared by the nested- and path-index baselines.
Status ForEachInstantiation(
    const ObjectStore& store, const PathSpec& spec,
    const std::function<Status(const PathInstantiation&)>& fn);

/// The *nested index* of Kim/Bertino ([1] in the paper): maps each value of
/// the nested attribute directly to the oids of the *head* class objects
/// reachable through the path. Fast for head-only queries; cannot answer
/// predicates about in-path classes at all (that needs a path index), and
/// updates must recompute reachability (not modelled here — the paper's
/// comparison is retrieval-side).
class NestedIndex {
 public:
  NestedIndex(BufferManager* buffers, PathSpec spec,
              BTreeOptions options = BTreeOptions());

  const PathSpec& spec() const { return spec_; }

  /// Populates from every complete path instantiation.
  Status BuildFrom(const ObjectStore& store);

  /// Adds/removes one (value, head oid) posting.
  Status Insert(const Value& key, Oid head_oid);
  Status Remove(const Value& key, Oid head_oid);

  /// Head-class oids whose path reaches a value in [lo, hi].
  Result<std::vector<Oid>> Lookup(const Value& lo, const Value& hi) const;

  const BTree& btree() const { return tree_; }

 private:
  std::string EncodeKey(const Value& v) const;

  BufferManager* buffers_;
  PathSpec spec_;
  BTree tree_;
  uint32_t inline_limit_;
};

}  // namespace uindex

#endif  // UINDEX_BASELINES_PATHINDEX_NESTED_INDEX_H_
