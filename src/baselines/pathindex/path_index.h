#ifndef UINDEX_BASELINES_PATHINDEX_PATH_INDEX_H_
#define UINDEX_BASELINES_PATHINDEX_PATH_INDEX_H_

#include <string>
#include <vector>

#include "baselines/pathindex/nested_index.h"
#include "btree/btree.h"
#include "core/index_spec.h"
#include "objects/object_store.h"
#include "storage/buffer_manager.h"

namespace uindex {

/// The *path index* of Kim/Bertino ([1] in the paper): maps each value of
/// the nested attribute to the full list of path instantiations reaching
/// it, so predicates on in-path classes can be answered — at the price of
/// materializing (and scanning) every tuple under a key. Tuples spill into
/// overflow chains, the "search of many index pages" the paper attributes
/// to in-path predicates (§2).
class PathIndex {
 public:
  /// Restricts one path position to a set of oids during lookup.
  struct PositionFilter {
    size_t position = 0;  ///< 0 = head class.
    std::vector<Oid> oids;
  };

  PathIndex(BufferManager* buffers, PathSpec spec,
            BTreeOptions options = BTreeOptions());

  const PathSpec& spec() const { return spec_; }

  /// Populates from every complete path instantiation.
  Status BuildFrom(const ObjectStore& store);

  /// Adds/removes one instantiation (`oids` head → tail, full length).
  Status Insert(const Value& key, const std::vector<Oid>& oids);
  Status Remove(const Value& key, const std::vector<Oid>& oids);

  /// Instantiations with value in [lo, hi] passing all `filters`.
  Result<std::vector<std::vector<Oid>>> Lookup(
      const Value& lo, const Value& hi,
      const std::vector<PositionFilter>& filters = {}) const;

  const BTree& btree() const { return tree_; }

 private:
  std::string EncodeKey(const Value& v) const;
  std::string EncodeTuples(const std::vector<std::vector<Oid>>& tuples) const;
  std::vector<std::vector<Oid>> DecodeTuples(const Slice& bytes) const;
  Result<std::vector<std::vector<Oid>>> LoadTuples(
      const Slice& stored) const;

  BufferManager* buffers_;
  PathSpec spec_;
  BTree tree_;
  uint32_t inline_limit_;
};

}  // namespace uindex

#endif  // UINDEX_BASELINES_PATHINDEX_PATH_INDEX_H_
