#include "baselines/pathindex/nested_index.h"

#include <algorithm>

#include "baselines/record_codec.h"
#include "core/key_encoding.h"
#include "util/coding.h"

namespace uindex {

Status ForEachInstantiation(
    const ObjectStore& store, const PathSpec& spec,
    const std::function<Status(const PathInstantiation&)>& fn) {
  const Schema& schema = store.schema();
  const std::vector<Oid> heads = spec.include_subclasses
                                     ? store.DeepExtentOf(spec.classes[0])
                                     : store.ExtentOf(spec.classes[0]);

  // Depth-first expansion of the reference chain from each head object.
  struct Walker {
    const ObjectStore* store;
    const Schema* schema;
    const PathSpec* spec;
    const std::function<Status(const PathInstantiation&)>* fn;
    std::vector<Oid> chain;

    Status Expand(size_t pos, Oid oid) {
      Result<const Object*> obj = store->Get(oid);
      if (!obj.ok()) return Status::OK();  // Dangling reference.
      const ClassId expected = spec->classes[pos];
      const bool fits = spec->include_subclasses
                            ? schema->IsSubclassOf(obj.value()->cls, expected)
                            : obj.value()->cls == expected;
      if (!fits) return Status::OK();
      chain.push_back(oid);
      Status status = Status::OK();
      if (pos + 1 == spec->classes.size()) {
        const Value* attr = obj.value()->FindAttr(spec->indexed_attr);
        if (attr != nullptr && attr->kind() == spec->value_kind) {
          status = (*fn)(PathInstantiation{*attr, chain});
        }
      } else {
        const Value* ref = obj.value()->FindAttr(spec->ref_attrs[pos]);
        if (ref != nullptr) {
          if (ref->kind() == Value::Kind::kRef) {
            status = Expand(pos + 1, ref->AsRef());
          } else if (ref->kind() == Value::Kind::kRefSet) {
            for (const Oid t : ref->AsRefSet()) {
              status = Expand(pos + 1, t);
              if (!status.ok()) break;
            }
          }
        }
      }
      chain.pop_back();
      return status;
    }
  };

  Walker walker{&store, &schema, &spec, &fn, {}};
  for (const Oid head : heads) {
    UINDEX_RETURN_IF_ERROR(walker.Expand(0, head));
  }
  return Status::OK();
}

NestedIndex::NestedIndex(BufferManager* buffers, PathSpec spec,
                         BTreeOptions options)
    : buffers_(buffers),
      spec_(std::move(spec)),
      tree_(buffers, options),
      inline_limit_(buffers->page_size() / 4) {}

std::string NestedIndex::EncodeKey(const Value& v) const {
  std::string out;
  v.AppendOrderPreserving(&out);
  if (spec_.value_kind == Value::Kind::kString) out.push_back('\0');
  return out;
}

Status NestedIndex::BuildFrom(const ObjectStore& store) {
  return ForEachInstantiation(
      store, spec_, [this](const PathInstantiation& inst) {
        return Insert(inst.attr, inst.oids.front());
      });
}

Status NestedIndex::Insert(const Value& key, Oid head_oid) {
  const std::string k = EncodeKey(key);
  std::vector<Oid> oids;
  Result<std::string> stored = tree_.Get(Slice(k));
  if (stored.ok()) {
    Result<std::string> payload =
        RecordCodec::Load(buffers_, Slice(stored.value()));
    if (!payload.ok()) return payload.status();
    const std::string& bytes = payload.value();
    oids.resize(bytes.size() / 4);
    for (size_t i = 0; i < oids.size(); ++i) {
      oids[i] = DecodeFixed32(bytes.data() + 4 * i);
    }
    UINDEX_RETURN_IF_ERROR(
        RecordCodec::Free(buffers_, Slice(stored.value())));
  } else if (!stored.status().IsNotFound()) {
    return stored.status();
  }
  oids.push_back(head_oid);
  std::string payload;
  for (const Oid o : oids) PutFixed32(&payload, o);
  Result<std::string> restored =
      RecordCodec::Store(buffers_, Slice(payload), inline_limit_);
  if (!restored.ok()) return restored.status();
  return tree_.Put(Slice(k), Slice(restored.value()));
}

Status NestedIndex::Remove(const Value& key, Oid head_oid) {
  const std::string k = EncodeKey(key);
  Result<std::string> stored = tree_.Get(Slice(k));
  if (!stored.ok()) return stored.status();
  Result<std::string> payload =
      RecordCodec::Load(buffers_, Slice(stored.value()));
  if (!payload.ok()) return payload.status();
  const std::string& bytes = payload.value();
  std::vector<Oid> oids(bytes.size() / 4);
  for (size_t i = 0; i < oids.size(); ++i) {
    oids[i] = DecodeFixed32(bytes.data() + 4 * i);
  }
  auto it = std::find(oids.begin(), oids.end(), head_oid);
  if (it == oids.end()) return Status::NotFound("posting");
  oids.erase(it);
  UINDEX_RETURN_IF_ERROR(RecordCodec::Free(buffers_, Slice(stored.value())));
  if (oids.empty()) return tree_.Delete(Slice(k));
  std::string out;
  for (const Oid o : oids) PutFixed32(&out, o);
  Result<std::string> restored =
      RecordCodec::Store(buffers_, Slice(out), inline_limit_);
  if (!restored.ok()) return restored.status();
  return tree_.Put(Slice(k), Slice(restored.value()));
}

Result<std::vector<Oid>> NestedIndex::Lookup(const Value& lo,
                                             const Value& hi) const {
  const std::string klo = EncodeKey(lo);
  const std::string bound = BytesSuccessor(Slice(EncodeKey(hi)));
  std::vector<Oid> out;
  BTree::Iterator it = tree_.NewIterator();
  for (it.Seek(Slice(klo)); it.Valid(); it.Next()) {
    if (!bound.empty() && !(it.key() < Slice(bound))) break;
    Result<std::string> payload = RecordCodec::Load(buffers_, it.value());
    if (!payload.ok()) return payload.status();
    const std::string& bytes = payload.value();
    for (size_t i = 0; i + 4 <= bytes.size(); i += 4) {
      out.push_back(DecodeFixed32(bytes.data() + i));
    }
  }
  return out;
}

}  // namespace uindex
