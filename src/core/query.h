#ifndef UINDEX_CORE_QUERY_H_
#define UINDEX_CORE_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/key_encoding.h"
#include "objects/object.h"
#include "schema/schema.h"
#include "util/slice.h"
#include "util/status.h"

namespace uindex {

/// A half-open byte-string interval [lo, hi); empty `hi` means +infinity.
struct ByteInterval {
  std::string lo;
  std::string hi;
};

/// Selects classes at one path position of a query (paper §3.4: "Class-code
/// ... may be a regular expression"). `include` terms are OR-ed; an empty
/// `include` admits every class. `exclude` terms veto (the paper's query 4,
/// "all vehicles which are not compact automobiles").
struct ClassSelector {
  struct Term {
    ClassId cls = kInvalidClassId;
    /// True: the class and its whole sub-tree (the paper's `C5A*`).
    bool with_subclasses = false;
  };

  std::vector<Term> include;
  std::vector<Term> exclude;

  /// Raw class-code byte ranges this position is additionally restricted
  /// to, intersected with whatever `include`/`exclude` admit. The COD
  /// encoding keeps every class sub-tree a contiguous code range, so a
  /// horizontal shard's served slice [lo, hi) — class-code boundaries, not
  /// ClassIds — plugs in here without naming classes (a boundary may even
  /// split a sub-tree mid-range). Empty = no restriction.
  std::vector<ByteInterval> code_ranges;

  static ClassSelector Any() { return ClassSelector{}; }
  static ClassSelector Exactly(ClassId cls) {
    return ClassSelector{{{cls, false}}, {}, {}};
  }
  static ClassSelector Subtree(ClassId cls) {
    return ClassSelector{{{cls, true}}, {}, {}};
  }
};

/// Constrains the object at one path position (the paper's `Val_i`):
/// unconstrained (null), bound to given oids (an "actual value", possibly a
/// pre-selected set as in path query 3), or wanted in the output (`?`).
struct ValueSlot {
  enum class Kind { kAny, kBound, kWanted };
  Kind kind = Kind::kAny;
  std::vector<Oid> oids;  ///< For kBound; kept sorted by Compile.

  static ValueSlot Any() { return ValueSlot{}; }
  static ValueSlot Wanted() { return ValueSlot{Kind::kWanted, {}}; }
  static ValueSlot Bound(std::vector<Oid> oids) {
    return ValueSlot{Kind::kBound, std::move(oids)};
  }
};

/// One query component — the pair (class-code pattern, value) of the
/// paper's general query format (§3.4).
struct QueryComponent {
  ClassSelector selector;
  ValueSlot slot;
};

/// A query against a U-index:
///
///   (attr-value, Class-code₁, Val₁, Class-code₂, Val₂, …)
///
/// `components` run tail → head, mirroring the key layout, and may cover
/// only a prefix of the indexed path (partial-path queries, e.g. the
/// paper's "find all companies whose President's age is 50" against the
/// Vehicle path index).
struct Query {
  Value lo;  ///< Inclusive lower attribute bound.
  Value hi;  ///< Inclusive upper attribute bound (== lo for exact match).
  /// Explicit value set (the paper's "predicate" / value-list case, e.g.
  /// colors {Red, Blue}). When non-empty it replaces [lo, hi]; each value
  /// becomes its own family of partial keys.
  std::vector<Value> values;
  std::vector<QueryComponent> components;

  static Query ExactValue(Value v) {
    Query q;
    q.lo = v;
    q.hi = std::move(v);
    return q;
  }
  static Query Range(Value lo, Value hi) {
    Query q;
    q.lo = std::move(lo);
    q.hi = std::move(hi);
    return q;
  }
  static Query AnyOf(std::vector<Value> values) {
    Query q;
    q.values = std::move(values);
    return q;
  }

  /// Appends a component and returns *this for chaining.
  Query& With(ClassSelector selector, ValueSlot slot = ValueSlot::Any()) {
    components.push_back(QueryComponent{std::move(selector), std::move(slot)});
    return *this;
  }
};

/// Rows produced by a query: one oid chain (tail → head, as in the key) per
/// matched index entry. For *partial-path* queries (fewer components than
/// the path has positions) a row holds only the queried positions and each
/// distinct binding appears once — the retrieval algorithms skip over the
/// unqueried tail using the parent-node keys (paper §3.3, query 4
/// discussion).
struct QueryResult {
  std::vector<std::vector<Oid>> rows;
  uint64_t entries_scanned = 0;  ///< Leaf entries examined by the scan.

  /// Distinct oids bound at key position `i`, sorted ascending.
  std::vector<Oid> Distinct(size_t key_position) const;
};

/// A query compiled against a concrete index: the sorted, disjoint list of
/// key intervals ("partial keys", paper Algorithm 1) to search, plus an
/// exact per-entry match predicate.
///
/// Interval construction follows §3.4: enumerable attribute ranges expand
/// value by value; class selectors append code prefixes (sub-tree terms use
/// the code range [code, SubtreeUpperBound)); bound-oid slots extend the
/// prefix through `$oid`; exclusions subtract their code ranges. Components
/// that cannot extend a prefix (unconstrained oids, wildcard classes) end
/// prefix growth — the remaining constraints are enforced by `Matches`.
class CompiledQuery {
 public:
  /// Compiles `query` for the index described by `encoder`. Fails on
  /// malformed queries (more components than the path has positions, bound
  /// slots without oids, value kind mismatches).
  static Result<CompiledQuery> Compile(const Query& query,
                                       const KeyEncoder& encoder,
                                       const Schema& schema);

  /// Sorted, disjoint search intervals. Never empty for a valid query.
  const std::vector<ByteInterval>& intervals() const { return intervals_; }

  /// The source query this plan was compiled from.
  const Query& query() const { return query_; }

  /// The smallest interval covering all search intervals (what a pure
  /// forward scan must sweep).
  const ByteInterval& full_span() const { return full_span_; }

  /// Exact predicate: does this index key satisfy the query? On success
  /// `decoded` (if non-null) receives the parsed key.
  bool Matches(const Slice& key, DecodedKey* decoded) const;

  /// True when the query constrains only a prefix of the indexed path, so
  /// retrieval may skip the clustered unqueried tail after each match.
  bool is_partial() const;

  /// Byte length of `key`'s prefix covering the attribute image and the
  /// queried components (the "distinct prefix" of partial-path queries).
  Result<size_t> QueriedPrefixLength(const Slice& key) const;

  /// True if *no* key starting with `prefix` can match the query. This is
  /// the paper's parent-node pruning (§3.3/§3.4): all keys inside a B-tree
  /// child gap share the byte prefix common to the gap's bounding
  /// separators, so a violated prefix rules out the whole child.
  bool PrefixExcludes(const Slice& prefix) const;

  /// Upper bound used when expanding enumerable attribute ranges; ranges
  /// wider than this fall back to a single covering interval.
  static constexpr int64_t kMaxEnumeratedValues = 1 << 18;

 private:
  CompiledQuery() = default;

  const KeyEncoder* encoder_ = nullptr;
  const Schema* schema_ = nullptr;
  Query query_;
  std::string attr_lo_;  ///< Encoded inclusive lower attribute image.
  std::string attr_hi_;  ///< Encoded inclusive upper attribute image.
  /// Sorted encoded images of an explicit value set (empty for ranges).
  std::vector<std::string> attr_images_;
  /// Per component: allowed code-level byte ranges within the component's
  /// key segment (sorted, disjoint; empty = any class allowed). Used by
  /// PrefixExcludes for partially-covered components.
  std::vector<std::vector<ByteInterval>> component_ranges_;
  std::vector<ByteInterval> intervals_;
  ByteInterval full_span_;
};

}  // namespace uindex

#endif  // UINDEX_CORE_QUERY_H_
