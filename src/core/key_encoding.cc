#include "core/key_encoding.h"

#include "schema/class_code.h"
#include "util/coding.h"
#include "util/hex.h"

namespace uindex {

std::string BytesSuccessor(const Slice& prefix) {
  std::string out = prefix.ToString();
  while (!out.empty() &&
         static_cast<unsigned char>(out.back()) == 0xFF) {
    out.pop_back();
  }
  if (!out.empty()) ++out.back();
  return out;  // Empty means +infinity.
}

std::string KeyEncoder::EncodeAttrValue(const Value& value) const {
  // The namespace rides in front of every attribute image, so all derived
  // search intervals stay inside this index's slice of a shared tree.
  std::string out = spec_->key_namespace;
  value.AppendOrderPreserving(&out);
  if (spec_->value_kind == Value::Kind::kString) {
    out.push_back('\0');  // Terminator keeps prefix strings sorted first.
  }
  return out;
}

std::string KeyEncoder::EncodeEntry(
    const Value& attr_value,
    const std::vector<std::pair<ClassId, Oid>>& path) const {
  std::string key = EncodeAttrValue(attr_value);
  for (const auto& [cls, oid] : path) {
    key += coder_->CodeOf(cls);
    key.push_back(kCodeOidSeparator);
    PutBigEndian32(&key, oid);
  }
  return key;
}

Result<size_t> KeyEncoder::AttrImageLength(const Slice& key) const {
  const size_t ns = spec_->key_namespace.size();
  switch (spec_->value_kind) {
    case Value::Kind::kInt:
      if (key.size() < ns + 8) return Status::Corruption("short int key");
      return ns + 8;
    case Value::Kind::kString: {
      for (size_t i = ns; i < key.size(); ++i) {
        if (key[i] == '\0') return i + 1;
      }
      return Status::Corruption("unterminated string key");
    }
    default:
      return Status::NotSupported("unsupported indexed value kind");
  }
}

Result<DecodedKey> KeyEncoder::Decode(const Slice& key) const {
  Result<size_t> attr_len = AttrImageLength(key);
  if (!attr_len.ok()) return attr_len.status();

  DecodedKey out;
  out.attr_bytes.assign(key.data(), attr_len.value());
  Slice rest(key.data() + attr_len.value(), key.size() - attr_len.value());
  while (!rest.empty()) {
    size_t sep = 0;
    while (sep < rest.size() && rest[sep] != kCodeOidSeparator) ++sep;
    if (sep == rest.size() || sep == 0) {
      return Status::Corruption("malformed key component in " +
                                EscapeBytes(key));
    }
    if (rest.size() < sep + 1 + 4) {
      return Status::Corruption("truncated oid in " + EscapeBytes(key));
    }
    KeyComponent comp;
    comp.code.assign(rest.data(), sep);
    comp.oid = DecodeBigEndian32(rest.data() + sep + 1);
    out.components.push_back(std::move(comp));
    rest.RemovePrefix(sep + 1 + 4);
  }
  return out;
}

}  // namespace uindex
