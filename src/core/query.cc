#include "core/query.h"

#include <algorithm>
#include <cassert>

#include "schema/class_code.h"
#include "util/coding.h"

namespace uindex {

namespace {

bool HiIsInf(const ByteInterval& iv) { return iv.hi.empty(); }

// Sorts intervals and merges overlapping/adjacent ones.
std::vector<ByteInterval> Normalize(std::vector<ByteInterval> ivs) {
  std::sort(ivs.begin(), ivs.end(),
            [](const ByteInterval& a, const ByteInterval& b) {
              return Slice(a.lo) < Slice(b.lo);
            });
  std::vector<ByteInterval> out;
  for (ByteInterval& iv : ivs) {
    if (!HiIsInf(iv) && !(Slice(iv.lo) < Slice(iv.hi))) continue;  // empty
    if (!out.empty()) {
      ByteInterval& last = out.back();
      // Merge if the previous interval reaches (or passes) this one's start.
      if (HiIsInf(last) || !(Slice(last.hi) < Slice(iv.lo))) {
        if (!HiIsInf(last) &&
            (HiIsInf(iv) || Slice(last.hi) < Slice(iv.hi))) {
          last.hi = std::move(iv.hi);
        }
        continue;
      }
    }
    out.push_back(std::move(iv));
  }
  return out;
}

// Removes `cuts` (normalized) from `base` (normalized); both sorted.
std::vector<ByteInterval> Subtract(const std::vector<ByteInterval>& base,
                                   const std::vector<ByteInterval>& cuts) {
  if (cuts.empty()) return base;
  std::vector<ByteInterval> out;
  for (const ByteInterval& iv : base) {
    std::string lo = iv.lo;
    bool alive = true;
    for (const ByteInterval& cut : cuts) {
      if (!alive) break;
      // No overlap if cut ends at/before lo or starts at/after iv.hi.
      if (!HiIsInf(cut) && !(Slice(lo) < Slice(cut.hi))) continue;
      if (!HiIsInf(iv) && !(Slice(cut.lo) < Slice(iv.hi))) continue;
      if (Slice(lo) < Slice(cut.lo)) {
        out.push_back({lo, cut.lo});
      }
      if (HiIsInf(cut)) {
        alive = false;
      } else {
        lo = cut.hi;
        if (!HiIsInf(iv) && !(Slice(lo) < Slice(iv.hi))) alive = false;
      }
    }
    if (alive) out.push_back({lo, iv.hi});
  }
  return Normalize(std::move(out));
}

// Intersects two normalized interval lists.
std::vector<ByteInterval> Intersect(const std::vector<ByteInterval>& a,
                                    const std::vector<ByteInterval>& b) {
  std::vector<ByteInterval> out;
  for (const ByteInterval& x : a) {
    for (const ByteInterval& y : b) {
      const std::string& lo = Slice(x.lo) < Slice(y.lo) ? y.lo : x.lo;
      std::string hi;
      if (HiIsInf(x)) {
        hi = y.hi;
      } else if (HiIsInf(y)) {
        hi = x.hi;
      } else {
        hi = Slice(x.hi) < Slice(y.hi) ? x.hi : y.hi;
      }
      if (hi.empty() || Slice(lo) < Slice(hi)) out.push_back({lo, hi});
    }
  }
  return Normalize(std::move(out));
}

// True when class code `code` lies in one of `ranges` ([lo, hi) bytewise,
// empty hi = +infinity). Code ranges at sub-tree (or finer) granularity
// make this plain byte comparison: a descendant's code never sorts outside
// its ancestor's [code, SubtreeUpperBound) span.
bool CodeInRanges(const Slice& code, const std::vector<ByteInterval>& ranges) {
  for (const ByteInterval& r : ranges) {
    if (code < Slice(r.lo)) continue;
    if (r.hi.empty() || code < Slice(r.hi)) return true;
  }
  return false;
}

}  // namespace

std::vector<Oid> QueryResult::Distinct(size_t key_position) const {
  std::vector<Oid> out;
  for (const auto& row : rows) {
    if (key_position < row.size()) out.push_back(row[key_position]);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<CompiledQuery> CompiledQuery::Compile(const Query& query,
                                             const KeyEncoder& encoder,
                                             const Schema& schema) {
  const PathSpec& spec = encoder.spec();
  if (query.components.size() > spec.Length()) {
    return Status::InvalidArgument("query has more components than the path");
  }
  if (query.values.empty() && (query.lo.kind() != spec.value_kind ||
                               query.hi.kind() != spec.value_kind)) {
    return Status::InvalidArgument("attribute bound kind mismatch");
  }

  CompiledQuery out;
  out.encoder_ = &encoder;
  out.schema_ = &schema;
  out.query_ = query;
  if (!query.values.empty()) {
    // Explicit value set ("predicate" case): every value is enumerated.
    for (const Value& v : query.values) {
      if (v.kind() != spec.value_kind) {
        return Status::InvalidArgument("value kind mismatch in value set");
      }
      out.attr_images_.push_back(encoder.EncodeAttrValue(v));
    }
    std::sort(out.attr_images_.begin(), out.attr_images_.end());
    out.attr_images_.erase(
        std::unique(out.attr_images_.begin(), out.attr_images_.end()),
        out.attr_images_.end());
    out.attr_lo_ = out.attr_images_.front();
    out.attr_hi_ = out.attr_images_.back();
  } else {
    out.attr_lo_ = encoder.EncodeAttrValue(query.lo);
    out.attr_hi_ = encoder.EncodeAttrValue(query.hi);
  }
  if (Slice(out.attr_hi_) < Slice(out.attr_lo_)) {
    return Status::InvalidArgument("empty attribute range");
  }
  for (QueryComponent& comp : out.query_.components) {
    if (comp.slot.kind == ValueSlot::Kind::kBound) {
      if (comp.slot.oids.empty()) {
        return Status::InvalidArgument("bound slot without oids");
      }
      std::sort(comp.slot.oids.begin(), comp.slot.oids.end());
      comp.slot.oids.erase(
          std::unique(comp.slot.oids.begin(), comp.slot.oids.end()),
          comp.slot.oids.end());
    }
    for (const auto& term : comp.selector.include) {
      if (!schema.IsValidClass(term.cls)) {
        return Status::InvalidArgument("bad class in selector");
      }
    }
  }

  // --- Per-component code ranges for parent-node pruning
  // (PrefixExcludes). ---
  const ClassCoder& coder = encoder.coder();
  for (const QueryComponent& comp : out.query_.components) {
    std::vector<ByteInterval> cuts;
    for (const auto& term : comp.selector.exclude) {
      const std::string& code = coder.CodeOf(term.cls);
      if (term.with_subclasses) {
        cuts.push_back({code, SubtreeUpperBound(Slice(code))});
      } else {
        std::string lo = code + kCodeOidSeparator;
        cuts.push_back({lo, BytesSuccessor(Slice(lo))});
      }
    }
    cuts = Normalize(std::move(cuts));
    std::vector<ByteInterval> ranges;
    if (!comp.selector.include.empty()) {
      for (const auto& term : comp.selector.include) {
        const std::string& code = coder.CodeOf(term.cls);
        if (term.with_subclasses) {
          ranges.push_back({code, SubtreeUpperBound(Slice(code))});
        } else {
          std::string lo = code + kCodeOidSeparator;
          std::string hi = BytesSuccessor(Slice(lo));
          ranges.push_back({std::move(lo), std::move(hi)});
        }
      }
      ranges = Subtract(Normalize(std::move(ranges)), cuts);
    }
    if (!comp.selector.code_ranges.empty()) {
      // Raw code-range restriction (sharding): intersect with whatever the
      // class terms admit; with no include terms the ranges stand alone
      // (minus exclusions).
      std::vector<ByteInterval> served =
          Normalize(std::vector<ByteInterval>(comp.selector.code_ranges));
      ranges = comp.selector.include.empty() ? Subtract(served, cuts)
                                             : Intersect(ranges, served);
    }
    out.component_ranges_.push_back(std::move(ranges));
  }

  // --- Expand the attribute predicate into per-value prefixes
  // (Algorithm 1: "extract next j values for the range") when enumerable.
  std::vector<std::string> prefixes;
  if (!out.attr_images_.empty()) {
    prefixes = out.attr_images_;
  } else {
    const bool exact_value = out.attr_lo_ == out.attr_hi_;
    bool enumerable = exact_value;
    if (!enumerable && spec.value_kind == Value::Kind::kInt) {
      const uint64_t span = static_cast<uint64_t>(query.hi.AsInt()) -
                            static_cast<uint64_t>(query.lo.AsInt());
      enumerable = span < static_cast<uint64_t>(kMaxEnumeratedValues);
    }
    if (!enumerable) {
      // Wide/opaque range: one covering interval; classes filter at the
      // leaf.
      out.intervals_ =
          Normalize({{out.attr_lo_, BytesSuccessor(Slice(out.attr_hi_))}});
      out.full_span_ = out.intervals_.front();
      return out;
    }
    if (exact_value) {
      prefixes.push_back(out.attr_lo_);
    } else {
      for (int64_t v = query.lo.AsInt();; ++v) {
        prefixes.push_back(encoder.EncodeAttrValue(Value::Int(v)));
        if (v == query.hi.AsInt()) break;
      }
    }
  }

  // --- Extend prefixes through the components while they stay prefixes
  // (exact class + bound oid); otherwise emit the component's code ranges
  // and stop. ---
  std::vector<ByteInterval> intervals;
  bool prefixes_alive = true;
  for (const QueryComponent& comp : out.query_.components) {
    if (comp.selector.include.empty() && comp.selector.code_ranges.empty()) {
      break;
    }
    if (comp.selector.include.empty()) {
      // Pure code-range restriction (a shard's served slice with no class
      // terms): materialize [prefix+lo, prefix+hi) per range and stop —
      // ranges are contiguous code spans, never single-class prefixes, so
      // the prefix cannot extend further.
      std::vector<ByteInterval> rel_cuts;
      for (const auto& term : comp.selector.exclude) {
        const std::string& code = coder.CodeOf(term.cls);
        if (term.with_subclasses) {
          rel_cuts.push_back({code, SubtreeUpperBound(Slice(code))});
        } else {
          std::string lo = code + kCodeOidSeparator;
          rel_cuts.push_back({lo, BytesSuccessor(Slice(lo))});
        }
      }
      for (const std::string& p : prefixes) {
        std::vector<ByteInterval> local;
        for (const ByteInterval& r : comp.selector.code_ranges) {
          std::string lo = p + r.lo;
          std::string hi = r.hi.empty() ? BytesSuccessor(Slice(p)) : p + r.hi;
          local.push_back({std::move(lo), std::move(hi)});
        }
        std::vector<ByteInterval> cuts;
        for (const ByteInterval& cut : rel_cuts) {
          cuts.push_back({p + cut.lo, p + cut.hi});
        }
        local =
            Subtract(Normalize(std::move(local)), Normalize(std::move(cuts)));
        intervals.insert(intervals.end(), local.begin(), local.end());
      }
      prefixes_alive = false;
      break;
    }

    // Relative code extensions for the include terms.
    struct Ext {
      std::string bytes;  // "code$" (exact) or "code" (sub-tree).
      bool exact;
    };
    std::vector<Ext> exts;
    bool all_exact = true;
    for (const auto& term : comp.selector.include) {
      const std::string& code = coder.CodeOf(term.cls);
      const bool subtree =
          term.with_subclasses && !schema.SubclassesOf(term.cls).empty();
      if (subtree) {
        exts.push_back({code, false});
        all_exact = false;
      } else {
        exts.push_back({code + kCodeOidSeparator, true});
      }
    }
    // Relative exclusion ranges.
    std::vector<ByteInterval> rel_cuts;
    for (const auto& term : comp.selector.exclude) {
      const std::string& code = coder.CodeOf(term.cls);
      if (term.with_subclasses) {
        rel_cuts.push_back({code, SubtreeUpperBound(Slice(code))});
      } else {
        std::string lo = code + kCodeOidSeparator;
        rel_cuts.push_back({lo, BytesSuccessor(Slice(lo))});
      }
    }

    const bool can_continue = all_exact && rel_cuts.empty() &&
                              comp.selector.code_ranges.empty() &&
                              comp.slot.kind == ValueSlot::Kind::kBound;
    if (can_continue) {
      std::vector<std::string> next;
      next.reserve(prefixes.size() * exts.size() * comp.slot.oids.size());
      for (const std::string& p : prefixes) {
        for (const Ext& ext : exts) {
          for (const Oid oid : comp.slot.oids) {
            std::string np = p + ext.bytes;
            PutBigEndian32(&np, oid);
            next.push_back(std::move(np));
          }
        }
      }
      prefixes = std::move(next);
      continue;
    }

    // Terminal component: materialize intervals (minus exclusions,
    // clipped to any raw code-range restriction).
    for (const std::string& p : prefixes) {
      std::vector<ByteInterval> local;
      for (const Ext& ext : exts) {
        std::string lo = p + ext.bytes;
        std::string hi = BytesSuccessor(Slice(lo));
        local.push_back({std::move(lo), std::move(hi)});
      }
      std::vector<ByteInterval> cuts;
      for (const ByteInterval& cut : rel_cuts) {
        cuts.push_back({p + cut.lo, p + cut.hi});
      }
      local = Subtract(Normalize(std::move(local)), Normalize(std::move(cuts)));
      if (!comp.selector.code_ranges.empty()) {
        std::vector<ByteInterval> served;
        for (const ByteInterval& r : comp.selector.code_ranges) {
          served.push_back(
              {p + r.lo,
               r.hi.empty() ? BytesSuccessor(Slice(p)) : p + r.hi});
        }
        local = Intersect(local, Normalize(std::move(served)));
      }
      intervals.insert(intervals.end(), local.begin(), local.end());
    }
    prefixes_alive = false;
    break;
  }

  if (prefixes_alive) {
    for (const std::string& p : prefixes) {
      intervals.push_back({p, BytesSuccessor(Slice(p))});
    }
  }
  out.intervals_ = Normalize(std::move(intervals));
  if (out.intervals_.empty()) {
    // Exclusions annihilated everything; keep a degenerate empty span so
    // scans terminate immediately.
    out.full_span_ = {out.attr_lo_, out.attr_lo_};
  } else {
    out.full_span_ = {out.intervals_.front().lo, out.intervals_.back().hi};
  }
  return out;
}

bool CompiledQuery::Matches(const Slice& key, DecodedKey* decoded) const {
  Result<DecodedKey> parsed = encoder_->Decode(key);
  if (!parsed.ok()) return false;
  const DecodedKey& dk = parsed.value();

  if (Slice(dk.attr_bytes) < Slice(attr_lo_) ||
      Slice(attr_hi_) < Slice(dk.attr_bytes)) {
    return false;
  }
  if (!attr_images_.empty() &&
      !std::binary_search(attr_images_.begin(), attr_images_.end(),
                          dk.attr_bytes)) {
    return false;
  }
  const ClassCoder& coder = encoder_->coder();
  for (size_t i = 0; i < query_.components.size(); ++i) {
    if (i >= dk.components.size()) return false;
    const QueryComponent& comp = query_.components[i];
    const KeyComponent& kc = dk.components[i];

    if (!comp.selector.include.empty()) {
      bool hit = false;
      for (const auto& term : comp.selector.include) {
        const std::string& code = coder.CodeOf(term.cls);
        hit = term.with_subclasses
                  ? CodeIsSelfOrDescendant(Slice(kc.code), Slice(code))
                  : kc.code == code;
        if (hit) break;
      }
      if (!hit) return false;
    }
    for (const auto& term : comp.selector.exclude) {
      const std::string& code = coder.CodeOf(term.cls);
      const bool hit = term.with_subclasses
                           ? CodeIsSelfOrDescendant(Slice(kc.code),
                                                    Slice(code))
                           : kc.code == code;
      if (hit) return false;
    }
    if (!comp.selector.code_ranges.empty() &&
        !CodeInRanges(Slice(kc.code), comp.selector.code_ranges)) {
      return false;
    }
    if (comp.slot.kind == ValueSlot::Kind::kBound &&
        !std::binary_search(comp.slot.oids.begin(), comp.slot.oids.end(),
                            kc.oid)) {
      return false;
    }
  }
  if (decoded != nullptr) *decoded = dk;
  return true;
}

bool CompiledQuery::is_partial() const {
  return query_.components.size() < encoder_->spec().Length();
}

Result<size_t> CompiledQuery::QueriedPrefixLength(const Slice& key) const {
  Result<size_t> attr_len = encoder_->AttrImageLength(key);
  if (!attr_len.ok()) return attr_len.status();
  size_t pos = attr_len.value();
  for (size_t i = 0; i < query_.components.size(); ++i) {
    size_t sep = pos;
    while (sep < key.size() && key[sep] != kCodeOidSeparator) ++sep;
    if (sep + 1 + 4 > key.size()) {
      return Status::Corruption("key shorter than queried components");
    }
    pos = sep + 1 + 4;
  }
  return pos;
}

bool CompiledQuery::PrefixExcludes(const Slice& prefix) const {
  const PathSpec& spec = encoder_->spec();

  // --- Attribute segment (namespace prefix included in the image). ---
  const size_t ns = spec.key_namespace.size();
  size_t attr_len = 0;
  bool attr_complete = false;
  if (spec.value_kind == Value::Kind::kInt) {
    attr_complete = prefix.size() >= ns + 8;
    attr_len = ns + 8;
  } else {
    for (size_t i = ns; i < prefix.size(); ++i) {
      if (prefix[i] == '\0') {
        attr_complete = true;
        attr_len = i + 1;
        break;
      }
    }
  }
  if (!attr_complete) {
    // Every key below shares `prefix` as a prefix of its attribute image:
    // the images lie in [prefix, BytesSuccessor(prefix)).
    if (!attr_images_.empty()) {
      auto it = std::lower_bound(attr_images_.begin(), attr_images_.end(),
                                 prefix.ToString());
      return it == attr_images_.end() || !Slice(*it).StartsWith(prefix);
    }
    const std::string ub = BytesSuccessor(prefix);
    if (!ub.empty() && !(Slice(attr_lo_) < Slice(ub))) return true;
    if (Slice(attr_hi_) < prefix) return true;
    return false;
  }

  const Slice attr(prefix.data(), attr_len);
  if (attr < Slice(attr_lo_) || Slice(attr_hi_) < attr) return true;
  if (!attr_images_.empty() &&
      !std::binary_search(attr_images_.begin(), attr_images_.end(),
                          attr.ToString())) {
    return true;
  }

  // --- Components. ---
  const ClassCoder& coder = encoder_->coder();
  size_t pos = attr_len;
  for (size_t i = 0; i < query_.components.size(); ++i) {
    if (pos >= prefix.size()) return false;
    const Slice rest(prefix.data() + pos, prefix.size() - pos);
    size_t sep = 0;
    while (sep < rest.size() && rest[sep] != kCodeOidSeparator) ++sep;
    const bool complete = sep < rest.size() && rest.size() >= sep + 1 + 4;

    const QueryComponent& comp = query_.components[i];
    if (complete) {
      const Slice code(rest.data(), sep);
      const Oid oid = DecodeBigEndian32(rest.data() + sep + 1);
      if (!comp.selector.include.empty()) {
        bool hit = false;
        for (const auto& term : comp.selector.include) {
          const std::string& tcode = coder.CodeOf(term.cls);
          hit = term.with_subclasses
                    ? CodeIsSelfOrDescendant(code, Slice(tcode))
                    : code == Slice(tcode);
          if (hit) break;
        }
        if (!hit) return true;
      }
      for (const auto& term : comp.selector.exclude) {
        const std::string& tcode = coder.CodeOf(term.cls);
        const bool hit = term.with_subclasses
                             ? CodeIsSelfOrDescendant(code, Slice(tcode))
                             : code == Slice(tcode);
        if (hit) return true;
      }
      if (!comp.selector.code_ranges.empty() &&
          !CodeInRanges(code, comp.selector.code_ranges)) {
        return true;
      }
      if (comp.slot.kind == ValueSlot::Kind::kBound &&
          !std::binary_search(comp.slot.oids.begin(), comp.slot.oids.end(),
                              oid)) {
        return true;
      }
      pos += sep + 1 + 4;
      continue;
    }

    // Partial component: its full byte image extends `rest`, so it lies in
    // [rest, BytesSuccessor(rest)). Prune when that misses every allowed
    // code range.
    const std::vector<ByteInterval>& ranges = component_ranges_[i];
    if (ranges.empty()) return false;  // Any class allowed: undecided.
    const std::string ub = BytesSuccessor(rest);
    for (const ByteInterval& r : ranges) {
      const bool below = !ub.empty() && !(Slice(r.lo) < Slice(ub));
      const bool above = !HiIsInf(r) && !(rest < Slice(r.hi));
      if (!below && !above) return false;  // Overlap: undecided.
    }
    return true;
  }
  return false;
}

}  // namespace uindex
