#include "core/update.h"

#include <algorithm>

namespace uindex {

namespace {

bool EntryKeyLess(const UIndex::Entry& a, const UIndex::Entry& b) {
  return a.key < b.key;
}

// Applies the difference between the entry sets before and after a store
// mutation: stale entries (before \ after) are deleted, fresh ones
// (after \ before) inserted.
Status ApplyEntryDiff(UIndex* index, std::vector<UIndex::Entry> before,
                      std::vector<UIndex::Entry> after) {
  std::sort(before.begin(), before.end(), EntryKeyLess);
  std::sort(after.begin(), after.end(), EntryKeyLess);

  std::vector<UIndex::Entry> stale;
  std::set_difference(before.begin(), before.end(), after.begin(),
                      after.end(), std::back_inserter(stale), EntryKeyLess);
  std::vector<UIndex::Entry> fresh;
  std::set_difference(after.begin(), after.end(), before.begin(),
                      before.end(), std::back_inserter(fresh), EntryKeyLess);

  for (const UIndex::Entry& e : stale) {
    UINDEX_RETURN_IF_ERROR(index->RemoveEntry(e));
  }
  for (const UIndex::Entry& e : fresh) {
    UINDEX_RETURN_IF_ERROR(index->InsertEntry(e));
  }
  return Status::OK();
}

}  // namespace

Status IndexedDatabase::SetAttr(Oid oid, const std::string& name,
                                Value value) {
  std::vector<std::vector<UIndex::Entry>> before(indexes_.size());
  for (size_t i = 0; i < indexes_.size(); ++i) {
    Result<std::vector<UIndex::Entry>> r =
        indexes_[i]->EntriesThrough(*store_, oid);
    if (!r.ok()) return r.status();
    before[i] = std::move(r).value();
  }

  // Remember the overwritten value: if post-mutation re-enumeration fails
  // (e.g. the new reference closed a cycle on an indexed path), the store
  // mutation is rolled back before the error surfaces, so the store and
  // every index stay consistent with each other.
  Result<const Object*> prior = store_->Get(oid);
  if (!prior.ok()) return prior.status();
  const Value* prior_attr = prior.value()->FindAttr(name);
  const Value old_value = prior_attr == nullptr ? Value() : *prior_attr;

  UINDEX_RETURN_IF_ERROR(store_->SetAttr(oid, name, std::move(value)));

  // Re-enumerate every index first; only apply diffs once all succeed, so
  // a failure never leaves a prefix of the indexes updated.
  std::vector<std::vector<UIndex::Entry>> after(indexes_.size());
  for (size_t i = 0; i < indexes_.size(); ++i) {
    Result<std::vector<UIndex::Entry>> r =
        indexes_[i]->EntriesThrough(*store_, oid);
    if (!r.ok()) {
      Status undo = store_->SetAttr(oid, name, old_value);
      if (!undo.ok()) {
        return Status::Corruption("rollback of " + name + " on oid " +
                                  std::to_string(oid) +
                                  " failed: " + undo.ToString() +
                                  " (after " + r.status().ToString() + ")");
      }
      return r.status();
    }
    after[i] = std::move(r).value();
  }

  for (size_t i = 0; i < indexes_.size(); ++i) {
    UINDEX_RETURN_IF_ERROR(ApplyEntryDiff(indexes_[i], std::move(before[i]),
                                          std::move(after[i])));
  }
  return Status::OK();
}

Status IndexedDatabase::DeleteObject(Oid oid) {
  for (UIndex* index : indexes_) {
    Result<std::vector<UIndex::Entry>> r =
        index->EntriesThrough(*store_, oid);
    if (!r.ok()) return r.status();
    for (const UIndex::Entry& e : r.value()) {
      UINDEX_RETURN_IF_ERROR(index->RemoveEntry(e));
    }
  }
  return store_->Delete(oid);
}

}  // namespace uindex
