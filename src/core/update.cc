#include "core/update.h"

#include <algorithm>

namespace uindex {

namespace {

bool EntryKeyLess(const UIndex::Entry& a, const UIndex::Entry& b) {
  return a.key < b.key;
}

// Applies the difference between the entry sets before and after a store
// mutation: stale entries (before \ after) are deleted, fresh ones
// (after \ before) inserted.
Status ApplyEntryDiff(UIndex* index, std::vector<UIndex::Entry> before,
                      std::vector<UIndex::Entry> after) {
  std::sort(before.begin(), before.end(), EntryKeyLess);
  std::sort(after.begin(), after.end(), EntryKeyLess);

  std::vector<UIndex::Entry> stale;
  std::set_difference(before.begin(), before.end(), after.begin(),
                      after.end(), std::back_inserter(stale), EntryKeyLess);
  std::vector<UIndex::Entry> fresh;
  std::set_difference(after.begin(), after.end(), before.begin(),
                      before.end(), std::back_inserter(fresh), EntryKeyLess);

  for (const UIndex::Entry& e : stale) {
    UINDEX_RETURN_IF_ERROR(index->RemoveEntry(e));
  }
  for (const UIndex::Entry& e : fresh) {
    UINDEX_RETURN_IF_ERROR(index->InsertEntry(e));
  }
  return Status::OK();
}

}  // namespace

Status IndexedDatabase::SetAttr(Oid oid, const std::string& name,
                                Value value) {
  std::vector<std::vector<UIndex::Entry>> before(indexes_.size());
  for (size_t i = 0; i < indexes_.size(); ++i) {
    Result<std::vector<UIndex::Entry>> r =
        indexes_[i]->EntriesThrough(*store_, oid);
    if (!r.ok()) return r.status();
    before[i] = std::move(r).value();
  }

  UINDEX_RETURN_IF_ERROR(store_->SetAttr(oid, name, std::move(value)));

  for (size_t i = 0; i < indexes_.size(); ++i) {
    Result<std::vector<UIndex::Entry>> r =
        indexes_[i]->EntriesThrough(*store_, oid);
    if (!r.ok()) return r.status();
    UINDEX_RETURN_IF_ERROR(ApplyEntryDiff(indexes_[i], std::move(before[i]),
                                          std::move(r).value()));
  }
  return Status::OK();
}

Status IndexedDatabase::DeleteObject(Oid oid) {
  for (UIndex* index : indexes_) {
    Result<std::vector<UIndex::Entry>> r =
        index->EntriesThrough(*store_, oid);
    if (!r.ok()) return r.status();
    for (const UIndex::Entry& e : r.value()) {
      UINDEX_RETURN_IF_ERROR(index->RemoveEntry(e));
    }
  }
  return store_->Delete(oid);
}

}  // namespace uindex
