#ifndef UINDEX_CORE_QUERY_PARSER_H_
#define UINDEX_CORE_QUERY_PARSER_H_

#include <string>

#include "core/index_spec.h"
#include "core/query.h"
#include "schema/schema.h"
#include "util/status.h"

namespace uindex {

/// Parses the textual query form used in the paper's examples (§3.3-§3.4),
/// with class names instead of raw codes:
///
///   "(Age=50, Employee, ?, Company, _, Vehicle*, ?)"
///   "(Color=3..7, Automobile*|Truck !CompactAutomobile, ?)"
///
/// Grammar (components are tail → head, matching the index key layout):
///   query     := '(' attr (',' selector ',' slot)* ')'
///   attr      := NAME '=' value | NAME '=' value '..' value
///   value     := integer | '\'' chars '\''
///   selector  := '_' | term ('|' term)* (' ' '!' term)*
///   term      := CLASSNAME ['*']          -- '*' = with all subclasses
///   slot      := '_' | '?' | '#' oid ('+' oid)*
///
/// The attribute NAME must match the index's indexed attribute.
///
/// Syntax errors are `InvalidArgument` with the byte offset of the
/// offending fragment and a caret-context snippet (util/diag.h).
Result<Query> ParseQuery(const std::string& text, const PathSpec& spec,
                         const Schema& schema);

}  // namespace uindex

#endif  // UINDEX_CORE_QUERY_PARSER_H_
