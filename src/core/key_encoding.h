#ifndef UINDEX_CORE_KEY_ENCODING_H_
#define UINDEX_CORE_KEY_ENCODING_H_

#include <string>
#include <utility>
#include <vector>

#include "core/index_spec.h"
#include "objects/object.h"
#include "schema/encoder.h"
#include "util/slice.h"
#include "util/status.h"

namespace uindex {

/// One parsed path component of an index key.
struct KeyComponent {
  std::string code;  ///< Class code (e.g. "C5A").
  Oid oid = kInvalidOid;
};

/// A fully decoded U-index key.
struct DecodedKey {
  std::string attr_bytes;             ///< Order-preserving attribute image.
  std::vector<KeyComponent> components;  ///< Tail → head, as stored.
};

/// Smallest byte string greater than every string prefixed by `prefix`
/// (increment-with-carry; trailing 0xFF bytes are dropped). Returns the
/// empty string to mean "+infinity" when the prefix is all-0xFF.
std::string BytesSuccessor(const Slice& prefix);

/// Encodes and decodes U-index keys (paper §3.2):
///
///   key = enc(attr value) ∥ code₁ '$' oid₁ ∥ code₂ '$' oid₂ ∥ …
///
/// with components running tail → head so that keys sort by attribute
/// value, then by the (lexicographically ordered) class codes along the
/// path, then by oids — producing exactly the clustering of the paper's
/// leaf-node examples. Entries are "single-value" (one oid chain per key,
/// §3.2.1); front compression in the B-tree removes the redundancy.
class KeyEncoder {
 public:
  KeyEncoder(const PathSpec* spec, const ClassCoder* coder)
      : spec_(spec), coder_(coder) {}

  const PathSpec& spec() const { return *spec_; }
  const ClassCoder& coder() const { return *coder_; }

  /// Order-preserving image of an attribute value of the spec's kind.
  /// String images carry a NUL terminator (string values must be NUL-free).
  std::string EncodeAttrValue(const Value& value) const;

  /// Builds the full key for one path instantiation. `path` is tail → head:
  /// `path[0]` is the object owning the indexed attribute.
  std::string EncodeEntry(
      const Value& attr_value,
      const std::vector<std::pair<ClassId, Oid>>& path) const;

  /// Parses `key` back into its attribute image and components.
  Result<DecodedKey> Decode(const Slice& key) const;

  /// Length in bytes of the attribute image at the head of `key`
  /// (fixed 8 for ints; scan-to-NUL for strings).
  Result<size_t> AttrImageLength(const Slice& key) const;

 private:
  const PathSpec* spec_;
  const ClassCoder* coder_;
};

}  // namespace uindex

#endif  // UINDEX_CORE_KEY_ENCODING_H_
