#include "core/uindex.h"

#include "storage/prefetch.h"

namespace uindex {

namespace {

// Driver for Algorithm 1 ("Parallel Scanning of the Index", paper §3.4).
//
// Three cooperating prunes implement the paper's behaviour:
//  * the compiled query's sorted partial-key intervals (the paper's partial
//    key array) bound which children can hold matches at all;
//  * every child gap's keys share the byte prefix common to its bounding
//    separators, and `PrefixExcludes` rejects gaps whose shared prefix
//    violates a component constraint — the paper's "lookup the uncompressed
//    part of the key in the parent node" skip (§3.3);
//  * for partial-path queries, after a match the scan resumes past the
//    whole cluster sharing the matched prefix (a distinct-prefix skip),
//    which is how the paper answers "all companies whose president's age is
//    50" from a vehicle path index in few page reads.
//
// The recursion materializes the paper's search tree; every node is visited
// at most once, so range and multi-class queries share pages instead of
// re-descending.
class ParscanDriver {
 public:
  ParscanDriver(const BTree* tree, const CompiledQuery* cq,
                size_t queried_components, QueryResult* result)
      : tree_(tree),
        cq_(cq),
        result_(result),
        partial_(cq->is_partial()),
        queried_components_(queried_components) {}

  Status Run(PageId root, size_t lo, size_t hi) {
    return Visit(root, lo, hi, nullptr, nullptr);
  }

 private:
  Status Visit(PageId id, size_t lo, size_t hi, const std::string* bound_lo,
               const std::string* bound_hi) {
    // Fetch through the decoded-node cache: concurrent Parscan workers (and
    // repeated queries over a hot index) share one immutable decoded image
    // per page instead of each paying a full front-decompression.
    Result<std::shared_ptr<const Node>> loaded = tree_->FetchNode(id);
    if (!loaded.ok()) return loaded.status();
    const Node& node = *loaded.value();
    const auto& intervals = cq_->intervals();

    if (node.is_leaf()) {
      size_t ii = lo;
      DecodedKey decoded;
      for (const NodeEntry& entry : node.entries()) {
        const Slice key(entry.key);
        if (!resume_.empty() && key < Slice(resume_)) continue;
        // Drop intervals that end at or before this key.
        while (ii < hi && !intervals[ii].hi.empty() &&
               !(key < Slice(intervals[ii].hi))) {
          ++ii;
        }
        if (ii >= hi) break;
        if (key < Slice(intervals[ii].lo)) continue;
        ++result_->entries_scanned;
        if (cq_->Matches(key, &decoded)) {
          UINDEX_RETURN_IF_ERROR(Emit(key, decoded));
        }
      }
      return Status::OK();
    }

    // Internal node: child c covers the key gap [K_{c-1}, K_c). Intervals
    // handed to this node intersect its whole range; the node's true
    // bounds arrive from the parent for the prefix prune.
    //
    // Before descending, hand the surviving child set to the prefetch
    // scheduler (when one is attached): Algorithm 1 knows every child it
    // will visit *before* it visits the first, so their page reads can
    // overlap in the background while the recursion works through them in
    // order. The pre-pass snapshots resume_ — it only grows during the
    // descent below, so the set is a conservative superset of what the
    // demand loop visits: extra entries become prefetch_wasted, and the
    // demand loop itself is untouched, keeping pages_read byte-identical.
    const auto& entries = node.entries();
    PrefetchScheduler* prefetcher = tree_->buffers()->prefetcher();
    if (prefetcher != nullptr) {
      std::vector<PageId> batch;
      size_t pre_ii = lo;
      for (size_t c = 0; c <= entries.size(); ++c) {
        const std::string* gap_lo = c == 0 ? bound_lo : &entries[c - 1].key;
        const std::string* gap_hi =
            c == entries.size() ? bound_hi : &entries[c].key;
        size_t pre_jj = 0;
        const GapAction action =
            DecideGap(gap_lo, gap_hi, hi, &pre_ii, &pre_jj);
        if (action == GapAction::kStop) break;
        if (action == GapAction::kSkip) continue;
        batch.push_back(c == 0 ? node.leftmost_child()
                               : entries[c - 1].child);
      }
      if (batch.size() >= 2) {
        // A lone survivor is fetched immediately below; backgrounding it
        // buys nothing and costs a scheduling round trip.
        const BTree* tree = tree_;
        prefetcher->Prefetch(batch,
                             [tree](PageId id) { tree->WarmNode(id); });
      }
    }

    size_t ii = lo;
    for (size_t c = 0; c <= entries.size(); ++c) {
      const std::string* gap_lo = c == 0 ? bound_lo : &entries[c - 1].key;
      const std::string* gap_hi =
          c == entries.size() ? bound_hi : &entries[c].key;
      size_t jj = 0;
      const GapAction action = DecideGap(gap_lo, gap_hi, hi, &ii, &jj);
      if (action == GapAction::kStop) break;
      if (action == GapAction::kSkip) continue;
      const PageId child =
          c == 0 ? node.leftmost_child() : entries[c - 1].child;
      UINDEX_RETURN_IF_ERROR(Visit(child, ii, jj, gap_lo, gap_hi));
    }
    return Status::OK();
  }

  enum class GapAction { kDescend, kSkip, kStop };

  // The per-gap pruning decision of the internal-node loop, shared by the
  // demand descent and the prefetch pre-pass so both walk the same
  // surviving child set. Advances *ii past intervals that end at or before
  // the gap (kStop once none remain) and sets *jj one past the last
  // interval overlapping it; the current resume_ drives the
  // distinct-prefix skip.
  GapAction DecideGap(const std::string* gap_lo, const std::string* gap_hi,
                      size_t hi, size_t* ii, size_t* jj) const {
    const auto& intervals = cq_->intervals();
    // Distinct-prefix skip: the whole gap is below the resume point.
    if (!resume_.empty() && gap_hi != nullptr &&
        !(Slice(resume_) < Slice(*gap_hi))) {
      return GapAction::kSkip;
    }
    // Skip intervals that end at or before this gap.
    while (*ii < hi && gap_lo != nullptr && !intervals[*ii].hi.empty() &&
           !(Slice(*gap_lo) < Slice(intervals[*ii].hi))) {
      ++*ii;
    }
    if (*ii >= hi) return GapAction::kStop;
    // Extend over the intervals that start inside this gap. The last one
    // may spill into later gaps, so *ii itself does not advance here.
    *jj = *ii;
    while (*jj < hi && (gap_hi == nullptr ||
                        Slice(intervals[*jj].lo) < Slice(*gap_hi))) {
      ++*jj;
    }
    if (*jj == *ii) return GapAction::kSkip;
    // Parent-node prune: all keys in the gap share the bounds' common
    // prefix; a violated prefix rules out the whole child.
    if (gap_lo != nullptr && gap_hi != nullptr) {
      const size_t shared = Slice(*gap_lo).CommonPrefixLength(Slice(*gap_hi));
      if (shared > 0 && cq_->PrefixExcludes(Slice(gap_lo->data(), shared))) {
        return GapAction::kSkip;
      }
    }
    return GapAction::kDescend;
  }

  Status Emit(const Slice& key, const DecodedKey& decoded) {
    if (!partial_) {
      std::vector<Oid> row;
      row.reserve(decoded.components.size());
      for (const KeyComponent& kc : decoded.components) row.push_back(kc.oid);
      result_->rows.push_back(std::move(row));
      return Status::OK();
    }
    // Partial-path query: emit only the queried positions, then skip the
    // rest of this prefix's cluster.
    Result<size_t> prefix_len = cq_->QueriedPrefixLength(key);
    if (!prefix_len.ok()) return prefix_len.status();
    std::vector<Oid> row;
    row.reserve(queried_components_);
    for (size_t i = 0; i < queried_components_ &&
                       i < decoded.components.size();
         ++i) {
      row.push_back(decoded.components[i].oid);
    }
    result_->rows.push_back(std::move(row));
    resume_ = BytesSuccessor(key.Prefix(prefix_len.value()));
    return Status::OK();
  }

  const BTree* tree_;
  const CompiledQuery* cq_;
  QueryResult* result_;
  const bool partial_;
  const size_t queried_components_;
  std::string resume_;  // Keys below this are duplicates of emitted rows.
};

}  // namespace

Result<QueryResult> UIndex::Parscan(const Query& query) const {
  Result<CompiledQuery> compiled = CompileParscan(query);
  if (!compiled.ok()) return compiled.status();
  const CompiledQuery& cq = compiled.value();

  QueryResult result;
  UINDEX_RETURN_IF_ERROR(
      ParscanIntervals(cq, 0, cq.intervals().size(), &result));
  return result;
}

Status UIndex::ParscanIntervals(const CompiledQuery& cq, size_t lo, size_t hi,
                                QueryResult* result) const {
  if (lo >= hi || cq.intervals().empty()) return Status::OK();
  ParscanDriver driver(tree_, &cq, cq.query().components.size(), result);
  return driver.Run(tree_->root(), lo, hi);
}

}  // namespace uindex
