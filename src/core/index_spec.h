#ifndef UINDEX_CORE_INDEX_SPEC_H_
#define UINDEX_CORE_INDEX_SPEC_H_

#include <string>
#include <vector>

#include "objects/object.h"
#include "schema/schema.h"

namespace uindex {

/// Declares what a U-index indexes (paper §3.1).
///
/// One spec covers all three variants of the paper:
///  * class-hierarchy index — a single-class path
///    (`classes = {Vehicle}`, `indexed_attr = "Color"`);
///  * path index — `classes = {Vehicle, Company, Employee}` with
///    `ref_attrs = {"manufactured-by", "president"}` and
///    `indexed_attr = "Age"` on the tail class, with
///    `include_subclasses = false`;
///  * combined class-hierarchy/path index — the same with
///    `include_subclasses = true`, admitting subclass instances at every
///    path position (the index neither CH-trees nor path indexes can
///    provide, §3.1).
///
/// `classes` runs head → tail: `classes[0]` is the head (the class queries
/// normally retrieve), and `classes[i]` holds the reference attribute
/// `ref_attrs[i]` leading to `classes[i+1]`. Note that the *key layout* is
/// the reverse — tail first — because REF edges make tail codes smaller
/// (paper §3.1: "the order of class names in such a path is sorted
/// lexicographically").
struct PathSpec {
  std::vector<ClassId> classes;
  std::vector<std::string> ref_attrs;
  std::string indexed_attr;
  Value::Kind value_kind = Value::Kind::kInt;
  bool include_subclasses = true;

  /// Optional key namespace, prepended to every key of this index. With
  /// distinct namespaces several U-indexes can share one physical B-tree
  /// (paper §4.1: "by encoding the attribute-value as part of the key, one
  /// can use a single B-tree for all these indexes"). Must not contain
  /// NUL; keep it short — it is stored once per entry (and compressed
  /// away by the front compression).
  std::string key_namespace;

  /// Number of path positions (== classes.size()).
  size_t Length() const { return classes.size(); }

  /// Convenience: class at key position `i` (0 = tail).
  ClassId ClassAtKeyPosition(size_t i) const {
    return classes[classes.size() - 1 - i];
  }

  /// Builds a class-hierarchy spec over one hierarchy root.
  static PathSpec ClassHierarchy(ClassId root, std::string attr,
                                 Value::Kind kind = Value::Kind::kInt) {
    PathSpec spec;
    spec.classes = {root};
    spec.indexed_attr = std::move(attr);
    spec.value_kind = kind;
    spec.include_subclasses = true;
    return spec;
  }
};

}  // namespace uindex

#endif  // UINDEX_CORE_INDEX_SPEC_H_
