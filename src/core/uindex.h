#ifndef UINDEX_CORE_UINDEX_H_
#define UINDEX_CORE_UINDEX_H_

#include <memory>
#include <utility>
#include <vector>

#include "btree/btree.h"
#include "core/index_spec.h"
#include "core/key_encoding.h"
#include "core/query.h"
#include "objects/object_store.h"
#include "schema/encoder.h"
#include "schema/schema.h"
#include "storage/buffer_manager.h"
#include "util/status.h"

namespace uindex {

/// The Uniform Index of the paper: one key-compressed B+-tree serving
/// class-hierarchy, path, and combined class-hierarchy/path indexing.
///
/// Entries are single-value keys
/// `enc(attr) ∥ code$oid ∥ …` built by `KeyEncoder`; retrieval comes in two
/// flavours matching the paper's experiments:
///   * `ForwardScan` — seek to the first relevant entry and sweep forward
///     (the "simple forward scanning" column of Table 1);
///   * `Parscan` — Algorithm 1, the "parallel" retrieval that expands the
///     query into partial keys and descends the B-tree once, pruning
///     sub-trees no partial key can reach and sharing every fetched page.
///
/// Page reads are accounted through the owning `BufferManager`; wrap a
/// query in `QueryCost` to measure it.
class UIndex {
 public:
  /// An index entry in decoded form: the attribute value's byte image plus
  /// the oid chain (tail → head).
  struct Entry {
    std::string key;
    std::vector<std::pair<ClassId, Oid>> path;  // tail → head
  };

  UIndex(BufferManager* buffers, const Schema* schema,
         const ClassCoder* coder, PathSpec spec,
         BTreeOptions options = BTreeOptions());

  /// Attaches to an index tree restored from a snapshot (root page id and
  /// entry count come from persisted metadata).
  UIndex(BufferManager* buffers, const Schema* schema,
         const ClassCoder* coder, PathSpec spec, BTreeOptions options,
         PageId root, uint64_t size);

  /// Builds the index *inside an existing B-tree* shared with other
  /// indexes (paper §4.1: one B-tree for all indexes). The spec must
  /// carry a unique, NUL-free `key_namespace`; the tree outlives the
  /// index.
  UIndex(BufferManager* buffers, const Schema* schema,
         const ClassCoder* coder, PathSpec spec, BTree* shared_tree);

  /// Snapshot view: a read-only twin of `live` frozen at a published
  /// epoch's `root`/`size`/`entries` (db/database.cc's MVCC read path).
  /// Shares the live tree's decoded-node cache (chain-revision reads
  /// bypass it; see BTree::FetchNode) and charges page reads identically.
  /// `live` must outlive the view — the database holds its shared latch
  /// over both.
  UIndex(const UIndex& live, PageId root, uint64_t size, uint64_t entries);

  UIndex(const UIndex&) = delete;
  UIndex& operator=(const UIndex&) = delete;

  const PathSpec& spec() const { return spec_; }
  const Schema& schema() const { return *schema_; }
  const KeyEncoder& key_encoder() const { return encoder_; }
  BTree& btree() { return *tree_; }
  const BTree& btree() const { return *tree_; }
  /// Entries belonging to *this* index (not the whole tree when shared).
  uint64_t entry_count() const { return entries_; }
  /// True when this index shares its B-tree with others.
  bool shares_tree() const { return owned_tree_ == nullptr; }

  /// Populates the index from every complete path instantiation in
  /// `store`. The index must be empty.
  Status BuildFrom(const ObjectStore& store);

  /// Clears the index's entries and rebuilds them from `store` — required
  /// after a re-encode changed the class codes its keys embed (§4.3). On a
  /// shared tree only this index's namespace slice is removed.
  Status Rebuild(const ObjectStore& store);

  /// Enumerates every index entry whose path passes through `oid`, which
  /// must be an instance (or subclass instance) of one of the spec's path
  /// classes. Used by index maintenance (paper §3.5: a mid-path update
  /// deletes and re-inserts the affected entries, batched by clustering).
  Result<std::vector<Entry>> EntriesThrough(const ObjectStore& store,
                                            Oid oid) const;

  /// Inserts/removes one previously enumerated entry.
  Status InsertEntry(const Entry& entry);
  Status RemoveEntry(const Entry& entry);

  /// Executes with the naive algorithm: one seek plus a forward sweep over
  /// the whole relevant span.
  Result<QueryResult> ForwardScan(const Query& query) const;

  /// Executes with the paper's Algorithm 1 (parallel partial-key scan).
  Result<QueryResult> Parscan(const Query& query) const;

  /// Compiles `query` into its Parscan plan — the sorted partial-key
  /// intervals of Algorithm 1 — without executing it. The plan is the unit
  /// of parallelism: `exec::ParallelParscan` partitions its intervals into
  /// shards and runs each shard with `ParscanIntervals` on a pool worker.
  Result<CompiledQuery> CompileParscan(const Query& query) const {
    return CompiledQuery::Compile(query, encoder_, *schema_);
  }

  /// Runs Algorithm 1 over the plan's intervals [lo, hi), appending matches
  /// to `result`. Because the plan's intervals are sorted and disjoint and
  /// every key cluster lies inside one interval, running disjoint ranges
  /// and concatenating their results in range order reproduces the serial
  /// scan's rows exactly; with a shared `BufferManager` epoch the page-read
  /// total is also identical (first touch pays, duplicates hit cache).
  /// Safe to call concurrently from several threads on disjoint ranges as
  /// long as the tree is not mutated meanwhile.
  Status ParscanIntervals(const CompiledQuery& cq, size_t lo, size_t hi,
                          QueryResult* result) const;

  /// Default retrieval — Parscan.
  Result<QueryResult> Execute(const Query& query) const {
    return Parscan(query);
  }

  /// Smallest and largest attribute values currently indexed (decoded int
  /// values; NotFound when empty or not an int index). Used by cost
  /// estimation.
  Result<std::pair<int64_t, int64_t>> IntValueRange() const;

 private:
  friend class IndexedDatabase;

  // True if `cls` may occupy path position `pos` (head-based index).
  bool ClassFitsPosition(ClassId cls, size_t pos) const;

  // Enumerates instantiations with `oid` fixed at path position `pos`;
  // appends to `out`.
  Status EnumerateAt(const ObjectStore& store, size_t pos, Oid oid,
                     std::vector<Entry>* out) const;

  BufferManager* buffers_;
  const Schema* schema_;
  const ClassCoder* coder_;
  PathSpec spec_;
  KeyEncoder encoder_;
  std::unique_ptr<BTree> owned_tree_;
  BTree* tree_;
  uint64_t entries_ = 0;
};

}  // namespace uindex

#endif  // UINDEX_CORE_UINDEX_H_
