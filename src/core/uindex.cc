#include "core/uindex.h"

#include <algorithm>
#include <cassert>

#include "util/coding.h"

namespace uindex {

UIndex::UIndex(BufferManager* buffers, const Schema* schema,
               const ClassCoder* coder, PathSpec spec, BTreeOptions options)
    : buffers_(buffers),
      schema_(schema),
      coder_(coder),
      spec_(std::move(spec)),
      encoder_(&spec_, coder),
      owned_tree_(std::make_unique<BTree>(buffers, options)),
      tree_(owned_tree_.get()) {}

UIndex::UIndex(BufferManager* buffers, const Schema* schema,
               const ClassCoder* coder, PathSpec spec, BTreeOptions options,
               PageId root, uint64_t size)
    : buffers_(buffers),
      schema_(schema),
      coder_(coder),
      spec_(std::move(spec)),
      encoder_(&spec_, coder),
      owned_tree_(std::make_unique<BTree>(buffers, root, size, options)),
      tree_(owned_tree_.get()),
      entries_(size) {}

UIndex::UIndex(BufferManager* buffers, const Schema* schema,
               const ClassCoder* coder, PathSpec spec, BTree* shared_tree)
    : buffers_(buffers),
      schema_(schema),
      coder_(coder),
      spec_(std::move(spec)),
      encoder_(&spec_, coder),
      tree_(shared_tree) {
  assert(!spec_.key_namespace.empty() &&
         "shared-tree indexes need a key namespace");
}

UIndex::UIndex(const UIndex& live, PageId root, uint64_t size,
               uint64_t entries)
    : buffers_(live.buffers_),
      schema_(live.schema_),
      coder_(live.coder_),
      spec_(live.spec_),
      encoder_(&spec_, live.coder_),
      owned_tree_(std::make_unique<BTree>(live.buffers_, root, size,
                                          live.tree_->options(),
                                          live.tree_->node_cache())),
      tree_(owned_tree_.get()),
      entries_(entries) {}

bool UIndex::ClassFitsPosition(ClassId cls, size_t pos) const {
  if (spec_.include_subclasses) {
    return schema_->IsSubclassOf(cls, spec_.classes[pos]);
  }
  return cls == spec_.classes[pos];
}

namespace {

// Chains of oids covering path positions [pos, L); each starts with `oid`.
using Chain = std::vector<Oid>;

}  // namespace

Status UIndex::EnumerateAt(const ObjectStore& store, size_t pos, Oid oid,
                           std::vector<Entry>* out) const {
  const size_t length = spec_.Length();

  // Downward closure: chains from `pos` to the tail. `trail` carries the
  // oids on the current recursion chain: revisiting one means the walk
  // crossed a reference cycle along the indexed path, which would
  // enumerate the same objects forever on a longer spec — terminate with
  // the typed error instead (the caller rolls the mutation back).
  struct Walker {
    const UIndex* index;
    const ObjectStore* store;

    static Status CycleError(Oid o) {
      return Status::CycleDetected("reference cycle through oid " +
                                   std::to_string(o) +
                                   " on an indexed path");
    }

    Status Down(size_t p, Oid o, Chain* trail,
                std::vector<Chain>* chains) const {
      if (std::find(trail->begin(), trail->end(), o) != trail->end()) {
        return CycleError(o);
      }
      Result<const Object*> obj = store->Get(o);
      if (!obj.ok()) return Status::OK();  // Dangling reference: no entry.
      if (!index->ClassFitsPosition(obj.value()->cls, p)) return Status::OK();
      if (p + 1 == index->spec_.Length()) {
        chains->push_back({o});
        return Status::OK();
      }
      const Value* ref = obj.value()->FindAttr(index->spec_.ref_attrs[p]);
      if (ref == nullptr || ref->is_null()) return Status::OK();
      std::vector<Oid> targets;
      if (ref->kind() == Value::Kind::kRef) {
        targets.push_back(ref->AsRef());
      } else if (ref->kind() == Value::Kind::kRefSet) {
        targets = ref->AsRefSet();
      } else {
        return Status::InvalidArgument("attribute " +
                                       index->spec_.ref_attrs[p] +
                                       " is not a reference");
      }
      trail->push_back(o);
      for (const Oid t : targets) {
        std::vector<Chain> sub;
        Status down = Down(p + 1, t, trail, &sub);
        if (!down.ok()) {
          trail->pop_back();
          return down;
        }
        for (Chain& c : sub) {
          Chain full;
          full.reserve(c.size() + 1);
          full.push_back(o);
          full.insert(full.end(), c.begin(), c.end());
          chains->push_back(std::move(full));
        }
      }
      trail->pop_back();
      return Status::OK();
    }

    // Chains covering positions [0, p]; each ends with `o` at position p.
    Status Up(size_t p, Oid o, Chain* trail,
              std::vector<Chain>* chains) const {
      if (std::find(trail->begin(), trail->end(), o) != trail->end()) {
        return CycleError(o);
      }
      Result<const Object*> obj = store->Get(o);
      if (!obj.ok()) return Status::OK();
      if (!index->ClassFitsPosition(obj.value()->cls, p)) return Status::OK();
      if (p == 0) {
        chains->push_back({o});
        return Status::OK();
      }
      const std::vector<Oid> sources =
          store->ReferrersOf(o, index->spec_.ref_attrs[p - 1]);
      trail->push_back(o);
      for (const Oid s : sources) {
        std::vector<Chain> sub;
        Status up = Up(p - 1, s, trail, &sub);
        if (!up.ok()) {
          trail->pop_back();
          return up;
        }
        for (Chain& c : sub) {
          c.push_back(o);
          chains->push_back(std::move(c));
        }
      }
      trail->pop_back();
      return Status::OK();
    }
  };

  Walker walker{this, &store};
  Chain trail;
  std::vector<Chain> down;  // positions [pos, L)
  UINDEX_RETURN_IF_ERROR(walker.Down(pos, oid, &trail, &down));
  if (down.empty()) return Status::OK();
  std::vector<Chain> up;  // positions [0, pos]
  UINDEX_RETURN_IF_ERROR(walker.Up(pos, oid, &trail, &up));

  for (const Chain& head_part : up) {
    for (const Chain& tail_part : down) {
      // head_part ends with `oid`; tail_part starts with it.
      Chain full = head_part;  // positions 0..pos
      full.insert(full.end(), tail_part.begin() + 1, tail_part.end());
      if (full.size() != length) continue;
      // The up and down halves are individually acyclic, but an object may
      // appear once in each: that too is a reference cycle.
      for (size_t i = 0; i < full.size(); ++i) {
        for (size_t j = i + 1; j < full.size(); ++j) {
          if (full[i] == full[j]) return Walker::CycleError(full[i]);
        }
      }

      // Indexed attribute lives on the tail object.
      Result<const Object*> tail = store.Get(full.back());
      if (!tail.ok()) continue;
      const Value* attr = tail.value()->FindAttr(spec_.indexed_attr);
      if (attr == nullptr || attr->kind() != spec_.value_kind) continue;

      Entry entry;
      entry.path.reserve(length);
      for (size_t i = 0; i < length; ++i) {
        const size_t p = length - 1 - i;  // tail → head
        Result<const Object*> o = store.Get(full[p]);
        if (!o.ok()) break;
        entry.path.emplace_back(o.value()->cls, full[p]);
      }
      if (entry.path.size() != length) continue;
      entry.key = encoder_.EncodeEntry(*attr, entry.path);
      out->push_back(std::move(entry));
    }
  }
  return Status::OK();
}

Result<std::vector<UIndex::Entry>> UIndex::EntriesThrough(
    const ObjectStore& store, Oid oid) const {
  Result<const Object*> obj = store.Get(oid);
  if (!obj.ok()) return obj.status();
  std::vector<Entry> out;
  for (size_t pos = 0; pos < spec_.Length(); ++pos) {
    if (!ClassFitsPosition(obj.value()->cls, pos)) continue;
    UINDEX_RETURN_IF_ERROR(EnumerateAt(store, pos, oid, &out));
  }
  // An object fitting several positions can enumerate the same
  // instantiation more than once; dedupe by key.
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.key < b.key; });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Entry& a, const Entry& b) {
                          return a.key == b.key;
                        }),
            out.end());
  return out;
}

Status UIndex::BuildFrom(const ObjectStore& store) {
  if (entries_ != 0) {
    return Status::InvalidArgument("index is not empty");
  }
  const ClassId head = spec_.classes[0];
  const std::vector<Oid> heads = spec_.include_subclasses
                                     ? store.DeepExtentOf(head)
                                     : store.ExtentOf(head);
  // Bulk path: enumerate everything, sort, and batch-insert (one descent
  // per leaf instead of per entry — the [4]-style batch update of §3.5).
  std::vector<std::pair<std::string, std::string>> batch;
  for (const Oid oid : heads) {
    std::vector<Entry> entries;
    UINDEX_RETURN_IF_ERROR(EnumerateAt(store, 0, oid, &entries));
    for (Entry& e : entries) {
      batch.emplace_back(std::move(e.key), std::string());
    }
  }
  std::sort(batch.begin(), batch.end());
  UINDEX_RETURN_IF_ERROR(tree_->InsertBatch(batch));
  entries_ = batch.size();
  return Status::OK();
}

Status UIndex::Rebuild(const ObjectStore& store) {
  if (owned_tree_ != nullptr) {
    UINDEX_RETURN_IF_ERROR(tree_->Clear());
  } else {
    // Shared tree: delete only this index's namespace slice.
    std::vector<std::string> keys;
    const std::string bound =
        BytesSuccessor(Slice(spec_.key_namespace));
    BTree::Iterator it = tree_->NewIterator();
    for (it.Seek(Slice(spec_.key_namespace)); it.Valid(); it.Next()) {
      if (!bound.empty() && !(it.key() < Slice(bound))) break;
      keys.push_back(it.key().ToString());
    }
    for (const std::string& key : keys) {
      UINDEX_RETURN_IF_ERROR(tree_->Delete(Slice(key)));
    }
  }
  entries_ = 0;
  return BuildFrom(store);
}

Result<std::pair<int64_t, int64_t>> UIndex::IntValueRange() const {
  if (spec_.value_kind != Value::Kind::kInt) {
    return Status::NotSupported("value range requires an int index");
  }
  const size_t ns = spec_.key_namespace.size();
  auto decode = [ns](const Slice& key) {
    return static_cast<int64_t>(DecodeBigEndian64(key.data() + ns) ^
                                0x8000000000000000ull);
  };
  // Smallest/largest key *within this index's namespace* (the tree may be
  // shared with other indexes).
  BTree::Iterator it = tree_->NewIterator();
  it.Seek(Slice(spec_.key_namespace));
  if (!it.Valid() || !it.key().StartsWith(Slice(spec_.key_namespace))) {
    return Status::NotFound("index empty");
  }
  const int64_t lo = decode(it.key());

  if (spec_.key_namespace.empty()) {
    // Sole owner of the tree: O(height) descent along rightmost children.
    PageId id = tree_->root();
    for (;;) {
      Result<Node> node = tree_->LoadNode(id);
      if (!node.ok()) return node.status();
      if (node.value().is_leaf()) {
        if (node.value().entry_count() == 0) {
          return Status::Corruption("empty rightmost leaf");
        }
        return std::make_pair(
            lo, decode(Slice(node.value().entries().back().key)));
      }
      id = node.value().entries().empty()
               ? node.value().leftmost_child()
               : node.value().entries().back().child;
    }
  }

  // Shared tree: walk this namespace's slice to its upper bound.
  const std::string bound = BytesSuccessor(Slice(spec_.key_namespace));
  int64_t hi = lo;
  for (; it.Valid(); it.Next()) {
    if (!bound.empty() && !(it.key() < Slice(bound))) break;
    hi = decode(it.key());
  }
  return std::make_pair(lo, hi);
}

Status UIndex::InsertEntry(const Entry& entry) {
  UINDEX_RETURN_IF_ERROR(tree_->Insert(Slice(entry.key), Slice()));
  ++entries_;
  return Status::OK();
}

Status UIndex::RemoveEntry(const Entry& entry) {
  UINDEX_RETURN_IF_ERROR(tree_->Delete(Slice(entry.key)));
  --entries_;
  return Status::OK();
}

}  // namespace uindex
