#include "core/query_parser.h"

#include <cctype>
#include <cstdlib>
#include <vector>

#include "util/diag.h"

namespace uindex {

namespace {

// A trimmed piece of the query text that remembers where it came from, so
// every error can point a caret at the offending byte of the original
// input.
struct Fragment {
  std::string text;
  size_t offset = 0;  ///< Byte offset of `text[0]` in the source string.
};

Fragment TrimFrag(const std::string& s, size_t base) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return Fragment{s.substr(b, e - b), base + b};
}

std::vector<Fragment> SplitFrag(const Fragment& f, char sep) {
  std::vector<Fragment> out;
  size_t start = 0;
  for (size_t i = 0; i <= f.text.size(); ++i) {
    if (i == f.text.size() || f.text[i] == sep) {
      out.push_back(
          TrimFrag(f.text.substr(start, i - start), f.offset + start));
      start = i + 1;
    }
  }
  return out;
}

Result<Value> ParseValue(const std::string& source, const Fragment& f,
                         Value::Kind kind) {
  if (kind == Value::Kind::kString) {
    if (f.text.size() < 2 || f.text.front() != '\'' ||
        f.text.back() != '\'') {
      return ParseErrorAt(source, f.offset,
                          "string value needs quotes: " + f.text);
    }
    return Value::Str(f.text.substr(1, f.text.size() - 2));
  }
  char* end = nullptr;
  const long long v = std::strtoll(f.text.c_str(), &end, 10);
  if (end == f.text.c_str() || *end != '\0') {
    return ParseErrorAt(source, f.offset, "bad integer: " + f.text);
  }
  return Value::Int(v);
}

Result<ClassSelector::Term> ParseTerm(const Fragment& f,
                                      const Schema& schema) {
  std::string name = f.text;
  ClassSelector::Term term;
  if (!name.empty() && name.back() == '*') {
    term.with_subclasses = true;
    name.pop_back();
  }
  Result<ClassId> cls = schema.FindClass(TrimFrag(name, 0).text);
  if (!cls.ok()) return cls.status();
  term.cls = cls.value();
  return term;
}

Result<ClassSelector> ParseSelector(const std::string& source,
                                    const Fragment& f,
                                    const Schema& schema) {
  ClassSelector sel;
  if (f.text == "_" || f.text == "*") return sel;  // Any class.

  // '!'-separated: the first piece holds '|'-alternated includes, every
  // later piece is one exclusion term.
  std::vector<Fragment> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= f.text.size(); ++i) {
    if (i == f.text.size() || f.text[i] == '!') {
      pieces.push_back(
          TrimFrag(f.text.substr(start, i - start), f.offset + start));
      start = i + 1;
    }
  }
  for (const Fragment& part : SplitFrag(pieces[0], '|')) {
    if (part.text.empty()) continue;
    Result<ClassSelector::Term> term = ParseTerm(part, schema);
    if (!term.ok()) return term.status();
    sel.include.push_back(term.value());
  }
  for (size_t i = 1; i < pieces.size(); ++i) {
    if (pieces[i].text.empty()) continue;
    Result<ClassSelector::Term> term = ParseTerm(pieces[i], schema);
    if (!term.ok()) return term.status();
    sel.exclude.push_back(term.value());
  }
  if (sel.include.empty() && sel.exclude.empty()) {
    return ParseErrorAt(source, f.offset, "empty selector: " + f.text);
  }
  return sel;
}

Result<ValueSlot> ParseSlot(const std::string& source, const Fragment& f) {
  if (f.text == "_") return ValueSlot::Any();
  if (f.text == "?") return ValueSlot::Wanted();
  if (!f.text.empty() && f.text[0] == '#') {
    std::vector<Oid> oids;
    for (const Fragment& part :
         SplitFrag(Fragment{f.text.substr(1), f.offset + 1}, '+')) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(part.text.c_str(), &end, 10);
      if (end == part.text.c_str() || *end != '\0') {
        return ParseErrorAt(source, part.offset, "bad oid: " + part.text);
      }
      oids.push_back(static_cast<Oid>(v));
    }
    if (oids.empty()) {
      return ParseErrorAt(source, f.offset, "empty oid list");
    }
    return ValueSlot::Bound(std::move(oids));
  }
  return ParseErrorAt(source, f.offset, "bad slot: " + f.text);
}

}  // namespace

Result<Query> ParseQuery(const std::string& text, const PathSpec& spec,
                         const Schema& schema) {
  Fragment body = TrimFrag(text, 0);
  if (!body.text.empty() && body.text.front() == '(' &&
      body.text.back() == ')') {
    body = TrimFrag(body.text.substr(1, body.text.size() - 2),
                    body.offset + 1);
  }
  std::vector<Fragment> parts = SplitFrag(body, ',');
  if (parts.empty() || parts[0].text.empty()) {
    return ParseErrorAt(text, body.offset, "empty query");
  }
  if (parts.size() % 2 == 0) {
    return ParseErrorAt(
        text, parts.back().offset,
        "query needs an attribute predicate plus selector/slot pairs");
  }

  // Attribute predicate: NAME=value or NAME=lo..hi.
  const Fragment& attr = parts[0];
  const size_t eq = attr.text.find('=');
  if (eq == std::string::npos) {
    return ParseErrorAt(text, attr.offset,
                        "attribute predicate needs '='");
  }
  const Fragment name = TrimFrag(attr.text.substr(0, eq), attr.offset);
  if (name.text != spec.indexed_attr) {
    return ParseErrorAt(text, name.offset,
                        "attribute " + name.text +
                            " is not the indexed attribute (" +
                            spec.indexed_attr + ")");
  }
  const Fragment value_frag =
      TrimFrag(attr.text.substr(eq + 1), attr.offset + eq + 1);
  const size_t dots = value_frag.text.find("..");
  Query query;
  if (value_frag.text.find('|') != std::string::npos) {
    // Value alternation, e.g. Color='Red'|'Blue'.
    for (const Fragment& part : SplitFrag(value_frag, '|')) {
      Result<Value> v = ParseValue(text, part, spec.value_kind);
      if (!v.ok()) return v.status();
      query.values.push_back(std::move(v).value());
    }
  } else if (dots == std::string::npos) {
    Result<Value> v = ParseValue(text, value_frag, spec.value_kind);
    if (!v.ok()) return v.status();
    query.lo = v.value();
    query.hi = v.value();
  } else {
    Result<Value> lo = ParseValue(
        text, TrimFrag(value_frag.text.substr(0, dots), value_frag.offset),
        spec.value_kind);
    if (!lo.ok()) return lo.status();
    Result<Value> hi = ParseValue(
        text,
        TrimFrag(value_frag.text.substr(dots + 2),
                 value_frag.offset + dots + 2),
        spec.value_kind);
    if (!hi.ok()) return hi.status();
    query.lo = lo.value();
    query.hi = hi.value();
  }

  for (size_t i = 1; i + 1 < parts.size(); i += 2) {
    Result<ClassSelector> sel = ParseSelector(text, parts[i], schema);
    if (!sel.ok()) return sel.status();
    Result<ValueSlot> slot = ParseSlot(text, parts[i + 1]);
    if (!slot.ok()) return slot.status();
    query.components.push_back(
        QueryComponent{std::move(sel).value(), std::move(slot).value()});
  }
  if (query.components.size() > spec.Length()) {
    return ParseErrorAt(text, parts[1].offset,
                        "more components than path positions");
  }
  return query;
}

}  // namespace uindex
