#include "core/query_parser.h"

#include <cctype>
#include <cstdlib>
#include <vector>

namespace uindex {

namespace {

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(Trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

Result<Value> ParseValue(const std::string& text, Value::Kind kind) {
  if (kind == Value::Kind::kString) {
    if (text.size() < 2 || text.front() != '\'' || text.back() != '\'') {
      return Status::InvalidArgument("string value needs quotes: " + text);
    }
    return Value::Str(text.substr(1, text.size() - 2));
  }
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad integer: " + text);
  }
  return Value::Int(v);
}

Result<ClassSelector::Term> ParseTerm(const std::string& text,
                                      const Schema& schema) {
  std::string name = text;
  ClassSelector::Term term;
  if (!name.empty() && name.back() == '*') {
    term.with_subclasses = true;
    name.pop_back();
  }
  Result<ClassId> cls = schema.FindClass(Trim(name));
  if (!cls.ok()) return cls.status();
  term.cls = cls.value();
  return term;
}

Result<ClassSelector> ParseSelector(const std::string& text,
                                    const Schema& schema) {
  ClassSelector sel;
  if (text == "_" || text == "*") return sel;  // Any class.

  // Exclusions are whitespace-separated "!Term" suffixes.
  std::string includes = text;
  std::vector<std::string> exclude_texts;
  size_t bang = includes.find('!');
  while (bang != std::string::npos) {
    std::string rest = includes.substr(bang + 1);
    size_t stop = rest.find('!');
    exclude_texts.push_back(Trim(stop == std::string::npos
                                     ? rest
                                     : rest.substr(0, stop)));
    includes = includes.substr(0, bang);
    bang = includes.find('!');
  }
  for (const std::string& part : Split(Trim(includes), '|')) {
    if (part.empty()) continue;
    Result<ClassSelector::Term> term = ParseTerm(part, schema);
    if (!term.ok()) return term.status();
    sel.include.push_back(term.value());
  }
  for (const std::string& part : exclude_texts) {
    if (part.empty()) continue;
    Result<ClassSelector::Term> term = ParseTerm(part, schema);
    if (!term.ok()) return term.status();
    sel.exclude.push_back(term.value());
  }
  if (sel.include.empty() && sel.exclude.empty()) {
    return Status::InvalidArgument("empty selector: " + text);
  }
  return sel;
}

Result<ValueSlot> ParseSlot(const std::string& text) {
  if (text == "_") return ValueSlot::Any();
  if (text == "?") return ValueSlot::Wanted();
  if (!text.empty() && text[0] == '#') {
    std::vector<Oid> oids;
    for (const std::string& part : Split(text.substr(1), '+')) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(part.c_str(), &end, 10);
      if (end == part.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad oid: " + part);
      }
      oids.push_back(static_cast<Oid>(v));
    }
    if (oids.empty()) return Status::InvalidArgument("empty oid list");
    return ValueSlot::Bound(std::move(oids));
  }
  return Status::InvalidArgument("bad slot: " + text);
}

}  // namespace

Result<Query> ParseQuery(const std::string& text, const PathSpec& spec,
                         const Schema& schema) {
  std::string body = Trim(text);
  if (!body.empty() && body.front() == '(' && body.back() == ')') {
    body = Trim(body.substr(1, body.size() - 2));
  }
  std::vector<std::string> parts = Split(body, ',');
  if (parts.empty() || parts[0].empty()) {
    return Status::InvalidArgument("empty query");
  }
  if (parts.size() % 2 == 0) {
    return Status::InvalidArgument(
        "query needs an attribute predicate plus selector/slot pairs");
  }

  // Attribute predicate: NAME=value or NAME=lo..hi.
  const std::string& attr_text = parts[0];
  const size_t eq = attr_text.find('=');
  if (eq == std::string::npos) {
    return Status::InvalidArgument("attribute predicate needs '='");
  }
  const std::string name = Trim(attr_text.substr(0, eq));
  if (name != spec.indexed_attr) {
    return Status::InvalidArgument("attribute " + name +
                                   " is not the indexed attribute (" +
                                   spec.indexed_attr + ")");
  }
  const std::string value_text = Trim(attr_text.substr(eq + 1));
  const size_t dots = value_text.find("..");
  Query query;
  if (value_text.find('|') != std::string::npos) {
    // Value alternation, e.g. Color='Red'|'Blue'.
    for (const std::string& part : Split(value_text, '|')) {
      Result<Value> v = ParseValue(part, spec.value_kind);
      if (!v.ok()) return v.status();
      query.values.push_back(std::move(v).value());
    }
  } else if (dots == std::string::npos) {
    Result<Value> v = ParseValue(value_text, spec.value_kind);
    if (!v.ok()) return v.status();
    query.lo = v.value();
    query.hi = v.value();
  } else {
    Result<Value> lo =
        ParseValue(Trim(value_text.substr(0, dots)), spec.value_kind);
    if (!lo.ok()) return lo.status();
    Result<Value> hi =
        ParseValue(Trim(value_text.substr(dots + 2)), spec.value_kind);
    if (!hi.ok()) return hi.status();
    query.lo = lo.value();
    query.hi = hi.value();
  }

  for (size_t i = 1; i + 1 < parts.size(); i += 2) {
    Result<ClassSelector> sel = ParseSelector(parts[i], schema);
    if (!sel.ok()) return sel.status();
    Result<ValueSlot> slot = ParseSlot(parts[i + 1]);
    if (!slot.ok()) return slot.status();
    query.components.push_back(
        QueryComponent{std::move(sel).value(), std::move(slot).value()});
  }
  if (query.components.size() > spec.Length()) {
    return Status::InvalidArgument("more components than path positions");
  }
  return query;
}

}  // namespace uindex
