#include "core/uindex.h"

namespace uindex {

// The "simple forward scanning" retrieval (paper §3.3): a single standard
// B-tree search to the first relevant entry, then a sequential sweep of the
// leaf chain until past the last possibly-relevant key, filtering entries
// with only as much key decompression as comparison needs. The iterator
// reads the leaf chain through the decoded-node cache, so a hot sweep
// re-parses nothing; the page-read count is identical either way. With a
// prefetch scheduler attached, the iterator's leaf-chain readahead keeps
// the next window of leaves in background reads, so the sweep overlaps its
// page waits instead of paying them one at a time.
Result<QueryResult> UIndex::ForwardScan(const Query& query) const {
  Result<CompiledQuery> compiled =
      CompiledQuery::Compile(query, encoder_, *schema_);
  if (!compiled.ok()) return compiled.status();
  const CompiledQuery& cq = compiled.value();

  QueryResult result;
  if (cq.intervals().empty()) return result;

  const bool partial = cq.is_partial();
  const size_t queried = query.components.size();
  BTree::Iterator it = tree_->NewIterator();
  it.Seek(Slice(cq.full_span().lo));
  const std::string& span_hi = cq.full_span().hi;
  DecodedKey decoded;
  while (it.Valid()) {
    if (!span_hi.empty() && !(it.key() < Slice(span_hi))) break;
    ++result.entries_scanned;
    if (cq.Matches(it.key(), &decoded)) {
      std::vector<Oid> row;
      if (partial) {
        // Partial-path semantics: one row per distinct binding of the
        // queried positions. Same-prefix matches are contiguous, so a
        // comparison against the last row dedupes exactly — but unlike
        // Parscan the sweep still reads every page of the cluster.
        row.reserve(queried);
        for (size_t i = 0; i < queried && i < decoded.components.size();
             ++i) {
          row.push_back(decoded.components[i].oid);
        }
        if (!result.rows.empty() && result.rows.back() == row) {
          it.Next();
          continue;
        }
      } else {
        row.reserve(decoded.components.size());
        for (const KeyComponent& kc : decoded.components) {
          row.push_back(kc.oid);
        }
      }
      result.rows.push_back(std::move(row));
    }
    it.Next();
  }
  // An iterator stops on a failed node load exactly like on a clean end of
  // scan; only status() tells them apart. Returning a truncated result for
  // a corrupted tree would silently drop rows.
  if (!it.status().ok()) return it.status();
  return result;
}

}  // namespace uindex
