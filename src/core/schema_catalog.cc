#include "core/schema_catalog.h"

#include <algorithm>
#include <map>

#include "core/key_encoding.h"
#include "schema/class_code.h"

namespace uindex {

namespace {
constexpr char kClassTag = 'C';
constexpr char kRefTag = 'R';
// Multiplicity flag byte placed before the target code (0x00/0x01 are not
// code-alphabet characters, so parsing is unambiguous).
constexpr char kSingleValued = 0x00;
constexpr char kMultiValued = 0x01;
}  // namespace

SchemaCatalog::SchemaCatalog(BufferManager* buffers, BTreeOptions options)
    : buffers_(buffers), tree_(buffers, options) {}

SchemaCatalog::SchemaCatalog(BufferManager* buffers, PageId root,
                             uint64_t size, BTreeOptions options)
    : buffers_(buffers), tree_(buffers, root, size, options) {}

std::string SchemaCatalog::ClassKey(const Slice& code) {
  std::string key(1, kClassTag);
  key.append(code.data(), code.size());
  key.push_back(kCodeOidSeparator);
  return key;
}

std::string SchemaCatalog::RefKey(const Slice& source_code,
                                  const std::string& attr,
                                  const Slice& target_code,
                                  bool multi_valued) {
  std::string key(1, kRefTag);
  key.append(source_code.data(), source_code.size());
  key.push_back(kCodeOidSeparator);
  key.append(attr);
  key.push_back('\0');
  key.push_back(multi_valued ? kMultiValued : kSingleValued);
  key.append(target_code.data(), target_code.size());
  return key;
}

Status SchemaCatalog::AddClass(const Slice& code, const std::string& name) {
  return tree_.Insert(Slice(ClassKey(code)), Slice(name));
}

Status SchemaCatalog::AddReference(const Slice& source_code,
                                   const std::string& attr,
                                   const Slice& target_code,
                                   bool multi_valued) {
  return tree_.Insert(
      Slice(RefKey(source_code, attr, target_code, multi_valued)), Slice());
}

Status SchemaCatalog::Store(const Schema& schema, const ClassCoder& coder) {
  if (!tree_.empty()) return Status::InvalidArgument("catalog not empty");
  for (ClassId cls = 0; cls < schema.class_count(); ++cls) {
    UINDEX_RETURN_IF_ERROR(
        AddClass(Slice(coder.CodeOf(cls)), schema.NameOf(cls)));
  }
  for (const RefEdge& e : schema.references()) {
    UINDEX_RETURN_IF_ERROR(AddReference(Slice(coder.CodeOf(e.source)),
                                        e.attribute,
                                        Slice(coder.CodeOf(e.target)),
                                        e.multi_valued));
  }
  return Status::OK();
}

Result<std::string> SchemaCatalog::NameOf(const Slice& code) const {
  Result<std::string> r = tree_.Get(Slice(ClassKey(code)));
  if (!r.ok()) return r.status();
  return r;
}

Result<std::vector<std::string>> SchemaCatalog::SubtreeCodes(
    const Slice& code) const {
  std::string lo(1, kClassTag);
  lo.append(code.data(), code.size());
  const std::string hi = BytesSuccessor(Slice(lo));

  std::vector<std::string> out;
  BTree::Iterator it = tree_.NewIterator();
  for (it.Seek(Slice(lo)); it.Valid(); it.Next()) {
    if (!hi.empty() && !(it.key() < Slice(hi))) break;
    Slice key = it.key();
    key.RemovePrefix(1);                      // Tag.
    // Trim the trailing separator.
    out.push_back(std::string(key.data(), key.size() - 1));
  }
  return out;
}

Result<std::vector<SchemaCatalog::RefRecord>> SchemaCatalog::ReferencesOf(
    const Slice& code) const {
  std::string lo(1, kRefTag);
  lo.append(code.data(), code.size());
  lo.push_back(kCodeOidSeparator);
  const std::string hi = BytesSuccessor(Slice(lo));

  std::vector<RefRecord> out;
  BTree::Iterator it = tree_.NewIterator();
  for (it.Seek(Slice(lo)); it.Valid(); it.Next()) {
    if (!hi.empty() && !(it.key() < Slice(hi))) break;
    Slice rest = it.key();
    rest.RemovePrefix(lo.size());
    RefRecord record;
    size_t nul = 0;
    while (nul < rest.size() && rest[nul] != '\0') ++nul;
    if (nul == rest.size()) {
      return Status::Corruption("malformed REF record");
    }
    record.attribute.assign(rest.data(), nul);
    rest.RemovePrefix(nul + 1);
    if (rest.empty()) return Status::Corruption("missing REF flag");
    record.multi_valued = rest[0] == kMultiValued;
    rest.RemovePrefix(1);
    record.target_code.assign(rest.data(), rest.size());
    out.push_back(std::move(record));
  }
  return out;
}

Status SchemaCatalog::Load(Schema* schema, ClassCoder* coder) const {
  // 'C' records come back in code order == preorder, so every parent
  // precedes its children; the parent of a code is its longest proper
  // prefix that is itself a code.
  std::map<std::string, ClassId> by_code;
  std::vector<std::pair<ClassId, std::string>> assignments;

  BTree::Iterator it = tree_.NewIterator();
  std::string class_lo(1, kClassTag);
  const std::string class_hi = BytesSuccessor(Slice(class_lo));
  for (it.Seek(Slice(class_lo)); it.Valid(); it.Next()) {
    if (!(it.key() < Slice(class_hi))) break;
    Slice key = it.key();
    key.RemovePrefix(1);
    const std::string code(key.data(), key.size() - 1);
    const std::string name = it.value().ToString();

    // Parent: strip the trailing token.
    std::string parent_code;
    size_t pos = 1;
    size_t last_start = 1;
    while (pos < code.size()) {
      const size_t len =
          FirstTokenLength(Slice(code.data() + pos, code.size() - pos));
      if (len == 0) return Status::Corruption("undecodable code " + code);
      last_start = pos;
      pos += len;
    }
    if (last_start > 1) parent_code = code.substr(0, last_start);

    Result<ClassId> added(kInvalidClassId);
    if (parent_code.empty()) {
      added = schema->AddClass(name);
    } else {
      auto parent = by_code.find(parent_code);
      if (parent == by_code.end()) {
        return Status::Corruption("orphan catalog class " + code);
      }
      added = schema->AddSubclass(name, parent->second);
    }
    if (!added.ok()) return added.status();
    by_code[code] = added.value();
    assignments.emplace_back(added.value(), code);
  }

  Result<ClassCoder> rebuilt = ClassCoder::FromAssignments(assignments);
  if (!rebuilt.ok()) return rebuilt.status();
  *coder = std::move(rebuilt).value();

  // 'R' records.
  std::string ref_lo(1, kRefTag);
  const std::string ref_hi = BytesSuccessor(Slice(ref_lo));
  for (it.Seek(Slice(ref_lo)); it.Valid(); it.Next()) {
    if (!ref_hi.empty() && !(it.key() < Slice(ref_hi))) break;
    Slice rest = it.key();
    rest.RemovePrefix(1);
    size_t sep = 0;
    while (sep < rest.size() && rest[sep] != kCodeOidSeparator) ++sep;
    const std::string source_code(rest.data(), sep);
    rest.RemovePrefix(sep + 1);
    size_t nul = 0;
    while (nul < rest.size() && rest[nul] != '\0') ++nul;
    const std::string attr(rest.data(), nul);
    rest.RemovePrefix(nul + 1);
    if (rest.empty()) return Status::Corruption("missing REF flag");
    const bool multi = rest[0] == kMultiValued;
    rest.RemovePrefix(1);
    const std::string target_code(rest.data(), rest.size());
    auto source = by_code.find(source_code);
    auto target = by_code.find(target_code);
    if (source == by_code.end() || target == by_code.end()) {
      return Status::Corruption("dangling catalog REF");
    }
    UINDEX_RETURN_IF_ERROR(schema->AddReference(source->second,
                                                target->second, attr,
                                                multi));
  }
  return Status::OK();
}

}  // namespace uindex
