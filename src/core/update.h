#ifndef UINDEX_CORE_UPDATE_H_
#define UINDEX_CORE_UPDATE_H_

#include <algorithm>
#include <string>
#include <vector>

#include "core/uindex.h"
#include "objects/object_store.h"
#include "util/status.h"

namespace uindex {

/// Keeps a set of U-indexes consistent with an `ObjectStore` under object
/// creation, attribute updates, and deletion (paper §3.5).
///
/// Every mutation is handled uniformly: enumerate the index entries whose
/// paths pass through the object before the change, apply the change,
/// re-enumerate, and apply the key-set difference as plain B-tree
/// deletes/inserts. Because entries for one mid-path object are clustered
/// (same key prefix), the deletes and re-inserts land on few leaves — the
/// paper's "batch" update argument.
class IndexedDatabase {
 public:
  IndexedDatabase(const Schema* schema, ObjectStore* store)
      : schema_(schema), store_(store) {}

  IndexedDatabase(const IndexedDatabase&) = delete;
  IndexedDatabase& operator=(const IndexedDatabase&) = delete;

  /// Registers an index for maintenance. The index must already reflect the
  /// store's current contents (e.g. via BuildFrom, or empty store).
  void RegisterIndex(UIndex* index) { indexes_.push_back(index); }

  /// Stops maintaining `index` (e.g. before dropping it).
  void UnregisterIndex(UIndex* index) {
    indexes_.erase(std::remove(indexes_.begin(), indexes_.end(), index),
                   indexes_.end());
  }

  /// Stops maintaining every index (e.g. before a re-encode rebuild).
  void ClearIndexes() { indexes_.clear(); }

  ObjectStore* store() { return store_; }
  const Schema& schema() const { return *schema_; }

  /// Creates an object. No index entries result until its attributes are
  /// set.
  Result<Oid> CreateObject(ClassId cls) { return store_->Create(cls); }

  /// Sets an attribute, updating every registered index.
  Status SetAttr(Oid oid, const std::string& name, Value value);

  /// Deletes an object after removing every index entry through it.
  Status DeleteObject(Oid oid);

 private:
  const Schema* schema_;
  ObjectStore* store_;
  std::vector<UIndex*> indexes_;
};

}  // namespace uindex

#endif  // UINDEX_CORE_UPDATE_H_
