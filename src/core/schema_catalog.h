#ifndef UINDEX_CORE_SCHEMA_CATALOG_H_
#define UINDEX_CORE_SCHEMA_CATALOG_H_

#include <string>
#include <utility>
#include <vector>

#include "btree/btree.h"
#include "schema/encoder.h"
#include "schema/schema.h"
#include "storage/buffer_manager.h"
#include "util/status.h"

namespace uindex {

/// Stores the schema itself inside the same kind of key-compressed B-tree
/// the U-index uses (paper §4.1: "schema information can be stored in the
/// same index and retrieved easily ... that information is also
/// clustered").
///
/// Catalog keys reuse the class-code encoding, so everything about one
/// hierarchy clusters under its code prefix:
///
///   'C' code '$'                    → class name            (class record)
///   'R' code '$' attr '\0' target [M] → —                   (REF edge)
///
/// SUP edges need no records: they are the code prefixes themselves — a
/// range scan of 'C'-records over [code, SubtreeUpperBound(code)) *is* the
/// sub-tree, in preorder. A whole schema (plus its coder) round-trips
/// through `Store`/`Load`, which is the library's persistence story for
/// metadata.
class SchemaCatalog {
 public:
  explicit SchemaCatalog(BufferManager* buffers,
                         BTreeOptions options = BTreeOptions());

  /// Attaches to a catalog tree restored from a snapshot.
  SchemaCatalog(BufferManager* buffers, PageId root, uint64_t size,
                BTreeOptions options);

  /// Writes every class and REF edge of `schema` (coded by `coder`).
  /// The catalog must be empty.
  Status Store(const Schema& schema, const ClassCoder& coder);

  /// Adds one class/REF edge incrementally (schema evolution, Fig. 4).
  Status AddClass(const Slice& code, const std::string& name);
  Status AddReference(const Slice& source_code, const std::string& attr,
                      const Slice& target_code, bool multi_valued);

  /// Name of the class with exactly `code`.
  Result<std::string> NameOf(const Slice& code) const;

  /// Codes of the classes in the sub-tree rooted at `code`, preorder —
  /// one clustered range scan (the §4.1 clustering claim).
  Result<std::vector<std::string>> SubtreeCodes(const Slice& code) const;

  /// REF edges leaving exactly the class `code`.
  struct RefRecord {
    std::string attribute;
    std::string target_code;
    bool multi_valued = false;
  };
  Result<std::vector<RefRecord>> ReferencesOf(const Slice& code) const;

  /// Rebuilds a schema and coder equivalent to what was stored.
  Status Load(Schema* schema, ClassCoder* coder) const;

  /// Empties the catalog (reclaiming its pages) so it can be re-stored,
  /// e.g. after a re-encode.
  Status Clear() { return tree_.Clear(); }

  const BTree& btree() const { return tree_; }

 private:
  static std::string ClassKey(const Slice& code);
  static std::string RefKey(const Slice& source_code,
                            const std::string& attr,
                            const Slice& target_code, bool multi_valued);

  BufferManager* buffers_;
  BTree tree_;
};

}  // namespace uindex

#endif  // UINDEX_CORE_SCHEMA_CATALOG_H_
