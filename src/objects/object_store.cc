#include "objects/object_store.h"

#include <algorithm>

#include "util/coding.h"

namespace uindex {

Result<Oid> ObjectStore::Create(ClassId cls) {
  if (!schema_->IsValidClass(cls)) {
    return Status::InvalidArgument("bad class id");
  }
  const Oid oid = next_oid_++;
  Object obj;
  obj.oid = oid;
  obj.cls = cls;
  objects_[oid] = std::move(obj);
  if (extents_.size() <= cls) extents_.resize(schema_->class_count());
  extents_[cls].push_back(oid);
  ++live_count_;
  return oid;
}

Status ObjectStore::SetAttr(Oid oid, const std::string& name, Value value) {
  auto it = objects_.find(oid);
  if (it == objects_.end()) return Status::NotFound("oid");
  Value& slot = it->second.attrs[name];
  RemoveReverse(oid, name, slot);
  AddReverse(oid, name, value);
  slot = std::move(value);
  return Status::OK();
}

Result<const Object*> ObjectStore::Get(Oid oid) const {
  auto it = objects_.find(oid);
  if (it == objects_.end()) return Status::NotFound("oid");
  return &it->second;
}

bool ObjectStore::Exists(Oid oid) const { return objects_.count(oid) != 0; }

Status ObjectStore::Delete(Oid oid) {
  auto it = objects_.find(oid);
  if (it == objects_.end()) return Status::NotFound("oid");
  for (const auto& [name, value] : it->second.attrs) {
    RemoveReverse(oid, name, value);
  }
  auto& extent = extents_[it->second.cls];
  extent.erase(std::remove(extent.begin(), extent.end(), oid), extent.end());
  objects_.erase(it);
  --live_count_;
  return Status::OK();
}

const std::vector<Oid>& ObjectStore::ExtentOf(ClassId cls) const {
  static const std::vector<Oid> kEmpty;
  if (cls >= extents_.size()) return kEmpty;
  return extents_[cls];
}

std::vector<Oid> ObjectStore::DeepExtentOf(ClassId cls) const {
  std::vector<Oid> out;
  for (const ClassId c : schema_->SubtreeOf(cls)) {
    const auto& extent = ExtentOf(c);
    out.insert(out.end(), extent.begin(), extent.end());
  }
  return out;
}

Result<Oid> ObjectStore::Deref(Oid oid, const std::string& attr) const {
  Result<const Object*> obj = Get(oid);
  if (!obj.ok()) return obj.status();
  const Value* value = obj.value()->FindAttr(attr);
  if (value == nullptr || value->is_null()) {
    return Status::NotFound("attribute " + attr + " unset");
  }
  if (value->kind() != Value::Kind::kRef) {
    return Status::InvalidArgument("attribute " + attr +
                                   " is not a single-valued reference");
  }
  return value->AsRef();
}

std::vector<Oid> ObjectStore::ReferrersOf(Oid target,
                                          const std::string& attr) const {
  auto it = referrers_.find({target, attr});
  if (it == referrers_.end()) return {};
  return it->second;
}

std::string ObjectStore::Serialize() const {
  // Layout: next_oid u32 ∥ count u64 ∥ per object (ascending oid):
  //   oid u32 ∥ class u32 ∥ attr_count u32 ∥
  //   per attr: name_len u32 ∥ name ∥ value.
  std::string out;
  PutFixed32(&out, next_oid_);
  PutFixed64(&out, live_count_);
  std::vector<Oid> oids;
  oids.reserve(objects_.size());
  for (const auto& [oid, obj] : objects_) {
    (void)obj;
    oids.push_back(oid);
  }
  std::sort(oids.begin(), oids.end());
  for (const Oid oid : oids) {
    const Object& obj = objects_.at(oid);
    PutFixed32(&out, oid);
    PutFixed32(&out, obj.cls);
    PutFixed32(&out, static_cast<uint32_t>(obj.attrs.size()));
    // Deterministic attribute order.
    std::vector<const std::string*> names;
    for (const auto& [name, value] : obj.attrs) {
      (void)value;
      names.push_back(&name);
    }
    std::sort(names.begin(), names.end(),
              [](const std::string* a, const std::string* b) {
                return *a < *b;
              });
    for (const std::string* name : names) {
      PutFixed32(&out, static_cast<uint32_t>(name->size()));
      out.append(*name);
      AppendValueTo(obj.attrs.at(*name), &out);
    }
  }
  return out;
}

Status ObjectStore::Deserialize(const Slice& blob) {
  if (live_count_ != 0) {
    return Status::InvalidArgument("store not empty");
  }
  size_t pos = 0;
  if (blob.size() < 12) return Status::Corruption("truncated store blob");
  const Oid next_oid = DecodeFixed32(blob.data());
  const uint64_t count = DecodeFixed64(blob.data() + 4);
  pos = 12;
  for (uint64_t i = 0; i < count; ++i) {
    if (pos + 12 > blob.size()) {
      return Status::Corruption("truncated object header");
    }
    const Oid oid = DecodeFixed32(blob.data() + pos);
    const ClassId cls = DecodeFixed32(blob.data() + pos + 4);
    const uint32_t attr_count = DecodeFixed32(blob.data() + pos + 8);
    pos += 12;
    if (!schema_->IsValidClass(cls)) {
      return Status::Corruption("unknown class in store blob");
    }
    Object obj;
    obj.oid = oid;
    obj.cls = cls;
    for (uint32_t a = 0; a < attr_count; ++a) {
      if (pos + 4 > blob.size()) {
        return Status::Corruption("truncated attr name len");
      }
      const uint32_t name_len = DecodeFixed32(blob.data() + pos);
      pos += 4;
      if (pos + name_len > blob.size()) {
        return Status::Corruption("truncated attr name");
      }
      std::string name(blob.data() + pos, name_len);
      pos += name_len;
      Result<Value> value = ReadValueFrom(blob, &pos);
      if (!value.ok()) return value.status();
      AddReverse(oid, name, value.value());
      obj.attrs[std::move(name)] = std::move(value).value();
    }
    if (extents_.size() < schema_->class_count()) {
      extents_.resize(schema_->class_count());
    }
    extents_[cls].push_back(oid);
    objects_[oid] = std::move(obj);
    ++live_count_;
  }
  next_oid_ = next_oid;
  return Status::OK();
}

void ObjectStore::AddReverse(Oid source, const std::string& attr,
                             const Value& value) {
  if (value.kind() == Value::Kind::kRef) {
    referrers_[{value.AsRef(), attr}].push_back(source);
  } else if (value.kind() == Value::Kind::kRefSet) {
    for (Oid target : value.AsRefSet()) {
      referrers_[{target, attr}].push_back(source);
    }
  }
}

void ObjectStore::RemoveReverse(Oid source, const std::string& attr,
                                const Value& value) {
  auto drop = [this, source, &attr](Oid target) {
    auto it = referrers_.find({target, attr});
    if (it == referrers_.end()) return;
    auto& v = it->second;
    v.erase(std::remove(v.begin(), v.end(), source), v.end());
    if (v.empty()) referrers_.erase(it);
  };
  if (value.kind() == Value::Kind::kRef) {
    drop(value.AsRef());
  } else if (value.kind() == Value::Kind::kRefSet) {
    for (Oid target : value.AsRefSet()) drop(target);
  }
}

}  // namespace uindex
