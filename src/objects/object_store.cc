#include "objects/object_store.h"

#include <algorithm>

#include "util/coding.h"

namespace uindex {

const ObjectStore::Rev* ObjectStore::ResolveLocked(
    const std::vector<Rev>& chain, uint64_t at) const {
  const Rev* best = nullptr;
  for (const Rev& rev : chain) {  // Ascending epochs; last of equals wins.
    if (rev.epoch > at) break;
    best = &rev;
  }
  if (best == nullptr || best->obj == nullptr) return nullptr;
  return best;
}

Result<Oid> ObjectStore::Create(ClassId cls) {
  if (!schema_->IsValidClass(cls)) {
    return Status::InvalidArgument("bad class id");
  }
  const uint64_t w = MutationEpoch();
  const Oid oid = next_oid_.fetch_add(1, std::memory_order_relaxed);
  auto obj = std::make_shared<Object>();
  obj->oid = oid;
  obj->cls = cls;
  {
    Shard& shard = ShardFor(oid);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.chains[oid].push_back(Rev{w, std::move(obj)});
  }
  {
    std::lock_guard<std::mutex> lock(extents_mu_);
    if (extents_.size() <= cls) extents_.resize(schema_->class_count());
    extents_[cls].push_back(Interval{oid, w, kLatestEpoch});
  }
  live_count_.fetch_add(1, std::memory_order_relaxed);
  return oid;
}

Status ObjectStore::SetAttr(Oid oid, const std::string& name, Value value) {
  const uint64_t w = MutationEpoch();
  std::shared_ptr<const Object> current;
  {
    Shard& shard = ShardFor(oid);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.chains.find(oid);
    if (it == shard.chains.end()) return Status::NotFound("oid");
    const Rev* rev = ResolveLocked(it->second, w);
    if (rev == nullptr) return Status::NotFound("oid");
    current = rev->obj;
  }
  // Copy-on-write: the published revision stays untouched for pinned
  // readers; the new revision is appended (never swapped in place, so
  // `const Object*` results handed out earlier this mutation stay valid).
  auto next = std::make_shared<Object>(*current);
  Value& slot = next->attrs[name];
  RemoveReverse(oid, name, slot, w);
  AddReverse(oid, name, value, w);
  slot = std::move(value);
  {
    Shard& shard = ShardFor(oid);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.chains[oid].push_back(Rev{w, std::move(next)});
  }
  return Status::OK();
}

Result<const Object*> ObjectStore::Get(Oid oid) const {
  const uint64_t at = EpochContext::Effective();
  const Shard& shard = ShardFor(oid);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.chains.find(oid);
  if (it == shard.chains.end()) return Status::NotFound("oid");
  const Rev* rev = ResolveLocked(it->second, at);
  if (rev == nullptr) return Status::NotFound("oid");
  // The raw pointer stays valid until reclamation passes `at` — excluded
  // while the resolving reader is pinned (see class comment).
  return rev->obj.get();
}

bool ObjectStore::Exists(Oid oid) const {
  const uint64_t at = EpochContext::Effective();
  const Shard& shard = ShardFor(oid);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.chains.find(oid);
  if (it == shard.chains.end()) return false;
  return ResolveLocked(it->second, at) != nullptr;
}

Status ObjectStore::Delete(Oid oid) {
  const uint64_t w = MutationEpoch();
  std::shared_ptr<const Object> current;
  {
    Shard& shard = ShardFor(oid);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.chains.find(oid);
    if (it == shard.chains.end()) return Status::NotFound("oid");
    const Rev* rev = ResolveLocked(it->second, w);
    if (rev == nullptr) return Status::NotFound("oid");
    current = rev->obj;
  }
  for (const auto& [name, value] : current->attrs) {
    RemoveReverse(oid, name, value, w);
  }
  {
    std::lock_guard<std::mutex> lock(extents_mu_);
    auto& extent = extents_[current->cls];
    for (Interval& iv : extent) {
      if (iv.oid == oid && iv.died == kLatestEpoch) {
        iv.died = w;
        break;
      }
    }
  }
  {
    Shard& shard = ShardFor(oid);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.chains[oid].push_back(Rev{w, nullptr});  // Tombstone.
  }
  live_count_.fetch_sub(1, std::memory_order_relaxed);
  return Status::OK();
}

std::vector<Oid> ObjectStore::ExtentOf(ClassId cls) const {
  const uint64_t at = EpochContext::Effective();
  std::vector<Oid> out;
  std::lock_guard<std::mutex> lock(extents_mu_);
  if (cls >= extents_.size()) return out;
  for (const Interval& iv : extents_[cls]) {
    if (Visible(iv.born, iv.died, at)) out.push_back(iv.oid);
  }
  return out;
}

std::vector<Oid> ObjectStore::DeepExtentOf(ClassId cls) const {
  std::vector<Oid> out;
  for (const ClassId c : schema_->SubtreeOf(cls)) {
    const std::vector<Oid> extent = ExtentOf(c);
    out.insert(out.end(), extent.begin(), extent.end());
  }
  return out;
}

Result<Oid> ObjectStore::Deref(Oid oid, const std::string& attr) const {
  Result<const Object*> obj = Get(oid);
  if (!obj.ok()) return obj.status();
  const Value* value = obj.value()->FindAttr(attr);
  if (value == nullptr || value->is_null()) {
    return Status::NotFound("attribute " + attr + " unset");
  }
  if (value->kind() != Value::Kind::kRef) {
    return Status::InvalidArgument("attribute " + attr +
                                   " is not a single-valued reference");
  }
  return value->AsRef();
}

std::vector<Oid> ObjectStore::ReferrersOf(Oid target,
                                          const std::string& attr) const {
  const uint64_t at = EpochContext::Effective();
  std::vector<Oid> out;
  std::lock_guard<std::mutex> lock(referrers_mu_);
  auto it = referrers_.find({target, attr});
  if (it == referrers_.end()) return out;
  for (const Interval& iv : it->second) {
    if (Visible(iv.born, iv.died, at)) out.push_back(iv.oid);
  }
  return out;
}

std::string ObjectStore::Serialize() const {
  // Layout: next_oid u32 ∥ count u64 ∥ per object (ascending oid):
  //   oid u32 ∥ class u32 ∥ attr_count u32 ∥
  //   per attr: name_len u32 ∥ name ∥ value.
  const uint64_t at = EpochContext::Effective();
  std::vector<std::shared_ptr<const Object>> live;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [oid, chain] : shard.chains) {
      const Rev* rev = ResolveLocked(chain, at);
      if (rev != nullptr) live.push_back(rev->obj);
    }
  }
  std::sort(live.begin(), live.end(),
            [](const std::shared_ptr<const Object>& a,
               const std::shared_ptr<const Object>& b) {
              return a->oid < b->oid;
            });
  std::string out;
  PutFixed32(&out, next_oid_.load(std::memory_order_relaxed));
  PutFixed64(&out, live.size());
  for (const std::shared_ptr<const Object>& obj : live) {
    PutFixed32(&out, obj->oid);
    PutFixed32(&out, obj->cls);
    PutFixed32(&out, static_cast<uint32_t>(obj->attrs.size()));
    // Deterministic attribute order.
    std::vector<const std::string*> names;
    for (const auto& [name, value] : obj->attrs) {
      (void)value;
      names.push_back(&name);
    }
    std::sort(names.begin(), names.end(),
              [](const std::string* a, const std::string* b) {
                return *a < *b;
              });
    for (const std::string* name : names) {
      PutFixed32(&out, static_cast<uint32_t>(name->size()));
      out.append(*name);
      AppendValueTo(obj->attrs.at(*name), &out);
    }
  }
  return out;
}

Status ObjectStore::Deserialize(const Slice& blob) {
  if (live_count_.load(std::memory_order_relaxed) != 0) {
    return Status::InvalidArgument("store not empty");
  }
  size_t pos = 0;
  if (blob.size() < 12) return Status::Corruption("truncated store blob");
  const Oid next_oid = DecodeFixed32(blob.data());
  const uint64_t count = DecodeFixed64(blob.data() + 4);
  pos = 12;
  for (uint64_t i = 0; i < count; ++i) {
    if (pos + 12 > blob.size()) {
      return Status::Corruption("truncated object header");
    }
    const Oid oid = DecodeFixed32(blob.data() + pos);
    const ClassId cls = DecodeFixed32(blob.data() + pos + 4);
    const uint32_t attr_count = DecodeFixed32(blob.data() + pos + 8);
    pos += 12;
    if (!schema_->IsValidClass(cls)) {
      return Status::Corruption("unknown class in store blob");
    }
    auto obj = std::make_shared<Object>();
    obj->oid = oid;
    obj->cls = cls;
    for (uint32_t a = 0; a < attr_count; ++a) {
      if (pos + 4 > blob.size()) {
        return Status::Corruption("truncated attr name len");
      }
      const uint32_t name_len = DecodeFixed32(blob.data() + pos);
      pos += 4;
      if (pos + name_len > blob.size()) {
        return Status::Corruption("truncated attr name");
      }
      std::string name(blob.data() + pos, name_len);
      pos += name_len;
      Result<Value> value = ReadValueFrom(blob, &pos);
      if (!value.ok()) return value.status();
      AddReverse(oid, name, value.value(), 0);
      obj->attrs[std::move(name)] = std::move(value).value();
    }
    {
      std::lock_guard<std::mutex> lock(extents_mu_);
      if (extents_.size() < schema_->class_count()) {
        extents_.resize(schema_->class_count());
      }
      extents_[cls].push_back(Interval{oid, 0, kLatestEpoch});
    }
    {
      Shard& shard = ShardFor(oid);
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.chains[oid].push_back(Rev{0, std::move(obj)});
    }
    live_count_.fetch_add(1, std::memory_order_relaxed);
  }
  next_oid_.store(next_oid, std::memory_order_relaxed);
  return Status::OK();
}

void ObjectStore::ReclaimBelow(uint64_t horizon) {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.chains.begin();
    while (it != shard.chains.end()) {
      std::vector<Rev>& chain = it->second;
      // Keep the newest revision at or below the horizon (it IS the state
      // every retained reader resolves) plus everything newer.
      size_t keep_from = 0;
      for (size_t i = 0; i < chain.size(); ++i) {
        if (chain[i].epoch <= horizon) keep_from = i;
      }
      if (keep_from > 0) chain.erase(chain.begin(), chain.begin() + keep_from);
      // A tombstone is always last (oids are never reused); once it is the
      // horizon state, nobody can resolve the object again.
      if (chain.size() == 1 && chain[0].obj == nullptr &&
          chain[0].epoch <= horizon) {
        it = shard.chains.erase(it);
      } else {
        ++it;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(extents_mu_);
    for (std::vector<Interval>& extent : extents_) {
      extent.erase(std::remove_if(extent.begin(), extent.end(),
                                  [horizon](const Interval& iv) {
                                    return iv.died <= horizon;
                                  }),
                   extent.end());
    }
  }
  {
    std::lock_guard<std::mutex> lock(referrers_mu_);
    auto it = referrers_.begin();
    while (it != referrers_.end()) {
      std::vector<Interval>& v = it->second;
      v.erase(std::remove_if(v.begin(), v.end(),
                             [horizon](const Interval& iv) {
                               return iv.died <= horizon;
                             }),
              v.end());
      if (v.empty()) {
        it = referrers_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

size_t ObjectStore::versioned_garbage_count() const {
  size_t garbage = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [oid, chain] : shard.chains) {
      (void)oid;
      if (!chain.empty()) garbage += chain.size() - 1;
      if (!chain.empty() && chain.back().obj == nullptr) ++garbage;
    }
  }
  {
    std::lock_guard<std::mutex> lock(extents_mu_);
    for (const std::vector<Interval>& extent : extents_) {
      for (const Interval& iv : extent) {
        if (iv.died != kLatestEpoch) ++garbage;
      }
    }
  }
  return garbage;
}

void ObjectStore::AddReverse(Oid source, const std::string& attr,
                             const Value& value, uint64_t epoch) {
  std::lock_guard<std::mutex> lock(referrers_mu_);
  if (value.kind() == Value::Kind::kRef) {
    referrers_[{value.AsRef(), attr}].push_back(
        Interval{source, epoch, kLatestEpoch});
  } else if (value.kind() == Value::Kind::kRefSet) {
    for (Oid target : value.AsRefSet()) {
      referrers_[{target, attr}].push_back(
          Interval{source, epoch, kLatestEpoch});
    }
  }
}

void ObjectStore::RemoveReverse(Oid source, const std::string& attr,
                                const Value& value, uint64_t epoch) {
  std::lock_guard<std::mutex> lock(referrers_mu_);
  auto drop = [this, source, &attr, epoch](Oid target) {
    auto it = referrers_.find({target, attr});
    if (it == referrers_.end()) return;
    for (Interval& iv : it->second) {
      if (iv.oid == source && iv.died == kLatestEpoch) iv.died = epoch;
    }
  };
  if (value.kind() == Value::Kind::kRef) {
    drop(value.AsRef());
  } else if (value.kind() == Value::Kind::kRefSet) {
    for (Oid target : value.AsRefSet()) drop(target);
  }
}

}  // namespace uindex
