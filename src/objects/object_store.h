#ifndef UINDEX_OBJECTS_OBJECT_STORE_H_
#define UINDEX_OBJECTS_OBJECT_STORE_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "objects/object.h"
#include "schema/schema.h"
#include "util/slice.h"
#include "util/status.h"

namespace uindex {

/// In-memory extent manager: owns all objects, tracks per-class extents and
/// reverse references (who points at whom through which attribute).
///
/// The reverse-reference map is what makes path-index maintenance possible:
/// when an object in the middle of a path changes (the paper's "a President
/// switches companies", §3.5), the affected head-of-path objects are found
/// by walking referrers.
class ObjectStore {
 public:
  explicit ObjectStore(const Schema* schema) : schema_(schema) {}

  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  const Schema& schema() const { return *schema_; }

  /// Creates an object of `cls` and returns its oid (oids start at 1).
  Result<Oid> Create(ClassId cls);

  /// Sets (or overwrites) an attribute. Reference values update the
  /// reverse-reference map.
  Status SetAttr(Oid oid, const std::string& name, Value value);

  Result<const Object*> Get(Oid oid) const;
  bool Exists(Oid oid) const;

  /// Removes the object and its outgoing reverse-reference entries. The
  /// caller is responsible for index maintenance *before* deleting.
  Status Delete(Oid oid);

  /// Direct instances of `cls` (not of its subclasses), in creation order.
  const std::vector<Oid>& ExtentOf(ClassId cls) const;

  /// Instances of `cls` and all of its subclasses, in hierarchy preorder
  /// then creation order.
  std::vector<Oid> DeepExtentOf(ClassId cls) const;

  /// Follows a single-valued reference attribute; NotFound if unset.
  Result<Oid> Deref(Oid oid, const std::string& attr) const;

  /// Objects whose `attr` references `target` (any multiplicity).
  std::vector<Oid> ReferrersOf(Oid target, const std::string& attr) const;

  uint64_t size() const { return live_count_; }

  /// Serializes every live object (oids, classes, attributes) to a byte
  /// blob; `Deserialize` restores it into an empty store over an
  /// equivalent schema. Reverse references and extents are rebuilt.
  std::string Serialize() const;
  Status Deserialize(const Slice& blob);

 private:
  void AddReverse(Oid source, const std::string& attr, const Value& value);
  void RemoveReverse(Oid source, const std::string& attr,
                     const Value& value);

  const Schema* schema_;
  std::unordered_map<Oid, Object> objects_;
  std::vector<std::vector<Oid>> extents_;  // indexed by ClassId
  // (target oid, attribute) -> sources referencing it.
  std::map<std::pair<Oid, std::string>, std::vector<Oid>> referrers_;
  Oid next_oid_ = 1;
  uint64_t live_count_ = 0;
};

}  // namespace uindex

#endif  // UINDEX_OBJECTS_OBJECT_STORE_H_
