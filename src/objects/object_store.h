#ifndef UINDEX_OBJECTS_OBJECT_STORE_H_
#define UINDEX_OBJECTS_OBJECT_STORE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "objects/object.h"
#include "schema/schema.h"
#include "storage/mvcc.h"
#include "util/slice.h"
#include "util/status.h"

namespace uindex {

/// In-memory extent manager: owns all objects, tracks per-class extents and
/// reverse references (who points at whom through which attribute).
///
/// The reverse-reference map is what makes path-index maintenance possible:
/// when an object in the middle of a path changes (the paper's "a President
/// switches companies", §3.5), the affected head-of-path objects are found
/// by walking referrers.
///
/// MVCC (storage/mvcc.h): every piece of state is epoch-stamped so readers
/// pinned at epoch E see exactly the store as of E while the single writer
/// mutates at E+1. Objects live in per-oid *revision chains* (immutable
/// `Object` snapshots; a null object is a deletion tombstone); extent and
/// reverse-reference membership carries `[born, died)` epoch intervals.
/// Mutations stamp the thread-local `EpochContext` epoch (`kLatestEpoch`
/// i.e. standalone use stamps 0, which every reader sees — the exact
/// pre-MVCC behaviour); reads resolve at `EpochContext::Effective()`.
/// `ReclaimBelow` prunes revisions/intervals no pinned reader can need.
///
/// Thread-safety: concurrent readers are safe against the (externally
/// serialized, single) writer — chains are sharded by oid under per-shard
/// mutexes, extents and referrers under their own. Raw `const Object*`
/// results stay valid until a reclaim passes the epoch they were resolved
/// at (the database's pin horizon guarantees that never happens while the
/// resolving reader is pinned).
class ObjectStore {
 public:
  explicit ObjectStore(const Schema* schema) : schema_(schema) {}

  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  const Schema& schema() const { return *schema_; }

  /// Creates an object of `cls` and returns its oid (oids start at 1 and
  /// are never reused).
  Result<Oid> Create(ClassId cls);

  /// Sets (or overwrites) an attribute. Reference values update the
  /// reverse-reference map.
  Status SetAttr(Oid oid, const std::string& name, Value value);

  Result<const Object*> Get(Oid oid) const;
  bool Exists(Oid oid) const;

  /// Removes the object and its outgoing reverse-reference entries. The
  /// caller is responsible for index maintenance *before* deleting.
  Status Delete(Oid oid);

  /// Direct instances of `cls` (not of its subclasses), in creation order,
  /// as of the calling thread's read epoch. By value: the membership is a
  /// per-epoch filter, not a stable container.
  std::vector<Oid> ExtentOf(ClassId cls) const;

  /// Instances of `cls` and all of its subclasses, in hierarchy preorder
  /// then creation order.
  std::vector<Oid> DeepExtentOf(ClassId cls) const;

  /// Follows a single-valued reference attribute; NotFound if unset.
  Result<Oid> Deref(Oid oid, const std::string& attr) const;

  /// Objects whose `attr` references `target` (any multiplicity).
  std::vector<Oid> ReferrersOf(Oid target, const std::string& attr) const;

  /// Live objects at the *newest* state (not epoch-filtered).
  uint64_t size() const {
    return live_count_.load(std::memory_order_relaxed);
  }

  /// Serializes every live object (oids, classes, attributes) to a byte
  /// blob; `Deserialize` restores it into an empty store over an
  /// equivalent schema. Reverse references and extents are rebuilt.
  /// Serialization resolves at the calling thread's read epoch (callers
  /// hold exclusive access and serialize the newest state).
  std::string Serialize() const;
  Status Deserialize(const Slice& blob);

  /// Epoch-based reclamation: drops every revision and membership
  /// interval that no reader pinned at or above `horizon` can resolve.
  /// Caller holds the writer serialization.
  void ReclaimBelow(uint64_t horizon);

  /// Retained superseded revisions (tests / introspection): chain
  /// revisions beyond the newest of each live oid, plus dead membership
  /// intervals.
  size_t versioned_garbage_count() const;

 private:
  // One revision of an object: the immutable state published at `epoch`
  // (null = deletion tombstone). Chains are ascending by epoch; several
  // same-epoch revisions may exist (each SetAttr appends — older ones are
  // kept so `const Object*` handed out earlier in the same mutation stay
  // valid), and resolution takes the last one at or below the read epoch.
  struct Rev {
    uint64_t epoch;
    std::shared_ptr<const Object> obj;
  };
  // Epoch-interval membership of an extent or referrer list.
  struct Interval {
    Oid oid;  // Extent member, or referring source.
    uint64_t born;
    uint64_t died;  // kLatestEpoch while live.
  };

  static constexpr size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Oid, std::vector<Rev>> chains;
  };
  Shard& ShardFor(Oid oid) { return shards_[oid % kShards]; }
  const Shard& ShardFor(Oid oid) const { return shards_[oid % kShards]; }

  // The epoch a mutation stamps: the thread-local epoch, or 0 for
  // standalone (un-scoped) use.
  static uint64_t MutationEpoch() {
    const uint64_t e = EpochContext::current();
    return e == kLatestEpoch ? 0 : e;
  }
  static bool Visible(uint64_t born, uint64_t died, uint64_t at) {
    return born <= at && at < died;
  }

  // Newest revision at or below `at`; null when none or a tombstone.
  const Rev* ResolveLocked(const std::vector<Rev>& chain, uint64_t at) const;

  void AddReverse(Oid source, const std::string& attr, const Value& value,
                  uint64_t epoch);
  void RemoveReverse(Oid source, const std::string& attr, const Value& value,
                     uint64_t epoch);

  const Schema* schema_;
  Shard shards_[kShards];
  mutable std::mutex extents_mu_;
  std::vector<std::vector<Interval>> extents_;  // indexed by ClassId
  mutable std::mutex referrers_mu_;
  // (target oid, attribute) -> sources referencing it, with lifetimes.
  std::map<std::pair<Oid, std::string>, std::vector<Interval>> referrers_;
  std::atomic<Oid> next_oid_{1};
  std::atomic<uint64_t> live_count_{0};
};

}  // namespace uindex

#endif  // UINDEX_OBJECTS_OBJECT_STORE_H_
