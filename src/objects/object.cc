#include "objects/object.h"

#include "util/coding.h"

namespace uindex {

void Value::AppendOrderPreserving(std::string* dst) const {
  switch (kind_) {
    case Kind::kNull:
      break;
    case Kind::kInt:
      // Flipping the sign bit maps int64 order onto unsigned order.
      PutBigEndian64(dst,
                     static_cast<uint64_t>(int_) ^ 0x8000000000000000ull);
      break;
    case Kind::kString:
      dst->append(str_);
      break;
    case Kind::kRef:
      PutBigEndian32(dst, static_cast<Oid>(int_));
      break;
    case Kind::kRefSet:
      for (Oid oid : refs_) PutBigEndian32(dst, oid);
      break;
  }
}

std::string Value::DebugString() const {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kInt:
      return std::to_string(int_);
    case Kind::kString:
      return "\"" + str_ + "\"";
    case Kind::kRef:
      return "ref(" + std::to_string(int_) + ")";
    case Kind::kRefSet: {
      std::string out = "refs(";
      for (size_t i = 0; i < refs_.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(refs_[i]);
      }
      return out + ")";
    }
  }
  return "?";
}

bool operator==(const Value& a, const Value& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Value::Kind::kNull:
      return true;
    case Value::Kind::kInt:
    case Value::Kind::kRef:
      return a.int_ == b.int_;
    case Value::Kind::kString:
      return a.str_ == b.str_;
    case Value::Kind::kRefSet:
      return a.refs_ == b.refs_;
  }
  return false;
}


namespace {

// Value wire tags.
constexpr uint8_t kNullTag = 0;
constexpr uint8_t kIntTag = 1;
constexpr uint8_t kStringTag = 2;
constexpr uint8_t kRefTag = 3;
constexpr uint8_t kRefSetTag = 4;

}  // namespace

void AppendValueTo(const Value& v, std::string* out) {
  switch (v.kind()) {
    case Value::Kind::kNull:
      out->push_back(static_cast<char>(kNullTag));
      break;
    case Value::Kind::kInt:
      out->push_back(static_cast<char>(kIntTag));
      PutFixed64(out, static_cast<uint64_t>(v.AsInt()));
      break;
    case Value::Kind::kString:
      out->push_back(static_cast<char>(kStringTag));
      PutFixed32(out, static_cast<uint32_t>(v.AsString().size()));
      out->append(v.AsString());
      break;
    case Value::Kind::kRef:
      out->push_back(static_cast<char>(kRefTag));
      PutFixed32(out, v.AsRef());
      break;
    case Value::Kind::kRefSet:
      out->push_back(static_cast<char>(kRefSetTag));
      PutFixed32(out, static_cast<uint32_t>(v.AsRefSet().size()));
      for (const Oid oid : v.AsRefSet()) PutFixed32(out, oid);
      break;
  }
}

Result<Value> ReadValueFrom(const Slice& blob, size_t* pos) {
  auto need = [&blob, pos](size_t n) {
    return *pos + n <= blob.size();
  };
  if (!need(1)) return Status::Corruption("truncated value");
  const uint8_t tag = static_cast<uint8_t>(blob[(*pos)++]);
  switch (tag) {
    case kNullTag:
      return Value();
    case kIntTag: {
      if (!need(8)) return Status::Corruption("truncated int");
      const uint64_t raw = DecodeFixed64(blob.data() + *pos);
      *pos += 8;
      return Value::Int(static_cast<int64_t>(raw));
    }
    case kStringTag: {
      if (!need(4)) return Status::Corruption("truncated string len");
      const uint32_t len = DecodeFixed32(blob.data() + *pos);
      *pos += 4;
      if (!need(len)) return Status::Corruption("truncated string");
      std::string s(blob.data() + *pos, len);
      *pos += len;
      return Value::Str(std::move(s));
    }
    case kRefTag: {
      if (!need(4)) return Status::Corruption("truncated ref");
      const Oid oid = DecodeFixed32(blob.data() + *pos);
      *pos += 4;
      return Value::Ref(oid);
    }
    case kRefSetTag: {
      if (!need(4)) return Status::Corruption("truncated refset len");
      const uint32_t count = DecodeFixed32(blob.data() + *pos);
      *pos += 4;
      if (!need(4ull * count)) return Status::Corruption("truncated refset");
      std::vector<Oid> oids(count);
      for (uint32_t i = 0; i < count; ++i) {
        oids[i] = DecodeFixed32(blob.data() + *pos + 4ull * i);
      }
      *pos += 4ull * count;
      return Value::RefSet(std::move(oids));
    }
    default:
      return Status::Corruption("bad value tag");
  }
}

}  // namespace uindex
