#ifndef UINDEX_OBJECTS_OBJECT_H_
#define UINDEX_OBJECTS_OBJECT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "schema/schema.h"
#include "util/slice.h"
#include "util/status.h"

namespace uindex {

/// Object identifier. The paper's experiments use 4-byte OIDs; so do we.
using Oid = uint32_t;

constexpr Oid kInvalidOid = 0;

/// A typed attribute value: null, integer, string, a single object
/// reference, or a set of references (multi-valued attribute, paper §4.3).
class Value {
 public:
  enum class Kind { kNull, kInt, kString, kRef, kRefSet };

  Value() : kind_(Kind::kNull) {}

  static Value Int(int64_t v) {
    Value out;
    out.kind_ = Kind::kInt;
    out.int_ = v;
    return out;
  }
  static Value Str(std::string v) {
    Value out;
    out.kind_ = Kind::kString;
    out.str_ = std::move(v);
    return out;
  }
  static Value Ref(Oid oid) {
    Value out;
    out.kind_ = Kind::kRef;
    out.int_ = oid;
    return out;
  }
  static Value RefSet(std::vector<Oid> oids) {
    Value out;
    out.kind_ = Kind::kRefSet;
    out.refs_ = std::move(oids);
    return out;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  int64_t AsInt() const { return int_; }
  const std::string& AsString() const { return str_; }
  Oid AsRef() const { return static_cast<Oid>(int_); }
  const std::vector<Oid>& AsRefSet() const { return refs_; }

  /// Appends a byte encoding whose memcmp order equals the logical order
  /// (within one kind). Integers flip the sign bit and go big-endian;
  /// strings append their bytes (strings used as index keys must not
  /// contain NUL). Used as the attribute-value head of every index key.
  void AppendOrderPreserving(std::string* dst) const;

  std::string DebugString() const;

  friend bool operator==(const Value& a, const Value& b);

 private:
  Kind kind_;
  int64_t int_ = 0;
  std::string str_;
  std::vector<Oid> refs_;
};

bool operator==(const Value& a, const Value& b);

/// Wire codec for values (tagged, length-prefixed), shared by the object
/// store serialization and the database journal.
void AppendValueTo(const Value& v, std::string* out);
Result<Value> ReadValueFrom(const Slice& blob, size_t* pos);

/// One database object: identity, class, and attribute values.
struct Object {
  Oid oid = kInvalidOid;
  ClassId cls = kInvalidClassId;
  std::unordered_map<std::string, Value> attrs;

  const Value* FindAttr(const std::string& name) const {
    auto it = attrs.find(name);
    return it == attrs.end() ? nullptr : &it->second;
  }
};

}  // namespace uindex

#endif  // UINDEX_OBJECTS_OBJECT_H_
