#include "storage/file_pager.h"

#include <cassert>
#include <cstring>

#include "util/coding.h"
#include "util/crc32.h"

namespace uindex {

namespace {

constexpr char kMagic[8] = {'U', 'I', 'D', 'X', 'P', 'A', 'G', 'E'};
constexpr uint32_t kVersion = 1;
// magic ∥ version ∥ page_size ∥ max_page_id ∥ live_count ∥ bitmap_len
// ∥ bitmap crc — fits the 64-byte minimum page size.
constexpr size_t kHeaderSize = 8 + 4 + 4 + 4 + 8 + 4 + 4;

std::string PackBitmap(const std::vector<bool>& live, PageId max_page_id) {
  std::string bitmap((max_page_id + 7) / 8, '\0');
  for (PageId id = 1; id <= max_page_id; ++id) {
    if (live[id]) bitmap[(id - 1) / 8] |= static_cast<char>(1 << ((id - 1) % 8));
  }
  return bitmap;
}

}  // namespace

FilePager::FilePager(Env* env, std::string path, uint32_t page_size,
                     std::unique_ptr<RandomRWFile> file)
    : env_(env), path_(std::move(path)), page_size_(page_size),
      file_(std::move(file)), live_(1, false) {
  assert(page_size_ >= kHeaderSize && "page size too small for the header");
}

FilePager::~FilePager() {
  // Best effort; the data file is a volatile working store (see class
  // comment), so a lost close costs nothing recovery cannot rebuild.
  if (file_ != nullptr) file_->Close();
}

Result<std::unique_ptr<FilePager>> FilePager::Create(
    Env* env, const std::string& path, uint32_t page_size) {
  if (env == nullptr) env = Env::Default();
  if (page_size < 64) {
    return Status::InvalidArgument("page size too small");
  }
  Result<std::unique_ptr<RandomRWFile>> file =
      env->NewRandomRWFile(path, /*truncate=*/true);
  if (!file.ok()) return file.status();
  return std::unique_ptr<FilePager>(
      new FilePager(env, path, page_size, std::move(file).value()));
}

Result<std::unique_ptr<FilePager>> FilePager::Open(Env* env,
                                                   const std::string& path) {
  if (env == nullptr) env = Env::Default();
  if (!env->FileExists(path)) {
    return Status::NotFound("no such data file " + path);
  }
  Result<std::unique_ptr<RandomRWFile>> opened =
      env->NewRandomRWFile(path, /*truncate=*/false);
  if (!opened.ok()) return opened.status();
  RandomRWFile* file = opened.value().get();

  char header[kHeaderSize];
  Result<size_t> got = file->ReadAt(0, sizeof(header), header);
  if (!got.ok()) return got.status();
  if (got.value() != sizeof(header) ||
      std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad data-file header " + path);
  }
  const uint32_t version = DecodeFixed32(header + 8);
  if (version != kVersion) {
    return Status::NotSupported("data-file version " +
                                std::to_string(version));
  }
  const uint32_t page_size = DecodeFixed32(header + 12);
  const PageId max_page_id = DecodeFixed32(header + 16);
  const uint64_t live_count = DecodeFixed64(header + 20);
  const uint32_t bitmap_len = DecodeFixed32(header + 28);
  const uint32_t bitmap_crc = DecodeFixed32(header + 32);
  if (page_size < 64 || bitmap_len != (max_page_id + 7) / 8) {
    return Status::Corruption("inconsistent data-file header " + path);
  }

  std::unique_ptr<FilePager> pager(
      new FilePager(env, path, page_size, std::move(opened).value()));
  std::string bitmap(bitmap_len, '\0');
  if (bitmap_len > 0) {
    got = pager->file_->ReadAt(pager->OffsetOf(max_page_id + 1), bitmap_len,
                               bitmap.data());
    if (!got.ok()) return got.status();
    if (got.value() != bitmap_len) {
      return Status::Corruption("truncated data-file bitmap " + path);
    }
  }
  if (Crc32(Slice(bitmap)) != bitmap_crc) {
    return Status::Corruption("data-file bitmap checksum mismatch " + path);
  }
  pager->max_page_id_ = max_page_id;
  pager->live_.assign(max_page_id + 1, false);
  for (PageId id = 1; id <= max_page_id; ++id) {
    if (bitmap[(id - 1) / 8] & (1 << ((id - 1) % 8))) {
      pager->live_[id] = true;
      ++pager->live_count_;
    }
  }
  if (pager->live_count_ != live_count) {
    return Status::Corruption("data-file live count mismatch " + path);
  }
  return pager;
}

PageId FilePager::Allocate() {
  // Next-fit over the bitmap: resume where the last allocation stopped,
  // which is O(1) amortized and (unlike a free list rebuilt at restore)
  // needs no per-id bookkeeping beyond the bitmap itself.
  for (PageId id = cursor_; id <= max_page_id_; ++id) {
    if (!live_[id]) {
      live_[id] = true;
      ++live_count_;
      cursor_ = id + 1;
      return id;
    }
  }
  ++max_page_id_;
  live_.push_back(true);
  ++live_count_;
  cursor_ = max_page_id_ + 1;
  return max_page_id_;
}

void FilePager::Free(PageId id) {
  assert(IsLive(id));
  live_[id] = false;
  --live_count_;
  if (id < cursor_) cursor_ = id;
}

bool FilePager::IsLive(PageId id) const {
  return id != kInvalidPageId && id <= max_page_id_ && live_[id];
}

Status FilePager::ReadPage(PageId id, char* out) const {
  if (!IsLive(id)) {
    return Status::InvalidArgument("read of dead page " +
                                   std::to_string(id));
  }
  Result<size_t> got = file_->ReadAt(OffsetOf(id), page_size_, out);
  if (!got.ok()) return got.status();
  // Past-EOF bytes read as zeros: pages are allocated in the bitmap first
  // and the file extends lazily at first write-back.
  if (got.value() < page_size_) {
    std::memset(out + got.value(), 0, page_size_ - got.value());
  }
  return Status::OK();
}

Status FilePager::WritePage(PageId id, const char* bytes) {
  if (!IsLive(id)) {
    return Status::InvalidArgument("write of dead page " +
                                   std::to_string(id));
  }
  return file_->WriteAt(OffsetOf(id), Slice(bytes, page_size_));
}

Status FilePager::Sync() {
  // Tail bitmap first, then the header that frames it: a crash between
  // the two leaves the old header describing the old bitmap. Both are
  // advisory anyway — recovery rebuilds the file from snapshot+journal.
  const std::string bitmap = PackBitmap(live_, max_page_id_);
  if (!bitmap.empty()) {
    UINDEX_RETURN_IF_ERROR(
        file_->WriteAt(OffsetOf(max_page_id_ + 1), Slice(bitmap)));
  }
  std::string header;
  header.append(kMagic, sizeof(kMagic));
  PutFixed32(&header, kVersion);
  PutFixed32(&header, page_size_);
  PutFixed32(&header, max_page_id_);
  PutFixed64(&header, live_count_);
  PutFixed32(&header, static_cast<uint32_t>(bitmap.size()));
  PutFixed32(&header, Crc32(Slice(bitmap)));
  UINDEX_RETURN_IF_ERROR(file_->WriteAt(0, Slice(header)));
  return file_->Sync();
}

Status FilePager::BeginRestore(PageId max_page_id) {
  // Recreate the file from scratch: stale bytes of dropped generations
  // must not survive into recycled ids.
  file_.reset();
  Result<std::unique_ptr<RandomRWFile>> file =
      env_->NewRandomRWFile(path_, /*truncate=*/true);
  if (!file.ok()) return file.status();
  file_ = std::move(file).value();
  live_.assign(max_page_id + 1, false);
  live_count_ = 0;
  max_page_id_ = max_page_id;
  cursor_ = 1;
  return Status::OK();
}

Status FilePager::RestorePage(PageId id, const Slice& bytes) {
  if (id == kInvalidPageId || id > max_page_id_) {
    return Status::InvalidArgument("restore id out of range");
  }
  if (live_[id]) return Status::AlreadyExists("page restored twice");
  if (bytes.size() != page_size_) {
    return Status::InvalidArgument("restore size mismatch");
  }
  UINDEX_RETURN_IF_ERROR(file_->WriteAt(OffsetOf(id), bytes));
  live_[id] = true;
  ++live_count_;
  return Status::OK();
}

}  // namespace uindex
