#ifndef UINDEX_STORAGE_BUFFER_POOL_H_
#define UINDEX_STORAGE_BUFFER_POOL_H_

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/io_stats.h"
#include "storage/page.h"
#include "storage/pager.h"

namespace uindex {

class BufferPool;

/// One frame of the pool: a page-sized buffer plus the pin/dirty state
/// that governs its lifetime. Frames are owned by the pool and have stable
/// addresses; `PageRef` pins keep a frame's content in place while any
/// reference to its bytes is live.
struct BufferPoolFrame {
  explicit BufferPoolFrame(uint32_t page_size) : page(page_size) {}

  PageId id = kInvalidPageId;  ///< kInvalidPageId once discarded (zombie).
  Page page;
  uint32_t pins = 0;
  bool dirty = false;
  bool cached = false;    ///< Reachable through the pool's table.
  bool ref_bit = false;   ///< CLOCK second-chance bit.
  std::list<BufferPoolFrame*>::iterator lru_it;  ///< Valid while cached (LRU).
};

/// RAII pin on a page: the page's bytes are guaranteed valid for exactly
/// as long as the ref lives. Replaces raw `Page*` in every fetch API so
/// buffer-pool eviction can never invalidate a reference a caller still
/// holds. Over a memory-backed store there is nothing to pin and the ref
/// simply wraps the stable in-process page; the type is the same either
/// way, so index code is backend-agnostic.
class PageRef {
 public:
  PageRef() = default;
  /// Unmanaged reference (memory stores): no pool, nothing to release.
  explicit PageRef(Page* unmanaged) : page_(unmanaged) {}
  /// Pinned frame (file stores); the pool's Pin/PinNew construct these.
  PageRef(BufferPool* pool, BufferPoolFrame* frame)
      : pool_(pool), frame_(frame), page_(&frame->page) {}
  /// MVCC chain revision (storage/mvcc.h): shares ownership of an
  /// epoch-stamped copy-on-write page. Versioned refs bypass the decoded-
  /// node cache — the cache is keyed by base-page versions, and these
  /// bytes are not the base's (see BTree::FetchNode).
  explicit PageRef(std::shared_ptr<Page> versioned)
      : page_(versioned.get()), owned_(std::move(versioned)),
        versioned_(true) {}

  ~PageRef() { Release(); }

  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  PageRef(PageRef&& other) noexcept
      : pool_(other.pool_), frame_(other.frame_), page_(other.page_),
        owned_(std::move(other.owned_)), versioned_(other.versioned_) {
    other.pool_ = nullptr;
    other.frame_ = nullptr;
    other.page_ = nullptr;
    other.versioned_ = false;
  }
  PageRef& operator=(PageRef&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = other.pool_;
      frame_ = other.frame_;
      page_ = other.page_;
      owned_ = std::move(other.owned_);
      versioned_ = other.versioned_;
      other.pool_ = nullptr;
      other.frame_ = nullptr;
      other.page_ = nullptr;
      other.versioned_ = false;
    }
    return *this;
  }

  /// True when this ref resolves an MVCC chain revision rather than base
  /// store bytes.
  bool versioned() const { return versioned_; }

  Page* get() const { return page_; }
  Page& operator*() const { return *page_; }
  Page* operator->() const { return page_; }
  explicit operator bool() const { return page_ != nullptr; }
  friend bool operator==(const PageRef& ref, std::nullptr_t) {
    return ref.page_ == nullptr;
  }
  friend bool operator!=(const PageRef& ref, std::nullptr_t) {
    return ref.page_ != nullptr;
  }

 private:
  void Release();  // Unpins through the pool; defined in buffer_pool.cc.

  BufferPool* pool_ = nullptr;
  BufferPoolFrame* frame_ = nullptr;
  Page* page_ = nullptr;
  std::shared_ptr<Page> owned_;  ///< Keepalive for versioned refs.
  bool versioned_ = false;
};

/// A bounded pool of page frames over a `PageStore` — the *physical* cache
/// under the `BufferManager`'s accounting. A `Pin` miss reads the page
/// from the store into a frame (evicting an unpinned victim when the pool
/// is full, writing it back first if dirty); a hit hands out the resident
/// frame. Pins are counted; eviction skips pinned frames, so a `PageRef`
/// can never dangle.
///
/// Eviction is LRU by default, or CLOCK (second-chance over the frame
/// table) when constructed with `Eviction::kClock` — the two are compared
/// by bench_pager. Both funnel through one victim path that performs the
/// dirty write-back and bumps the `evictions`/`writebacks` counters.
///
/// The pool deliberately does NOT touch the paper's logical counters
/// (`pages_read`/`cache_hits`): those stay with the `BufferManager`'s
/// backend-independent accounting, which is what keeps per-query page
/// reads byte-identical across backends, cache sizes, and policies. The
/// pool's own traffic lands in `pool_hits`/`pool_misses`.
///
/// One mutex covers lookup, eviction, and the store I/O itself. That
/// serializes concurrent misses (a simplification — correctness first;
/// the acceptance gates compare counts, not wall-clock), and it is what
/// makes Pin safe to call from background prefetch threads.
class BufferPool {
 public:
  enum class Eviction { kLru, kClock };

  /// `stats` receives pool_hits/pool_misses/evictions/writebacks; borrowed
  /// (the buffer manager passes its own `IoStats`).
  BufferPool(PageStore* store, size_t capacity, Eviction policy,
             IoStats* stats);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins `id`'s frame, reading it from the store on a miss. `mark_dirty`
  /// marks the frame for write-back (the caller is about to modify the
  /// bytes). Fails when the store read fails or every frame is pinned.
  Result<PageRef> Pin(PageId id, bool mark_dirty);

  /// Pins a zeroed, dirty frame for freshly allocated `id` WITHOUT reading
  /// the store — a recycled id's stale file bytes must never be served.
  /// Returns a null ref if no frame could be obtained (the fallback then
  /// zeroes the page in the store directly).
  PageRef PinNew(PageId id);

  /// Drops `id`'s frame from the pool without write-back (the page was
  /// freed). Pinned frames become zombies: unreachable for new pins, the
  /// frame recycles once the last `PageRef` releases.
  void Discard(PageId id);

  /// Evicts `id`'s frame through the regular victim path (write-back if
  /// dirty, eviction counted) if it is cached and unpinned; no-op
  /// otherwise. The buffer manager's bounded-LRU mode routes its logical
  /// evictions here so both caches shed together.
  void Evict(PageId id);

  /// Writes every dirty frame back to the store in page-id order (kept
  /// deterministic so crash-fault traces replay exactly), then `Sync`s the
  /// store when `sync` is set.
  Status Flush(bool sync);

  size_t capacity() const { return capacity_; }
  /// Frames currently holding a cached page (for tests).
  size_t cached_count() const;

 private:
  friend class PageRef;

  void Unpin(BufferPoolFrame* frame);

  // All Locked methods require mu_ held.
  void TouchLocked(BufferPoolFrame* frame);
  void InstallLocked(BufferPoolFrame* frame, PageId id);
  Status WriteBackLocked(BufferPoolFrame* frame);
  /// The single eviction path: picks a victim by policy (or takes
  /// `forced`), writes it back if dirty, counts the eviction, and returns
  /// the recycled frame. Null result + OK status cannot happen; a null
  /// frame comes with the failure status.
  Result<BufferPoolFrame*> EvictLocked(BufferPoolFrame* forced);
  Result<BufferPoolFrame*> ObtainFrameLocked();

  PageStore* store_;
  const size_t capacity_;
  const Eviction policy_;
  IoStats* stats_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<BufferPoolFrame>> frames_;
  std::unordered_map<PageId, BufferPoolFrame*> table_;
  std::list<BufferPoolFrame*> lru_;  ///< Front = most recent (kLru only).
  std::vector<BufferPoolFrame*> free_;
  size_t clock_hand_ = 0;  ///< Index into frames_ (kClock only).
};

}  // namespace uindex

#endif  // UINDEX_STORAGE_BUFFER_POOL_H_
