#ifndef UINDEX_STORAGE_OVERFLOW_H_
#define UINDEX_STORAGE_OVERFLOW_H_

#include <string>

#include "storage/buffer_manager.h"
#include "util/slice.h"
#include "util/status.h"

namespace uindex {

/// Chained overflow pages for records that exceed a node's capacity.
///
/// CH-trees and the Kim/Bertino nested/path indexes keep per-key oid
/// directories that can grow far beyond one page (e.g. 1500 oids per key in
/// the 100-distinct-keys experiment); those structures spill the directory
/// into a chain of pages and pay a page read per chain link — an inherent
/// cost of key grouping that the experiments must charge faithfully.
///
/// Page layout: [next: 4B][len: 2B][payload bytes].
class OverflowChain {
 public:
  /// Writes `data` into freshly allocated chained pages; returns the head
  /// page id (kInvalidPageId for empty data).
  static Result<PageId> Write(BufferManager* buffers, const Slice& data);

  /// Reads a whole chain back (each link costs a page read).
  static Result<std::string> Read(BufferManager* buffers, PageId head);

  /// Frees every page of the chain.
  static Status Free(BufferManager* buffers, PageId head);

  /// Bytes of payload per chain page for this buffer manager.
  static uint32_t PayloadPerPage(const BufferManager& buffers) {
    return buffers.page_size() - 6;
  }
};

}  // namespace uindex

#endif  // UINDEX_STORAGE_OVERFLOW_H_
