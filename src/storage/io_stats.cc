#include "storage/io_stats.h"

namespace uindex {

std::string IoStats::ToString() const {
  std::string out = "reads=" + std::to_string(pages_read);
  out += " writes=" + std::to_string(pages_written);
  out += " allocated=" + std::to_string(pages_allocated);
  out += " cache_hits=" + std::to_string(cache_hits);
  return out;
}

}  // namespace uindex
