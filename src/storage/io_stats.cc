#include "storage/io_stats.h"

#include <cstdio>

namespace uindex {

std::string IoStats::ToString() const {
  std::string out =
      "reads=" + std::to_string(pages_read.load(std::memory_order_relaxed));
  out += " writes=" +
         std::to_string(pages_written.load(std::memory_order_relaxed));
  out += " allocated=" +
         std::to_string(pages_allocated.load(std::memory_order_relaxed));
  out += " cache_hits=" +
         std::to_string(cache_hits.load(std::memory_order_relaxed));
  out += " nodes_parsed=" +
         std::to_string(nodes_parsed.load(std::memory_order_relaxed));
  out += " node_cache_hits=" +
         std::to_string(node_cache_hits.load(std::memory_order_relaxed));
  out += " bytes_decoded=" +
         std::to_string(bytes_decoded.load(std::memory_order_relaxed));
  out += " prefetch_issued=" +
         std::to_string(prefetch_issued.load(std::memory_order_relaxed));
  out += " prefetch_hits=" +
         std::to_string(prefetch_hits.load(std::memory_order_relaxed));
  out += " prefetch_wasted=" +
         std::to_string(prefetch_wasted.load(std::memory_order_relaxed));
  const uint64_t hits = pool_hits.load(std::memory_order_relaxed);
  const uint64_t misses = pool_misses.load(std::memory_order_relaxed);
  out += " pool_hits=" + std::to_string(hits);
  out += " pool_misses=" + std::to_string(misses);
  out += " evictions=" +
         std::to_string(evictions.load(std::memory_order_relaxed));
  out += " writebacks=" +
         std::to_string(writebacks.load(std::memory_order_relaxed));
  out += " epochs_published=" +
         std::to_string(epochs_published.load(std::memory_order_relaxed));
  out += " pages_cow=" +
         std::to_string(pages_cow.load(std::memory_order_relaxed));
  const uint64_t batches = commit_batches.load(std::memory_order_relaxed);
  const uint64_t records = commit_records.load(std::memory_order_relaxed);
  out += " commit_batches=" + std::to_string(batches);
  out += " commit_records=" + std::to_string(records);
  if (batches > 0) {
    char avg[32];
    std::snprintf(avg, sizeof(avg), "%.2f",
                  static_cast<double>(records) / static_cast<double>(batches));
    out += " commit_batch_size_avg=";
    out += avg;
  }
  out += " reader_pin_max_age_us=" +
         std::to_string(
             reader_pin_max_age_us.load(std::memory_order_relaxed));
  if (hits + misses > 0) {
    char rate[32];
    std::snprintf(rate, sizeof(rate), "%.3f",
                  static_cast<double>(hits) /
                      static_cast<double>(hits + misses));
    out += " pool_hit_rate=";
    out += rate;
  }
  return out;
}

}  // namespace uindex
