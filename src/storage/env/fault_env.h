#ifndef UINDEX_STORAGE_ENV_FAULT_ENV_H_
#define UINDEX_STORAGE_ENV_FAULT_ENV_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "storage/env/env.h"

namespace uindex {

/// A deterministic, crashable in-memory file system.
///
/// Every file tracks two lengths: what has been written (volatile, the
/// model of the OS page cache) and what has been synced (durable media).
/// Every directory likewise has a current and a durable view of its
/// entries: creations, renames and removals become durable only at
/// `SyncDir` — exactly the POSIX contract `PosixEnv` relies on.
///
/// Faults are scheduled against the *op index*: every mutating call
/// (create/write/flush/sync/close/rename/truncate/remove/syncdir) gets the
/// next index and is recorded in `trace()`. Because the library's
/// durability code is deterministic, running the same workload twice
/// yields the same op sequence, so a harness can first count ops
/// fault-free and then re-run the workload crashing at each index in turn
/// (tools/crash_torture does exactly that).
///
/// A scheduled crash "powers off the machine" at its op with one of three
/// outcomes for that op:
///   * `kNone`    — the op had no durable effect (power died first);
///   * `kPartial` — writes only: a prefix of the data reached the media
///                  (a torn write); other ops treat this as `kNone`;
///   * `kFull`    — the op's effect reached the media, but completion was
///                  never observed by the caller.
/// The crashing op and every op after it fail with ResourceExhausted until
/// `Reboot()`, which discards all volatile state — unsynced bytes, and
/// namespace changes whose directory was never synced — exactly like a
/// power cut, then clears the schedule so recovery code can run.
///
/// `FailKthOpOfKind` injects a *non-crash* fault instead: the k-th
/// upcoming op of that kind returns an error with no effect (a failed
/// fdatasync, a short write reported honestly) and execution continues.
class FaultInjectingEnv : public Env {
 public:
  enum class OpKind {
    kCreate,
    kWrite,
    kWriteAt,  ///< Positioned write (RandomRWFile::WriteAt).
    kFlush,
    kSync,
    kClose,
    kRename,
    kTruncate,
    kRemove,
    kSyncDir,
  };
  enum class CrashOutcome { kNone, kPartial, kFull };

  struct OpRecord {
    OpKind kind;
    std::string path;
    uint64_t bytes = 0;  ///< Payload size for writes, else 0.
  };

  FaultInjectingEnv() = default;

  // ------------------------------------------------------------- Env API
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, WriteMode mode) override;
  Result<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path) override;
  Result<std::unique_ptr<RandomRWFile>> NewRandomRWFile(
      const std::string& path, bool truncate) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status SyncDir(const std::string& dir) override;

  // ------------------------------------------------------ fault schedule
  /// Powers off at op `op_index` with `outcome` for that op.
  void ScheduleCrashAtOp(uint64_t op_index, CrashOutcome outcome);

  /// Powers off at the k-th (1-based) upcoming op of `kind`.
  void ScheduleCrashAtKthOpOfKind(OpKind kind, int k, CrashOutcome outcome);

  /// The k-th (1-based) upcoming op of `kind` fails without effect; no
  /// power-off.
  void FailKthOpOfKind(OpKind kind, int k);

  /// Applies the power-cut semantics (drop unsynced data and unsynced
  /// namespace changes), clears all schedules and the powered-off state,
  /// and invalidates every handle opened before the reboot.
  void Reboot();

  // ----------------------------------------------------------- inspection
  uint64_t op_count() const;
  std::vector<OpRecord> trace() const;
  bool powered_off() const;
  /// Current (volatile) content of `path`; NotFound if absent.
  Result<std::string> ReadFileBytes(const std::string& path) const;

  static const char* OpKindName(OpKind kind);

 private:
  friend class FaultWritableFile;
  friend class FaultRandomRWFile;

  /// Two full images, not a synced-prefix watermark: positioned writes can
  /// land *below* any watermark, and a volatile overwrite there must still
  /// roll back at reboot — only a separate durable image can express that.
  /// For append-only files the two models agree exactly (`durable` is
  /// always a prefix of `data`).
  struct FileNode {
    std::string data;     ///< Volatile view (the OS page cache).
    std::string durable;  ///< What the media holds after a power cut.
  };
  using NodePtr = std::shared_ptr<FileNode>;

  enum class Fate { kProceed, kFail, kCrashNone, kCrashPartial, kCrashFull };

  struct KindFault {
    OpKind kind;
    int remaining;  ///< Fires when it reaches zero.
    bool crash;
    CrashOutcome outcome;
  };

  // Records the op, consults the schedule. Requires mu_ held.
  Fate BeginOp(OpKind kind, const std::string& path, uint64_t bytes);
  Status PoweredOffError() const;

  // Handle-delegated operations (mu_ taken inside).
  Status FileAppend(uint64_t epoch, const NodePtr& node,
                    const std::string& path, const Slice& data);
  Status FileWriteAt(uint64_t epoch, const NodePtr& node,
                     const std::string& path, uint64_t offset,
                     const Slice& data);
  Result<size_t> FileReadAt(uint64_t epoch, const NodePtr& node,
                            const std::string& path, uint64_t offset,
                            size_t n, char* scratch) const;
  Status FileOp(uint64_t epoch, const NodePtr& node, const std::string& path,
                OpKind kind);  // kFlush / kSync / kClose.

  mutable std::mutex mu_;
  std::map<std::string, NodePtr> current_;
  std::map<std::string, NodePtr> durable_;
  std::vector<OpRecord> trace_;
  uint64_t op_count_ = 0;
  uint64_t epoch_ = 0;  ///< Bumped by Reboot; stale handles fail.
  bool powered_off_ = false;
  std::optional<uint64_t> crash_at_op_;
  CrashOutcome crash_outcome_ = CrashOutcome::kNone;
  std::vector<KindFault> kind_faults_;
};

}  // namespace uindex

#endif  // UINDEX_STORAGE_ENV_FAULT_ENV_H_
