#include "storage/env/fault_env.h"

#include <algorithm>
#include <cstring>

namespace uindex {

namespace {

/// Readers snapshot the file's current bytes at open: a reader never sees
/// a concurrent writer's partial op, and stays valid across Reboot (the
/// "process" that opened it is the one being simulated, so the harness
/// simply never reads across a crash).
class FaultSequentialFile : public SequentialFile {
 public:
  explicit FaultSequentialFile(std::string data) : data_(std::move(data)) {}

  Result<size_t> Read(size_t n, char* scratch) override {
    const size_t got = std::min(n, data_.size() - pos_);
    std::memcpy(scratch, data_.data() + pos_, got);
    pos_ += got;
    return got;
  }

 private:
  std::string data_;
  size_t pos_ = 0;
};

}  // namespace

/// Writable handle: all state and fault logic live in the env; the handle
/// only carries its node and the epoch it was opened in.
class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultInjectingEnv* env, FaultInjectingEnv::NodePtr node,
                    std::string path, uint64_t epoch)
      : env_(env), node_(std::move(node)), path_(std::move(path)),
        epoch_(epoch) {}

  Status Append(const Slice& data) override {
    return env_->FileAppend(epoch_, node_, path_, data);
  }
  Status Flush() override {
    return env_->FileOp(epoch_, node_, path_,
                        FaultInjectingEnv::OpKind::kFlush);
  }
  Status Sync() override {
    return env_->FileOp(epoch_, node_, path_,
                        FaultInjectingEnv::OpKind::kSync);
  }
  Status Close() override {
    return env_->FileOp(epoch_, node_, path_,
                        FaultInjectingEnv::OpKind::kClose);
  }

 private:
  FaultInjectingEnv* env_;
  FaultInjectingEnv::NodePtr node_;
  std::string path_;
  uint64_t epoch_;
};

/// Random-access handle: same shape as FaultWritableFile — all state and
/// fault logic live in the env, the handle carries its node and epoch.
class FaultRandomRWFile : public RandomRWFile {
 public:
  FaultRandomRWFile(FaultInjectingEnv* env, FaultInjectingEnv::NodePtr node,
                    std::string path, uint64_t epoch)
      : env_(env), node_(std::move(node)), path_(std::move(path)),
        epoch_(epoch) {}

  Result<size_t> ReadAt(uint64_t offset, size_t n, char* scratch) override {
    return env_->FileReadAt(epoch_, node_, path_, offset, n, scratch);
  }
  Status WriteAt(uint64_t offset, const Slice& data) override {
    return env_->FileWriteAt(epoch_, node_, path_, offset, data);
  }
  Status Sync() override {
    return env_->FileOp(epoch_, node_, path_,
                        FaultInjectingEnv::OpKind::kSync);
  }
  Status Close() override {
    return env_->FileOp(epoch_, node_, path_,
                        FaultInjectingEnv::OpKind::kClose);
  }

 private:
  FaultInjectingEnv* env_;
  FaultInjectingEnv::NodePtr node_;
  std::string path_;
  uint64_t epoch_;
};

const char* FaultInjectingEnv::OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kCreate: return "create";
    case OpKind::kWrite: return "write";
    case OpKind::kWriteAt: return "pwrite";
    case OpKind::kFlush: return "flush";
    case OpKind::kSync: return "sync";
    case OpKind::kClose: return "close";
    case OpKind::kRename: return "rename";
    case OpKind::kTruncate: return "truncate";
    case OpKind::kRemove: return "remove";
    case OpKind::kSyncDir: return "syncdir";
  }
  return "?";
}

Status FaultInjectingEnv::PoweredOffError() const {
  return Status::ResourceExhausted("simulated power failure");
}

FaultInjectingEnv::Fate FaultInjectingEnv::BeginOp(OpKind kind,
                                                   const std::string& path,
                                                   uint64_t bytes) {
  const uint64_t index = op_count_++;
  trace_.push_back({kind, path, bytes});

  Fate fate = Fate::kProceed;
  if (crash_at_op_.has_value() && *crash_at_op_ == index) {
    switch (crash_outcome_) {
      case CrashOutcome::kNone:
        fate = Fate::kCrashNone;
        break;
      case CrashOutcome::kPartial:
        // Only writes can tear; for any other op a partial outcome
        // degenerates to "no effect".
        fate = kind == OpKind::kWrite || kind == OpKind::kWriteAt
                   ? Fate::kCrashPartial
                   : Fate::kCrashNone;
        break;
      case CrashOutcome::kFull:
        fate = Fate::kCrashFull;
        break;
    }
  }
  for (auto it = kind_faults_.begin();
       fate == Fate::kProceed && it != kind_faults_.end();) {
    if (it->kind == kind && --it->remaining == 0) {
      if (it->crash) {
        fate = it->outcome == CrashOutcome::kFull ? Fate::kCrashFull
               : it->outcome == CrashOutcome::kPartial &&
                       (kind == OpKind::kWrite || kind == OpKind::kWriteAt)
                   ? Fate::kCrashPartial
                   : Fate::kCrashNone;
      } else {
        fate = Fate::kFail;
      }
      it = kind_faults_.erase(it);
    } else {
      ++it;
    }
  }
  if (fate == Fate::kCrashNone || fate == Fate::kCrashPartial ||
      fate == Fate::kCrashFull) {
    powered_off_ = true;
  }
  return fate;
}

Result<std::unique_ptr<WritableFile>> FaultInjectingEnv::NewWritableFile(
    const std::string& path, WriteMode mode) {
  std::lock_guard lock(mu_);
  if (powered_off_) return PoweredOffError();
  const Fate fate = BeginOp(OpKind::kCreate, path, 0);
  if (fate == Fate::kFail || fate == Fate::kCrashNone ||
      fate == Fate::kCrashPartial) {
    return Status::ResourceExhausted("injected fault: create " + path);
  }

  NodePtr node;
  auto it = current_.find(path);
  if (mode == WriteMode::kAppend && it != current_.end()) {
    node = it->second;
  } else {
    // kTruncate replaces the *volatile* content in place; the durable view
    // keeps the old bytes until the truncation itself is synced — which is
    // exactly why callers must write-new-then-rename, never truncate a
    // file whose old content still matters.
    node = std::make_shared<FileNode>();
    current_[path] = node;
  }
  if (fate == Fate::kCrashFull) {
    durable_[path] = node;
    return Status::ResourceExhausted("injected crash: create " + path);
  }
  return std::unique_ptr<WritableFile>(
      new FaultWritableFile(this, std::move(node), path, epoch_));
}

Status FaultInjectingEnv::FileAppend(uint64_t epoch, const NodePtr& node,
                                     const std::string& path,
                                     const Slice& data) {
  std::lock_guard lock(mu_);
  if (powered_off_) return PoweredOffError();
  if (epoch != epoch_) {
    return Status::ResourceExhausted("stale file handle " + path);
  }
  const Fate fate = BeginOp(OpKind::kWrite, path, data.size());
  switch (fate) {
    case Fate::kProceed:
      node->data.append(data.data(), data.size());
      return Status::OK();
    case Fate::kCrashPartial: {
      // A torn write: the first half of this op's bytes hit the media
      // (along with every earlier volatile byte of the file — the dying
      // cache flush is modeled as all-but-the-tail), the rest never will.
      const size_t kept = data.size() / 2;
      node->data.append(data.data(), kept);
      node->durable = node->data;
      return Status::ResourceExhausted("injected crash: torn write " + path);
    }
    case Fate::kCrashFull:
      node->data.append(data.data(), data.size());
      node->durable = node->data;
      return Status::ResourceExhausted("injected crash: write " + path);
    case Fate::kCrashNone:
      return Status::ResourceExhausted("injected crash: write " + path);
    case Fate::kFail:
      return Status::ResourceExhausted("injected fault: write " + path);
  }
  return Status::OK();
}

Result<std::unique_ptr<RandomRWFile>> FaultInjectingEnv::NewRandomRWFile(
    const std::string& path, bool truncate) {
  std::lock_guard lock(mu_);
  if (powered_off_) return PoweredOffError();
  const Fate fate = BeginOp(OpKind::kCreate, path, 0);
  if (fate == Fate::kFail || fate == Fate::kCrashNone ||
      fate == Fate::kCrashPartial) {
    return Status::ResourceExhausted("injected fault: create " + path);
  }

  NodePtr node;
  auto it = current_.find(path);
  if (!truncate && it != current_.end()) {
    node = it->second;
  } else {
    node = std::make_shared<FileNode>();
    current_[path] = node;
  }
  if (fate == Fate::kCrashFull) {
    durable_[path] = node;
    return Status::ResourceExhausted("injected crash: create " + path);
  }
  return std::unique_ptr<RandomRWFile>(
      new FaultRandomRWFile(this, std::move(node), path, epoch_));
}

Status FaultInjectingEnv::FileWriteAt(uint64_t epoch, const NodePtr& node,
                                      const std::string& path,
                                      uint64_t offset, const Slice& data) {
  std::lock_guard lock(mu_);
  if (powered_off_) return PoweredOffError();
  if (epoch != epoch_) {
    return Status::ResourceExhausted("stale file handle " + path);
  }
  const Fate fate = BeginOp(OpKind::kWriteAt, path, data.size());
  auto apply = [&](size_t len) {
    if (node->data.size() < offset + len) {
      node->data.resize(offset + len, '\0');
    }
    std::memcpy(node->data.data() + offset, data.data(), len);
  };
  switch (fate) {
    case Fate::kProceed:
      apply(data.size());
      return Status::OK();
    case Fate::kCrashPartial:
      // Torn positioned write: the first half of this op plus every
      // earlier volatile byte reach the media (same dying-cache-flush
      // model as appends), the rest never will.
      apply(data.size() / 2);
      node->durable = node->data;
      return Status::ResourceExhausted("injected crash: torn pwrite " +
                                       path);
    case Fate::kCrashFull:
      apply(data.size());
      node->durable = node->data;
      return Status::ResourceExhausted("injected crash: pwrite " + path);
    case Fate::kCrashNone:
      return Status::ResourceExhausted("injected crash: pwrite " + path);
    case Fate::kFail:
      return Status::ResourceExhausted("injected fault: pwrite " + path);
  }
  return Status::OK();
}

Result<size_t> FaultInjectingEnv::FileReadAt(uint64_t epoch,
                                             const NodePtr& node,
                                             const std::string& path,
                                             uint64_t offset, size_t n,
                                             char* scratch) const {
  // Reads are not ops (they never shift a crash schedule), but a powered-
  // off machine cannot serve them and a rebooted process's handle is gone.
  std::lock_guard lock(mu_);
  if (powered_off_) return PoweredOffError();
  if (epoch != epoch_) {
    return Status::ResourceExhausted("stale file handle " + path);
  }
  if (offset >= node->data.size()) return static_cast<size_t>(0);
  const size_t got = std::min(n, node->data.size() - offset);
  std::memcpy(scratch, node->data.data() + offset, got);
  return got;
}

Status FaultInjectingEnv::FileOp(uint64_t epoch, const NodePtr& node,
                                 const std::string& path, OpKind kind) {
  std::lock_guard lock(mu_);
  if (powered_off_) return PoweredOffError();
  if (epoch != epoch_) {
    return Status::ResourceExhausted("stale file handle " + path);
  }
  const Fate fate = BeginOp(kind, path, 0);
  const bool effect = fate == Fate::kProceed || fate == Fate::kCrashFull;
  if (effect && kind == OpKind::kSync) node->durable = node->data;
  // kFlush and kClose move nothing toward the media: volatile either way.
  if (fate == Fate::kProceed) return Status::OK();
  return Status::ResourceExhausted(
      std::string(fate == Fate::kFail ? "injected fault: " :
                                        "injected crash: ") +
      OpKindName(kind) + " " + path);
}

Result<std::unique_ptr<SequentialFile>> FaultInjectingEnv::NewSequentialFile(
    const std::string& path) {
  std::lock_guard lock(mu_);
  if (powered_off_) return PoweredOffError();
  auto it = current_.find(path);
  if (it == current_.end()) return Status::NotFound("no such file " + path);
  return std::unique_ptr<SequentialFile>(
      new FaultSequentialFile(it->second->data));
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  std::lock_guard lock(mu_);
  return current_.find(path) != current_.end();
}

Result<uint64_t> FaultInjectingEnv::FileSize(const std::string& path) {
  std::lock_guard lock(mu_);
  auto it = current_.find(path);
  if (it == current_.end()) return Status::NotFound("no such file " + path);
  return static_cast<uint64_t>(it->second->data.size());
}

Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  std::lock_guard lock(mu_);
  if (powered_off_) return PoweredOffError();
  const Fate fate = BeginOp(OpKind::kRename, from + " -> " + to, 0);
  if (fate == Fate::kFail || fate == Fate::kCrashNone ||
      fate == Fate::kCrashPartial) {
    return Status::ResourceExhausted("injected fault: rename " + from);
  }
  auto it = current_.find(from);
  if (it == current_.end()) {
    return Status::NotFound("rename: no such file " + from);
  }
  NodePtr node = it->second;
  current_.erase(it);
  current_[to] = node;
  if (fate == Fate::kCrashFull) {
    // The file system journaled the rename before power died.
    durable_.erase(from);
    durable_[to] = node;
    return Status::ResourceExhausted("injected crash: rename " + from);
  }
  return Status::OK();
}

Status FaultInjectingEnv::RemoveFile(const std::string& path) {
  std::lock_guard lock(mu_);
  if (powered_off_) return PoweredOffError();
  const Fate fate = BeginOp(OpKind::kRemove, path, 0);
  if (fate == Fate::kFail || fate == Fate::kCrashNone ||
      fate == Fate::kCrashPartial) {
    return Status::ResourceExhausted("injected fault: remove " + path);
  }
  current_.erase(path);
  if (fate == Fate::kCrashFull) {
    durable_.erase(path);
    return Status::ResourceExhausted("injected crash: remove " + path);
  }
  return Status::OK();
}

Status FaultInjectingEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  std::lock_guard lock(mu_);
  if (powered_off_) return PoweredOffError();
  const Fate fate = BeginOp(OpKind::kTruncate, path, size);
  if (fate == Fate::kFail || fate == Fate::kCrashNone ||
      fate == Fate::kCrashPartial) {
    return Status::ResourceExhausted("injected fault: truncate " + path);
  }
  auto it = current_.find(path);
  if (it == current_.end()) {
    return Status::NotFound("truncate: no such file " + path);
  }
  FileNode& node = *it->second;
  if (size < node.data.size()) node.data.resize(size);
  if (node.durable.size() > node.data.size()) {
    node.durable.resize(node.data.size());
  }
  if (fate == Fate::kCrashFull) {
    return Status::ResourceExhausted("injected crash: truncate " + path);
  }
  return Status::OK();
}

Status FaultInjectingEnv::SyncDir(const std::string& dir) {
  std::lock_guard lock(mu_);
  if (powered_off_) return PoweredOffError();
  const Fate fate = BeginOp(OpKind::kSyncDir, dir, 0);
  const bool effect = fate == Fate::kProceed || fate == Fate::kCrashFull;
  if (effect) {
    std::vector<std::string> stale;
    for (const auto& [path, node] : durable_) {
      if (DirnameOf(path) == dir && current_.find(path) == current_.end()) {
        stale.push_back(path);
      }
    }
    for (const std::string& path : stale) durable_.erase(path);
    for (const auto& [path, node] : current_) {
      if (DirnameOf(path) == dir) durable_[path] = node;
    }
  }
  if (fate == Fate::kProceed) return Status::OK();
  return Status::ResourceExhausted(
      std::string(fate == Fate::kFail ? "injected fault: syncdir "
                                      : "injected crash: syncdir ") +
      dir);
}

void FaultInjectingEnv::ScheduleCrashAtOp(uint64_t op_index,
                                          CrashOutcome outcome) {
  std::lock_guard lock(mu_);
  crash_at_op_ = op_index;
  crash_outcome_ = outcome;
}

void FaultInjectingEnv::ScheduleCrashAtKthOpOfKind(OpKind kind, int k,
                                                   CrashOutcome outcome) {
  std::lock_guard lock(mu_);
  kind_faults_.push_back({kind, k, /*crash=*/true, outcome});
}

void FaultInjectingEnv::FailKthOpOfKind(OpKind kind, int k) {
  std::lock_guard lock(mu_);
  kind_faults_.push_back({kind, k, /*crash=*/false, CrashOutcome::kNone});
}

void FaultInjectingEnv::Reboot() {
  std::lock_guard lock(mu_);
  // Power-cut resolution: durably-linked files revert to their durable
  // image; every unsynced namespace change (creations, renames, removals
  // since the owning directory's last sync) rolls back.
  for (auto& [path, node] : durable_) node->data = node->durable;
  current_ = durable_;
  ++epoch_;
  powered_off_ = false;
  crash_at_op_.reset();
  crash_outcome_ = CrashOutcome::kNone;
  kind_faults_.clear();
}

uint64_t FaultInjectingEnv::op_count() const {
  std::lock_guard lock(mu_);
  return op_count_;
}

std::vector<FaultInjectingEnv::OpRecord> FaultInjectingEnv::trace() const {
  std::lock_guard lock(mu_);
  return trace_;
}

bool FaultInjectingEnv::powered_off() const {
  std::lock_guard lock(mu_);
  return powered_off_;
}

Result<std::string> FaultInjectingEnv::ReadFileBytes(
    const std::string& path) const {
  std::lock_guard lock(mu_);
  auto it = current_.find(path);
  if (it == current_.end()) return Status::NotFound("no such file " + path);
  return it->second->data;
}

}  // namespace uindex
