#include "storage/env/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>

namespace uindex {

std::string DirnameOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

namespace {

// 0 = unlimited; tests cap it to force the short-count loops to iterate.
std::atomic<size_t> g_posix_io_chunk{0};

size_t ChunkOf(size_t n) {
  const size_t cap = g_posix_io_chunk.load(std::memory_order_relaxed);
  return cap == 0 ? n : std::min(n, cap);
}

Status Errno(const std::string& what, const std::string& path) {
  return Status::ResourceExhausted(what + " " + path + ": " +
                                   std::strerror(errno));
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const Slice& data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, ChunkOf(left));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Errno("write to", path_);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  // Appends go straight to the fd, so there is no user-space buffer left
  // to push; Flush is a no-op kept for the interface's layering contract.
  Status Flush() override { return Status::OK(); }

  Status Sync() override {
    if (::fdatasync(fd_) != 0) return Errno("fdatasync", path_);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int rc = ::close(fd_);
    fd_ = -1;
    if (rc != 0) return Errno("close", path_);
    return Status::OK();
  }

 private:
  std::string path_;
  int fd_;
};

class PosixSequentialFile : public SequentialFile {
 public:
  PosixSequentialFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}
  ~PosixSequentialFile() override { ::close(fd_); }

  Result<size_t> Read(size_t n, char* scratch) override {
    size_t got = 0;
    while (got < n) {
      const ssize_t r = ::read(fd_, scratch + got, ChunkOf(n - got));
      if (r < 0) {
        if (errno == EINTR) continue;
        return Errno("read from", path_);
      }
      if (r == 0) break;  // EOF.
      got += static_cast<size_t>(r);
    }
    return got;
  }

 private:
  std::string path_;
  int fd_;
};

/// Positioned I/O on one fd. pread/pwrite may return short counts (signals,
/// quota boundaries), so both directions loop; a short pread that cannot
/// advance is end of file.
class PosixRandomRWFile : public RandomRWFile {
 public:
  PosixRandomRWFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}
  ~PosixRandomRWFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Result<size_t> ReadAt(uint64_t offset, size_t n, char* scratch) override {
    size_t got = 0;
    while (got < n) {
      const ssize_t r = ::pread(fd_, scratch + got, ChunkOf(n - got),
                                static_cast<off_t>(offset + got));
      if (r < 0) {
        if (errno == EINTR) continue;
        return Errno("pread from", path_);
      }
      if (r == 0) break;  // EOF.
      got += static_cast<size_t>(r);
    }
    return got;
  }

  Status WriteAt(uint64_t offset, const Slice& data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      const ssize_t n = ::pwrite(fd_, p, ChunkOf(left),
                                 static_cast<off_t>(offset));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Errno("pwrite to", path_);
      }
      p += n;
      offset += static_cast<uint64_t>(n);
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fdatasync(fd_) != 0) return Errno("fdatasync", path_);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int rc = ::close(fd_);
    fd_ = -1;
    if (rc != 0) return Errno("close", path_);
    return Status::OK();
  }

 private:
  std::string path_;
  int fd_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, WriteMode mode) override {
    const int flags =
        O_WRONLY | O_CREAT |
        (mode == WriteMode::kTruncate ? O_TRUNC : O_APPEND);
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return Errno("open for write", path);
    return std::unique_ptr<WritableFile>(new PosixWritableFile(path, fd));
  }

  Result<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      if (errno == ENOENT) return Status::NotFound("no such file " + path);
      return Errno("open for read", path);
    }
    return std::unique_ptr<SequentialFile>(
        new PosixSequentialFile(path, fd));
  }

  Result<std::unique_ptr<RandomRWFile>> NewRandomRWFile(
      const std::string& path, bool truncate) override {
    const int flags = O_RDWR | O_CREAT | (truncate ? O_TRUNC : 0);
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return Errno("open for random rw", path);
    return std::unique_ptr<RandomRWFile>(new PosixRandomRWFile(path, fd));
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      if (errno == ENOENT) return Status::NotFound("no such file " + path);
      return Errno("stat", path);
    }
    return static_cast<uint64_t>(st.st_size);
  }

  Status RenameFile(const std::string& from,
                    const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Errno("rename " + from + " to", to);
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Errno("unlink", path);
    }
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return Errno("truncate", path);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    const int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd < 0) return Errno("open directory", dir);
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) return Errno("fsync directory", dir);
    return Status::OK();
  }
};

}  // namespace

void SetPosixIoChunkForTesting(size_t max_bytes) {
  g_posix_io_chunk.store(max_bytes, std::memory_order_relaxed);
}

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

}  // namespace uindex
