#ifndef UINDEX_STORAGE_ENV_ENV_H_
#define UINDEX_STORAGE_ENV_ENV_H_

#include <cstdint>
#include <memory>
#include <string>

#include "util/slice.h"
#include "util/status.h"

namespace uindex {

/// The file-system boundary of the durability layer.
///
/// Everything the library persists — `PagerSnapshot` files and the
/// `Journal` — goes through this abstraction instead of raw stdio, for two
/// reasons:
///
///  1. *Real durability.* `std::fflush` only moves bytes to the OS cache;
///     surviving a power cut additionally requires `fdatasync` on the file
///     and, for renames and newly created files, `fsync` on the parent
///     directory (a rename or a fresh directory entry is metadata owned by
///     the directory, not the file). `PosixEnv` (the `Env::Default()`
///     implementation) provides exactly those calls.
///
///  2. *Provable durability.* `FaultInjectingEnv` (env/fault_env.h)
///     implements the same interface over a deterministic in-memory file
///     system that models the volatile-cache / durable-media split, so a
///     test can crash the "machine" at any write/sync/rename and check
///     what recovery sees. tools/crash_torture enumerates every such
///     point in the checkpoint+append+rotate workload.
///
/// The contract every implementation must honor:
///  * `WritableFile::Append` data is volatile until `Sync` returns OK.
///  * `RenameFile` is atomic (the destination is always the old or the new
///    file, never a mix) but volatile until `SyncDir` on the parent
///    directory returns OK. The same holds for file creation and removal.
///  * `TruncateFile` only shrinks and is applied in place; callers use it
///    solely to drop a torn journal tail, where a lost truncate is
///    harmless (recovery re-drops the tail on the next open).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Buffered append; durable only after `Sync`.
  virtual Status Append(const Slice& data) = 0;

  /// Pushes user-space buffers to the OS. No durability guarantee.
  virtual Status Flush() = 0;

  /// Forces the file's data to stable storage (fdatasync semantics).
  virtual Status Sync() = 0;

  /// Flushes and releases the handle. Not a durability point.
  virtual Status Close() = 0;
};

/// Forward-only reader. `Read` returns the number of bytes actually read;
/// a short count (including zero) means end of file, so exact-length reads
/// need no separate EOF probe.
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;
  virtual Result<size_t> Read(size_t n, char* scratch) = 0;
};

/// Positioned random-access reader/writer — the data file of the
/// file-backed pager. `WriteAt` data is volatile until `Sync` returns OK
/// (same contract as `WritableFile::Append`); writes past the current end
/// extend the file, and the gap (if any) reads as zeros. `ReadAt` returns
/// the bytes actually read — a short count means the range crosses end of
/// file, and reading entirely past the end returns 0 (not an error).
class RandomRWFile {
 public:
  virtual ~RandomRWFile() = default;
  virtual Result<size_t> ReadAt(uint64_t offset, size_t n,
                                char* scratch) = 0;
  virtual Status WriteAt(uint64_t offset, const Slice& data) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

class Env {
 public:
  enum class WriteMode {
    kTruncate,  ///< Create or replace content.
    kAppend,    ///< Create if absent; append to existing content.
  };

  virtual ~Env() = default;

  /// The process-wide `PosixEnv` singleton.
  static Env* Default();

  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, WriteMode mode) = 0;
  virtual Result<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path) = 0;

  /// Opens `path` for positioned reads and writes, creating it if absent;
  /// `truncate` additionally discards any existing content.
  virtual Result<std::unique_ptr<RandomRWFile>> NewRandomRWFile(
      const std::string& path, bool truncate) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;

  /// Makes the directory's entries (creations, renames, removals of files
  /// directly inside it) durable.
  virtual Status SyncDir(const std::string& dir) = 0;
};

/// The directory component of `path` ("." when there is none), for
/// `Env::SyncDir` after renaming a file into place.
std::string DirnameOf(const std::string& path);

/// Test hook: caps the byte count `PosixEnv` passes to any single
/// read/write/pread/pwrite syscall (0 restores unlimited). Forces the
/// short-count retry loops to actually iterate so tests can cover them;
/// never use outside tests.
void SetPosixIoChunkForTesting(size_t max_bytes);

}  // namespace uindex

#endif  // UINDEX_STORAGE_ENV_ENV_H_
