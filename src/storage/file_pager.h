#ifndef UINDEX_STORAGE_FILE_PAGER_H_
#define UINDEX_STORAGE_FILE_PAGER_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/env/env.h"
#include "storage/pager.h"

namespace uindex {

/// A page store backed by one data file behind `Env` positioned I/O — the
/// backend that lets a database exceed RAM. Page `id` occupies file bytes
/// `[id * page_size, (id + 1) * page_size)`; slot 0 holds the header.
///
/// On-disk layout (little-endian, see DESIGN.md "Disk-backed pager &
/// buffer pool"):
///   slot 0: "UIDXPAGE" magic ∥ version u32 ∥ page_size u32
///           ∥ max_page_id u32 ∥ live_count u64 ∥ bitmap_len u32
///           ∥ bitmap crc u32
///   slots 1..max_page_id: page content
///   tail (offset (max_page_id + 1) * page_size): the free-page bitmap,
///           one bit per id, bit set = live.
///
/// Allocation state (the bitmap) lives in memory and is written out — tail
/// first, then the header that frames it, then fdatasync — only by
/// `Sync()`, which `Database::Checkpoint` calls after flushing dirty
/// frames. Between syncs the data file is a volatile working store: crash
/// recovery never trusts it and rebuilds it from the snapshot + journal
/// (`BeginRestore` truncates and rewrites), which is what keeps the PR-5
/// crash-atomicity proof intact with no page-level WAL.
///
/// `ReadPage` zero-fills any bytes past end of file, so allocated-but-
/// never-written pages read as zeros, matching the in-memory `Pager`.
/// Not thread-safe; the buffer pool's lock serializes all access.
class FilePager : public PageStore {
 public:
  /// Creates (or truncates) the data file at `path`. Nothing is written
  /// until pages are, and the header only at `Sync`.
  static Result<std::unique_ptr<FilePager>> Create(Env* env,
                                                   const std::string& path,
                                                   uint32_t page_size);

  /// Opens an existing data file, reading the header and bitmap a prior
  /// `Sync` wrote. Fails with Corruption on any mismatch.
  static Result<std::unique_ptr<FilePager>> Open(Env* env,
                                                 const std::string& path);

  ~FilePager() override;

  FilePager(const FilePager&) = delete;
  FilePager& operator=(const FilePager&) = delete;

  const std::string& path() const { return path_; }

  uint32_t page_size() const override { return page_size_; }
  PageId Allocate() override;
  void Free(PageId id) override;
  bool IsLive(PageId id) const override;
  uint64_t live_page_count() const override { return live_count_; }
  PageId max_page_id() const override { return max_page_id_; }

  bool backs_memory() const override { return false; }
  Page* DirectPage(PageId) override { return nullptr; }
  const Page* DirectPage(PageId) const override { return nullptr; }

  Status ReadPage(PageId id, char* out) const override;
  Status WritePage(PageId id, const char* bytes) override;

  /// Writes the free-page bitmap and header and fdatasyncs the file.
  Status Sync() override;

  Status BeginRestore(PageId max_page_id) override;
  Status RestorePage(PageId id, const Slice& bytes) override;

 private:
  FilePager(Env* env, std::string path, uint32_t page_size,
            std::unique_ptr<RandomRWFile> file);

  uint64_t OffsetOf(PageId id) const {
    return static_cast<uint64_t>(id) * page_size_;
  }

  Env* env_;
  std::string path_;
  uint32_t page_size_;
  std::unique_ptr<RandomRWFile> file_;
  std::vector<bool> live_;  ///< live_[id]; index 0 unused.
  uint64_t live_count_ = 0;
  PageId max_page_id_ = 0;
  PageId cursor_ = 1;  ///< Next-fit allocation scan start.
};

}  // namespace uindex

#endif  // UINDEX_STORAGE_FILE_PAGER_H_
