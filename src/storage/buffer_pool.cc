#include "storage/buffer_pool.h"

#include <algorithm>
#include <cassert>

namespace uindex {

void PageRef::Release() {
  if (pool_ != nullptr && frame_ != nullptr) pool_->Unpin(frame_);
  pool_ = nullptr;
  frame_ = nullptr;
  page_ = nullptr;
  owned_.reset();
  versioned_ = false;
}

BufferPool::BufferPool(PageStore* store, size_t capacity, Eviction policy,
                       IoStats* stats)
    : store_(store), capacity_(capacity == 0 ? 1 : capacity),
      policy_(policy), stats_(stats) {}

BufferPool::~BufferPool() = default;

void BufferPool::Unpin(BufferPoolFrame* frame) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(frame->pins > 0);
  --frame->pins;
  // A zombie (discarded while pinned) recycles at the last release.
  if (frame->pins == 0 && !frame->cached) free_.push_back(frame);
}

void BufferPool::TouchLocked(BufferPoolFrame* frame) {
  if (policy_ == Eviction::kLru) {
    lru_.splice(lru_.begin(), lru_, frame->lru_it);
  } else {
    frame->ref_bit = true;
  }
}

void BufferPool::InstallLocked(BufferPoolFrame* frame, PageId id) {
  frame->id = id;
  frame->cached = true;
  frame->ref_bit = true;
  frame->dirty = false;
  table_[id] = frame;
  if (policy_ == Eviction::kLru) {
    lru_.push_front(frame);
    frame->lru_it = lru_.begin();
  }
}

Status BufferPool::WriteBackLocked(BufferPoolFrame* frame) {
  UINDEX_RETURN_IF_ERROR(store_->WritePage(frame->id, frame->page.data()));
  frame->dirty = false;
  stats_->writebacks.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Result<BufferPoolFrame*> BufferPool::EvictLocked(BufferPoolFrame* forced) {
  BufferPoolFrame* victim = forced;
  if (victim == nullptr && policy_ == Eviction::kLru) {
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      if ((*it)->pins == 0) {
        victim = *it;
        break;
      }
    }
  } else if (victim == nullptr) {
    // CLOCK: sweep the frame table at most twice — the first pass may
    // only be clearing reference bits.
    for (size_t step = 0; step < 2 * frames_.size(); ++step) {
      BufferPoolFrame* frame = frames_[clock_hand_].get();
      clock_hand_ = (clock_hand_ + 1) % frames_.size();
      if (!frame->cached || frame->pins != 0) continue;
      if (frame->ref_bit) {
        frame->ref_bit = false;
        continue;
      }
      victim = frame;
      break;
    }
  }
  if (victim == nullptr) {
    return Status::ResourceExhausted("buffer pool: every frame is pinned");
  }
  // Write-back failure keeps the frame cached and dirty: losing the only
  // copy of a modified page to free a frame is never acceptable.
  if (victim->dirty) UINDEX_RETURN_IF_ERROR(WriteBackLocked(victim));
  table_.erase(victim->id);
  if (policy_ == Eviction::kLru) lru_.erase(victim->lru_it);
  victim->cached = false;
  victim->id = kInvalidPageId;
  stats_->evictions.fetch_add(1, std::memory_order_relaxed);
  return victim;
}

Result<BufferPoolFrame*> BufferPool::ObtainFrameLocked() {
  if (!free_.empty()) {
    BufferPoolFrame* frame = free_.back();
    free_.pop_back();
    return frame;
  }
  if (frames_.size() < capacity_) {
    frames_.push_back(
        std::make_unique<BufferPoolFrame>(store_->page_size()));
    return frames_.back().get();
  }
  return EvictLocked(nullptr);
}

Result<PageRef> BufferPool::Pin(PageId id, bool mark_dirty) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(id);
  if (it != table_.end()) {
    BufferPoolFrame* frame = it->second;
    TouchLocked(frame);
    ++frame->pins;
    frame->dirty |= mark_dirty;
    stats_->pool_hits.fetch_add(1, std::memory_order_relaxed);
    return PageRef(this, frame);
  }
  Result<BufferPoolFrame*> obtained = ObtainFrameLocked();
  if (!obtained.ok()) return obtained.status();
  BufferPoolFrame* frame = obtained.value();
  Status read = store_->ReadPage(id, frame->page.data());
  if (!read.ok()) {
    free_.push_back(frame);
    return read;
  }
  stats_->pool_misses.fetch_add(1, std::memory_order_relaxed);
  InstallLocked(frame, id);
  ++frame->pins;
  frame->dirty = mark_dirty;
  return PageRef(this, frame);
}

PageRef BufferPool::PinNew(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(table_.find(id) == table_.end() && "fresh id already pooled");
  Result<BufferPoolFrame*> obtained = ObtainFrameLocked();
  if (!obtained.ok()) {
    // No frame (all pinned, or a write-back failed). The id may be
    // recycled, so its stale file bytes must still be neutralized: zero
    // the page in the store directly. If even that fails the store is
    // failing wholesale and the next read will report it.
    std::vector<char> zeros(store_->page_size(), '\0');
    store_->WritePage(id, zeros.data());
    return PageRef();
  }
  BufferPoolFrame* frame = obtained.value();
  frame->page.Clear();
  InstallLocked(frame, id);
  ++frame->pins;
  frame->dirty = true;
  return PageRef(this, frame);
}

void BufferPool::Discard(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(id);
  if (it == table_.end()) return;
  BufferPoolFrame* frame = it->second;
  table_.erase(it);
  if (policy_ == Eviction::kLru) lru_.erase(frame->lru_it);
  frame->cached = false;
  frame->dirty = false;
  frame->id = kInvalidPageId;
  if (frame->pins == 0) free_.push_back(frame);
}

void BufferPool::Evict(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(id);
  if (it == table_.end() || it->second->pins != 0) return;
  Result<BufferPoolFrame*> evicted = EvictLocked(it->second);
  if (evicted.ok()) free_.push_back(evicted.value());
  // On write-back failure the frame simply stays cached and dirty.
}

Status BufferPool::Flush(bool sync) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<BufferPoolFrame*> dirty;
  for (const auto& frame : frames_) {
    if (frame->cached && frame->dirty) dirty.push_back(frame.get());
  }
  std::sort(dirty.begin(), dirty.end(),
            [](const BufferPoolFrame* a, const BufferPoolFrame* b) {
              return a->id < b->id;
            });
  for (BufferPoolFrame* frame : dirty) {
    UINDEX_RETURN_IF_ERROR(WriteBackLocked(frame));
  }
  if (sync) return store_->Sync();
  return Status::OK();
}

size_t BufferPool::cached_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_.size();
}

}  // namespace uindex
