#ifndef UINDEX_STORAGE_BUFFER_MANAGER_H_
#define UINDEX_STORAGE_BUFFER_MANAGER_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "storage/buffer_pool.h"
#include "storage/io_stats.h"
#include "storage/mvcc.h"
#include "storage/page.h"
#include "storage/pager.h"

namespace uindex {

class PrefetchScheduler;

/// Page access layer with the paper's accounting semantics.
///
/// Every index structure fetches nodes through a `BufferManager`. Within one
/// query epoch (bracketed by `BeginQuery`), the first fetch of a page counts
/// as a page read and later fetches of the same page are free — this models
/// the paper's retrieval algorithm "utilizing any page which is already in
/// memory" (§3.3) and is what makes the parallel scan cheaper than repeated
/// root-to-leaf descents.
///
/// Alternatively, `SetCapacity(n)` switches to a bounded LRU cache of `n`
/// pages that *persists across queries* — the steady-state model of a real
/// buffer pool (used by the cache-sensitivity ablation). In that mode
/// `BeginQuery` is a no-op.
///
/// Over a file-backed store (storage/file_pager.h) the manager owns a
/// bounded `BufferPool` of real page frames, and every fetch additionally
/// pins the page's frame: a *charged* read is then an actual `pread` when
/// the pool misses. The two layers are deliberately independent — the
/// accounting above is identical on every backend (what keeps per-query
/// `pages_read` byte-identical, the repo's core invariant), while the
/// pool's own traffic lands in the physical counters
/// (`pool_hits`/`pool_misses`/`evictions`/`writebacks`).
///
/// Fetches hand out `PageRef` pin guards, never raw `Page*`: the referenced
/// bytes are valid exactly while the ref lives, so pool eviction can never
/// invalidate a page a caller is still parsing. Memory-backed refs wrap
/// the stable in-process page and cost nothing.
///
/// Besides residency, the manager is the version authority for the decoded-
/// node cache (btree/node_cache.h): every page carries a version that
/// `FetchForWrite` and `Free` bump (and `SetCapacity` bumps globally via an
/// epoch), so a cache of values derived from page bytes can validate its
/// entries without this layer knowing what was derived.
///
/// Thread-safety: concurrent `Fetch`es are safe — the residency set is
/// sharded by page id under per-shard mutexes (LRU mode uses one mutex, as
/// the recency list is inherently global), all counters are relaxed
/// atomics, and the pool serializes frame I/O under its own lock — so the
/// parallel Parscan (src/exec/) charges exactly the same page-read total as
/// a serial walk over the same pages: the first thread to touch a page pays
/// the read, every later thread gets the cache hit. Mutations
/// (`Allocate`/`Free`/`FetchForWrite`) and mode switches (`SetCapacity`)
/// require external exclusive access (no concurrent reader of the same
/// pages), as does the underlying store.
class BufferManager {
 public:
  /// Validation token for caches of values derived from a page's bytes.
  /// Two equal versions of the same page id guarantee the page bytes were
  /// not written, freed, or invalidated in between (given the external-
  /// exclusion contract on mutations).
  struct PageVersion {
    uint64_t epoch = 0;   ///< Global invalidation epoch (SetCapacity).
    uint64_t writes = 0;  ///< Per-page write/free count.
    friend bool operator==(const PageVersion&, const PageVersion&) = default;
  };

  /// The simulated read latency (below) defaults from the
  /// UINDEX_SIM_READ_LATENCY environment variable (microseconds), so
  /// benchmarks and the shell can model device latency without a code
  /// change; `SetSimulatedReadLatency` still overrides it.
  ///
  /// When `store` is not memory-backed, the manager builds a `BufferPool`
  /// of `pool_pages` frames (256 if 0) evicting with `eviction`.
  explicit BufferManager(PageStore* store, size_t pool_pages = 0,
                         BufferPool::Eviction eviction =
                             BufferPool::Eviction::kLru)
      : pager_(store), sim_read_latency_us_(EnvSimReadLatencyUs()) {
    if (!store->backs_memory()) {
      pool_ = std::make_unique<BufferPool>(
          store, pool_pages == 0 ? 256 : pool_pages, eviction, &stats_);
    }
  }

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  PageStore* pager() { return pager_; }
  const PageStore* pager() const { return pager_; }
  uint32_t page_size() const { return pager_->page_size(); }

  /// The physical frame pool; null over memory-backed stores.
  BufferPool* pool() const { return pool_.get(); }

  /// Switches to a bounded LRU cache of `pages` frames (0 restores the
  /// unbounded per-query-epoch mode). Resets residency either way and bumps
  /// the global invalidation epoch (derived-value caches start cold, like
  /// the page pool itself). Requires external exclusion (see class
  /// comment).
  void SetCapacity(size_t pages) {
    capacity_.store(pages, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_relaxed);
    ClearResidency();
    {
      std::lock_guard<std::mutex> lock(lru_mu_);
      lru_.clear();
      lru_index_.clear();
    }
    NotifyEpochReset();
  }
  size_t capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }

  /// Simulated device latency charged per counted page read, in
  /// microseconds (0 = off, the default). A modeling knob for wall-clock
  /// benchmarks: the paper reports page reads because I/O dominates query
  /// time, and an in-memory pager hides that; with a latency every counted
  /// read sleeps, so concurrent readers overlap their "I/O" exactly as
  /// parallel descents overlap real device reads. Cache hits stay free.
  void SetSimulatedReadLatency(uint32_t micros) {
    sim_read_latency_us_.store(micros, std::memory_order_relaxed);
  }
  uint32_t simulated_read_latency_us() const {
    return sim_read_latency_us_.load(std::memory_order_relaxed);
  }

  /// Starts a new query epoch: subsequently, each distinct page costs one
  /// read again. No-op in bounded-cache mode (the pool persists). Does NOT
  /// touch page versions — decoded-node caches legitimately survive across
  /// queries (they change CPU cost only, never the page-read metric).
  void BeginQuery() {
    if (capacity() == 0) {
      ClearResidency();
      NotifyEpochReset();
    }
  }

  /// Attaches (or detaches, with nullptr) an asynchronous prefetch
  /// scheduler (storage/prefetch.h). While attached, every *charged* read
  /// first asks the scheduler whether a background read of that page is
  /// staged or in flight (`JoinDemand`) and skips the simulated device
  /// wait on a hit; `Free` and epoch resets forward invalidations so stale
  /// prefetches can never be served. Accounting is unchanged either way —
  /// prefetch moves wall-clock time, never `pages_read`. The scheduler is
  /// borrowed; it detaches itself on destruction.
  void SetPrefetcher(PrefetchScheduler* prefetcher) {
    prefetcher_.store(prefetcher, std::memory_order_release);
  }
  PrefetchScheduler* prefetcher() const {
    return prefetcher_.load(std::memory_order_acquire);
  }

  /// True when fetching `id` right now would be a free cache hit (it is in
  /// the current epoch's resident set, or the bounded LRU). Used by the
  /// prefetch scheduler to skip pages a background read could not help.
  bool IsResident(PageId id) const {
    if (capacity() != 0) {
      std::lock_guard<std::mutex> lock(lru_mu_);
      return lru_index_.find(id) != lru_index_.end();
    }
    const Shard& shard = shards_[id % kShards];
    std::lock_guard<std::mutex> lock(shard.mu);
    return shard.resident.find(id) != shard.resident.end();
  }

  /// Fetches a page for reading, updating the read counters. Null ref for
  /// invalid/freed ids (and on a pool I/O failure).
  PageRef Fetch(PageId id) { return FetchInternal(id, /*dirty=*/false); }

  /// Fetches a page for writing. Counts a read (the page must be resident
  /// to modify it) plus a write.
  ///
  /// Legacy mode (no open write epoch, or a caller outside it — DDL under
  /// the exclusive latch, standalone trees): mutates the base page in
  /// place, bumping its version so derived-value caches drop their stale
  /// entries, and marks the frame dirty for write-back. Requires external
  /// exclusion against readers of this page.
  ///
  /// MVCC mode (`BeginWriteEpoch` open and this thread is the writer):
  /// copies the newest visible bytes into an epoch-stamped chain revision
  /// (storage/mvcc.h) and mutates the copy — the base stays untouched, so
  /// concurrent readers pinned at earlier epochs keep their snapshot.
  /// Pages born in the open epoch are written in place (no published
  /// reader can reach them). The base version is NOT bumped on a CoW
  /// write: base bytes did not change, and versioned refs bypass the
  /// decoded-node cache entirely.
  PageRef FetchForWrite(PageId id) {
    const uint64_t w = write_epoch_.load(std::memory_order_relaxed);
    if (w != 0 && EpochContext::current() == w) {
      return FetchForWriteVersioned(id, w);
    }
    PageRef ref = FetchInternal(id, /*dirty=*/true);
    if (ref != nullptr) {
      stats_.pages_written.fetch_add(1, std::memory_order_relaxed);
      BumpVersion(id);
    }
    return ref;
  }

  /// Fetches with NO logical accounting — the decoded-node cache warm path
  /// and background prefetch use this so their reads never perturb the
  /// paper metric. Physical pool traffic still counts (it is real I/O).
  /// Epoch-aware like `Fetch`: a page with chain revisions resolves to the
  /// thread's revision, never the base bytes — which is also what keeps
  /// uncounted readers off base frames while reclamation folds revisions
  /// into them (the only base-byte writes that can run under concurrent
  /// readers).
  PageRef FetchUncounted(PageId id) {
    if (!pager_->IsLive(id)) return PageRef();
    if (!versions_.empty()) {
      std::shared_ptr<Page> rev =
          versions_.Resolve(id, EpochContext::Effective());
      if (rev != nullptr) return PageRef(std::move(rev));
    }
    return AcquirePage(id, /*dirty=*/false);
  }

  /// Physically loads `id` into the pool without pinning or accounting —
  /// the background half of a prefetch over a file-backed store. No-op
  /// (beyond the simulated latency handled by the scheduler) in memory
  /// stores, where page bytes are always reachable.
  void BackgroundLoad(PageId id) {
    if (pool_ == nullptr || !pager_->IsLive(id)) return;
    pool_->Pin(id, /*mark_dirty=*/false);  // Load; drop the pin at once.
  }

  /// Allocates a fresh page; it is immediately resident (no read charged).
  PageId Allocate() {
    PageId id = pager_->Allocate();
    const size_t cap = capacity();
    if (cap != 0) {
      std::lock_guard<std::mutex> lock(lru_mu_);
      InsertLruLocked(id, cap);
    } else {
      Shard& shard = shards_[id % kShards];
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.resident.insert(id);
    }
    stats_.pages_allocated.fetch_add(1, std::memory_order_relaxed);
    stats_.pages_written.fetch_add(1, std::memory_order_relaxed);
    // A zeroed dirty frame, never a store read: a recycled id's stale
    // file bytes must not be served as the fresh page's content.
    if (pool_ != nullptr) pool_->PinNew(id);
    // Born in the open write epoch: unreachable from any published state,
    // so the writer mutates it in place and a same-epoch free is
    // immediate.
    const uint64_t w = write_epoch_.load(std::memory_order_relaxed);
    if (w != 0 && EpochContext::current() == w) versions_.MarkBorn(id);
    return id;
  }

  /// Frees a page. Legacy mode frees immediately: drops it from the
  /// resident set (and its pool frame, without write-back), bumps its
  /// version (a later `Allocate` may recycle the id for unrelated
  /// content), and returns it to the store. Under an open write epoch the
  /// free is *deferred* — readers pinned at earlier epochs still walk the
  /// page — until reclamation passes the freeing epoch; pages born in the
  /// same epoch never published and free immediately.
  void Free(PageId id) {
    const uint64_t w = write_epoch_.load(std::memory_order_relaxed);
    if (w != 0 && EpochContext::current() == w &&
        !versions_.EraseBorn(id)) {
      versions_.DeferFree(id, w);
      return;
    }
    PhysicalFree(id);
  }

  // ------------------------------------------------------ MVCC lifecycle
  /// Opens write epoch `w` (db layer: published + 1). Only the opening
  /// thread's `FetchForWrite`/`Allocate`/`Free` calls run in MVCC mode —
  /// the thread-local `EpochContext` must equal `w` (the database brackets
  /// the mutation in a `ScopedEpoch`). Single writer: callers serialize
  /// externally (the database's writer mutex).
  void BeginWriteEpoch(uint64_t w) {
    write_epoch_.store(w, std::memory_order_relaxed);
  }

  /// Closes the open write epoch at publish time: born pages become
  /// ordinary published pages (the next epoch CoWs them like any other).
  void EndWriteEpoch() {
    versions_.ClearBorn();
    write_epoch_.store(0, std::memory_order_relaxed);
  }

  /// Epoch-based reclamation: folds every chain revision stamped at or
  /// below `horizon` (the registry's oldest pinned epoch) into the base
  /// store and performs deferred frees whose death epoch has passed. The
  /// apply path brackets the base overwrite in version bumps — a seqlock
  /// for the decoded-node cache: an uncounted warm parse racing the copy
  /// gets keyed with the mid-window version and can never be inserted as
  /// current. Caller holds the writer serialization.
  void ReclaimVersionsThrough(uint64_t horizon) {
    if (versions_.revision_count() == 0 &&
        versions_.pending_free_count() == 0) {
      return;
    }
    versions_.ReclaimThrough(
        horizon,
        [this](PageId id, const Page& bytes) {
          return ApplyVersionToBase(id, bytes);
        },
        [this](PageId id) { PhysicalFree(id); });
  }

  /// Folds *everything* into base — for exclusive contexts (DDL, Save,
  /// Checkpoint, teardown) where no reader pin can exist, so the base
  /// store and snapshot machinery see the newest bytes.
  void ForceReclaimAll() { ReclaimVersionsThrough(kLatestEpoch - 1); }

  /// Chain revisions currently retained (tests / introspection).
  size_t versioned_revision_count() const {
    return versions_.revision_count();
  }
  size_t pending_free_count() const {
    return versions_.pending_free_count();
  }

  /// MVCC + commit accounting hooks (db layer).
  void RecordEpochPublished() {
    stats_.epochs_published.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordPagesCow(uint64_t n) {
    stats_.pages_cow.fetch_add(n, std::memory_order_relaxed);
  }
  void RecordCommitBatch(uint64_t records) {
    stats_.commit_batches.fetch_add(1, std::memory_order_relaxed);
    stats_.commit_records.fetch_add(records, std::memory_order_relaxed);
  }
  void RecordPinAge(uint64_t age_us) { stats_.RecordPinAge(age_us); }

  /// Writes every dirty pool frame back to the store (in page-id order),
  /// then syncs the store's data file and allocation state when `sync` is
  /// set. No-op over memory stores. `Save` calls this before snapshotting
  /// so the store reads back the newest bytes; `Checkpoint` syncs.
  Status Flush(bool sync) const {
    if (pool_ == nullptr) return Status::OK();
    return pool_->Flush(sync);
  }

  /// Current version of `id`. Read it BEFORE reading the page bytes a
  /// derived value is computed from; a cache entry tagged with that version
  /// is valid exactly while `page_version(id)` still compares equal.
  PageVersion page_version(PageId id) const {
    PageVersion v;
    v.epoch = epoch_.load(std::memory_order_relaxed);
    const Shard& shard = shards_[id % kShards];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.versions.find(id);
    v.writes = it == shard.versions.end() ? 0 : it->second;
    return v;
  }

  const IoStats& stats() const { return stats_; }

  /// Decoded-node accounting hooks (btree layer): one full `Node::Parse`
  /// materializing `decoded_bytes`, or one fetch served by the decoded-
  /// node cache without a parse.
  void RecordNodeParse(uint64_t decoded_bytes) {
    stats_.nodes_parsed.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_decoded.fetch_add(decoded_bytes, std::memory_order_relaxed);
  }
  void RecordNodeCacheHit() {
    stats_.node_cache_hits.fetch_add(1, std::memory_order_relaxed);
  }

  /// Prefetch accounting hooks (storage/prefetch.cc): a background read
  /// started, a charged demand read served by one, or an issued read that
  /// ended up serving nobody. None of these touch `pages_read`.
  void RecordPrefetchIssued() {
    stats_.prefetch_issued.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordPrefetchHit() {
    stats_.prefetch_hits.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordPrefetchWasted() {
    stats_.prefetch_wasted.fetch_add(1, std::memory_order_relaxed);
  }

  /// Zeroes all counters (page residency is unaffected). Each counter is
  /// cleared with an individual atomic store — safe against concurrent
  /// `Fetch`es at the type level, but counts landing mid-reset are split
  /// across the old and new baseline; callers needing an exact zero must
  /// exclude concurrent queries externally (e.g. hold the database latch).
  void ResetStats() { stats_.Reset(); }

 private:
  static constexpr size_t kShards = 16;

  struct Shard {
    // `mutable` so the const read-side (`page_version`) can lock it.
    mutable std::mutex mu;
    std::unordered_set<PageId> resident;
    // Write/free count per page id; absent means 0 (never written since
    // construction). Grows with distinct pages ever written — bounded by
    // the store's page count, a few machine words per page.
    std::unordered_map<PageId, uint64_t> versions;
  };

  // Logical read accounting, identical on every backend AND every epoch:
  // residency is keyed by page id alone, so a reader resolving a chain
  // revision charges exactly what the same walk over base pages would —
  // the `pages_read` byte-identity invariant extends over MVCC.
  void ChargeRead(PageId id) {
    bool charged = false;
    const size_t cap = capacity();
    if (cap != 0) {
      charged = TouchLru(id, cap);
    } else {
      Shard& shard = shards_[id % kShards];
      std::lock_guard<std::mutex> lock(shard.mu);
      charged = shard.resident.insert(id).second;
    }
    if (charged) {
      stats_.pages_read.fetch_add(1, std::memory_order_relaxed);
      FinishChargedRead(id);
    } else {
      stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // The one fetch body: logical charging first, then the physical acquire
  // — an MVCC chain revision for the thread's read epoch when one exists,
  // else the base store (pool pin or direct page).
  PageRef FetchInternal(PageId id, bool dirty) {
    if (!pager_->IsLive(id)) return PageRef();
    ChargeRead(id);
    if (!dirty && !versions_.empty()) {
      std::shared_ptr<Page> rev =
          versions_.Resolve(id, EpochContext::Effective());
      if (rev != nullptr) return PageRef(std::move(rev));
    }
    return AcquirePage(id, dirty);
  }

  // MVCC write path: see FetchForWrite.
  PageRef FetchForWriteVersioned(PageId id, uint64_t w) {
    if (!pager_->IsLive(id)) return PageRef();
    ChargeRead(id);
    stats_.pages_written.fetch_add(1, std::memory_order_relaxed);
    if (versions_.IsBorn(id)) {
      // Unpublished page: in-place, with the legacy version bump (the
      // writer's own warm parses of it must invalidate).
      BumpVersion(id);
      return AcquirePage(id, /*dirty=*/true);
    }
    bool created = false;
    std::shared_ptr<Page> rev;
    if (std::shared_ptr<Page> newest = versions_.Newest(id)) {
      rev = versions_.GetOrCreateWritable(id, w, *newest, &created);
    } else {
      PageRef base = AcquirePage(id, /*dirty=*/false);
      if (base == nullptr) return PageRef();
      rev = versions_.GetOrCreateWritable(id, w, *base, &created);
    }
    if (created) stats_.pages_cow.fetch_add(1, std::memory_order_relaxed);
    return PageRef(std::move(rev));
  }

  // Writes a reclaimed chain revision's bytes over the base page. The
  // version double-bump is a seqlock for derived-value caches: any parse
  // racing the copy is keyed with the mid-window version, which never
  // matches a later validation. False vetoes the fold (transient pool
  // failure) — the revision stays chained for the next pass.
  bool ApplyVersionToBase(PageId id, const Page& bytes) {
    BumpVersion(id);
    if (pool_ != nullptr) {
      Result<PageRef> pinned = pool_->Pin(id, /*mark_dirty=*/true);
      if (!pinned.ok()) return false;
      std::memcpy(pinned.value()->data(), bytes.data(), bytes.size());
    } else {
      Page* base = pager_->DirectPage(id);
      if (base == nullptr) return false;
      std::memcpy(base->data(), bytes.data(), bytes.size());
    }
    BumpVersion(id);
    return true;
  }

  // The immediate-free body (legacy Free, and reclamation's deferred
  // frees).
  void PhysicalFree(PageId id) {
    {
      Shard& shard = shards_[id % kShards];
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.resident.erase(id);
      ++shard.versions[id];
    }
    // The recency list only exists in bounded mode; per-query-epoch frees
    // (the common case — every split/merge path) skip its global lock.
    if (capacity() != 0) {
      std::lock_guard<std::mutex> lock(lru_mu_);
      auto it = lru_index_.find(id);
      if (it != lru_index_.end()) {
        lru_.erase(it->second);
        lru_index_.erase(it);
      }
    }
    NotifyFreed(id);
    if (pool_ != nullptr) pool_->Discard(id);
    pager_->Free(id);
  }

  PageRef AcquirePage(PageId id, bool dirty) {
    if (pool_ != nullptr) {
      Result<PageRef> pinned = pool_->Pin(id, dirty);
      return pinned.ok() ? std::move(pinned).value() : PageRef();
    }
    return PageRef(pager_->DirectPage(id));
  }

  void ClearResidency() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.resident.clear();
    }
  }

  void BumpVersion(PageId id) {
    Shard& shard = shards_[id % kShards];
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.versions[id];
  }

  void SimulateReadLatency() {
    const uint32_t us = sim_read_latency_us_.load(std::memory_order_relaxed);
    if (us != 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
  }

  // Out-of-line prefetch bridge (storage/buffer_manager.cc) — the header
  // cannot include prefetch.h without a cycle. FinishChargedRead pays the
  // simulated device wait for a read already charged to `pages_read`,
  // unless an attached scheduler performed (or is performing) it in the
  // background. The Notify* hooks forward invalidations; all three are
  // no-ops when no scheduler is attached.
  void FinishChargedRead(PageId id);
  void NotifyFreed(PageId id);
  void NotifyEpochReset();
  static uint32_t EnvSimReadLatencyUs();

  // Returns true when the touch charged a read (the page was not cached).
  bool TouchLru(PageId id, size_t cap) {
    std::lock_guard<std::mutex> lock(lru_mu_);
    auto it = lru_index_.find(id);
    if (it != lru_index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return false;
    }
    InsertLruLocked(id, cap);
    return true;
  }

  void InsertLruLocked(PageId id, size_t cap) {
    lru_.push_front(id);
    lru_index_[id] = lru_.begin();
    while (lru_.size() > cap) EvictLruTailLocked();
  }

  // The bounded-LRU eviction path — every overflowing page leaves through
  // here, never a silent drop. Over a file store the physical frame is
  // shed through the pool's victim path (which owns the dirty write-back
  // and counts the eviction); in memory the logical drop IS the eviction.
  void EvictLruTailLocked() {
    const PageId victim = lru_.back();
    lru_index_.erase(victim);
    lru_.pop_back();
    if (pool_ != nullptr) {
      pool_->Evict(victim);
    } else {
      stats_.evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }

  PageStore* pager_;
  IoStats stats_;
  // Physical frame pool over non-memory stores; null otherwise.
  std::unique_ptr<BufferPool> pool_;
  // Atomic: IsResident/Fetch read the mode while SetCapacity (external
  // exclusion notwithstanding, e.g. a racing IsResident from a draining
  // prefetch thread) stores it.
  std::atomic<size_t> capacity_{0};  // 0 = unbounded per-query-epoch mode.
  std::atomic<uint32_t> sim_read_latency_us_{0};
  // Borrowed; nullptr when no async prefetch is attached (the default).
  std::atomic<PrefetchScheduler*> prefetcher_{nullptr};
  // Global invalidation epoch: part of every PageVersion, bumped by
  // SetCapacity to invalidate all derived-value cache entries at once.
  std::atomic<uint64_t> epoch_{0};
  // MVCC: the open write epoch (0 = none) and the epoch-stamped CoW page
  // chains readers resolve against. Single writer; readers only Resolve.
  std::atomic<uint64_t> write_epoch_{0};
  PageVersionTable versions_;
  // Per-query-epoch mode: residency sharded by page id to keep concurrent
  // readers off each other's locks. Page versions share the shards.
  Shard shards_[kShards];
  // Bounded mode: most-recently-used at the front, one lock (global order).
  // `mutable` so the const read-side (`IsResident`) can lock it.
  mutable std::mutex lru_mu_;
  std::list<PageId> lru_;
  std::unordered_map<PageId, std::list<PageId>::iterator> lru_index_;
};

/// RAII helper measuring the page reads of one query.
///
/// Usage:
///   QueryCost cost(&buffers);
///   ... run the query ...
///   uint64_t pages = cost.PagesRead();
class QueryCost {
 public:
  explicit QueryCost(BufferManager* buffers)
      : buffers_(buffers), base_(buffers->stats()) {
    buffers_->BeginQuery();
  }

  uint64_t PagesRead() const {
    return (buffers_->stats() - base_).pages_read;
  }

  /// Write-backs since construction — relevant for maintenance work
  /// (index updates, rebuilds), which is write-heavy where queries are
  /// read-only.
  uint64_t PagesWritten() const {
    return (buffers_->stats() - base_).pages_written;
  }

 private:
  BufferManager* buffers_;
  IoStats base_;
};

}  // namespace uindex

#endif  // UINDEX_STORAGE_BUFFER_MANAGER_H_
