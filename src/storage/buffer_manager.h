#ifndef UINDEX_STORAGE_BUFFER_MANAGER_H_
#define UINDEX_STORAGE_BUFFER_MANAGER_H_

#include <cstddef>
#include <list>
#include <unordered_map>
#include <unordered_set>

#include "storage/io_stats.h"
#include "storage/page.h"
#include "storage/pager.h"

namespace uindex {

/// Page access layer with the paper's accounting semantics.
///
/// Every index structure fetches nodes through a `BufferManager`. Within one
/// query epoch (bracketed by `BeginQuery`), the first fetch of a page counts
/// as a page read and later fetches of the same page are free — this models
/// the paper's retrieval algorithm "utilizing any page which is already in
/// memory" (§3.3) and is what makes the parallel scan cheaper than repeated
/// root-to-leaf descents.
///
/// Alternatively, `SetCapacity(n)` switches to a bounded LRU cache of `n`
/// pages that *persists across queries* — the steady-state model of a real
/// buffer pool (used by the cache-sensitivity ablation). In that mode
/// `BeginQuery` is a no-op.
class BufferManager {
 public:
  explicit BufferManager(Pager* pager) : pager_(pager) {}

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  Pager* pager() { return pager_; }
  uint32_t page_size() const { return pager_->page_size(); }

  /// Switches to a bounded LRU cache of `pages` frames (0 restores the
  /// unbounded per-query-epoch mode). Resets residency either way.
  void SetCapacity(size_t pages) {
    capacity_ = pages;
    resident_.clear();
    lru_.clear();
    lru_index_.clear();
  }
  size_t capacity() const { return capacity_; }

  /// Starts a new query epoch: subsequently, each distinct page costs one
  /// read again. No-op in bounded-cache mode (the pool persists).
  void BeginQuery() {
    if (capacity_ == 0) resident_.clear();
  }

  /// Fetches a page for reading, updating the read counters.
  Page* Fetch(PageId id) {
    Page* page = pager_->GetPage(id);
    if (page == nullptr) return nullptr;
    if (capacity_ != 0) {
      TouchLru(id);
    } else if (resident_.insert(id).second) {
      ++stats_.pages_read;
    } else {
      ++stats_.cache_hits;
    }
    return page;
  }

  /// Fetches a page for writing. Counts a read (the page must be resident
  /// to modify it) plus a write.
  Page* FetchForWrite(PageId id) {
    Page* page = Fetch(id);
    if (page != nullptr) ++stats_.pages_written;
    return page;
  }

  /// Allocates a fresh page; it is immediately resident (no read charged).
  PageId Allocate() {
    PageId id = pager_->Allocate();
    if (capacity_ != 0) {
      InsertLru(id, /*charge_read=*/false);
    } else {
      resident_.insert(id);
    }
    ++stats_.pages_allocated;
    ++stats_.pages_written;
    return id;
  }

  /// Frees a page and drops it from the resident set.
  void Free(PageId id) {
    resident_.erase(id);
    auto it = lru_index_.find(id);
    if (it != lru_index_.end()) {
      lru_.erase(it->second);
      lru_index_.erase(it);
    }
    pager_->Free(id);
  }

  const IoStats& stats() const { return stats_; }

  /// Zeroes all counters (page residency is unaffected).
  void ResetStats() { stats_ = IoStats(); }

 private:
  void TouchLru(PageId id) {
    auto it = lru_index_.find(id);
    if (it != lru_index_.end()) {
      ++stats_.cache_hits;
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    InsertLru(id, /*charge_read=*/true);
  }

  void InsertLru(PageId id, bool charge_read) {
    if (charge_read) ++stats_.pages_read;
    lru_.push_front(id);
    lru_index_[id] = lru_.begin();
    while (lru_.size() > capacity_) {
      lru_index_.erase(lru_.back());
      lru_.pop_back();
    }
  }

  Pager* pager_;
  IoStats stats_;
  size_t capacity_ = 0;  // 0 = unbounded per-query-epoch mode.
  std::unordered_set<PageId> resident_;
  // Bounded mode: most-recently-used at the front.
  std::list<PageId> lru_;
  std::unordered_map<PageId, std::list<PageId>::iterator> lru_index_;
};

/// RAII helper measuring the page reads of one query.
///
/// Usage:
///   QueryCost cost(&buffers);
///   ... run the query ...
///   uint64_t pages = cost.PagesRead();
class QueryCost {
 public:
  explicit QueryCost(BufferManager* buffers)
      : buffers_(buffers), base_(buffers->stats()) {
    buffers_->BeginQuery();
  }

  uint64_t PagesRead() const {
    return (buffers_->stats() - base_).pages_read;
  }

 private:
  BufferManager* buffers_;
  IoStats base_;
};

}  // namespace uindex

#endif  // UINDEX_STORAGE_BUFFER_MANAGER_H_
