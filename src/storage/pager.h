#ifndef UINDEX_STORAGE_PAGER_H_
#define UINDEX_STORAGE_PAGER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "util/slice.h"

#include "storage/io_stats.h"
#include "storage/page.h"
#include "util/status.h"

namespace uindex {

/// Where pages live: the storage backend under the buffer manager.
///
/// Two implementations exist. `Pager` (below) keeps every page in process
/// memory — the original reproduction setup, where `pages_read` is the
/// metric and I/O is simulated. `FilePager` (storage/file_pager.h) keeps
/// pages in a data file behind `Env` positioned I/O, so databases can
/// exceed RAM; the buffer manager then caches frames in a bounded
/// `BufferPool` and a charged read is an actual `pread` on a pool miss.
///
/// The allocation interface (Allocate/Free/IsLive/…) is identical for
/// both. The *access* interface splits: memory stores hand out stable
/// in-process pages via `DirectPage`; file stores only move whole pages
/// through `ReadPage`/`WritePage` and return null from `DirectPage`
/// (`backs_memory` tells the buffer manager which protocol applies).
/// Implementations are not thread-safe; callers serialize (the buffer
/// manager routes all file-store I/O through the pool's one lock, and
/// mutations require external exclusion).
class PageStore {
 public:
  virtual ~PageStore() = default;

  virtual uint32_t page_size() const = 0;

  /// Allocates a page id whose content reads as zeros, and returns it.
  virtual PageId Allocate() = 0;

  /// Returns the page to the free pool. The id must be live.
  virtual void Free(PageId id) = 0;

  /// True if `id` names a live (allocated, not freed) page.
  virtual bool IsLive(PageId id) const = 0;

  /// Number of live pages (the storage footprint in pages).
  virtual uint64_t live_page_count() const = 0;

  /// Highest page id ever allocated.
  virtual PageId max_page_id() const = 0;

  /// True when pages are process memory and `DirectPage` works; false for
  /// file stores, where access goes through `ReadPage`/`WritePage` (and,
  /// above this layer, the buffer pool's frames).
  virtual bool backs_memory() const = 0;

  /// Borrows a live page in memory stores (stable until freed); null for
  /// invalid/freed ids and ALWAYS null in file stores.
  virtual Page* DirectPage(PageId id) = 0;
  virtual const Page* DirectPage(PageId id) const = 0;

  /// Copies the page's current content into `out[0, page_size)`. For file
  /// stores this is positioned file I/O against the data file — callers
  /// holding newer bytes in pool frames must flush them first.
  virtual Status ReadPage(PageId id, char* out) const = 0;

  /// Persists `bytes[0, page_size)` as the page's content (volatile until
  /// `Sync` for file stores).
  virtual Status WritePage(PageId id, const char* bytes) = 0;

  /// Makes the store durable: file stores write their allocation bitmap
  /// and header and fdatasync the data file; memory stores no-op.
  virtual Status Sync() = 0;

  /// Restore support (used by `PagerSnapshot`): resets the store to an
  /// empty id space reaching `max_page_id`, every slot free;
  /// `RestorePage` then revives specific ids with content.
  virtual Status BeginRestore(PageId max_page_id) = 0;
  virtual Status RestorePage(PageId id, const Slice& bytes) = 0;
};

/// An in-memory paged file.
///
/// The paper's experiments run on index files with a fixed page size and
/// measure page reads, not wall-clock I/O, so an in-memory page store with
/// identical geometry preserves the metric exactly (see DESIGN.md,
/// "Substitutions"). Pages are allocated sequentially starting at id 1;
/// freed pages go on a free list and are reused.
class Pager : public PageStore {
 public:
  /// Creates a pager whose pages are all `page_size` bytes.
  explicit Pager(uint32_t page_size);

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  uint32_t page_size() const override { return page_size_; }

  /// Allocates a zeroed page and returns its id.
  PageId Allocate() override;

  /// Returns the page to the free list. The id must be live.
  void Free(PageId id) override;

  /// Borrows a live page for reading/writing. The pointer is stable until
  /// the page is freed. Returns nullptr for invalid or freed ids.
  Page* GetPage(PageId id);
  const Page* GetPage(PageId id) const;

  bool IsLive(PageId id) const override;

  uint64_t live_page_count() const override { return live_count_; }

  PageId max_page_id() const override {
    return static_cast<PageId>(pages_.size());
  }

  bool backs_memory() const override { return true; }
  Page* DirectPage(PageId id) override { return GetPage(id); }
  const Page* DirectPage(PageId id) const override { return GetPage(id); }
  Status ReadPage(PageId id, char* out) const override;
  Status WritePage(PageId id, const char* bytes) override;
  Status Sync() override { return Status::OK(); }

  /// Restore support (used by `PagerSnapshot`): creates an empty pager
  /// whose id space reaches `max_page_id`, with every slot initially on
  /// the free list; `RestorePage` then revives specific ids with content.
  static std::unique_ptr<Pager> CreateForRestore(uint32_t page_size,
                                                 PageId max_page_id);
  Status BeginRestore(PageId max_page_id) override;
  Status RestorePage(PageId id, const Slice& bytes) override;

 private:
  uint32_t page_size_;
  // pages_[i] backs page id i+1; nullptr for freed pages.
  std::vector<std::unique_ptr<Page>> pages_;
  std::vector<PageId> free_list_;
  uint64_t live_count_ = 0;
};

}  // namespace uindex

#endif  // UINDEX_STORAGE_PAGER_H_
