#ifndef UINDEX_STORAGE_PAGER_H_
#define UINDEX_STORAGE_PAGER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "util/slice.h"

#include "storage/io_stats.h"
#include "storage/page.h"
#include "util/status.h"

namespace uindex {

/// An in-memory paged file.
///
/// The paper's experiments run on index files with a fixed page size and
/// measure page reads, not wall-clock I/O, so an in-memory page store with
/// identical geometry preserves the metric exactly (see DESIGN.md,
/// "Substitutions"). Pages are allocated sequentially starting at id 1;
/// freed pages go on a free list and are reused.
class Pager {
 public:
  /// Creates a pager whose pages are all `page_size` bytes.
  explicit Pager(uint32_t page_size);

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  uint32_t page_size() const { return page_size_; }

  /// Allocates a zeroed page and returns its id.
  PageId Allocate();

  /// Returns the page to the free list. The id must be live.
  void Free(PageId id);

  /// Borrows a live page for reading/writing. The pointer is stable until
  /// the page is freed. Returns nullptr for invalid or freed ids.
  Page* GetPage(PageId id);
  const Page* GetPage(PageId id) const;

  /// True if `id` names a live (allocated, not freed) page.
  bool IsLive(PageId id) const;

  /// Number of live pages (the index's storage footprint in pages).
  uint64_t live_page_count() const { return live_count_; }

  /// Highest page id ever allocated.
  PageId max_page_id() const {
    return static_cast<PageId>(pages_.size());
  }

  /// Restore support (used by `PagerSnapshot`): creates an empty pager
  /// whose id space reaches `max_page_id`, with every slot initially on
  /// the free list; `RestorePage` then revives specific ids with content.
  static std::unique_ptr<Pager> CreateForRestore(uint32_t page_size,
                                                 PageId max_page_id);
  Status RestorePage(PageId id, const Slice& bytes);

 private:
  uint32_t page_size_;
  // pages_[i] backs page id i+1; nullptr for freed pages.
  std::vector<std::unique_ptr<Page>> pages_;
  std::vector<PageId> free_list_;
  uint64_t live_count_ = 0;
};

}  // namespace uindex

#endif  // UINDEX_STORAGE_PAGER_H_
