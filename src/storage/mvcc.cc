#include "storage/mvcc.h"

namespace uindex {

thread_local uint64_t EpochContext::tl_epoch_ = kLatestEpoch;

}  // namespace uindex
