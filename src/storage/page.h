#ifndef UINDEX_STORAGE_PAGE_H_
#define UINDEX_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <vector>

namespace uindex {

/// Identifier of a page within a `Pager`. Page 0 is reserved as "invalid"
/// so that zero-initialized page references are self-evidently unset.
using PageId = uint32_t;

constexpr PageId kInvalidPageId = 0;

/// A fixed-size block of bytes, the unit of I/O accounting.
///
/// The paper stores index files "in page files with pages of size 1024
/// bytes" and reports the number of pages read per query; `Page` is that
/// unit. Index nodes serialize themselves into a page's byte buffer.
class Page {
 public:
  explicit Page(uint32_t size) : bytes_(size, 0) {}

  Page(const Page&) = delete;
  Page& operator=(const Page&) = delete;

  uint32_t size() const { return static_cast<uint32_t>(bytes_.size()); }
  char* data() { return bytes_.data(); }
  const char* data() const { return bytes_.data(); }

  /// Zeroes the whole page.
  void Clear() { std::memset(bytes_.data(), 0, bytes_.size()); }

 private:
  std::vector<char> bytes_;
};

}  // namespace uindex

#endif  // UINDEX_STORAGE_PAGE_H_
