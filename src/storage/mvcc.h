#ifndef UINDEX_STORAGE_MVCC_H_
#define UINDEX_STORAGE_MVCC_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "storage/page.h"

namespace uindex {

/// The epoch machinery behind MVCC snapshot reads (DESIGN.md "MVCC & group
/// commit").
///
/// A *commit epoch* is a monotonically increasing number stamped on every
/// published database state. Readers pin the epoch that was current when
/// they started and resolve every versioned read (page bytes, object
/// revisions, extent membership) "as of" that epoch; the single writer
/// mutates at epoch `published + 1` and makes that epoch visible with one
/// atomic publish. Reclamation folds versions no pinned reader can need
/// back into the base storage.
///
/// `kLatestEpoch` is the thread-local default: code running outside any
/// pinned snapshot (standalone index tests, benches driving a BTree
/// directly, the writer before an epoch is opened) reads the newest
/// version of everything — which is exactly the pre-MVCC behaviour when no
/// version chains exist.
inline constexpr uint64_t kLatestEpoch = ~0ull;

/// Reading "at latest" must still satisfy `born <= E && E < died` checks
/// where a live entry's `died` is `kLatestEpoch`; clamp the read epoch one
/// below so strict comparisons against live sentinels work out.
inline constexpr uint64_t EffectiveReadEpoch(uint64_t epoch) {
  return epoch == kLatestEpoch ? kLatestEpoch - 1 : epoch;
}

/// Thread-local epoch context. Set by `ScopedEpoch` RAII around reader
/// queries (pinned epoch) and writer critical sections (the pending
/// epoch); everything below the database — buffer manager, object store —
/// reads it instead of threading an epoch parameter through every call.
class EpochContext {
 public:
  static uint64_t current() { return tl_epoch_; }
  static uint64_t Effective() { return EffectiveReadEpoch(tl_epoch_); }

 private:
  friend class ScopedEpoch;
  static thread_local uint64_t tl_epoch_;
};

/// RAII: sets the thread-local epoch, restoring the previous value on
/// destruction (scopes nest — a worker running under a pinned reader keeps
/// the pin).
class ScopedEpoch {
 public:
  explicit ScopedEpoch(uint64_t epoch) : saved_(EpochContext::tl_epoch_) {
    EpochContext::tl_epoch_ = epoch;
  }
  ~ScopedEpoch() { EpochContext::tl_epoch_ = saved_; }
  ScopedEpoch(const ScopedEpoch&) = delete;
  ScopedEpoch& operator=(const ScopedEpoch&) = delete;

 private:
  uint64_t saved_;
};

/// Registry of pinned reader epochs plus the published state they pin.
///
/// Pinning and publishing share one mutex so a reader can never observe a
/// state newer than the epoch it pinned (and vice versa): `PinCurrent`
/// atomically reads {published epoch, published state} and registers the
/// pin. The published state is an opaque shared_ptr — the database stores
/// its index-root snapshot there; the registry only needs its lifetime.
///
/// `ReclaimHorizon` is the epoch-based-reclamation bound: every version
/// stamped at or below it can be folded into base storage, because the
/// oldest pinned reader (or, with no readers, the published state itself)
/// already sees those versions' effects.
class EpochPinRegistry {
 public:
  struct Pin {
    uint64_t epoch = 0;
    std::shared_ptr<const void> state;
    std::chrono::steady_clock::time_point since;
  };

  Pin PinCurrent() {
    std::lock_guard<std::mutex> lock(mu_);
    Pin pin;
    pin.epoch = published_;
    pin.state = state_;
    pin.since = std::chrono::steady_clock::now();
    ++pins_[pin.epoch];
    return pin;
  }

  /// Releases `pin`; returns how long it was held, in microseconds (the
  /// `reader_pin_max_age` gauge).
  uint64_t Unpin(const Pin& pin) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = pins_.find(pin.epoch);
      if (it != pins_.end() && --it->second == 0) pins_.erase(it);
    }
    const auto held = std::chrono::steady_clock::now() - pin.since;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(held).count());
  }

  /// Publishes `epoch` with `state` as the new current snapshot. Epochs
  /// must not decrease; re-publishing the current epoch (a DDL refresh of
  /// the state payload under exclusive access) is allowed.
  void Publish(uint64_t epoch, std::shared_ptr<const void> state) {
    std::lock_guard<std::mutex> lock(mu_);
    published_ = epoch;
    state_ = std::move(state);
  }

  uint64_t published() const {
    std::lock_guard<std::mutex> lock(mu_);
    return published_;
  }

  std::shared_ptr<const void> state() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
  }

  /// Oldest pinned epoch, or the published epoch when nothing is pinned.
  uint64_t ReclaimHorizon() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (!pins_.empty()) return pins_.begin()->first;
    return published_;
  }

  size_t active_pins() const {
    std::lock_guard<std::mutex> lock(mu_);
    size_t n = 0;
    for (const auto& [epoch, count] : pins_) n += count;
    return n;
  }

 private:
  mutable std::mutex mu_;
  uint64_t published_ = 0;
  std::shared_ptr<const void> state_;
  std::map<uint64_t, uint32_t> pins_;  // epoch -> pin count (ordered).
};

/// Epoch-stamped copy-on-write page versions — the page half of MVCC,
/// owned by the `BufferManager`.
///
/// The base store (`Pager`/`FilePager`) always holds the *oldest retained*
/// version of a page. A writer's first `FetchForWrite` of a page in epoch
/// W copies the newest visible bytes into a private chain revision stamped
/// W and mutates that copy; the base bytes stay untouched, so concurrent
/// readers pinned at E < W keep resolving exactly what they saw at E.
/// Pages *allocated* in the open epoch ("born" pages) are written in place
/// — no published reader can reach them. Frees are deferred: a page freed
/// in epoch W stays live (old readers still walk it) until the reclaim
/// horizon passes W.
///
/// Reclamation (`ReclaimThrough`) folds every revision stamped at or below
/// the horizon into the base store — apply the newest such revision's
/// bytes, drop the rest — and performs the deferred frees. Ordering makes
/// this safe under concurrent readers: the revision stays resolvable in
/// the chain until *after* its bytes land in base, and any reader old
/// enough to need a pre-revision base is, by the horizon's definition, no
/// longer pinned.
///
/// Thread-safety: chains are sharded by page id under per-shard mutexes
/// (readers resolve concurrently with the writer's CoW and with
/// reclamation); the born/pending-free books are writer-side state under
/// their own mutex.
class PageVersionTable {
 public:
  PageVersionTable() = default;
  PageVersionTable(const PageVersionTable&) = delete;
  PageVersionTable& operator=(const PageVersionTable&) = delete;

  /// Fast-path check: true when no page has any chain revision (the
  /// steady state between write bursts, and always true for databases
  /// that never saw concurrent DML).
  bool empty() const {
    return revisions_.load(std::memory_order_acquire) == 0;
  }

  /// Newest revision of `id` stamped at or below `epoch`; null when the
  /// base store serves this reader.
  std::shared_ptr<Page> Resolve(PageId id, uint64_t epoch) const {
    const Shard& shard = ShardFor(id);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.chains.find(id);
    if (it == shard.chains.end()) return nullptr;
    std::shared_ptr<Page> best;
    for (const Rev& rev : it->second) {  // Ascending epoch order.
      if (rev.epoch > epoch) break;
      best = rev.page;
    }
    return best;
  }

  /// Writer CoW: the chain revision of `id` for the open epoch, creating
  /// it by copying `current` (the newest visible bytes — the caller
  /// resolves chain-vs-base) on first touch. `*created` reports whether a
  /// copy was made (the `pages_cow` counter).
  std::shared_ptr<Page> GetOrCreateWritable(PageId id, uint64_t epoch,
                                            const Page& current,
                                            bool* created) {
    Shard& shard = ShardFor(id);
    std::lock_guard<std::mutex> lock(shard.mu);
    std::vector<Rev>& chain = shard.chains[id];
    if (!chain.empty() && chain.back().epoch == epoch) {
      *created = false;
      return chain.back().page;
    }
    auto page = std::make_shared<Page>(current.size());
    std::memcpy(page->data(), current.data(), current.size());
    chain.push_back(Rev{epoch, page});
    revisions_.fetch_add(1, std::memory_order_acq_rel);
    *created = true;
    return page;
  }

  /// Newest revision regardless of epoch (the CoW copy source when the
  /// base is stale); null when the base is newest.
  std::shared_ptr<Page> Newest(PageId id) const {
    const Shard& shard = ShardFor(id);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.chains.find(id);
    if (it == shard.chains.end() || it->second.empty()) return nullptr;
    return it->second.back().page;
  }

  // ------------------------------------------------- open-epoch page books
  void MarkBorn(PageId id) {
    std::lock_guard<std::mutex> lock(aux_mu_);
    born_.insert(id);
  }
  bool IsBorn(PageId id) const {
    std::lock_guard<std::mutex> lock(aux_mu_);
    return born_.count(id) != 0;
  }
  /// Un-registers a born page (freed before it was ever published — the
  /// free can be immediate). True when `id` was born in the open epoch.
  bool EraseBorn(PageId id) {
    std::lock_guard<std::mutex> lock(aux_mu_);
    return born_.erase(id) != 0;
  }
  /// Publish: born pages become ordinary published pages (the next epoch
  /// must CoW them like any other).
  void ClearBorn() {
    std::lock_guard<std::mutex> lock(aux_mu_);
    born_.clear();
  }

  void DeferFree(PageId id, uint64_t death_epoch) {
    std::lock_guard<std::mutex> lock(aux_mu_);
    pending_free_.emplace_back(death_epoch, id);
  }

  /// Folds everything stamped at or below `horizon` into base storage.
  /// `apply(id, bytes)` writes a revision's bytes to the base store (the
  /// buffer manager brackets it with version bumps for the decoded-node
  /// cache's seqlock) and returns false to veto (e.g. a transient pool
  /// failure) — the revision then stays in its chain for the next pass.
  /// `free_page(id)` performs a deferred physical free. Caller must hold
  /// the writer serialization (single reclaimer).
  void ReclaimThrough(
      uint64_t horizon, const std::function<bool(PageId, const Page&)>& apply,
      const std::function<void(PageId)>& free_page) {
    // Deferred frees first: a freed page's chain is dropped, not applied.
    std::vector<PageId> freeable;
    {
      std::lock_guard<std::mutex> lock(aux_mu_);
      auto it = pending_free_.begin();
      while (it != pending_free_.end()) {
        if (it->first <= horizon) {
          freeable.push_back(it->second);
          it = pending_free_.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (const PageId id : freeable) {
      Shard& shard = ShardFor(id);
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.chains.find(id);
      if (it != shard.chains.end()) {
        revisions_.fetch_sub(it->second.size(), std::memory_order_acq_rel);
        shard.chains.erase(it);
      }
    }
    for (const PageId id : freeable) free_page(id);

    // Fold chains: apply the newest revision <= horizon while it is still
    // resolvable, then drop every revision <= horizon. Readers that need
    // those bytes keep finding the revision until the base already equals
    // it.
    for (Shard& shard : shards_) {
      std::vector<std::pair<PageId, std::shared_ptr<Page>>> to_apply;
      {
        std::lock_guard<std::mutex> lock(shard.mu);
        for (auto& [id, chain] : shard.chains) {
          std::shared_ptr<Page> newest;
          for (const Rev& rev : chain) {
            if (rev.epoch > horizon) break;
            newest = rev.page;
          }
          if (newest != nullptr) to_apply.emplace_back(id, newest);
        }
      }
      for (const auto& [id, page] : to_apply) {
        if (!apply(id, *page)) continue;
        std::lock_guard<std::mutex> lock(shard.mu);
        auto it = shard.chains.find(id);
        if (it == shard.chains.end()) continue;
        size_t dropped = 0;
        auto& chain = it->second;
        while (!chain.empty() && chain.front().epoch <= horizon) {
          chain.erase(chain.begin());
          ++dropped;
        }
        if (chain.empty()) shard.chains.erase(it);
        revisions_.fetch_sub(dropped, std::memory_order_acq_rel);
      }
    }
  }

  // ------------------------------------------------------------ inspection
  size_t revision_count() const {
    return revisions_.load(std::memory_order_acquire);
  }
  size_t pending_free_count() const {
    std::lock_guard<std::mutex> lock(aux_mu_);
    return pending_free_.size();
  }

 private:
  struct Rev {
    uint64_t epoch;
    std::shared_ptr<Page> page;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<PageId, std::vector<Rev>> chains;
  };
  static constexpr size_t kShards = 16;

  Shard& ShardFor(PageId id) { return shards_[id % kShards]; }
  const Shard& ShardFor(PageId id) const { return shards_[id % kShards]; }

  Shard shards_[kShards];
  std::atomic<size_t> revisions_{0};  ///< Total chain revisions (fast path).
  mutable std::mutex aux_mu_;
  std::unordered_set<PageId> born_;  ///< Allocated in the open epoch.
  std::vector<std::pair<uint64_t, PageId>> pending_free_;  // (death, id)
};

}  // namespace uindex

#endif  // UINDEX_STORAGE_MVCC_H_
