#ifndef UINDEX_STORAGE_IO_STATS_H_
#define UINDEX_STORAGE_IO_STATS_H_

#include <cstdint>
#include <string>

namespace uindex {

/// Counters for page traffic. The experiments in the paper report exactly
/// one number per query — pages (nodes) read — so this struct is the
/// measurement interface of the whole reproduction.
struct IoStats {
  uint64_t pages_read = 0;      ///< Distinct page fetches (per query epoch).
  uint64_t pages_written = 0;   ///< Page write-backs.
  uint64_t pages_allocated = 0; ///< Pages ever allocated.
  uint64_t cache_hits = 0;      ///< Fetches served without a counted read.

  IoStats operator-(const IoStats& base) const {
    IoStats d;
    d.pages_read = pages_read - base.pages_read;
    d.pages_written = pages_written - base.pages_written;
    d.pages_allocated = pages_allocated - base.pages_allocated;
    d.cache_hits = cache_hits - base.cache_hits;
    return d;
  }

  std::string ToString() const;
};

}  // namespace uindex

#endif  // UINDEX_STORAGE_IO_STATS_H_
