#ifndef UINDEX_STORAGE_IO_STATS_H_
#define UINDEX_STORAGE_IO_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace uindex {

/// Counters for page traffic. The experiments in the paper report exactly
/// one number per query — pages (nodes) read — so this struct is the
/// measurement interface of the whole reproduction.
///
/// Counters are 64-bit atomics: concurrent query sessions (src/exec/) bump
/// them from many threads, and 64 bits cannot overflow at any realistic
/// page rate. All operations use relaxed ordering — the counters are pure
/// statistics and never synchronize other memory. Copying (`QueryCost`
/// snapshots a baseline, `operator-` returns a delta) loads each counter
/// individually; a copy taken while other threads are counting is a
/// per-counter-consistent snapshot, not a global one.
///
/// Besides the paper's page counters, three CPU-side counters expose the
/// cost of the front-compressed node format: `nodes_parsed` counts full
/// `Node::Parse` decompressions on counted paths, `node_cache_hits` counts
/// fetches served from the decoded-node cache without re-parsing, and
/// `bytes_decoded` sums the decompressed bytes those parses materialized.
/// They never affect `pages_read` — the paper metric is unchanged whether
/// the decoded-node cache is on or off.
///
/// Three more counters track the asynchronous prefetch pipeline
/// (storage/prefetch.h): `prefetch_issued` counts background reads the
/// scheduler actually started, `prefetch_hits` counts demand fetches that
/// were served by a completed or in-flight prefetch (the demand read is
/// still charged to `pages_read`; only the simulated device wait is
/// skipped), and `prefetch_wasted` counts issued reads that never served a
/// demand fetch (superseded by the demand path, dropped at an epoch reset,
/// or invalidated by a page free). Like the node-cache counters they never
/// move `pages_read`: prefetch on, off (`UINDEX_PREFETCH=off`), or
/// thrashing charges the identical demand totals.
struct IoStats {
  std::atomic<uint64_t> pages_read{0};     ///< Distinct page fetches (per query epoch).
  std::atomic<uint64_t> pages_written{0};  ///< Page write-backs.
  std::atomic<uint64_t> pages_allocated{0};///< Pages ever allocated.
  std::atomic<uint64_t> cache_hits{0};     ///< Fetches served without a counted read.
  std::atomic<uint64_t> nodes_parsed{0};   ///< Full node decompressions (Node::Parse).
  std::atomic<uint64_t> node_cache_hits{0};///< Fetches served by the decoded-node cache.
  std::atomic<uint64_t> bytes_decoded{0};  ///< Decompressed bytes materialized by parses.
  std::atomic<uint64_t> prefetch_issued{0};///< Background reads started.
  std::atomic<uint64_t> prefetch_hits{0};  ///< Demand reads served by a prefetch.
  std::atomic<uint64_t> prefetch_wasted{0};///< Issued reads that served no demand fetch.
  // Physical buffer-pool traffic (file backend only; always 0 over the
  // in-memory store). Deliberately separate from the logical counters
  // above: pool_hits/pool_misses split frame pins by residency, evictions
  // counts victims shed from the bounded cache (both the pool's and the
  // logical-LRU mode's), writebacks counts dirty frames written to the
  // data file. None of them ever move `pages_read`.
  std::atomic<uint64_t> pool_hits{0};      ///< Frame pins served in place.
  std::atomic<uint64_t> pool_misses{0};    ///< Frame pins that read the store.
  std::atomic<uint64_t> evictions{0};      ///< Frames/pages evicted from a bounded cache.
  std::atomic<uint64_t> writebacks{0};     ///< Dirty frames written back to the store.
  // MVCC + group commit (storage/mvcc.h, db/commit_queue.h). The first
  // four are plain monotone counters; `reader_pin_max_age_us` is a
  // high-watermark gauge (CAS-max, microseconds a reader snapshot pin was
  // held) — `operator-` carries the current watermark through rather than
  // subtracting, so per-query deltas report the max observed age.
  std::atomic<uint64_t> epochs_published{0};  ///< Commit epochs made visible.
  std::atomic<uint64_t> pages_cow{0};         ///< Pages copied-on-write into a delta.
  std::atomic<uint64_t> commit_batches{0};    ///< Group-commit leader syncs.
  std::atomic<uint64_t> commit_records{0};    ///< Journal records those syncs covered.
  std::atomic<uint64_t> reader_pin_max_age_us{0};  ///< Longest-held reader pin.

  /// Raises the pin-age high watermark to `age_us` if it exceeds it.
  void RecordPinAge(uint64_t age_us) {
    uint64_t seen = reader_pin_max_age_us.load(std::memory_order_relaxed);
    while (age_us > seen &&
           !reader_pin_max_age_us.compare_exchange_weak(
               seen, age_us, std::memory_order_relaxed)) {
    }
  }

  IoStats() = default;
  IoStats(const IoStats& other) { *this = other; }
  IoStats& operator=(const IoStats& other) {
    pages_read.store(other.pages_read.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    pages_written.store(other.pages_written.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    pages_allocated.store(
        other.pages_allocated.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    cache_hits.store(other.cache_hits.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    nodes_parsed.store(other.nodes_parsed.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    node_cache_hits.store(
        other.node_cache_hits.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    bytes_decoded.store(other.bytes_decoded.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    prefetch_issued.store(
        other.prefetch_issued.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    prefetch_hits.store(other.prefetch_hits.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    prefetch_wasted.store(
        other.prefetch_wasted.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    pool_hits.store(other.pool_hits.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    pool_misses.store(other.pool_misses.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    evictions.store(other.evictions.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    writebacks.store(other.writebacks.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    epochs_published.store(
        other.epochs_published.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    pages_cow.store(other.pages_cow.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    commit_batches.store(
        other.commit_batches.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    commit_records.store(
        other.commit_records.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    reader_pin_max_age_us.store(
        other.reader_pin_max_age_us.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    return *this;
  }

  /// Zeroes every counter with an individual atomic store. Each store is
  /// atomic, but the set of stores is not one transaction: counts arriving
  /// from concurrent threads mid-reset land in whichever counters were not
  /// yet cleared. Callers that need an exact zero baseline must exclude
  /// concurrent counting externally (e.g. the database latch).
  void Reset() {
    pages_read.store(0, std::memory_order_relaxed);
    pages_written.store(0, std::memory_order_relaxed);
    pages_allocated.store(0, std::memory_order_relaxed);
    cache_hits.store(0, std::memory_order_relaxed);
    nodes_parsed.store(0, std::memory_order_relaxed);
    node_cache_hits.store(0, std::memory_order_relaxed);
    bytes_decoded.store(0, std::memory_order_relaxed);
    prefetch_issued.store(0, std::memory_order_relaxed);
    prefetch_hits.store(0, std::memory_order_relaxed);
    prefetch_wasted.store(0, std::memory_order_relaxed);
    pool_hits.store(0, std::memory_order_relaxed);
    pool_misses.store(0, std::memory_order_relaxed);
    evictions.store(0, std::memory_order_relaxed);
    writebacks.store(0, std::memory_order_relaxed);
    epochs_published.store(0, std::memory_order_relaxed);
    pages_cow.store(0, std::memory_order_relaxed);
    commit_batches.store(0, std::memory_order_relaxed);
    commit_records.store(0, std::memory_order_relaxed);
    reader_pin_max_age_us.store(0, std::memory_order_relaxed);
  }

  IoStats operator-(const IoStats& base) const {
    IoStats d;
    d.pages_read = pages_read - base.pages_read;
    d.pages_written = pages_written - base.pages_written;
    d.pages_allocated = pages_allocated - base.pages_allocated;
    d.cache_hits = cache_hits - base.cache_hits;
    d.nodes_parsed = nodes_parsed - base.nodes_parsed;
    d.node_cache_hits = node_cache_hits - base.node_cache_hits;
    d.bytes_decoded = bytes_decoded - base.bytes_decoded;
    d.prefetch_issued = prefetch_issued - base.prefetch_issued;
    d.prefetch_hits = prefetch_hits - base.prefetch_hits;
    d.prefetch_wasted = prefetch_wasted - base.prefetch_wasted;
    d.pool_hits = pool_hits - base.pool_hits;
    d.pool_misses = pool_misses - base.pool_misses;
    d.evictions = evictions - base.evictions;
    d.writebacks = writebacks - base.writebacks;
    d.epochs_published = epochs_published - base.epochs_published;
    d.pages_cow = pages_cow - base.pages_cow;
    d.commit_batches = commit_batches - base.commit_batches;
    d.commit_records = commit_records - base.commit_records;
    // Gauge: carry the current high watermark, not a difference.
    d.reader_pin_max_age_us = reader_pin_max_age_us.load();
    return d;
  }

  std::string ToString() const;
};

}  // namespace uindex

#endif  // UINDEX_STORAGE_IO_STATS_H_
