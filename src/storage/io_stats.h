#ifndef UINDEX_STORAGE_IO_STATS_H_
#define UINDEX_STORAGE_IO_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace uindex {

/// Counters for page traffic. The experiments in the paper report exactly
/// one number per query — pages (nodes) read — so this struct is the
/// measurement interface of the whole reproduction.
///
/// Counters are 64-bit atomics: concurrent query sessions (src/exec/) bump
/// them from many threads, and 64 bits cannot overflow at any realistic
/// page rate. All operations use relaxed ordering — the counters are pure
/// statistics and never synchronize other memory. Copying (`QueryCost`
/// snapshots a baseline, `operator-` returns a delta) loads each counter
/// individually; a copy taken while other threads are counting is a
/// per-counter-consistent snapshot, not a global one.
struct IoStats {
  std::atomic<uint64_t> pages_read{0};     ///< Distinct page fetches (per query epoch).
  std::atomic<uint64_t> pages_written{0};  ///< Page write-backs.
  std::atomic<uint64_t> pages_allocated{0};///< Pages ever allocated.
  std::atomic<uint64_t> cache_hits{0};     ///< Fetches served without a counted read.

  IoStats() = default;
  IoStats(const IoStats& other) { *this = other; }
  IoStats& operator=(const IoStats& other) {
    pages_read.store(other.pages_read.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    pages_written.store(other.pages_written.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    pages_allocated.store(
        other.pages_allocated.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    cache_hits.store(other.cache_hits.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    return *this;
  }

  IoStats operator-(const IoStats& base) const {
    IoStats d;
    d.pages_read = pages_read - base.pages_read;
    d.pages_written = pages_written - base.pages_written;
    d.pages_allocated = pages_allocated - base.pages_allocated;
    d.cache_hits = cache_hits - base.cache_hits;
    return d;
  }

  std::string ToString() const;
};

}  // namespace uindex

#endif  // UINDEX_STORAGE_IO_STATS_H_
