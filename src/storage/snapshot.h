#ifndef UINDEX_STORAGE_SNAPSHOT_H_
#define UINDEX_STORAGE_SNAPSHOT_H_

#include <functional>
#include <memory>
#include <string>

#include "storage/pager.h"
#include "util/status.h"

namespace uindex {

class Env;

/// Durable snapshots of a page store's page file.
///
/// The experiments run in memory (page reads are the metric, see
/// DESIGN.md), but a library users adopt needs its indexes to survive the
/// process. A snapshot writes every live page, CRC-32 protected, plus an
/// opaque metadata blob where callers persist their structure roots (e.g.
/// serialized B-tree root ids, the index specs).
///
/// Crash atomicity (see DESIGN.md "Durability & crash recovery"): `Save`
/// writes `path + ".tmp"`, syncs the file, renames it over `path`, and
/// syncs the parent directory. A crash at any point leaves either the old
/// snapshot or the new one — never a torn file reachable at `path` —
/// because the rename is the only step that changes what `Load(path)`
/// sees, and it only happens after the new bytes are on stable media.
///
/// The snapshot is backend-agnostic both ways: `Save` reads pages through
/// `PageStore::ReadPage` (the caller must flush any dirty buffer-pool
/// frames first so the store serves current bytes — `Database::SaveLocked`
/// does), and `Load` restores into whatever store a `StoreFactory`
/// produces, so a snapshot taken on the in-memory backend opens on the
/// file backend and vice versa — the bytes at `path` are identical.
///
/// File layout (all little-endian):
///   "UIDXSNAP" magic ∥ version u32 ∥ page_size u32 ∥ max_page_id u32
///   ∥ live_count u64 ∥ meta_len u32 ∥ meta crc u32 ∥ meta bytes
///   then per live page: page_id u32 ∥ crc u32 ∥ page bytes
class PagerSnapshot {
 public:
  /// Writes `store`'s live pages and `metadata` durably to `path` via
  /// `env` (null = `Env::Default()`). If `rename_attempted` is non-null it
  /// is set to true once the commit rename has been issued: on failure
  /// after that point the caller must assume the new snapshot MAY be the
  /// one on disk (the fail-stop signal `Database::Checkpoint` uses).
  static Status Save(Env* env, const PageStore& store,
                     const std::string& metadata, const std::string& path,
                     bool* rename_attempted = nullptr);

  struct Loaded {
    std::unique_ptr<PageStore> pager;
    std::string metadata;
  };

  /// Builds the empty store the snapshot's pages restore into, given the
  /// snapshot's page size. `Load` follows up with `BeginRestore` and one
  /// `RestorePage` per live page.
  using StoreFactory =
      std::function<Result<std::unique_ptr<PageStore>>(uint32_t page_size)>;

  /// Restores into an in-memory `Pager`; fails with Corruption on any
  /// checksum/framing mismatch.
  static Result<Loaded> Load(Env* env, const std::string& path);

  /// Restores into the store `factory` builds (e.g. a `FilePager` for the
  /// file backend).
  static Result<Loaded> Load(Env* env, const std::string& path,
                             const StoreFactory& factory);
};

}  // namespace uindex

#endif  // UINDEX_STORAGE_SNAPSHOT_H_
