#ifndef UINDEX_STORAGE_PREFETCH_H_
#define UINDEX_STORAGE_PREFETCH_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "exec/thread_pool.h"
#include "storage/page.h"

namespace uindex {

class BufferManager;

/// Asynchronous page readahead over a background I/O pool.
///
/// The paper's cost model is page reads, and every read path in this repo
/// used to be a synchronous, demand-driven round trip: a forward scan
/// stalled on every leaf even though the next leaves are fully predictable,
/// and Parscan (Algorithm 1) stalled on every child even though it computes
/// the whole surviving child set of an internal node *before* descending.
/// This scheduler hides that latency the way classic storage engines do
/// (iterator readahead, async buffer-pool I/O): producers hand it batches
/// of page ids they are about to need, workers on an `exec::ThreadPool`
/// perform the reads off the caller's thread, and the demand fetch that
/// eventually consumes the page *joins* the background read instead of
/// re-issuing it.
///
/// ## The paper metric is preserved bit-for-bit
///
/// A background read never touches `pages_read`: it does not enter the
/// buffer manager's residency set and charges nothing. The demand fetch
/// that consumes a prefetched page goes through `BufferManager::Fetch`
/// unchanged — first touch per epoch is charged exactly as before — and
/// only then asks this scheduler whether the device wait was already paid
/// in the background (`JoinDemand`). So `pages_read` is byte-identical with
/// prefetch on, off (`UINDEX_PREFETCH=off`), or thrashing; what moves is
/// wall-clock time under real or simulated device latency, plus the three
/// dedicated counters (`prefetch_issued` / `prefetch_hits` /
/// `prefetch_wasted`).
///
/// ## Demand-join protocol
///
/// Each prefetched id has one in-flight record. `JoinDemand` (called by
/// `BufferManager::Fetch` on every *charged* read) resolves it:
///   * read complete ("staged") — consume it: `prefetch_hits`, skip the
///     demand-side device wait;
///   * read running — wait for it to finish, then consume it (the wait is
///     the remaining fraction of the device latency, not a fresh read);
///   * read queued but not yet started — *steal* it: the demand fetch
///     performs its own read (no cross-dependency on pool scheduling, so a
///     saturated or shared pool can never deadlock a demand fetch) and the
///     orphaned background task is dropped as `prefetch_wasted`.
///
/// `prefetch_wasted` also absorbs staged pages nobody consumed before the
/// next epoch reset (`BeginQuery`/`SetCapacity`) and pages freed while a
/// prefetch was pending — so after a `Drain` + epoch reset,
/// `prefetch_issued == prefetch_hits + prefetch_wasted`.
///
/// ## Warming
///
/// A batch may carry a `WarmFn` (typically `BTree::WarmNode`): after the
/// read, the worker decodes the page into the decoded-node cache under the
/// usual version protocol, so the demand path gets both the page *and* the
/// parse for free. Warming reads page bytes, which makes the scheduler a
/// reader under the repo's concurrency contract:
///
/// ## Concurrency contract
///
/// All methods are thread-safe. However, background reads are *readers of
/// page bytes*, and the `BufferManager`'s rule that mutations require
/// external exclusion against readers extends to them: a writer must
/// `Drain()` the scheduler after acquiring its exclusive latch and before
/// touching pages (`Database` does this in every DDL/DML entry point, and
/// its teardown drains before the buffer manager and pager are destroyed —
/// see db/database.h). The pool must outlive the scheduler; the destructor
/// drains so no task outlives `this`.
///
/// Deadlock-freedom: prefetch tasks never call `BufferManager::Fetch` (a
/// background read that charged the metric would break the invariant
/// above), so they never block on other prefetches; and the steal rule
/// means a demand fetch never waits on a task that has not been scheduled
/// onto a worker yet. The scheduler can therefore share its pool with
/// compute tasks, though a dedicated small I/O pool is the intended shape.
class PrefetchScheduler {
 public:
  /// Decodes a freshly read page into a derived-value cache; runs on a pool
  /// worker after the (simulated) device read. Must not touch counted
  /// fetch paths and must tolerate a concurrently freed/recycled id.
  using WarmFn = std::function<void(PageId)>;

  /// `buffers` and `pool` are borrowed and must outlive the scheduler.
  PrefetchScheduler(BufferManager* buffers, exec::ThreadPool* pool);

  /// Drains outstanding reads and detaches from the buffer manager if it
  /// still points here, so no background task touches freed structures.
  ~PrefetchScheduler();

  PrefetchScheduler(const PrefetchScheduler&) = delete;
  PrefetchScheduler& operator=(const PrefetchScheduler&) = delete;

  /// False when the UINDEX_PREFETCH environment variable is "off", "0", or
  /// "false" — the global escape hatch that keeps every fetch a synchronous
  /// demand read. Read once per process. (Mirrors NodeCache::EnvEnabled:
  /// creation sites check it; a directly constructed scheduler is always
  /// live so tests can exercise it under any environment.)
  static bool EnvEnabled();

  /// Queues background reads for every id in `ids` that is not already
  /// resident in the buffer manager's current epoch, in flight, or staged.
  /// Returns how many reads were actually issued. Never blocks on I/O.
  size_t Prefetch(const std::vector<PageId>& ids, WarmFn warm = nullptr);
  size_t Prefetch(const PageId* ids, size_t count, WarmFn warm = nullptr);

  /// Demand-side hook, called by `BufferManager::Fetch` for every read it
  /// charged. Returns true when the read was served by a completed or
  /// running prefetch (the caller skips its own device wait); false when
  /// there was no usable prefetch (including the steal case above).
  bool JoinDemand(PageId id);

  /// True when `id`'s background read has completed and not been consumed.
  /// Does not consume the entry; used by readahead producers that want the
  /// decoded bytes without issuing a counted fetch (BTree::TryGetWarmNode).
  bool IsStaged(PageId id);

  /// Epoch boundary (BufferManager::BeginQuery / SetCapacity): staged pages
  /// nobody consumed become `prefetch_wasted`; reads still in flight are
  /// marked stale and will be wasted on completion unless a demand fetch
  /// joins them first.
  void OnEpochReset();

  /// Page freed (BufferManager::Free): a staged or in-flight read of `id`
  /// can never be served — the id may be recycled for unrelated content —
  /// so it is dropped as wasted and later `JoinDemand(id)` misses.
  void Invalidate(PageId id);

  /// Blocks until every queued or running read has finished. Writers call
  /// this under their exclusive latch before mutating pages.
  void Drain();

  /// Queued-or-running background reads (approximate under concurrency;
  /// exact after Drain, where it is 0).
  size_t pending() const;

  /// Staged (completed, unconsumed) reads.
  size_t staged() const;

 private:
  // One prefetched page id, from Schedule to consumption/waste.
  struct Flight {
    uint64_t ticket = 0;      // Identity: ties a pool task to its flight,
                              // so a task whose flight was stolen/erased
                              // cannot act on a later flight for the same
                              // (possibly recycled) page id.
    uint64_t generation = 0;  // Epoch it was issued in.
    bool started = false;     // A worker is performing the read.
    bool done = false;        // Read complete; page is staged.
    bool canceled = false;    // Freed/stolen; must not be served.
    int waiters = 0;          // Demand fetches blocked in JoinDemand.
  };

  void RunRead(PageId id, uint64_t ticket, const WarmFn& warm);

  BufferManager* buffers_;
  exec::ThreadPool* pool_;

  mutable std::mutex mu_;
  std::condition_variable cv_;  // Signals read completion and drain.
  std::unordered_map<PageId, Flight> flights_;
  uint64_t last_ticket_ = 0;
  uint64_t generation_ = 0;
  size_t pending_ = 0;  // Scheduled tasks that have not finished RunRead.
};

}  // namespace uindex

#endif  // UINDEX_STORAGE_PREFETCH_H_
