#include "storage/pager.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace uindex {

Pager::Pager(uint32_t page_size) : page_size_(page_size) {
  assert(page_size_ >= 64 && "page size too small for any node header");
}

PageId Pager::Allocate() {
  ++live_count_;
  if (!free_list_.empty()) {
    PageId id = free_list_.back();
    free_list_.pop_back();
    pages_[id - 1] = std::make_unique<Page>(page_size_);
    return id;
  }
  pages_.push_back(std::make_unique<Page>(page_size_));
  return static_cast<PageId>(pages_.size());
}

void Pager::Free(PageId id) {
  assert(IsLive(id));
  pages_[id - 1].reset();
  free_list_.push_back(id);
  --live_count_;
}

Page* Pager::GetPage(PageId id) {
  if (id == kInvalidPageId || id > pages_.size()) return nullptr;
  return pages_[id - 1].get();
}

const Page* Pager::GetPage(PageId id) const {
  if (id == kInvalidPageId || id > pages_.size()) return nullptr;
  return pages_[id - 1].get();
}

Status Pager::ReadPage(PageId id, char* out) const {
  const Page* page = GetPage(id);
  if (page == nullptr) {
    return Status::InvalidArgument("read of dead page " +
                                   std::to_string(id));
  }
  std::memcpy(out, page->data(), page->size());
  return Status::OK();
}

Status Pager::WritePage(PageId id, const char* bytes) {
  Page* page = GetPage(id);
  if (page == nullptr) {
    return Status::InvalidArgument("write of dead page " +
                                   std::to_string(id));
  }
  std::memcpy(page->data(), bytes, page->size());
  return Status::OK();
}

std::unique_ptr<Pager> Pager::CreateForRestore(uint32_t page_size,
                                               PageId max_page_id) {
  auto pager = std::make_unique<Pager>(page_size);
  pager->BeginRestore(max_page_id);
  return pager;
}

Status Pager::BeginRestore(PageId max_page_id) {
  pages_.clear();
  free_list_.clear();
  live_count_ = 0;
  pages_.resize(max_page_id);
  // Free slots in descending order so future Allocate() reuses low ids
  // first (cosmetic; any order is correct).
  for (PageId id = max_page_id; id >= 1; --id) {
    free_list_.push_back(id);
  }
  return Status::OK();
}

Status Pager::RestorePage(PageId id, const Slice& bytes) {
  if (id == kInvalidPageId || id > pages_.size()) {
    return Status::InvalidArgument("restore id out of range");
  }
  if (pages_[id - 1] != nullptr) {
    return Status::AlreadyExists("page restored twice");
  }
  if (bytes.size() != page_size_) {
    return Status::InvalidArgument("restore size mismatch");
  }
  auto page = std::make_unique<Page>(page_size_);
  std::memcpy(page->data(), bytes.data(), bytes.size());
  pages_[id - 1] = std::move(page);
  ++live_count_;
  free_list_.erase(std::remove(free_list_.begin(), free_list_.end(), id),
                   free_list_.end());
  return Status::OK();
}

bool Pager::IsLive(PageId id) const {
  return id != kInvalidPageId && id <= pages_.size() &&
         pages_[id - 1] != nullptr;
}

}  // namespace uindex
