#include "storage/overflow.h"

#include <vector>

#include "util/coding.h"

namespace uindex {

Result<PageId> OverflowChain::Write(BufferManager* buffers,
                                    const Slice& data) {
  if (data.empty()) return kInvalidPageId;
  const uint32_t payload = PayloadPerPage(*buffers);

  // Allocate all links first so each page can point at its successor.
  const size_t links = (data.size() + payload - 1) / payload;
  std::vector<PageId> ids(links);
  for (size_t i = 0; i < links; ++i) ids[i] = buffers->Allocate();

  size_t offset = 0;
  for (size_t i = 0; i < links; ++i) {
    PageRef page = buffers->FetchForWrite(ids[i]);
    if (page == nullptr) return Status::Corruption("lost overflow page");
    const size_t chunk =
        std::min<size_t>(payload, data.size() - offset);
    EncodeFixed32(page->data(), i + 1 < links ? ids[i + 1] : kInvalidPageId);
    EncodeFixed16(page->data() + 4, static_cast<uint16_t>(chunk));
    std::memcpy(page->data() + 6, data.data() + offset, chunk);
    offset += chunk;
  }
  return ids[0];
}

Result<std::string> OverflowChain::Read(BufferManager* buffers, PageId head) {
  std::string out;
  PageId id = head;
  while (id != kInvalidPageId) {
    PageRef page = buffers->Fetch(id);
    if (page == nullptr) return Status::Corruption("broken overflow chain");
    const PageId next = DecodeFixed32(page->data());
    const uint16_t len = DecodeFixed16(page->data() + 4);
    out.append(page->data() + 6, len);
    id = next;
  }
  return out;
}

Status OverflowChain::Free(BufferManager* buffers, PageId head) {
  PageId id = head;
  while (id != kInvalidPageId) {
    PageId next = kInvalidPageId;
    {
      // Decode the link, then drop the pin BEFORE freeing: Free discards
      // the pool frame, and a pinned frame would linger as a zombie.
      PageRef page = buffers->Fetch(id);
      if (page == nullptr) {
        return Status::Corruption("broken overflow chain");
      }
      next = DecodeFixed32(page->data());
    }
    buffers->Free(id);
    id = next;
  }
  return Status::OK();
}

}  // namespace uindex
