#include "storage/snapshot.h"

#include <cstring>
#include <vector>

#include "storage/env/env.h"
#include "util/coding.h"
#include "util/crc32.h"

namespace uindex {

namespace {

constexpr char kMagic[8] = {'U', 'I', 'D', 'X', 'S', 'N', 'A', 'P'};
constexpr uint32_t kVersion = 1;

// Exact-length read; a short count is a truncated snapshot.
Status ReadExact(SequentialFile* file, char* out, size_t n,
                 const char* what) {
  Result<size_t> got = file->Read(n, out);
  if (!got.ok()) return got.status();
  if (got.value() != n) {
    return Status::Corruption(std::string("truncated snapshot ") + what);
  }
  return Status::OK();
}

// Writes header + metadata + every live page to `file` and syncs it. One
// Append per section / per page, so the fault-injection harness gets one
// crash point for each.
Status WriteBody(const PageStore& store, const std::string& metadata,
                 WritableFile* file) {
  std::string header;
  header.append(kMagic, sizeof(kMagic));
  PutFixed32(&header, kVersion);
  PutFixed32(&header, store.page_size());
  PutFixed32(&header, store.max_page_id());
  PutFixed64(&header, store.live_page_count());
  PutFixed32(&header, static_cast<uint32_t>(metadata.size()));
  PutFixed32(&header, Crc32(Slice(metadata)));
  UINDEX_RETURN_IF_ERROR(file->Append(Slice(header)));
  UINDEX_RETURN_IF_ERROR(file->Append(Slice(metadata)));

  std::vector<char> buffer(store.page_size());
  for (PageId id = 1; id <= store.max_page_id(); ++id) {
    if (!store.IsLive(id)) continue;
    // ReadPage, not DirectPage: on the file backend the page bytes live in
    // the data file (the caller flushed dirty frames before calling Save).
    UINDEX_RETURN_IF_ERROR(store.ReadPage(id, buffer.data()));
    std::string frame;
    frame.reserve(8 + buffer.size());
    PutFixed32(&frame, id);
    PutFixed32(&frame, Crc32(Slice(buffer.data(), buffer.size())));
    frame.append(buffer.data(), buffer.size());
    UINDEX_RETURN_IF_ERROR(file->Append(Slice(frame)));
  }
  UINDEX_RETURN_IF_ERROR(file->Flush());
  // The new snapshot's bytes must be on stable media BEFORE the rename
  // below can make them reachable: a rename that survives a crash while
  // the content did not would serve a torn file as the database.
  UINDEX_RETURN_IF_ERROR(file->Sync());
  return file->Close();
}

}  // namespace

Status PagerSnapshot::Save(Env* env, const PageStore& store,
                           const std::string& metadata,
                           const std::string& path,
                           bool* rename_attempted) {
  if (env == nullptr) env = Env::Default();
  if (rename_attempted != nullptr) *rename_attempted = false;

  const std::string tmp = path + ".tmp";
  Result<std::unique_ptr<WritableFile>> file =
      env->NewWritableFile(tmp, Env::WriteMode::kTruncate);
  if (!file.ok()) return file.status();
  Status st = WriteBody(store, metadata, file.value().get());
  if (!st.ok()) {
    env->RemoveFile(tmp);  // Best effort; a leftover .tmp is harmless.
    return st;
  }

  // Commit point: after this rename, `Load(path)` sees the new snapshot.
  if (rename_attempted != nullptr) *rename_attempted = true;
  UINDEX_RETURN_IF_ERROR(env->RenameFile(tmp, path));
  // The rename itself is directory metadata: without this sync a crash can
  // roll `path` back to the old snapshot. That is still *consistent*
  // (old-or-new), but callers sequencing against the snapshot — the
  // journal rotation in Database::Checkpoint — need it durable now.
  return env->SyncDir(DirnameOf(path));
}

Result<PagerSnapshot::Loaded> PagerSnapshot::Load(Env* env,
                                                  const std::string& path) {
  return Load(env, path, [](uint32_t page_size) {
    return Result<std::unique_ptr<PageStore>>(
        std::make_unique<Pager>(page_size));
  });
}

Result<PagerSnapshot::Loaded> PagerSnapshot::Load(
    Env* env, const std::string& path, const StoreFactory& factory) {
  if (env == nullptr) env = Env::Default();
  Result<std::unique_ptr<SequentialFile>> opened =
      env->NewSequentialFile(path);
  if (!opened.ok()) return opened.status();
  SequentialFile* file = opened.value().get();

  char header[8 + 4 + 4 + 4 + 8 + 4 + 4];
  UINDEX_RETURN_IF_ERROR(ReadExact(file, header, sizeof(header), "header"));
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad snapshot magic");
  }
  const uint32_t version = DecodeFixed32(header + 8);
  if (version != kVersion) {
    return Status::NotSupported("snapshot version " +
                                std::to_string(version));
  }
  const uint32_t page_size = DecodeFixed32(header + 12);
  const PageId max_page_id = DecodeFixed32(header + 16);
  const uint64_t live_count = DecodeFixed64(header + 20);
  const uint32_t meta_len = DecodeFixed32(header + 28);
  const uint32_t meta_crc = DecodeFixed32(header + 32);

  Loaded out;
  out.metadata.resize(meta_len);
  if (meta_len > 0) {
    UINDEX_RETURN_IF_ERROR(
        ReadExact(file, out.metadata.data(), meta_len, "metadata"));
  }
  if (Crc32(Slice(out.metadata)) != meta_crc) {
    return Status::Corruption("snapshot metadata checksum mismatch");
  }

  Result<std::unique_ptr<PageStore>> store = factory(page_size);
  if (!store.ok()) return store.status();
  out.pager = std::move(store).value();
  if (out.pager->page_size() != page_size) {
    return Status::InvalidArgument("store factory page size mismatch");
  }
  UINDEX_RETURN_IF_ERROR(out.pager->BeginRestore(max_page_id));
  std::vector<char> buffer(page_size);
  for (uint64_t i = 0; i < live_count; ++i) {
    char frame[8];
    UINDEX_RETURN_IF_ERROR(
        ReadExact(file, frame, sizeof(frame), "page frame"));
    const PageId id = DecodeFixed32(frame);
    const uint32_t crc = DecodeFixed32(frame + 4);
    UINDEX_RETURN_IF_ERROR(
        ReadExact(file, buffer.data(), page_size, "page body"));
    if (Crc32(Slice(buffer.data(), page_size)) != crc) {
      return Status::Corruption("snapshot page " + std::to_string(id) +
                                " checksum mismatch");
    }
    UINDEX_RETURN_IF_ERROR(
        out.pager->RestorePage(id, Slice(buffer.data(), page_size)));
  }
  return out;
}

}  // namespace uindex
