#include "storage/snapshot.h"

#include <cstdio>
#include <vector>

#include "util/coding.h"
#include "util/crc32.h"

namespace uindex {

namespace {

constexpr char kMagic[8] = {'U', 'I', 'D', 'X', 'S', 'N', 'A', 'P'};
constexpr uint32_t kVersion = 1;

// RAII stdio handle (the library does not use exceptions).
class File {
 public:
  File(const std::string& path, const char* mode)
      : file_(std::fopen(path.c_str(), mode)) {}
  ~File() {
    if (file_ != nullptr) std::fclose(file_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  bool ok() const { return file_ != nullptr; }
  bool Write(const void* data, size_t n) {
    return std::fwrite(data, 1, n, file_) == n;
  }
  bool Read(void* data, size_t n) {
    return std::fread(data, 1, n, file_) == n;
  }
  bool Flush() { return std::fflush(file_) == 0; }

 private:
  std::FILE* file_;
};

}  // namespace

Status PagerSnapshot::Save(const Pager& pager, const std::string& metadata,
                           const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    File file(tmp, "wb");
    if (!file.ok()) return Status::InvalidArgument("cannot open " + tmp);

    std::string header;
    header.append(kMagic, sizeof(kMagic));
    PutFixed32(&header, kVersion);
    PutFixed32(&header, pager.page_size());
    PutFixed32(&header, pager.max_page_id());
    PutFixed64(&header, pager.live_page_count());
    PutFixed32(&header, static_cast<uint32_t>(metadata.size()));
    PutFixed32(&header, Crc32(Slice(metadata)));
    if (!file.Write(header.data(), header.size()) ||
        !file.Write(metadata.data(), metadata.size())) {
      return Status::ResourceExhausted("short write to " + tmp);
    }

    for (PageId id = 1; id <= pager.max_page_id(); ++id) {
      const Page* page = pager.GetPage(id);
      if (page == nullptr) continue;
      std::string frame;
      PutFixed32(&frame, id);
      PutFixed32(&frame, Crc32(Slice(page->data(), page->size())));
      if (!file.Write(frame.data(), frame.size()) ||
          !file.Write(page->data(), page->size())) {
        return Status::ResourceExhausted("short write to " + tmp);
      }
    }
    if (!file.Flush()) return Status::ResourceExhausted("flush failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::ResourceExhausted("rename to " + path + " failed");
  }
  return Status::OK();
}

Result<PagerSnapshot::Loaded> PagerSnapshot::Load(const std::string& path) {
  File file(path, "rb");
  if (!file.ok()) return Status::NotFound("cannot open " + path);

  char header[8 + 4 + 4 + 4 + 8 + 4 + 4];
  if (!file.Read(header, sizeof(header))) {
    return Status::Corruption("truncated snapshot header");
  }
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad snapshot magic");
  }
  const uint32_t version = DecodeFixed32(header + 8);
  if (version != kVersion) {
    return Status::NotSupported("snapshot version " +
                                std::to_string(version));
  }
  const uint32_t page_size = DecodeFixed32(header + 12);
  const PageId max_page_id = DecodeFixed32(header + 16);
  const uint64_t live_count = DecodeFixed64(header + 20);
  const uint32_t meta_len = DecodeFixed32(header + 28);
  const uint32_t meta_crc = DecodeFixed32(header + 32);

  Loaded out;
  out.metadata.resize(meta_len);
  if (meta_len > 0 && !file.Read(out.metadata.data(), meta_len)) {
    return Status::Corruption("truncated snapshot metadata");
  }
  if (Crc32(Slice(out.metadata)) != meta_crc) {
    return Status::Corruption("snapshot metadata checksum mismatch");
  }

  out.pager = Pager::CreateForRestore(page_size, max_page_id);
  std::vector<char> buffer(page_size);
  for (uint64_t i = 0; i < live_count; ++i) {
    char frame[8];
    if (!file.Read(frame, sizeof(frame))) {
      return Status::Corruption("truncated snapshot page frame");
    }
    const PageId id = DecodeFixed32(frame);
    const uint32_t crc = DecodeFixed32(frame + 4);
    if (!file.Read(buffer.data(), page_size)) {
      return Status::Corruption("truncated snapshot page body");
    }
    if (Crc32(Slice(buffer.data(), page_size)) != crc) {
      return Status::Corruption("snapshot page " + std::to_string(id) +
                                " checksum mismatch");
    }
    UINDEX_RETURN_IF_ERROR(
        out.pager->RestorePage(id, Slice(buffer.data(), page_size)));
  }
  return out;
}

}  // namespace uindex
