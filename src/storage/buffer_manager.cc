#include "storage/buffer_manager.h"

#include <cstdlib>

#include "storage/prefetch.h"

// Out-of-line bridge to the prefetch scheduler. These live here (not in the
// header) because prefetch.h includes buffer_manager.h; the hot no-scheduler
// path is still just one relaxed atomic load.

namespace uindex {

void BufferManager::FinishChargedRead(PageId id) {
  PrefetchScheduler* prefetcher = prefetcher_.load(std::memory_order_acquire);
  if (prefetcher != nullptr && prefetcher->JoinDemand(id)) {
    // The background read already paid (or is finishing) the device wait;
    // JoinDemand returned after it completed, so nothing is left to wait
    // for. The read itself was charged by our caller as usual.
    return;
  }
  SimulateReadLatency();
}

void BufferManager::NotifyFreed(PageId id) {
  PrefetchScheduler* prefetcher = prefetcher_.load(std::memory_order_acquire);
  if (prefetcher != nullptr) prefetcher->Invalidate(id);
}

void BufferManager::NotifyEpochReset() {
  PrefetchScheduler* prefetcher = prefetcher_.load(std::memory_order_acquire);
  if (prefetcher != nullptr) prefetcher->OnEpochReset();
}

uint32_t BufferManager::EnvSimReadLatencyUs() {
  const char* env = std::getenv("UINDEX_SIM_READ_LATENCY");
  if (env == nullptr) return 0;
  const long value = std::strtol(env, nullptr, 10);
  return value > 0 ? static_cast<uint32_t>(value) : 0;
}

}  // namespace uindex
