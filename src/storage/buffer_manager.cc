#include "storage/buffer_manager.h"

// BufferManager is header-only today; this translation unit anchors the
// module in the build and reserves room for an eviction policy extension.
