#include "storage/prefetch.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "storage/buffer_manager.h"

namespace uindex {

PrefetchScheduler::PrefetchScheduler(BufferManager* buffers,
                                     exec::ThreadPool* pool)
    : buffers_(buffers), pool_(pool) {}

PrefetchScheduler::~PrefetchScheduler() {
  // Detach first so no new demand fetch can start waiting on us, then let
  // every queued/running read finish while buffers_ and pool_ are still
  // alive. After Drain no task references `this`.
  if (buffers_->prefetcher() == this) buffers_->SetPrefetcher(nullptr);
  Drain();
}

bool PrefetchScheduler::EnvEnabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("UINDEX_PREFETCH");
    if (env == nullptr) return true;
    return std::strcmp(env, "off") != 0 && std::strcmp(env, "OFF") != 0 &&
           std::strcmp(env, "0") != 0 && std::strcmp(env, "false") != 0;
  }();
  return enabled;
}

size_t PrefetchScheduler::Prefetch(const std::vector<PageId>& ids,
                                   WarmFn warm) {
  return Prefetch(ids.data(), ids.size(), std::move(warm));
}

size_t PrefetchScheduler::Prefetch(const PageId* ids, size_t count,
                                   WarmFn warm) {
  size_t issued = 0;
  for (size_t i = 0; i < count; ++i) {
    const PageId id = ids[i];
    if (id == kInvalidPageId) continue;
    // Already in memory this epoch: the demand fetch would be a free cache
    // hit anyway, a background read could only be waste.
    if (buffers_->IsResident(id)) continue;
    uint64_t ticket;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto [it, inserted] = flights_.try_emplace(id);
      if (!inserted) continue;  // In flight or staged: dedupe.
      it->second.generation = generation_;
      it->second.ticket = ++last_ticket_;
      ticket = it->second.ticket;
      ++pending_;
    }
    buffers_->RecordPrefetchIssued();
    ++issued;
    pool_->Schedule(
        [this, id, ticket, warm] { RunRead(id, ticket, warm); });
  }
  return issued;
}

void PrefetchScheduler::RunRead(PageId id, uint64_t ticket,
                                const WarmFn& warm) {
  // Every exit decrements pending_, touches counters, and notifies while
  // STILL HOLDING mu_: the moment a drainer can observe pending_ == 0 the
  // scheduler (and with it cv_/buffers_) may be destroyed, so nothing here
  // may run after the unlock that publishes the decrement.
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = flights_.find(id);
    if (it == flights_.end() || it->second.ticket != ticket) {
      // Stolen by a demand fetch or invalidated before we ran; whoever
      // removed the flight accounted for it.
      --pending_;
      cv_.notify_all();
      return;
    }
    if (it->second.canceled ||
        (it->second.generation != generation_ && it->second.waiters == 0)) {
      // Freed, or the epoch that wanted this page ended before the read
      // started: reading now could serve nobody.
      flights_.erase(it);
      buffers_->RecordPrefetchWasted();
      --pending_;
      cv_.notify_all();
      return;
    }
    it->second.started = true;
  }

  // The "device read". Residency is deliberately NOT touched: only the
  // demand fetch that consumes this page may charge pages_read. With a
  // simulated latency the sleep below is the read; the in-memory page
  // bytes are reachable through the pager the whole time. Safe to run
  // unlocked: a drain cannot complete while pending_ > 0.
  const uint32_t us = buffers_->simulated_read_latency_us();
  if (us != 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
  // File backend: the background half is a REAL read — pull the page into
  // a pool frame (no pin kept, no logical accounting) so the demand fetch
  // finds it resident. Memory backend: no-op.
  buffers_->BackgroundLoad(id);
  if (warm != nullptr) warm(id);

  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = flights_.find(id);
    if (it != flights_.end() && it->second.ticket == ticket) {
      if (it->second.canceled ||
          (it->second.generation != generation_ &&
           it->second.waiters == 0)) {
        flights_.erase(it);
        buffers_->RecordPrefetchWasted();
      } else {
        it->second.done = true;  // Staged; JoinDemand may now consume it.
      }
    }
    --pending_;
    cv_.notify_all();
  }
}

bool PrefetchScheduler::JoinDemand(PageId id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = flights_.find(id);
  if (it == flights_.end() || it->second.canceled) return false;
  if (!it->second.started) {
    // Queued but no worker has picked it up: steal it. Waiting here would
    // make a demand fetch depend on pool scheduling; reading it ourselves
    // is never slower. The orphaned task sees the ticket gone and exits.
    flights_.erase(it);
    lock.unlock();
    buffers_->RecordPrefetchWasted();
    return false;
  }
  if (!it->second.done) {
    // The read is running: wait out its remainder instead of paying a full
    // device read. The flight cannot be erased from under us — every
    // removal path skips entries with waiters.
    ++it->second.waiters;
    cv_.wait(lock, [&] {
      auto cur = flights_.find(id);
      return cur == flights_.end() || cur->second.done ||
             cur->second.canceled;
    });
    it = flights_.find(id);
    if (it == flights_.end()) return false;  // Defensive; see above.
    --it->second.waiters;
    if (it->second.canceled) return false;
  }
  flights_.erase(it);
  lock.unlock();
  buffers_->RecordPrefetchHit();
  return true;
}

bool PrefetchScheduler::IsStaged(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = flights_.find(id);
  return it != flights_.end() && it->second.done && !it->second.canceled;
}

void PrefetchScheduler::OnEpochReset() {
  uint64_t wasted = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++generation_;
    for (auto it = flights_.begin(); it != flights_.end();) {
      // Drop staged pages the finished epoch never consumed. In-flight
      // reads stay (their task owns the exit path) and will be wasted on
      // completion unless a new-epoch demand fetch joins them first.
      if (it->second.done && it->second.waiters == 0) {
        it = flights_.erase(it);
        ++wasted;
      } else {
        ++it;
      }
    }
  }
  for (uint64_t i = 0; i < wasted; ++i) buffers_->RecordPrefetchWasted();
}

void PrefetchScheduler::Invalidate(PageId id) {
  bool wasted = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = flights_.find(id);
    if (it == flights_.end()) return;
    if (it->second.started && !it->second.done) {
      // A worker is mid-read (external exclusion should rule this out, but
      // stay safe): poison it; the task's exit path counts the waste.
      it->second.canceled = true;
      cv_.notify_all();
      return;
    }
    flights_.erase(it);
    wasted = true;
  }
  if (wasted) buffers_->RecordPrefetchWasted();
}

void PrefetchScheduler::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return pending_ == 0; });
}

size_t PrefetchScheduler::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_;
}

size_t PrefetchScheduler::staged() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [id, flight] : flights_) {
    if (flight.done && !flight.canceled) ++n;
  }
  return n;
}

}  // namespace uindex
