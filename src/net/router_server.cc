#include "net/router_server.h"

#include <algorithm>
#include <utility>

namespace uindex {
namespace net {

namespace {

// How often the accept loop wakes to check the stopping flag and reap
// finished connection threads (matches Server).
constexpr int kAcceptTickMs = 200;

// Folds one routed query's aggregate stats into the connection's
// synthesized session stats.
void FoldIntoSession(const Router::QueryOutcome& outcome,
                     Session::Stats* stats) {
  stats->rows += outcome.oids.size();
  stats->pages_read += outcome.stats.pages_read;
  stats->nodes_parsed += outcome.stats.nodes_parsed;
  stats->node_cache_hits += outcome.stats.node_cache_hits;
  stats->prefetch_issued += outcome.stats.prefetch_issued;
  stats->prefetch_hits += outcome.stats.prefetch_hits;
  stats->prefetch_wasted += outcome.stats.prefetch_wasted;
  stats->pool_hits += outcome.stats.pool_hits;
  stats->pool_misses += outcome.stats.pool_misses;
  stats->evictions += outcome.stats.evictions;
  stats->writebacks += outcome.stats.writebacks;
  stats->epochs_published += outcome.stats.epochs_published;
  stats->pages_cow += outcome.stats.pages_cow;
  stats->commit_batches += outcome.stats.commit_batches;
  stats->commit_records += outcome.stats.commit_records;
  stats->reader_pin_max_age_us = std::max(
      stats->reader_pin_max_age_us, outcome.stats.reader_pin_max_age_us);
}

}  // namespace

RouterServer::RouterServer(Router* router, RouterServerOptions options)
    : router_(router), options_(std::move(options)) {
  admission_ = std::make_unique<AdmissionGate>(options_.max_inflight_queries,
                                               options_.max_queued_queries);
}

Result<std::unique_ptr<RouterServer>> RouterServer::Start(
    Router* router, RouterServerOptions options) {
  if (router == nullptr) {
    return Status::InvalidArgument("router server needs a router");
  }
  std::unique_ptr<RouterServer> server(
      new RouterServer(router, std::move(options)));
  UINDEX_RETURN_IF_ERROR(
      server->listener_.Open(server->options_.host, server->options_.port));
  server->port_ = server->listener_.port();
  server->accept_thread_ =
      std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

RouterServer::~RouterServer() { Shutdown(); }

void RouterServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = listener_.AcceptOnce(kAcceptTickMs);
    ReapFinished(/*join_all=*/false);
    if (fd < 0) continue;
    if (active_connections() >= options_.max_connections) {
      Conn reject(fd);
      reject.set_io_timeout_ms(options_.io_timeout_ms);
      reject.WriteFrame(Slice(EncodeBusy("too many connections")));
      continue;
    }
    counters_.accepted.fetch_add(1, std::memory_order_relaxed);
    counters_.active_connections.fetch_add(1, std::memory_order_relaxed);
    auto state = std::make_unique<ConnState>();
    state->conn = std::make_unique<Conn>(fd);
    state->conn->set_io_timeout_ms(options_.io_timeout_ms);
    ConnState* raw = state.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(state));
    }
    raw->thread = std::thread([this, raw] { ServeConnection(raw); });
  }
}

void RouterServer::ServeConnection(ConnState* state) {
  Conn* conn = state->conn.get();
  Session::Stats stats;  // Synthesized cluster-wide per-connection stats.
  std::string payload;
  for (;;) {
    Result<ReadOutcome> outcome =
        conn->ReadFrame(&payload, kMaxRequestFrame, options_.idle_timeout_ms);
    if (!outcome.ok()) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      conn->WriteFrame(Slice(EncodeError(outcome.status())));
      break;
    }
    if (outcome.value() != ReadOutcome::kFrame) break;  // closed or idle
    Result<Request> request = DecodeRequest(Slice(payload));
    if (!request.ok()) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      conn->WriteFrame(Slice(EncodeError(request.status())));
      break;
    }
    if (!HandleRequest(conn, &stats, request.value())) break;
  }
  conn->ShutdownBoth();
  counters_.active_connections.fetch_sub(1, std::memory_order_relaxed);
  state->done.store(true, std::memory_order_release);
}

bool RouterServer::HandleRequest(Conn* conn, Session::Stats* stats,
                                 const Request& request) {
  switch (request.op) {
    case Op::kHello: {
      if (request.version != kProtocolVersion) {
        conn->WriteFrame(Slice(EncodeError(Status::InvalidArgument(
            "protocol version mismatch: client " +
            std::to_string(request.version) + ", server " +
            std::to_string(kProtocolVersion)))));
        return false;
      }
      return conn->WriteFrame(Slice(EncodeWelcome())).ok();
    }
    case Op::kPing:
      return conn->WriteFrame(Slice(EncodePong())).ok();
    case Op::kSessionStats:
      return conn->WriteFrame(Slice(EncodeStats(*stats))).ok();
    case Op::kGoodbye:
      return false;
    case Op::kQuery:
      break;
    default:
      // The router front end does not serve shard-internal ops; a v4 peer
      // speaking kShardQuery at a router is a topology mistake.
      conn->WriteFrame(Slice(EncodeError(Status::NotSupported(
          "router front end serves kQuery only"))));
      return true;
  }

  // One admission slot per scatter-gather, shared with the HTTP gateway.
  // The slot is released only AFTER the response write: `Shutdown`'s
  // WaitDrained therefore guarantees delivery, not just completion.
  switch (admission_->Admit()) {
    case AdmissionGate::Outcome::kShuttingDown:
      conn->WriteFrame(Slice(
          EncodeError(Status::ResourceExhausted("router shutting down"))));
      return false;
    case AdmissionGate::Outcome::kBusy:
      counters_.busy_rejected.fetch_add(1, std::memory_order_relaxed);
      conn->WriteFrame(Slice(EncodeBusy(
          "busy: query shed by admission control; retry later")));
      return true;
    case AdmissionGate::Outcome::kAdmitted:
      break;
  }

  Result<Router::QueryOutcome> result = router_->Query(request.oql);
  std::string response;
  ++stats->queries;
  if (result.ok()) {
    counters_.queries_ok.fetch_add(1, std::memory_order_relaxed);
    const Router::QueryOutcome& rows = result.value();
    FoldIntoSession(rows, stats);
    response = EncodeRows(rows.oids, rows.count, rows.used_index, rows.plan,
                          rows.stats);
  } else {
    counters_.queries_failed.fetch_add(1, std::memory_order_relaxed);
    ++stats->failed;
    response = EncodeError(result.status());
  }
  const bool write_ok = conn->WriteFrame(Slice(response)).ok();
  admission_->Release();
  return write_ok;
}

void RouterServer::ReapFinished(bool join_all) {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (join_all || (*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void RouterServer::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    // 1. Refuse new work: the accept loop exits, queued admission waiters
    //    wake and bail with "router shutting down".
    stopping_.store(true, std::memory_order_release);
    admission_->BeginShutdown();
    if (accept_thread_.joinable()) accept_thread_.join();
    // 2. Drain: every admitted scatter-gather finishes AND its response
    //    reaches the client socket (Release runs post-write).
    admission_->WaitDrained();
    // 3. Tear down: unblock readers parked in ReadFrame, then join.
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (const auto& state : conns_) state->conn->ShutdownBoth();
    }
    ReapFinished(/*join_all=*/true);
    listener_.Close();
  });
}

}  // namespace net
}  // namespace uindex
