#include "net/router_server.h"

#include <errno.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

namespace uindex {
namespace net {

namespace {

// How often the accept loop wakes to check the stopping flag and reap
// finished connection threads (matches Server).
constexpr int kAcceptTickMs = 200;

// Folds one routed query's aggregate stats into the connection's
// synthesized session stats.
void FoldIntoSession(const Router::QueryOutcome& outcome,
                     Session::Stats* stats) {
  stats->rows += outcome.oids.size();
  stats->pages_read += outcome.stats.pages_read;
  stats->nodes_parsed += outcome.stats.nodes_parsed;
  stats->node_cache_hits += outcome.stats.node_cache_hits;
  stats->prefetch_issued += outcome.stats.prefetch_issued;
  stats->prefetch_hits += outcome.stats.prefetch_hits;
  stats->prefetch_wasted += outcome.stats.prefetch_wasted;
  stats->pool_hits += outcome.stats.pool_hits;
  stats->pool_misses += outcome.stats.pool_misses;
  stats->evictions += outcome.stats.evictions;
  stats->writebacks += outcome.stats.writebacks;
  stats->epochs_published += outcome.stats.epochs_published;
  stats->pages_cow += outcome.stats.pages_cow;
  stats->commit_batches += outcome.stats.commit_batches;
  stats->commit_records += outcome.stats.commit_records;
  stats->reader_pin_max_age_us = std::max(
      stats->reader_pin_max_age_us, outcome.stats.reader_pin_max_age_us);
}

}  // namespace

RouterServer::RouterServer(Router* router, RouterServerOptions options)
    : router_(router), options_(std::move(options)) {}

Result<std::unique_ptr<RouterServer>> RouterServer::Start(
    Router* router, RouterServerOptions options) {
  if (router == nullptr) {
    return Status::InvalidArgument("router server needs a router");
  }
  std::unique_ptr<RouterServer> server(
      new RouterServer(router, std::move(options)));
  UINDEX_RETURN_IF_ERROR(server->Listen());
  server->accept_thread_ =
      std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

RouterServer::~RouterServer() { Shutdown(); }

Status RouterServer::Listen() {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  struct addrinfo* res = nullptr;
  const std::string port_text = std::to_string(options_.port);
  if (::getaddrinfo(options_.host.c_str(), port_text.c_str(), &hints, &res) !=
          0 ||
      res == nullptr) {
    return Status::InvalidArgument("cannot resolve " + options_.host);
  }
  Status last = Status::ResourceExhausted("no addresses for " + options_.host);
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_NONBLOCK, 0);
    if (fd < 0) continue;
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 ||
        ::listen(fd, 128) != 0) {
      last = Status::ResourceExhausted(std::string("bind/listen: ") +
                                       std::strerror(errno));
      ::close(fd);
      continue;
    }
    struct sockaddr_storage bound;
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                      &bound_len) == 0) {
      if (bound.ss_family == AF_INET) {
        port_ = ntohs(reinterpret_cast<struct sockaddr_in*>(&bound)->sin_port);
      } else if (bound.ss_family == AF_INET6) {
        port_ =
            ntohs(reinterpret_cast<struct sockaddr_in6*>(&bound)->sin6_port);
      }
    }
    listen_fd_ = fd;
    ::freeaddrinfo(res);
    return Status::OK();
  }
  ::freeaddrinfo(res);
  return last;
}

void RouterServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int n = ::poll(&pfd, 1, kAcceptTickMs);
    ReapFinished(/*join_all=*/false);
    if (n <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (active_connections() >= options_.max_connections) {
      Conn reject(fd);
      reject.set_io_timeout_ms(options_.io_timeout_ms);
      reject.WriteFrame(Slice(EncodeBusy("too many connections")));
      continue;
    }
    counters_.accepted.fetch_add(1, std::memory_order_relaxed);
    counters_.active_connections.fetch_add(1, std::memory_order_relaxed);
    auto state = std::make_unique<ConnState>();
    state->conn = std::make_unique<Conn>(fd);
    state->conn->set_io_timeout_ms(options_.io_timeout_ms);
    ConnState* raw = state.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(state));
    }
    raw->thread = std::thread([this, raw] { ServeConnection(raw); });
  }
}

void RouterServer::ServeConnection(ConnState* state) {
  Conn* conn = state->conn.get();
  Session::Stats stats;  // Synthesized cluster-wide per-connection stats.
  std::string payload;
  for (;;) {
    Result<ReadOutcome> outcome =
        conn->ReadFrame(&payload, kMaxRequestFrame, options_.idle_timeout_ms);
    if (!outcome.ok()) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      conn->WriteFrame(Slice(EncodeError(outcome.status())));
      break;
    }
    if (outcome.value() != ReadOutcome::kFrame) break;  // closed or idle
    if (stopping_.load(std::memory_order_acquire)) {
      conn->WriteFrame(Slice(
          EncodeError(Status::ResourceExhausted("router shutting down"))));
      break;
    }
    Result<Request> request = DecodeRequest(Slice(payload));
    if (!request.ok()) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      conn->WriteFrame(Slice(EncodeError(request.status())));
      break;
    }
    if (!HandleRequest(conn, &stats, request.value())) break;
  }
  conn->ShutdownBoth();
  counters_.active_connections.fetch_sub(1, std::memory_order_relaxed);
  state->done.store(true, std::memory_order_release);
}

bool RouterServer::HandleRequest(Conn* conn, Session::Stats* stats,
                                 const Request& request) {
  switch (request.op) {
    case Op::kHello: {
      if (request.version != kProtocolVersion) {
        conn->WriteFrame(Slice(EncodeError(Status::InvalidArgument(
            "protocol version mismatch: client " +
            std::to_string(request.version) + ", server " +
            std::to_string(kProtocolVersion)))));
        return false;
      }
      return conn->WriteFrame(Slice(EncodeWelcome())).ok();
    }
    case Op::kPing:
      return conn->WriteFrame(Slice(EncodePong())).ok();
    case Op::kSessionStats:
      return conn->WriteFrame(Slice(EncodeStats(*stats))).ok();
    case Op::kGoodbye:
      return false;
    case Op::kQuery:
      break;
    default:
      // The router front end does not serve shard-internal ops; a v4 peer
      // speaking kShardQuery at a router is a topology mistake.
      conn->WriteFrame(Slice(EncodeError(Status::NotSupported(
          "router front end serves kQuery only"))));
      return true;
  }

  Result<Router::QueryOutcome> result = router_->Query(request.oql);
  std::string response;
  ++stats->queries;
  if (result.ok()) {
    counters_.queries_ok.fetch_add(1, std::memory_order_relaxed);
    const Router::QueryOutcome& rows = result.value();
    FoldIntoSession(rows, stats);
    response = EncodeRows(rows.oids, rows.count, rows.used_index, rows.plan,
                          rows.stats);
  } else {
    counters_.queries_failed.fetch_add(1, std::memory_order_relaxed);
    ++stats->failed;
    response = EncodeError(result.status());
  }
  return conn->WriteFrame(Slice(response)).ok();
}

void RouterServer::ReapFinished(bool join_all) {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (join_all || (*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void RouterServer::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    stopping_.store(true, std::memory_order_release);
    if (accept_thread_.joinable()) accept_thread_.join();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (const auto& state : conns_) state->conn->ShutdownBoth();
    }
    ReapFinished(/*join_all=*/true);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  });
}

}  // namespace net
}  // namespace uindex
