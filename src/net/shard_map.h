#ifndef UINDEX_NET_SHARD_MAP_H_
#define UINDEX_NET_SHARD_MAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace uindex {
namespace net {

/// The cluster's partitioning contract: a versioned, sorted list of
/// class-code range boundaries, each owning shard addressed by endpoint.
/// Entry `i` serves the half-open code slice [entries[i].lo,
/// entries[i+1].lo); the first entry's `lo` is "" and the last range is
/// unbounded above, so the map always covers the whole code space. The COD
/// encoding keeps every class sub-tree contiguous in code space, so
/// boundaries are raw code strings — they need no class names and may split
/// a sub-tree mid-range (a rebalance moves a boundary, not a schema).
///
/// The `version` is the split/rebalance fence: servers remember the version
/// that installed their served range and reject sub-queries carrying an
/// older one with a typed stale-version error, which tells the router to
/// refresh this map and retry. The map travels two ways — CRC-framed on
/// disk (`Save`/`Load`) and as an opaque blob inside protocol-v4 messages
/// (`EncodeBlob`/`DecodeBlob`).
struct ShardMap {
  struct Entry {
    std::string lo;    ///< Inclusive class-code lower bound.
    std::string host;  ///< Endpoint serving [lo, next lo).
    uint16_t port = 0;
  };

  uint64_t version = 0;
  std::vector<Entry> entries;  ///< Sorted by `lo`; entries[0].lo == "".

  /// Structural invariants: at least one entry, entries[0].lo == "",
  /// strictly increasing `lo`s, non-empty hosts.
  Status Validate() const;

  /// Exclusive upper bound of entry `i`'s range ("" = +infinity).
  std::string HiOf(size_t i) const;

  /// The entry index whose range contains `code` (for a Validate()d map).
  size_t ShardFor(const Slice& code) const;

  /// The sorted `lo` boundaries, the shape `exec::CandidateShards` takes.
  std::vector<std::string> Boundaries() const;

  /// Wire/disk image: [version u64][n u32] then per entry
  /// [lo string][host string][port u32], strings length-prefixed (u32).
  void EncodeBlob(std::string* out) const;

  /// Decodes an `EncodeBlob` image; rejects truncated or trailing bytes
  /// and anything `Validate` would (a hostile blob never half-applies).
  static Result<ShardMap> DecodeBlob(const Slice& blob);

  /// Persists the map as one CRC-framed record (util/framing), written to
  /// a sibling temp file and renamed into place so readers never observe a
  /// partial map.
  Status Save(const std::string& path) const;

  /// Loads and validates a `Save`d map; CRC or structural damage is
  /// Corruption, a missing file NotFound.
  static Result<ShardMap> Load(const std::string& path);
};

}  // namespace net
}  // namespace uindex

#endif  // UINDEX_NET_SHARD_MAP_H_
