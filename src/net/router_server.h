#ifndef UINDEX_NET_ROUTER_SERVER_H_
#define UINDEX_NET_ROUTER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "db/session.h"
#include "net/admission.h"
#include "net/conn.h"
#include "net/listener.h"
#include "net/protocol.h"
#include "net/router.h"

namespace uindex {
namespace net {

/// Tuning knobs for a `RouterServer`.
struct RouterServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral; read the bound port from `port()`.
  size_t max_connections = 256;
  int io_timeout_ms = 5000;
  int idle_timeout_ms = 120000;

  /// Admission control over scatter-gather queries, mirroring
  /// `ServerOptions`: at most this many `Router::Query` calls in flight at
  /// once (each one fans out across every shard)...
  size_t max_inflight_queries = 16;
  /// ...and at most this many more wait for a slot before being shed with
  /// a typed `kBusy` response.
  size_t max_queued_queries = 64;
};

/// The cluster's client-facing front end: speaks the standard protocol
/// (`kHello`/`kQuery`/`kPing`/`kSessionStats`/`kGoodbye`) so any existing
/// client — `uindex_shell` included — talks to a sharded topology
/// unchanged, while every `kQuery` is executed by scatter-gather through
/// the `Router`.
///
/// Per-connection `Session::Stats` are synthesized from the router's
/// aggregated per-query stats, so `stats` in the shell shows cluster-wide
/// page reads. One thread per connection, as in `Server`; concurrency
/// across connections comes from the router's fan-out pool.
///
/// Shutdown mirrors `Server`: new connections and new frames are refused,
/// but every in-flight scatter-gather completes AND its response reaches
/// the client socket before `Shutdown` returns (the slot is released only
/// after the write). The HTTP gateway's router backend shares the same
/// `AdmissionGate`, so HTTP and binary clients draw from one budget here
/// too.
class RouterServer {
 public:
  struct Counters {
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> active_connections{0};
    std::atomic<uint64_t> queries_ok{0};
    std::atomic<uint64_t> queries_failed{0};
    std::atomic<uint64_t> busy_rejected{0};
    std::atomic<uint64_t> protocol_errors{0};
  };

  /// Binds, listens, and starts the listener thread. `router` must outlive
  /// the server.
  static Result<std::unique_ptr<RouterServer>> Start(
      Router* router, RouterServerOptions options);

  /// Graceful shutdown (idempotent); in-flight queries finish and their
  /// responses are delivered before teardown.
  void Shutdown();

  ~RouterServer();

  RouterServer(const RouterServer&) = delete;
  RouterServer& operator=(const RouterServer&) = delete;

  uint16_t port() const { return port_; }
  const Counters& counters() const { return counters_; }
  size_t active_connections() const {
    return counters_.active_connections.load(std::memory_order_relaxed);
  }

  /// The router process's admission budget (shared with the HTTP gateway).
  AdmissionGate& admission() { return *admission_; }
  const AdmissionGate& admission() const { return *admission_; }

  Router* router() const { return router_; }

  /// True once a graceful shutdown has begun (new work is being refused).
  bool draining() const { return stopping_.load(std::memory_order_acquire); }

 private:
  struct ConnState {
    std::unique_ptr<Conn> conn;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  RouterServer(Router* router, RouterServerOptions options);

  void AcceptLoop();
  void ServeConnection(ConnState* state);
  bool HandleRequest(Conn* conn, Session::Stats* stats,
                     const Request& request);
  void ReapFinished(bool join_all);

  Router* router_;
  RouterServerOptions options_;

  Listener listener_;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex conns_mu_;
  std::list<std::unique_ptr<ConnState>> conns_;

  // One scatter-gather budget for every front end (net/admission.h); the
  // HTTP gateway borrows it through `admission()`.
  std::unique_ptr<AdmissionGate> admission_;

  Counters counters_;
  std::once_flag shutdown_once_;
};

}  // namespace net
}  // namespace uindex

#endif  // UINDEX_NET_ROUTER_SERVER_H_
