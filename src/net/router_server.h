#ifndef UINDEX_NET_ROUTER_SERVER_H_
#define UINDEX_NET_ROUTER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "db/session.h"
#include "net/conn.h"
#include "net/protocol.h"
#include "net/router.h"

namespace uindex {
namespace net {

/// Tuning knobs for a `RouterServer`.
struct RouterServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral; read the bound port from `port()`.
  size_t max_connections = 256;
  int io_timeout_ms = 5000;
  int idle_timeout_ms = 120000;
};

/// The cluster's client-facing front end: speaks the standard protocol
/// (`kHello`/`kQuery`/`kPing`/`kSessionStats`/`kGoodbye`) so any existing
/// client — `uindex_shell` included — talks to a sharded topology
/// unchanged, while every `kQuery` is executed by scatter-gather through
/// the `Router`.
///
/// Per-connection `Session::Stats` are synthesized from the router's
/// aggregated per-query stats, so `stats` in the shell shows cluster-wide
/// page reads. One thread per connection, as in `Server`; concurrency
/// across connections comes from the router's fan-out pool.
class RouterServer {
 public:
  struct Counters {
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> active_connections{0};
    std::atomic<uint64_t> queries_ok{0};
    std::atomic<uint64_t> queries_failed{0};
    std::atomic<uint64_t> protocol_errors{0};
  };

  /// Binds, listens, and starts the listener thread. `router` must outlive
  /// the server.
  static Result<std::unique_ptr<RouterServer>> Start(
      Router* router, RouterServerOptions options);

  /// Graceful shutdown (idempotent); in-flight queries finish and their
  /// responses are delivered.
  void Shutdown();

  ~RouterServer();

  RouterServer(const RouterServer&) = delete;
  RouterServer& operator=(const RouterServer&) = delete;

  uint16_t port() const { return port_; }
  const Counters& counters() const { return counters_; }
  size_t active_connections() const {
    return counters_.active_connections.load(std::memory_order_relaxed);
  }

 private:
  struct ConnState {
    std::unique_ptr<Conn> conn;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  RouterServer(Router* router, RouterServerOptions options);

  Status Listen();
  void AcceptLoop();
  void ServeConnection(ConnState* state);
  bool HandleRequest(Conn* conn, Session::Stats* stats,
                     const Request& request);
  void ReapFinished(bool join_all);

  Router* router_;
  RouterServerOptions options_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex conns_mu_;
  std::list<std::unique_ptr<ConnState>> conns_;

  Counters counters_;
  std::once_flag shutdown_once_;
};

}  // namespace net
}  // namespace uindex

#endif  // UINDEX_NET_ROUTER_SERVER_H_
