#ifndef UINDEX_NET_ROUTER_H_
#define UINDEX_NET_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "db/database.h"
#include "exec/thread_pool.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/shard_map.h"

namespace uindex {
namespace net {

/// Tuning knobs for a `Router`.
struct RouterOptions {
  /// Bounds each sub-query end to end: the dial, every mid-frame read, and
  /// the wait for the shard's first response byte. A shard that cannot
  /// answer in time fails its sub-query (and the whole scatter fails typed
  /// — never a silent partial result).
  int subquery_timeout_ms = 5000;

  /// How many times a scatter is retried after a stale-map rejection, each
  /// preceded by a map refresh. Exhaustion surfaces as `kUnavailable`.
  int max_stale_retries = 3;

  /// Where `RefreshMap` looks first: the CRC-framed map file the topology
  /// operator maintains (ShardMap::Save). Empty = ask the shards
  /// themselves (`kGetShard`) and adopt the highest installed version.
  std::string map_path;

  /// Workers on the fan-out pool (concurrent sub-queries across all
  /// callers). 0 = max(8, 2 × shard count at creation).
  size_t fanout_threads = 0;
};

/// The scatter-gather shard router: one logical U-index database served by
/// N `uindex_server` processes, each owning a class-code range of a shared
/// `ShardMap` (DESIGN.md "Sharding & scatter-gather").
///
/// A query is compiled locally against a *planning replica* (a `Database`
/// opened from the same snapshot, used only for `PlanOqlRouting` — never
/// row data), yielding the class-code spans its result bindings can occupy.
/// Spans are intersected with the map's ranges (`exec::CandidateShards`) to
/// prune shards, sub-queries fan out concurrently over pooled version-
/// fenced `kShardQuery` connections, and the per-shard row streams — whose
/// served-range enforcement makes them disjoint — merge into one sorted,
/// deterministic row set with summed counts and `IoStats`.
///
/// Failure semantics: a stale-map rejection from any shard joins the whole
/// in-flight scatter (the drain), refreshes the map, and retries under the
/// new version; any other sub-query failure — shard down, timeout,
/// poisoned connection — fails the query with a typed
/// `Status::Unavailable` naming the shard. Partial results are never
/// returned silently.
///
/// Thread-safe: any number of threads may call `Query` concurrently (the
/// `RouterServer` front end does).
class Router {
 public:
  /// Observability counters.
  struct Counters {
    std::atomic<uint64_t> queries_ok{0};
    std::atomic<uint64_t> queries_failed{0};
    std::atomic<uint64_t> subqueries_sent{0};
    /// Shards skipped because no code span intersected their range.
    std::atomic<uint64_t> shards_pruned{0};
    std::atomic<uint64_t> stale_retries{0};
    std::atomic<uint64_t> partial_failures{0};
    std::atomic<uint64_t> conns_created{0};
    std::atomic<uint64_t> conns_evicted{0};
  };

  /// A routed query result: `Database::OqlResult` shape plus the aggregate
  /// per-query stats (summed across shards; `reader_pin_max_age_us` is the
  /// max) and how many shards were actually queried.
  struct QueryOutcome {
    std::vector<Oid> oids;
    uint64_t count = 0;
    bool used_index = false;
    std::string plan;
    WireQueryStats stats;
    size_t shards_queried = 0;
  };

  /// `map` must Validate(); `planner` is the planning replica and must
  /// outlive the router.
  static Result<std::unique_ptr<Router>> Create(ShardMap map,
                                                const Database* planner,
                                                RouterOptions options);

  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Scatter-gathers one OQL statement. See the class comment for merge
  /// and failure semantics.
  Result<QueryOutcome> Query(const std::string& oql);

  /// Re-reads the map (options.map_path, else the shards) and adopts it if
  /// its version is newer than the current one.
  Status RefreshMap();

  /// The map this router currently scatters under.
  ShardMap CurrentMap() const;

  const Counters& counters() const { return counters_; }

 private:
  Router(ShardMap map, const Database* planner, RouterOptions options);

  // One endpoint's idle-connection stack, keyed "host:port".
  std::unique_ptr<Client> AcquireClient(const std::string& host,
                                        uint16_t port, Status* error);
  void ReleaseClient(const std::string& host, uint16_t port,
                     std::unique_ptr<Client> client);

  // One sub-query against shard `shard` of `map`; runs on the fan-out
  // pool.
  struct SubResult {
    size_t shard = 0;
    Result<Client::QueryResult> result;
    bool stale = false;              ///< Rejected: map version mismatch.
    uint64_t server_version = 0;     ///< The shard's installed version.
    SubResult() : result(Status::Unavailable("sub-query not run")) {}
  };
  SubResult RunSubQuery(const ShardMap& map, size_t shard,
                        const std::string& oql);

  const Database* planner_;
  RouterOptions options_;

  mutable std::mutex map_mu_;
  ShardMap map_;

  std::mutex pool_mu_;
  std::map<std::string, std::vector<std::unique_ptr<Client>>> idle_;

  std::unique_ptr<exec::ThreadPool> fanout_;
  Counters counters_;
};

}  // namespace net
}  // namespace uindex

#endif  // UINDEX_NET_ROUTER_H_
