#ifndef UINDEX_NET_PROTOCOL_H_
#define UINDEX_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "db/session.h"
#include "objects/object.h"
#include "util/slice.h"
#include "util/status.h"

namespace uindex {
namespace net {

/// The U-index wire protocol: a request/response binary protocol over TCP
/// that puts one `Database` behind a socket. Every message travels in the
/// repo-wide record frame (util/framing.h, the same convention as the
/// durability journal):
///
///   [len u32][crc u32][payload]
///
/// and the payload starts with a one-byte op code. Requests (client →
/// server) and responses (server → client) use disjoint op ranges so a
/// garbled direction is caught at decode time. One request yields exactly
/// one response; there is no pipelining (the blocking client is the
/// intended consumer; the server tolerates — and answers — back-to-back
/// frames in order).
///
/// Robustness rules (enforced by conn/server, asserted by
/// tests/net_protocol_test and tests/net_server_test):
///  * frames above the direction's size limit, CRC mismatches, torn
///    frames, and undecodable payloads poison ONLY the offending
///    connection — the server answers with `kError` when the transport
///    still permits, then closes that connection;
///  * queries past the admission-control cap and wait queue are shed with
///    a typed `kBusy` response, never silently dropped;
///  * during graceful shutdown in-flight queries drain and their
///    responses are delivered, while new frames are refused with
///    `kError` (code `kResourceExhausted`, message "server shutting
///    down").

/// Protocol revision; bumped on any incompatible layout change. The server
/// rejects a `kHello` carrying a different major version.
/// v2: kRows/kStats grew the buffer-pool counters (pool_hits, pool_misses,
/// evictions, writebacks).
/// v3: kRows/kStats grew the MVCC + group-commit counters
/// (epochs_published, pages_cow, commit_batches, commit_records,
/// reader_pin_max_age_us).
/// v4: sharding — kShardQuery (version-fenced sub-query), kInstallShard /
/// kGetShard (ShardMap exchange), kStaleMap (typed stale-version
/// rejection), kShardState.
inline constexpr uint32_t kProtocolVersion = 4;

/// First bytes of every `kHello` payload after the op byte.
inline constexpr char kProtocolMagic[4] = {'U', 'I', 'D', 'X'};

/// Frame-size ceilings per direction. Requests carry OQL text (small);
/// responses carry row sets — 8 MiB fits ~2M oids, far beyond any
/// benchmarked result set.
inline constexpr uint32_t kMaxRequestFrame = 1u << 20;   // 1 MiB
inline constexpr uint32_t kMaxResponseFrame = 8u << 20;  // 8 MiB

enum class Op : uint8_t {
  // Requests (client → server).
  kHello = 0x01,         ///< magic + version; answered by kWelcome.
  kQuery = 0x02,         ///< OQL text; answered by kRows/kError/kBusy.
  kPing = 0x03,          ///< answered by kPong.
  kSessionStats = 0x04,  ///< answered by kStats.
  kGoodbye = 0x05,       ///< clean close; no response.
  // v4 (sharding).
  kShardQuery = 0x06,    ///< map-versioned sub-query; kRows or kStaleMap.
  kInstallShard = 0x07,  ///< ShardMap + own index; answered by kShardState.
  kGetShard = 0x08,      ///< answered by kShardState.

  // Responses (server → client).
  kWelcome = 0x81,  ///< server protocol version.
  kRows = 0x82,     ///< query result + per-query IoStats delta.
  kError = 0x83,    ///< Status code + message (incl. parse diagnostics).
  kBusy = 0x84,     ///< admission control shed this query; retry later.
  kPong = 0x85,
  kStats = 0x86,    ///< the connection's Session::Stats.
  // v4 (sharding).
  kStaleMap = 0x87,     ///< sub-query carried an old map version; refresh.
  kShardState = 0x88,   ///< the server's installed ShardMap + own index.
};

/// The per-query IoStats delta shipped with every `kRows` response, so a
/// remote client sees the same observability the shell's `stats` has.
/// Under concurrent queries the delta is attributed from the database-wide
/// counters (the global per-query-epoch accounting model — see the
/// `Database` class comment), exactly as `Session` reports it locally.
struct WireQueryStats {
  uint64_t pages_read = 0;
  uint64_t nodes_parsed = 0;
  uint64_t node_cache_hits = 0;
  uint64_t prefetch_issued = 0;
  uint64_t prefetch_hits = 0;
  uint64_t prefetch_wasted = 0;
  // Physical buffer-pool traffic (file backend; 0 in memory). v2.
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
  // MVCC + group commit (db/commit_queue.h, storage/mvcc.h). v3.
  uint64_t epochs_published = 0;
  uint64_t pages_cow = 0;
  uint64_t commit_batches = 0;
  uint64_t commit_records = 0;
  uint64_t reader_pin_max_age_us = 0;  ///< Gauge, not a delta.
};

/// A decoded request frame.
struct Request {
  Op op = Op::kPing;
  uint32_t version = 0;     ///< kHello.
  std::string oql;          ///< kQuery / kShardQuery.
  // kShardQuery / kInstallShard.
  uint64_t map_version = 0;  ///< The router's ShardMap version fence.
  uint32_t self_index = 0;   ///< kInstallShard: the server's map entry.
  std::string map_blob;      ///< kInstallShard: ShardMap::EncodeBlob image.
};

/// A decoded response frame. Exactly the members implied by `op` are
/// meaningful.
struct Response {
  Op op = Op::kPong;
  uint32_t version = 0;            ///< kWelcome.
  // kRows.
  std::vector<Oid> oids;           ///< Sorted distinct bindings.
  uint64_t count = 0;              ///< Bindings pre-LIMIT (COUNT queries).
  bool used_index = false;
  std::string plan;
  WireQueryStats query_stats;
  // kError / kBusy.
  uint8_t error_code = 0;          ///< Status::Code as uint8.
  std::string message;
  // kStats.
  Session::Stats session_stats;
  // kStaleMap / kShardState.
  uint64_t map_version = 0;   ///< The server's installed map version.
  bool shard_active = false;  ///< kShardState: a map is installed.
  uint32_t self_index = 0;    ///< kShardState: the server's map entry.
  std::string map_blob;       ///< kShardState: installed map image.
};

// --------------------------------------------------------------- encoders
std::string EncodeHello();
std::string EncodeQuery(const std::string& oql);
std::string EncodePing();
std::string EncodeSessionStatsRequest();
std::string EncodeGoodbye();
std::string EncodeShardQuery(uint64_t map_version, const std::string& oql);
/// `map_blob` is a `ShardMap::EncodeBlob` image; `self_index` names the
/// receiving server's own entry (its served range).
std::string EncodeInstallShard(uint32_t self_index,
                               const std::string& map_blob);
std::string EncodeGetShard();

std::string EncodeWelcome();
std::string EncodeRows(const std::vector<Oid>& oids, uint64_t count,
                       bool used_index, const std::string& plan,
                       const WireQueryStats& stats);
std::string EncodeError(const Status& status);
std::string EncodeBusy(const std::string& message);
std::string EncodePong();
std::string EncodeStats(const Session::Stats& stats);
std::string EncodeStaleMap(uint64_t server_version,
                           const std::string& message);
std::string EncodeShardState(bool active, uint32_t self_index,
                             const std::string& map_blob);

// --------------------------------------------------------------- decoders
/// Both decoders reject empty payloads, ops outside their direction, and
/// any truncated or trailing bytes with `Status::Corruption` — a malformed
/// payload can never be half-decoded.
Result<Request> DecodeRequest(const Slice& payload);
Result<Response> DecodeResponse(const Slice& payload);

/// Reconstructs the `Status` carried by a `kError` response.
Status ErrorResponseToStatus(const Response& response);

}  // namespace net
}  // namespace uindex

#endif  // UINDEX_NET_PROTOCOL_H_
