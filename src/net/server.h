#ifndef UINDEX_NET_SERVER_H_
#define UINDEX_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "db/database.h"
#include "db/session.h"
#include "exec/thread_pool.h"
#include "net/admission.h"
#include "net/conn.h"
#include "net/listener.h"
#include "net/protocol.h"
#include "net/shard_map.h"

namespace uindex {
namespace net {

/// Tuning knobs for a `Server`.
struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral; read the bound port from `port()`.

  /// Workers on the query pool when the server owns it (a borrowed pool —
  /// see `Server::Start` — ignores this).
  size_t worker_threads = 4;

  /// Admission control: at most this many queries execute at once
  /// (0 = the pool's worker count)...
  size_t max_inflight_queries = 0;
  /// ...and at most this many more wait for a slot; beyond that the query
  /// is shed with a typed `kBusy` response.
  size_t max_queued_queries = 64;

  /// Connections above this cap are answered with `kBusy` and closed.
  size_t max_connections = 256;

  /// Per-connection timeouts: `io_timeout_ms` bounds every mid-frame read
  /// and every write (a stall poisons the connection);
  /// `idle_timeout_ms` is how long a connection may sit between requests
  /// before the server drops it.
  int io_timeout_ms = 5000;
  int idle_timeout_ms = 120000;
};

/// A multi-threaded TCP server putting one `Database` behind the wire
/// protocol (net/protocol.h).
///
/// Threading model: one listener thread accepts; every connection gets its
/// own thread and its own `db::Session` (sessions are cheap and not
/// thread-safe — one per client is the intended shape). Query execution is
/// submitted to the shared `exec::ThreadPool`, bounded by admission
/// control; the connection thread blocks on the result future and streams
/// the response. Sessions are deliberately serial (no ExecutionContext):
/// parallelism comes from many queries in flight across pool workers, and
/// a query that itself sharded onto the same pool could deadlock a
/// saturated pool.
///
/// Robustness: malformed frames, CRC mismatches, oversized requests, and
/// mid-frame stalls poison only the offending connection (best-effort
/// `kError`, then close); admission overflow is shed with `kBusy`;
/// `Shutdown` refuses new frames, drains in-flight queries (their
/// responses are delivered), tears down connections, and only then
/// returns — so the caller can safely destroy the database afterwards.
class Server {
 public:
  /// Observability counters (tests and the server binary read these).
  struct Counters {
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> active_connections{0};
    std::atomic<uint64_t> queries_ok{0};
    std::atomic<uint64_t> queries_failed{0};
    std::atomic<uint64_t> busy_rejected{0};
    std::atomic<uint64_t> protocol_errors{0};
    /// Sub-queries rejected for carrying a ShardMap version other than the
    /// installed one (the split/rebalance fence).
    std::atomic<uint64_t> stale_rejected{0};
  };

  /// Binds, listens, and starts the listener thread. `db` must outlive the
  /// server (non-const because `kInstallShard` installs the database's
  /// served code range). A non-null `shared_pool` is borrowed for query
  /// execution (and must outlive the server); otherwise the server owns a
  /// pool of `options.worker_threads` workers.
  static Result<std::unique_ptr<Server>> Start(
      Database* db, ServerOptions options,
      exec::ThreadPool* shared_pool = nullptr);

  /// Graceful shutdown (idempotent): stop accepting, refuse new frames,
  /// drain in-flight queries, tear down connections, join every thread.
  void Shutdown();

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound TCP port (useful with `options.port == 0`).
  uint16_t port() const { return port_; }

  /// Installs `map` with this server as entry `self_index` — the local
  /// equivalent of a `kInstallShard` frame (the server binary uses it to
  /// adopt a map file at startup). Validates the map, refuses version
  /// rollback (`StaleVersion`), and installs the entry's code range as the
  /// database's served range.
  Status InstallShard(const ShardMap& map, uint32_t self_index);

  /// Executes one OQL statement on behalf of a non-binary front end (the
  /// HTTP gateway), through the SAME admission gate and worker pool the
  /// wire protocol uses — an HTTP request and a binary frame compete for
  /// one budget, and a shed on either side lands in `admission()`'s shed
  /// counter. `session` is the caller's accounting scope (one per request
  /// or per connection; not thread-safe). A `ResourceExhausted` beginning
  /// with "busy:" is an admission shed — retryable.
  Result<Database::OqlResult> ExecuteExternal(Session* session,
                                              const std::string& oql);

  /// `ExecuteExternal` for a mutation (the gateway's /v1/dml): the closure
  /// runs on the worker pool under the shared admission budget. The
  /// closure must be self-contained — it is executed exactly once.
  Status ExecuteExternalDml(const std::function<Status()>& dml);

  const Counters& counters() const { return counters_; }

  /// The process-wide admission budget (shared with the HTTP gateway).
  AdmissionGate& admission() { return *admission_; }
  const AdmissionGate& admission() const { return *admission_; }

  Database* db() const { return db_; }

  /// Installed shard identity, for observability (/metrics).
  struct ShardInfo {
    bool active = false;
    uint64_t version = 0;
    uint32_t self_index = 0;
  };
  ShardInfo shard_info() const;

  /// True once a graceful shutdown has begun (new work is being refused).
  bool draining() const { return stopping_.load(std::memory_order_acquire); }

  /// Live connection count right now (drops to 0 after Shutdown).
  size_t active_connections() const {
    return counters_.active_connections.load(std::memory_order_relaxed);
  }

 private:
  struct ConnState {
    std::unique_ptr<Conn> conn;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  Server(Database* db, ServerOptions options,
         exec::ThreadPool* shared_pool);

  void AcceptLoop();
  void ServeConnection(ConnState* state);
  // One decoded request --> one response written (or connection poisoned).
  // Returns false when the connection should close.
  bool HandleRequest(Conn* conn, Session* session, const Request& request);
  // The v4 sharding ops (metadata; not admission-controlled).
  bool HandleInstallShard(Conn* conn, const Request& request);
  bool HandleGetShard(Conn* conn);
  void ReapFinished(bool join_all);

  Database* db_;
  ServerOptions options_;

  // Installed shard identity (kInstallShard). `shard_mu_` also brackets the
  // version fence around sub-query execution: an install cannot commit
  // between a sub-query's pre- and post-execution version checks, so a
  // `kRows` response is always computed entirely under the version it
  // claims.
  mutable std::mutex shard_mu_;
  ShardMap shard_map_;
  uint32_t shard_self_ = 0;
  bool shard_active_ = false;
  exec::ThreadPool* pool_;  // owned_pool_.get() or the borrowed pool.
  std::unique_ptr<exec::ThreadPool> owned_pool_;

  Listener listener_;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex conns_mu_;
  std::list<std::unique_ptr<ConnState>> conns_;

  // One execution budget for every protocol front end (net/admission.h);
  // the HTTP gateway borrows it through `admission()`.
  std::unique_ptr<AdmissionGate> admission_;

  Counters counters_;
  std::once_flag shutdown_once_;
};

}  // namespace net
}  // namespace uindex

#endif  // UINDEX_NET_SERVER_H_
