#ifndef UINDEX_NET_SERVER_H_
#define UINDEX_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "db/database.h"
#include "db/session.h"
#include "exec/thread_pool.h"
#include "net/conn.h"
#include "net/protocol.h"
#include "net/shard_map.h"

namespace uindex {
namespace net {

/// Tuning knobs for a `Server`.
struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral; read the bound port from `port()`.

  /// Workers on the query pool when the server owns it (a borrowed pool —
  /// see `Server::Start` — ignores this).
  size_t worker_threads = 4;

  /// Admission control: at most this many queries execute at once
  /// (0 = the pool's worker count)...
  size_t max_inflight_queries = 0;
  /// ...and at most this many more wait for a slot; beyond that the query
  /// is shed with a typed `kBusy` response.
  size_t max_queued_queries = 64;

  /// Connections above this cap are answered with `kBusy` and closed.
  size_t max_connections = 256;

  /// Per-connection timeouts: `io_timeout_ms` bounds every mid-frame read
  /// and every write (a stall poisons the connection);
  /// `idle_timeout_ms` is how long a connection may sit between requests
  /// before the server drops it.
  int io_timeout_ms = 5000;
  int idle_timeout_ms = 120000;
};

/// A multi-threaded TCP server putting one `Database` behind the wire
/// protocol (net/protocol.h).
///
/// Threading model: one listener thread accepts; every connection gets its
/// own thread and its own `db::Session` (sessions are cheap and not
/// thread-safe — one per client is the intended shape). Query execution is
/// submitted to the shared `exec::ThreadPool`, bounded by admission
/// control; the connection thread blocks on the result future and streams
/// the response. Sessions are deliberately serial (no ExecutionContext):
/// parallelism comes from many queries in flight across pool workers, and
/// a query that itself sharded onto the same pool could deadlock a
/// saturated pool.
///
/// Robustness: malformed frames, CRC mismatches, oversized requests, and
/// mid-frame stalls poison only the offending connection (best-effort
/// `kError`, then close); admission overflow is shed with `kBusy`;
/// `Shutdown` refuses new frames, drains in-flight queries (their
/// responses are delivered), tears down connections, and only then
/// returns — so the caller can safely destroy the database afterwards.
class Server {
 public:
  /// Observability counters (tests and the server binary read these).
  struct Counters {
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> active_connections{0};
    std::atomic<uint64_t> queries_ok{0};
    std::atomic<uint64_t> queries_failed{0};
    std::atomic<uint64_t> busy_rejected{0};
    std::atomic<uint64_t> protocol_errors{0};
    /// Sub-queries rejected for carrying a ShardMap version other than the
    /// installed one (the split/rebalance fence).
    std::atomic<uint64_t> stale_rejected{0};
  };

  /// Binds, listens, and starts the listener thread. `db` must outlive the
  /// server (non-const because `kInstallShard` installs the database's
  /// served code range). A non-null `shared_pool` is borrowed for query
  /// execution (and must outlive the server); otherwise the server owns a
  /// pool of `options.worker_threads` workers.
  static Result<std::unique_ptr<Server>> Start(
      Database* db, ServerOptions options,
      exec::ThreadPool* shared_pool = nullptr);

  /// Graceful shutdown (idempotent): stop accepting, refuse new frames,
  /// drain in-flight queries, tear down connections, join every thread.
  void Shutdown();

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound TCP port (useful with `options.port == 0`).
  uint16_t port() const { return port_; }

  /// Installs `map` with this server as entry `self_index` — the local
  /// equivalent of a `kInstallShard` frame (the server binary uses it to
  /// adopt a map file at startup). Validates the map, refuses version
  /// rollback (`StaleVersion`), and installs the entry's code range as the
  /// database's served range.
  Status InstallShard(const ShardMap& map, uint32_t self_index);

  const Counters& counters() const { return counters_; }

  /// Live connection count right now (drops to 0 after Shutdown).
  size_t active_connections() const {
    return counters_.active_connections.load(std::memory_order_relaxed);
  }

 private:
  struct ConnState {
    std::unique_ptr<Conn> conn;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  Server(Database* db, ServerOptions options,
         exec::ThreadPool* shared_pool);

  Status Listen();
  void AcceptLoop();
  void ServeConnection(ConnState* state);
  // One decoded request --> one response written (or connection poisoned).
  // Returns false when the connection should close.
  bool HandleRequest(Conn* conn, Session* session, const Request& request);
  // The v4 sharding ops (metadata; not admission-controlled).
  bool HandleInstallShard(Conn* conn, const Request& request);
  bool HandleGetShard(Conn* conn);
  void ReapFinished(bool join_all);

  // Admission control for in-flight queries.
  enum class Admission { kAdmitted, kBusy, kShuttingDown };
  Admission AdmitQuery();
  void ReleaseQuery();
  void WaitQueriesDrained();

  Database* db_;
  ServerOptions options_;

  // Installed shard identity (kInstallShard). `shard_mu_` also brackets the
  // version fence around sub-query execution: an install cannot commit
  // between a sub-query's pre- and post-execution version checks, so a
  // `kRows` response is always computed entirely under the version it
  // claims.
  std::mutex shard_mu_;
  ShardMap shard_map_;
  uint32_t shard_self_ = 0;
  bool shard_active_ = false;
  exec::ThreadPool* pool_;  // owned_pool_.get() or the borrowed pool.
  std::unique_ptr<exec::ThreadPool> owned_pool_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex conns_mu_;
  std::list<std::unique_ptr<ConnState>> conns_;

  std::mutex admission_mu_;
  std::condition_variable admission_cv_;
  size_t inflight_ = 0;
  size_t waiting_ = 0;

  Counters counters_;
  std::once_flag shutdown_once_;
};

}  // namespace net
}  // namespace uindex

#endif  // UINDEX_NET_SERVER_H_
