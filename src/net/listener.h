#ifndef UINDEX_NET_LISTENER_H_
#define UINDEX_NET_LISTENER_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace uindex {
namespace net {

/// A bound, listening TCP socket — the bind/listen/getsockname dance that
/// was duplicated across `Server`, `RouterServer`, and would have been a
/// third copy in the HTTP gateway. Port 0 binds ephemeral; `port()` then
/// reports the kernel's choice (the smoke scripts parse it from each
/// binary's "listening on" line, so parallel ctest runs never collide).
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  Listener(Listener&& other) noexcept { *this = std::move(other); }
  Listener& operator=(Listener&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      port_ = other.port_;
      other.fd_ = -1;
      other.port_ = 0;
    }
    return *this;
  }

  /// Resolves `host`, binds `host:port` (SO_REUSEADDR, non-blocking
  /// accept socket), and listens with a backlog of 128.
  Status Open(const std::string& host, uint16_t port);

  /// Waits up to `timeout_ms` for a connection and accepts one. Returns
  /// the connected fd, or -1 when the wait timed out / nothing acceptable
  /// arrived (callers poll in a loop and re-check their stop flag).
  int AcceptOnce(int timeout_ms);

  void Close();

  bool open() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace net
}  // namespace uindex

#endif  // UINDEX_NET_LISTENER_H_
