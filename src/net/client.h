#ifndef UINDEX_NET_CLIENT_H_
#define UINDEX_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "db/session.h"
#include "net/conn.h"
#include "net/protocol.h"
#include "net/shard_map.h"
#include "objects/object.h"
#include "util/status.h"

namespace uindex {
namespace net {

/// A blocking client for the U-index wire protocol.
///
/// `Connect` dials the server and completes the `kHello`/`kWelcome`
/// handshake; after that each method is one request/response round trip.
/// Not thread-safe — one client per thread, mirroring the server's
/// one-session-per-connection model.
///
/// Error mapping: a `kError` response reconstructs the server-side
/// `Status` (so a remote parse error surfaces with the same caret
/// diagnostics as a local one); a `kBusy` response becomes
/// `ResourceExhausted("server busy: ...")` — retryable by the caller; any
/// transport or framing failure poisons the client (subsequent calls fail
/// fast with the same sticky error).
class Client {
 public:
  /// A remote query result: the same shape `Database::ExecuteOql` returns,
  /// plus the per-query stats delta the server attributed to it.
  struct QueryResult {
    std::vector<Oid> oids;
    uint64_t count = 0;
    bool used_index = false;
    std::string plan;
    WireQueryStats stats;
  };

  /// Dials `host:port` and performs the protocol handshake.
  /// `timeout_ms` bounds the connect and every subsequent I/O wait.
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 uint16_t port,
                                                 int timeout_ms = 5000);

  /// Executes OQL remotely. Server-side failures come back as the original
  /// `Status`; shed queries as `ResourceExhausted("server busy: ...")`.
  Result<QueryResult> Query(const std::string& oql);

  /// Executes a version-fenced shard sub-query (`kShardQuery`). A
  /// `kStaleMap` rejection becomes `Status::StaleVersion`, with the
  /// server's installed version written to `*server_version` (if non-null)
  /// so the caller knows what to refresh to.
  Result<QueryResult> ShardQuery(uint64_t map_version, const std::string& oql,
                                 uint64_t* server_version = nullptr);

  /// A server's installed shard identity (`kGetShard`/`kInstallShard`).
  struct ShardState {
    bool active = false;
    uint32_t self_index = 0;
    ShardMap map;  ///< Meaningful only when `active`.
  };

  /// Installs `map` on the server as shard `self_index` of it.
  Result<ShardState> InstallShard(const ShardMap& map, uint32_t self_index);

  /// Fetches the server's installed shard identity.
  Result<ShardState> GetShard();

  /// Round-trip liveness check.
  Status Ping();

  /// The server-side `Session::Stats` for this connection.
  Result<Session::Stats> SessionStats();

  /// Sends `kGoodbye` and closes. Called by the destructor; safe to call
  /// early or twice.
  void Close();

  ~Client();

  /// False once a transport or framing failure has poisoned this client
  /// (every further call would fail fast) — a connection pool's eviction
  /// test.
  bool healthy() const { return conn_ != nullptr && poisoned_.ok(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

 private:
  explicit Client(std::unique_ptr<Conn> conn) : conn_(std::move(conn)) {}

  // One request frame out, one response frame back. Transport errors
  // stick in `poisoned_`.
  Result<Response> RoundTrip(const std::string& request);

  std::unique_ptr<Conn> conn_;
  Status poisoned_ = Status::OK();
  int timeout_ms_ = 5000;
};

}  // namespace net
}  // namespace uindex

#endif  // UINDEX_NET_CLIENT_H_
