#include "net/conn.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "util/framing.h"

namespace uindex {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::ResourceExhausted(std::string(what) + ": " +
                                   std::strerror(errno));
}

Status PollFd(int fd, short events, int timeout_ms, const char* what) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  for (;;) {
    const int n = ::poll(&pfd, 1, timeout_ms);
    if (n > 0) return Status::OK();
    if (n == 0) {
      return Status::ResourceExhausted(std::string(what) + " timeout");
    }
    if (errno == EINTR) continue;
    return Errno(what);
  }
}

}  // namespace

Conn::Conn(int fd) : fd_(fd) {
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // The timeout logic polls, so the descriptor must be non-blocking no
  // matter how it was produced (Dial already is; accepted fds may not be).
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
}

Conn::~Conn() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<Conn>> Conn::Dial(const std::string& host,
                                         uint16_t port,
                                         int connect_timeout_ms) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string port_text = std::to_string(port);
  if (::getaddrinfo(host.c_str(), port_text.c_str(), &hints, &res) != 0 ||
      res == nullptr) {
    return Status::InvalidArgument("cannot resolve " + host);
  }
  Status last = Status::ResourceExhausted("no addresses for " + host);
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd =
        ::socket(ai->ai_family, ai->ai_socktype | SOCK_NONBLOCK, 0);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) != 0 &&
        errno != EINPROGRESS) {
      last = Errno("connect");
      ::close(fd);
      continue;
    }
    Status wait = PollFd(fd, POLLOUT, connect_timeout_ms, "connect");
    if (!wait.ok()) {
      last = std::move(wait);
      ::close(fd);
      continue;
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0 ||
        err != 0) {
      last = Status::ResourceExhausted(std::string("connect: ") +
                                       std::strerror(err != 0 ? err : errno));
      ::close(fd);
      continue;
    }
    ::freeaddrinfo(res);
    return std::make_unique<Conn>(fd);
  }
  ::freeaddrinfo(res);
  return last;
}

Status Conn::WaitReadable(int timeout_ms) {
  return PollFd(fd_, POLLIN, timeout_ms, "read");
}

Status Conn::WaitWritable(int timeout_ms) {
  return PollFd(fd_, POLLOUT, timeout_ms, "write");
}

Status Conn::WriteFrame(const Slice& payload) {
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  AppendFrame(payload, &frame);
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      UINDEX_RETURN_IF_ERROR(WaitWritable(io_timeout_ms_));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::OK();
}

Status Conn::ReadFully(char* buf, size_t n, int first_timeout_ms,
                       bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  size_t got = 0;
  int timeout = first_timeout_ms;
  while (got < n) {
    const ssize_t r = ::recv(fd_, buf + got, n - got, 0);
    if (r > 0) {
      got += static_cast<size_t>(r);
      timeout = io_timeout_ms_;
      continue;
    }
    if (r == 0) {
      if (got == 0 && clean_eof != nullptr) {
        *clean_eof = true;
        return Status::OK();
      }
      return Status::Corruption("peer closed mid-frame");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      UINDEX_RETURN_IF_ERROR(WaitReadable(timeout));
      timeout = io_timeout_ms_;
      continue;
    }
    if (errno == EINTR) continue;
    return Errno("recv");
  }
  return Status::OK();
}

Result<ReadOutcome> Conn::ReadFrame(std::string* payload, uint32_t max_len,
                                    int idle_timeout_ms) {
  char header_bytes[kFrameHeaderSize];
  // The first byte of the header is bounded by the idle window; once any
  // byte arrives the peer committed to a frame and the io timeout applies.
  bool clean_eof = false;
  size_t got = 0;
  {
    const ssize_t r = ::recv(fd_, header_bytes, sizeof(header_bytes), 0);
    if (r > 0) {
      got = static_cast<size_t>(r);
    } else if (r == 0) {
      return ReadOutcome::kClosed;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      Status wait = WaitReadable(idle_timeout_ms);
      if (!wait.ok()) return ReadOutcome::kIdleTimeout;
    } else if (errno != EINTR) {
      return Errno("recv");
    }
  }
  UINDEX_RETURN_IF_ERROR(ReadFully(header_bytes + got,
                                   sizeof(header_bytes) - got,
                                   io_timeout_ms_, got == 0 ? &clean_eof
                                                            : nullptr));
  if (clean_eof) return ReadOutcome::kClosed;
  const FrameHeader header = DecodeFrameHeader(header_bytes);
  UINDEX_RETURN_IF_ERROR(CheckFrameLength(header, max_len));
  payload->resize(header.len);
  UINDEX_RETURN_IF_ERROR(
      ReadFully(payload->data(), header.len, io_timeout_ms_, nullptr));
  UINDEX_RETURN_IF_ERROR(VerifyFramePayload(header, Slice(*payload)));
  return ReadOutcome::kFrame;
}

void Conn::ShutdownBoth() { ::shutdown(fd_, SHUT_RDWR); }

}  // namespace net
}  // namespace uindex
