#include "net/server.h"

#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace uindex {
namespace net {

namespace {

// How often the accept loop wakes to check the stopping flag and reap
// finished connection threads.
constexpr int kAcceptTickMs = 200;

// Per-query delta between two session-stat snapshots.
WireQueryStats StatsDelta(const Session::Stats& before,
                          const Session::Stats& after) {
  WireQueryStats d;
  d.pages_read = after.pages_read - before.pages_read;
  d.nodes_parsed = after.nodes_parsed - before.nodes_parsed;
  d.node_cache_hits = after.node_cache_hits - before.node_cache_hits;
  d.prefetch_issued = after.prefetch_issued - before.prefetch_issued;
  d.prefetch_hits = after.prefetch_hits - before.prefetch_hits;
  d.prefetch_wasted = after.prefetch_wasted - before.prefetch_wasted;
  d.pool_hits = after.pool_hits - before.pool_hits;
  d.pool_misses = after.pool_misses - before.pool_misses;
  d.evictions = after.evictions - before.evictions;
  d.writebacks = after.writebacks - before.writebacks;
  d.epochs_published = after.epochs_published - before.epochs_published;
  d.pages_cow = after.pages_cow - before.pages_cow;
  d.commit_batches = after.commit_batches - before.commit_batches;
  d.commit_records = after.commit_records - before.commit_records;
  // Gauge: report the session's current watermark, not a difference.
  d.reader_pin_max_age_us = after.reader_pin_max_age_us;
  return d;
}

}  // namespace

Server::Server(Database* db, ServerOptions options,
               exec::ThreadPool* shared_pool)
    : db_(db), options_(std::move(options)) {
  if (shared_pool != nullptr) {
    pool_ = shared_pool;
  } else {
    owned_pool_ = std::make_unique<exec::ThreadPool>(
        options_.worker_threads == 0 ? 1 : options_.worker_threads);
    pool_ = owned_pool_.get();
  }
  if (options_.max_inflight_queries == 0) {
    options_.max_inflight_queries = pool_->size();
  }
  admission_ = std::make_unique<AdmissionGate>(options_.max_inflight_queries,
                                               options_.max_queued_queries);
}

Result<std::unique_ptr<Server>> Server::Start(Database* db,
                                              ServerOptions options,
                                              exec::ThreadPool* shared_pool) {
  std::unique_ptr<Server> server(
      new Server(db, std::move(options), shared_pool));
  UINDEX_RETURN_IF_ERROR(
      server->listener_.Open(server->options_.host, server->options_.port));
  server->port_ = server->listener_.port();
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

Server::~Server() { Shutdown(); }

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = listener_.AcceptOnce(kAcceptTickMs);
    ReapFinished(/*join_all=*/false);
    if (fd < 0) continue;
    if (active_connections() >= options_.max_connections) {
      // Over the connection cap: typed rejection, then close.
      Conn reject(fd);
      reject.set_io_timeout_ms(options_.io_timeout_ms);
      reject.WriteFrame(Slice(EncodeBusy("too many connections")));
      counters_.busy_rejected.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    counters_.accepted.fetch_add(1, std::memory_order_relaxed);
    counters_.active_connections.fetch_add(1, std::memory_order_relaxed);
    auto state = std::make_unique<ConnState>();
    state->conn = std::make_unique<Conn>(fd);
    state->conn->set_io_timeout_ms(options_.io_timeout_ms);
    ConnState* raw = state.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(state));
    }
    raw->thread = std::thread([this, raw] { ServeConnection(raw); });
  }
}

void Server::ServeConnection(ConnState* state) {
  Conn* conn = state->conn.get();
  Session session(db_);
  std::string payload;
  for (;;) {
    Result<ReadOutcome> outcome =
        conn->ReadFrame(&payload, kMaxRequestFrame, options_.idle_timeout_ms);
    if (!outcome.ok()) {
      // Torn frame, CRC mismatch, oversize, or mid-frame stall: poison this
      // connection only — best-effort error, then close.
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      conn->WriteFrame(Slice(EncodeError(outcome.status())));
      break;
    }
    if (outcome.value() != ReadOutcome::kFrame) break;  // closed or idle
    if (stopping_.load(std::memory_order_acquire)) {
      conn->WriteFrame(Slice(
          EncodeError(Status::ResourceExhausted("server shutting down"))));
      break;
    }
    Result<Request> request = DecodeRequest(Slice(payload));
    if (!request.ok()) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      conn->WriteFrame(Slice(EncodeError(request.status())));
      break;
    }
    if (!HandleRequest(conn, &session, request.value())) break;
  }
  conn->ShutdownBoth();
  counters_.active_connections.fetch_sub(1, std::memory_order_relaxed);
  state->done.store(true, std::memory_order_release);
}

bool Server::HandleRequest(Conn* conn, Session* session,
                           const Request& request) {
  switch (request.op) {
    case Op::kHello: {
      if (request.version != kProtocolVersion) {
        conn->WriteFrame(Slice(EncodeError(Status::InvalidArgument(
            "protocol version mismatch: client " +
            std::to_string(request.version) + ", server " +
            std::to_string(kProtocolVersion)))));
        return false;
      }
      return conn->WriteFrame(Slice(EncodeWelcome())).ok();
    }
    case Op::kPing:
      return conn->WriteFrame(Slice(EncodePong())).ok();
    case Op::kSessionStats:
      return conn->WriteFrame(Slice(EncodeStats(session->stats()))).ok();
    case Op::kGoodbye:
      return false;
    case Op::kInstallShard:
      return HandleInstallShard(conn, request);
    case Op::kGetShard:
      return HandleGetShard(conn);
    case Op::kQuery:
      break;
    case Op::kShardQuery: {
      // Version fence, first half: a sub-query compiled against a ShardMap
      // other than the installed one must never run — the served ranges it
      // assumed are not the ones this database enforces.
      std::lock_guard<std::mutex> lock(shard_mu_);
      if (!shard_active_ || shard_map_.version != request.map_version) {
        counters_.stale_rejected.fetch_add(1, std::memory_order_relaxed);
        const uint64_t installed = shard_active_ ? shard_map_.version : 0;
        return conn
            ->WriteFrame(Slice(EncodeStaleMap(
                installed,
                shard_active_
                    ? "sub-query map version " +
                          std::to_string(request.map_version) +
                          " != installed " + std::to_string(installed)
                    : "no shard map installed")))
            .ok();
      }
      break;
    }
    default:
      // DecodeRequest already rejected unknown ops; response ops cannot
      // reach here.
      return false;
  }

  switch (admission_->Admit()) {
    case AdmissionGate::Outcome::kShuttingDown:
      conn->WriteFrame(Slice(
          EncodeError(Status::ResourceExhausted("server shutting down"))));
      return false;
    case AdmissionGate::Outcome::kBusy:
      counters_.busy_rejected.fetch_add(1, std::memory_order_relaxed);
      return conn
          ->WriteFrame(Slice(EncodeBusy(
              "query shed by admission control; retry later")))
          .ok();
    case AdmissionGate::Outcome::kAdmitted:
      break;
  }

  // Execute on the shared pool; this thread blocks on the handle. The
  // session is handed to exactly one worker at a time, so its serial
  // contract holds. Admission is released only after the response hits the
  // socket — that is what lets Shutdown's drain guarantee delivery.
  const Session::Stats before = session->stats();
  exec::Future<Result<Database::OqlResult>> future =
      pool_->Submit([session, oql = request.oql] {
        return session->ExecuteOql(oql);
      });
  Result<Database::OqlResult> result = future.Take();

  std::string response;
  if (result.ok() && request.op == Op::kShardQuery) {
    // Version fence, second half: if an install committed while the
    // sub-query ran, the result may mix served ranges — discard it and let
    // the router refresh and retry the whole scatter. Installs hold
    // shard_mu_ across both the range swap and the version bump, so a
    // version unchanged here proves the query ran under the map it named.
    std::lock_guard<std::mutex> lock(shard_mu_);
    if (!shard_active_ || shard_map_.version != request.map_version) {
      counters_.stale_rejected.fetch_add(1, std::memory_order_relaxed);
      response = EncodeStaleMap(shard_active_ ? shard_map_.version : 0,
                                "shard map changed during sub-query");
    }
  }
  if (!response.empty()) {
    // Fell through the fence above; drop the result.
  } else if (result.ok()) {
    counters_.queries_ok.fetch_add(1, std::memory_order_relaxed);
    const Database::OqlResult& rows = result.value();
    response = EncodeRows(rows.oids, rows.count, rows.used_index, rows.plan,
                          StatsDelta(before, session->stats()));
  } else {
    counters_.queries_failed.fetch_add(1, std::memory_order_relaxed);
    response = EncodeError(result.status());
  }
  const Status write = conn->WriteFrame(Slice(response));
  admission_->Release();
  return write.ok();
}

Result<Database::OqlResult> Server::ExecuteExternal(Session* session,
                                                    const std::string& oql) {
  switch (admission_->Admit()) {
    case AdmissionGate::Outcome::kShuttingDown:
      return Status::ResourceExhausted("server shutting down");
    case AdmissionGate::Outcome::kBusy:
      counters_.busy_rejected.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "busy: query shed by admission control; retry later");
    case AdmissionGate::Outcome::kAdmitted:
      break;
  }
  exec::Future<Result<Database::OqlResult>> future =
      pool_->Submit([session, &oql] { return session->ExecuteOql(oql); });
  Result<Database::OqlResult> result = future.Take();
  if (result.ok()) {
    counters_.queries_ok.fetch_add(1, std::memory_order_relaxed);
  } else {
    counters_.queries_failed.fetch_add(1, std::memory_order_relaxed);
  }
  admission_->Release();
  return result;
}

Status Server::ExecuteExternalDml(const std::function<Status()>& dml) {
  switch (admission_->Admit()) {
    case AdmissionGate::Outcome::kShuttingDown:
      return Status::ResourceExhausted("server shutting down");
    case AdmissionGate::Outcome::kBusy:
      counters_.busy_rejected.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "busy: mutation shed by admission control; retry later");
    case AdmissionGate::Outcome::kAdmitted:
      break;
  }
  exec::Future<Status> future = pool_->Submit([&dml] { return dml(); });
  const Status result = future.Take();
  if (result.ok()) {
    counters_.queries_ok.fetch_add(1, std::memory_order_relaxed);
  } else {
    counters_.queries_failed.fetch_add(1, std::memory_order_relaxed);
  }
  admission_->Release();
  return result;
}

Server::ShardInfo Server::shard_info() const {
  std::lock_guard<std::mutex> lock(shard_mu_);
  ShardInfo info;
  info.active = shard_active_;
  info.version = shard_active_ ? shard_map_.version : 0;
  info.self_index = shard_self_;
  return info;
}

Status Server::InstallShard(const ShardMap& map, uint32_t self_index) {
  UINDEX_RETURN_IF_ERROR(map.Validate());
  if (self_index >= map.entries.size()) {
    return Status::InvalidArgument(
        "self index " + std::to_string(self_index) + " out of range for " +
        std::to_string(map.entries.size()) + " shards");
  }
  std::lock_guard<std::mutex> lock(shard_mu_);
  if (shard_active_ && map.version < shard_map_.version) {
    // Versions only move forward; an old map is an operator error (or a
    // replayed frame) and must not roll the partitioning back.
    return Status::StaleVersion(
        "install carries version " + std::to_string(map.version) +
        " < installed " + std::to_string(shard_map_.version));
  }
  db_->SetServedRange(
      {map.entries[self_index].lo, map.HiOf(self_index), map.version});
  shard_map_ = map;
  shard_self_ = self_index;
  shard_active_ = true;
  return Status::OK();
}

bool Server::HandleInstallShard(Conn* conn, const Request& request) {
  Result<ShardMap> map = ShardMap::DecodeBlob(Slice(request.map_blob));
  if (!map.ok()) {
    return conn->WriteFrame(Slice(EncodeError(map.status()))).ok();
  }
  const Status installed = InstallShard(map.value(), request.self_index);
  if (!installed.ok()) {
    return conn->WriteFrame(Slice(EncodeError(installed))).ok();
  }
  return conn
      ->WriteFrame(
          Slice(EncodeShardState(true, request.self_index, request.map_blob)))
      .ok();
}

bool Server::HandleGetShard(Conn* conn) {
  std::lock_guard<std::mutex> lock(shard_mu_);
  std::string blob;
  if (shard_active_) shard_map_.EncodeBlob(&blob);
  return conn
      ->WriteFrame(Slice(EncodeShardState(shard_active_, shard_self_, blob)))
      .ok();
}

void Server::ReapFinished(bool join_all) {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (join_all || (*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    // 1. Refuse new work: connections see `stopping_` on their next frame,
    //    admission waiters wake and bail, the accept loop exits.
    stopping_.store(true, std::memory_order_release);
    admission_->BeginShutdown();
    if (accept_thread_.joinable()) accept_thread_.join();
    // 2. Drain: every admitted query finishes AND its response reaches the
    //    socket before this returns (Release runs post-write).
    admission_->WaitDrained();
    // 3. Tear down: unblock readers parked in ReadFrame, then join.
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (const auto& state : conns_) state->conn->ShutdownBoth();
    }
    ReapFinished(/*join_all=*/true);
    listener_.Close();
    // The owned pool (if any) dies with the server, after all users.
  });
}

}  // namespace net
}  // namespace uindex
