#ifndef UINDEX_NET_CONN_H_
#define UINDEX_NET_CONN_H_

#include <cstdint>
#include <memory>
#include <string>

#include "util/slice.h"
#include "util/status.h"

namespace uindex {
namespace net {

/// Outcome of `Conn::ReadFrame` when no transport or framing error
/// occurred.
enum class ReadOutcome {
  kFrame,        ///< One verified frame is in `*payload`.
  kClosed,       ///< Peer closed cleanly at a frame boundary.
  kIdleTimeout,  ///< No first byte arrived within the idle window.
};

/// One TCP connection speaking the framed wire protocol.
///
/// A `Conn` owns its file descriptor and provides blocking, timeout-bounded
/// frame I/O. It is used by exactly one thread at a time for reads and one
/// for writes (the server's connection thread does both; `ShutdownBoth` is
/// the only cross-thread entry point, used to unblock a reader during
/// server shutdown).
///
/// Timeout model: `ReadFrame` waits up to `idle_timeout_ms` for the first
/// byte of a frame (an idle connection is not an error — the server loops),
/// then up to `io_timeout_ms` for every subsequent chunk; a stall mid-frame
/// is `ResourceExhausted` and poisons the connection. Writes are bounded by
/// `io_timeout_ms` per chunk. CRC mismatches and frames above `max_len`
/// are `Corruption` — the shared framing policy (util/framing.h).
class Conn {
 public:
  /// Takes ownership of a connected socket. Sets TCP_NODELAY (the protocol
  /// is request/response with small frames) and ignores SIGPIPE per-write.
  explicit Conn(int fd);
  ~Conn();

  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  /// Connects to `host:port` (numeric or resolvable host) within
  /// `connect_timeout_ms`.
  static Result<std::unique_ptr<Conn>> Dial(const std::string& host,
                                            uint16_t port,
                                            int connect_timeout_ms);

  void set_io_timeout_ms(int ms) { io_timeout_ms_ = ms; }
  int io_timeout_ms() const { return io_timeout_ms_; }

  /// Writes one `[len][crc][payload]` frame.
  Status WriteFrame(const Slice& payload);

  /// Reads one frame into `*payload`, enforcing `max_len` and the CRC.
  /// Errors: `Corruption` (oversized header, CRC mismatch, torn frame —
  /// peer closed mid-frame), `ResourceExhausted` (mid-frame stall or I/O
  /// error).
  Result<ReadOutcome> ReadFrame(std::string* payload, uint32_t max_len,
                                int idle_timeout_ms);

  /// Half-closes both directions, unblocking any thread inside ReadFrame
  /// (it observes `kClosed`/an error on its next wait). Safe to call from
  /// another thread, and more than once.
  void ShutdownBoth();

  int fd() const { return fd_; }

 private:
  // Waits until `fd_` is readable/writable or `timeout_ms` passes.
  // Returns OK, ResourceExhausted("timeout"), or ResourceExhausted(err).
  Status WaitReadable(int timeout_ms);
  Status WaitWritable(int timeout_ms);

  // Reads exactly `n` bytes into `buf`; first byte bounded by
  // `first_timeout_ms` (pass io_timeout_ms_ for mid-frame reads).
  // `*peer_closed` is set when EOF arrives before any byte.
  Status ReadFully(char* buf, size_t n, int first_timeout_ms,
                   bool* clean_eof);

  int fd_;
  int io_timeout_ms_ = 5000;
};

}  // namespace net
}  // namespace uindex

#endif  // UINDEX_NET_CONN_H_
