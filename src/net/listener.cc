#include "net/listener.h"

#include <errno.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace uindex {
namespace net {

Status Listener::Open(const std::string& host, uint16_t port) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  struct addrinfo* res = nullptr;
  const std::string port_text = std::to_string(port);
  if (::getaddrinfo(host.c_str(), port_text.c_str(), &hints, &res) != 0 ||
      res == nullptr) {
    return Status::InvalidArgument("cannot resolve " + host);
  }
  Status last = Status::ResourceExhausted("no addresses for " + host);
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_NONBLOCK, 0);
    if (fd < 0) continue;
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 ||
        ::listen(fd, 128) != 0) {
      last = Status::ResourceExhausted(std::string("bind/listen: ") +
                                       std::strerror(errno));
      ::close(fd);
      continue;
    }
    struct sockaddr_storage bound;
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                      &bound_len) == 0) {
      if (bound.ss_family == AF_INET) {
        port_ = ntohs(reinterpret_cast<struct sockaddr_in*>(&bound)->sin_port);
      } else if (bound.ss_family == AF_INET6) {
        port_ =
            ntohs(reinterpret_cast<struct sockaddr_in6*>(&bound)->sin6_port);
      }
    }
    fd_ = fd;
    ::freeaddrinfo(res);
    return Status::OK();
  }
  ::freeaddrinfo(res);
  return last;
}

int Listener::AcceptOnce(int timeout_ms) {
  if (fd_ < 0) return -1;
  struct pollfd pfd;
  pfd.fd = fd_;
  pfd.events = POLLIN;
  pfd.revents = 0;
  if (::poll(&pfd, 1, timeout_ms) <= 0) return -1;
  return ::accept(fd_, nullptr, nullptr);
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace net
}  // namespace uindex
