#ifndef UINDEX_NET_ADMISSION_H_
#define UINDEX_NET_ADMISSION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace uindex {
namespace net {

/// One bounded execution budget shared by every front end of a process.
///
/// Factored out of `Server` (PR 4) so the HTTP gateway (src/http/) and the
/// binary protocol draw from the SAME budget: at most `max_inflight`
/// requests execute at once, at most `max_queued` more wait for a slot,
/// and anything beyond that is shed with a typed rejection (`kBusy` on the
/// wire, 429 over HTTP). A shed caused by binary-protocol load is
/// therefore observable on the HTTP side and vice versa — there is one
/// gate, not one per protocol.
///
/// Shutdown protocol: `BeginShutdown` wakes every queued waiter (they
/// return `kShuttingDown`) and refuses new admissions; `WaitDrained`
/// blocks until every admitted request has released — callers release only
/// after the response reaches the socket, which is what makes a drain a
/// delivery guarantee.
class AdmissionGate {
 public:
  enum class Outcome { kAdmitted, kBusy, kShuttingDown };

  AdmissionGate(size_t max_inflight, size_t max_queued)
      : max_inflight_(max_inflight == 0 ? 1 : max_inflight),
        max_queued_(max_queued) {}

  AdmissionGate(const AdmissionGate&) = delete;
  AdmissionGate& operator=(const AdmissionGate&) = delete;

  /// Takes one execution slot, waiting in the bounded queue if none is
  /// free. `kBusy` when the queue is full, `kShuttingDown` during drain.
  Outcome Admit() {
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      return Outcome::kShuttingDown;
    }
    if (inflight_ < max_inflight_) {
      ++inflight_;
      admitted_total_.fetch_add(1, std::memory_order_relaxed);
      return Outcome::kAdmitted;
    }
    if (waiting_ >= max_queued_) {
      shed_total_.fetch_add(1, std::memory_order_relaxed);
      return Outcome::kBusy;
    }
    ++waiting_;
    cv_.wait(lock, [&] {
      return stopping_.load(std::memory_order_acquire) ||
             inflight_ < max_inflight_;
    });
    --waiting_;
    if (stopping_.load(std::memory_order_acquire)) {
      return Outcome::kShuttingDown;
    }
    ++inflight_;
    admitted_total_.fetch_add(1, std::memory_order_relaxed);
    return Outcome::kAdmitted;
  }

  /// Returns an admitted slot. Call strictly after the response was
  /// written (or abandoned) — the drain guarantee depends on it.
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      --inflight_;
    }
    cv_.notify_all();
  }

  /// Refuses new admissions and wakes queued waiters. Idempotent.
  void BeginShutdown() {
    stopping_.store(true, std::memory_order_release);
    cv_.notify_all();
  }

  /// Blocks until every admitted request has released its slot.
  void WaitDrained() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return inflight_ == 0; });
  }

  // ------------------------------------------------ observability gauges
  size_t inflight() const {
    std::lock_guard<std::mutex> lock(mu_);
    return inflight_;
  }
  size_t waiting() const {
    std::lock_guard<std::mutex> lock(mu_);
    return waiting_;
  }
  size_t max_inflight() const { return max_inflight_; }
  size_t max_queued() const { return max_queued_; }
  /// Requests shed with `kBusy` across ALL protocols sharing this gate.
  uint64_t shed_total() const {
    return shed_total_.load(std::memory_order_relaxed);
  }
  uint64_t admitted_total() const {
    return admitted_total_.load(std::memory_order_relaxed);
  }

 private:
  const size_t max_inflight_;
  const size_t max_queued_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t inflight_ = 0;
  size_t waiting_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> shed_total_{0};
  std::atomic<uint64_t> admitted_total_{0};
};

}  // namespace net
}  // namespace uindex

#endif  // UINDEX_NET_ADMISSION_H_
