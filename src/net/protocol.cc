#include "net/protocol.h"

#include <cstring>

#include "util/coding.h"

namespace uindex {
namespace net {

namespace {

void PutString(std::string* out, const std::string& s) {
  PutFixed32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

Status ReadString(const Slice& blob, size_t* pos, std::string* out) {
  if (*pos + 4 > blob.size()) return Status::Corruption("truncated string");
  const uint32_t len = DecodeFixed32(blob.data() + *pos);
  *pos += 4;
  if (len > blob.size() || *pos + len > blob.size()) {
    return Status::Corruption("truncated string");
  }
  out->assign(blob.data() + *pos, len);
  *pos += len;
  return Status::OK();
}

Status ReadU32(const Slice& blob, size_t* pos, uint32_t* out) {
  if (*pos + 4 > blob.size()) return Status::Corruption("truncated u32");
  *out = DecodeFixed32(blob.data() + *pos);
  *pos += 4;
  return Status::OK();
}

Status ReadU64(const Slice& blob, size_t* pos, uint64_t* out) {
  if (*pos + 8 > blob.size()) return Status::Corruption("truncated u64");
  *out = DecodeFixed64(blob.data() + *pos);
  *pos += 8;
  return Status::OK();
}

Status ReadU8(const Slice& blob, size_t* pos, uint8_t* out) {
  if (*pos + 1 > blob.size()) return Status::Corruption("truncated u8");
  *out = static_cast<uint8_t>(blob[*pos]);
  *pos += 1;
  return Status::OK();
}

Status CheckDone(const Slice& blob, size_t pos) {
  if (pos != blob.size()) {
    return Status::Corruption("trailing bytes in message");
  }
  return Status::OK();
}

std::string OpOnly(Op op) {
  std::string out;
  out.push_back(static_cast<char>(op));
  return out;
}

}  // namespace

std::string EncodeHello() {
  std::string out = OpOnly(Op::kHello);
  out.append(kProtocolMagic, sizeof(kProtocolMagic));
  PutFixed32(&out, kProtocolVersion);
  return out;
}

std::string EncodeQuery(const std::string& oql) {
  std::string out = OpOnly(Op::kQuery);
  PutString(&out, oql);
  return out;
}

std::string EncodePing() { return OpOnly(Op::kPing); }
std::string EncodeSessionStatsRequest() {
  return OpOnly(Op::kSessionStats);
}
std::string EncodeGoodbye() { return OpOnly(Op::kGoodbye); }

std::string EncodeShardQuery(uint64_t map_version, const std::string& oql) {
  std::string out = OpOnly(Op::kShardQuery);
  PutFixed64(&out, map_version);
  PutString(&out, oql);
  return out;
}

std::string EncodeInstallShard(uint32_t self_index,
                               const std::string& map_blob) {
  std::string out = OpOnly(Op::kInstallShard);
  PutFixed32(&out, self_index);
  PutString(&out, map_blob);
  return out;
}

std::string EncodeGetShard() { return OpOnly(Op::kGetShard); }

std::string EncodeWelcome() {
  std::string out = OpOnly(Op::kWelcome);
  PutFixed32(&out, kProtocolVersion);
  return out;
}

std::string EncodeRows(const std::vector<Oid>& oids, uint64_t count,
                       bool used_index, const std::string& plan,
                       const WireQueryStats& stats) {
  std::string out = OpOnly(Op::kRows);
  PutFixed64(&out, count);
  out.push_back(used_index ? 1 : 0);
  PutString(&out, plan);
  PutFixed64(&out, stats.pages_read);
  PutFixed64(&out, stats.nodes_parsed);
  PutFixed64(&out, stats.node_cache_hits);
  PutFixed64(&out, stats.prefetch_issued);
  PutFixed64(&out, stats.prefetch_hits);
  PutFixed64(&out, stats.prefetch_wasted);
  PutFixed64(&out, stats.pool_hits);
  PutFixed64(&out, stats.pool_misses);
  PutFixed64(&out, stats.evictions);
  PutFixed64(&out, stats.writebacks);
  PutFixed64(&out, stats.epochs_published);
  PutFixed64(&out, stats.pages_cow);
  PutFixed64(&out, stats.commit_batches);
  PutFixed64(&out, stats.commit_records);
  PutFixed64(&out, stats.reader_pin_max_age_us);
  PutFixed32(&out, static_cast<uint32_t>(oids.size()));
  for (const Oid oid : oids) PutFixed32(&out, oid);
  return out;
}

std::string EncodeError(const Status& status) {
  std::string out = OpOnly(Op::kError);
  out.push_back(static_cast<char>(status.code()));
  PutString(&out, status.message());
  return out;
}

std::string EncodeBusy(const std::string& message) {
  std::string out = OpOnly(Op::kBusy);
  PutString(&out, message);
  return out;
}

std::string EncodePong() { return OpOnly(Op::kPong); }

std::string EncodeStaleMap(uint64_t server_version,
                           const std::string& message) {
  std::string out = OpOnly(Op::kStaleMap);
  PutFixed64(&out, server_version);
  PutString(&out, message);
  return out;
}

std::string EncodeShardState(bool active, uint32_t self_index,
                             const std::string& map_blob) {
  std::string out = OpOnly(Op::kShardState);
  out.push_back(active ? 1 : 0);
  PutFixed32(&out, self_index);
  PutString(&out, map_blob);
  return out;
}

std::string EncodeStats(const Session::Stats& stats) {
  std::string out = OpOnly(Op::kStats);
  PutFixed64(&out, stats.queries);
  PutFixed64(&out, stats.failed);
  PutFixed64(&out, stats.rows);
  PutFixed64(&out, stats.pages_read);
  PutFixed64(&out, stats.nodes_parsed);
  PutFixed64(&out, stats.node_cache_hits);
  PutFixed64(&out, stats.prefetch_issued);
  PutFixed64(&out, stats.prefetch_hits);
  PutFixed64(&out, stats.prefetch_wasted);
  PutFixed64(&out, stats.pool_hits);
  PutFixed64(&out, stats.pool_misses);
  PutFixed64(&out, stats.evictions);
  PutFixed64(&out, stats.writebacks);
  PutFixed64(&out, stats.epochs_published);
  PutFixed64(&out, stats.pages_cow);
  PutFixed64(&out, stats.commit_batches);
  PutFixed64(&out, stats.commit_records);
  PutFixed64(&out, stats.reader_pin_max_age_us);
  return out;
}

Result<Request> DecodeRequest(const Slice& payload) {
  if (payload.empty()) return Status::Corruption("empty request frame");
  Request r;
  r.op = static_cast<Op>(static_cast<uint8_t>(payload[0]));
  size_t pos = 1;
  switch (r.op) {
    case Op::kHello: {
      if (payload.size() < 1 + sizeof(kProtocolMagic)) {
        return Status::Corruption("truncated hello");
      }
      if (std::memcmp(payload.data() + 1, kProtocolMagic,
                      sizeof(kProtocolMagic)) != 0) {
        return Status::Corruption("bad protocol magic");
      }
      pos += sizeof(kProtocolMagic);
      UINDEX_RETURN_IF_ERROR(ReadU32(payload, &pos, &r.version));
      break;
    }
    case Op::kQuery:
      UINDEX_RETURN_IF_ERROR(ReadString(payload, &pos, &r.oql));
      break;
    case Op::kShardQuery:
      UINDEX_RETURN_IF_ERROR(ReadU64(payload, &pos, &r.map_version));
      UINDEX_RETURN_IF_ERROR(ReadString(payload, &pos, &r.oql));
      break;
    case Op::kInstallShard:
      UINDEX_RETURN_IF_ERROR(ReadU32(payload, &pos, &r.self_index));
      UINDEX_RETURN_IF_ERROR(ReadString(payload, &pos, &r.map_blob));
      break;
    case Op::kPing:
    case Op::kSessionStats:
    case Op::kGoodbye:
    case Op::kGetShard:
      break;
    default:
      return Status::Corruption("unknown request op " +
                                std::to_string(static_cast<int>(r.op)));
  }
  UINDEX_RETURN_IF_ERROR(CheckDone(payload, pos));
  return r;
}

Result<Response> DecodeResponse(const Slice& payload) {
  if (payload.empty()) return Status::Corruption("empty response frame");
  Response r;
  r.op = static_cast<Op>(static_cast<uint8_t>(payload[0]));
  size_t pos = 1;
  switch (r.op) {
    case Op::kWelcome:
      UINDEX_RETURN_IF_ERROR(ReadU32(payload, &pos, &r.version));
      break;
    case Op::kRows: {
      UINDEX_RETURN_IF_ERROR(ReadU64(payload, &pos, &r.count));
      uint8_t used = 0;
      UINDEX_RETURN_IF_ERROR(ReadU8(payload, &pos, &used));
      r.used_index = used != 0;
      UINDEX_RETURN_IF_ERROR(ReadString(payload, &pos, &r.plan));
      UINDEX_RETURN_IF_ERROR(
          ReadU64(payload, &pos, &r.query_stats.pages_read));
      UINDEX_RETURN_IF_ERROR(
          ReadU64(payload, &pos, &r.query_stats.nodes_parsed));
      UINDEX_RETURN_IF_ERROR(
          ReadU64(payload, &pos, &r.query_stats.node_cache_hits));
      UINDEX_RETURN_IF_ERROR(
          ReadU64(payload, &pos, &r.query_stats.prefetch_issued));
      UINDEX_RETURN_IF_ERROR(
          ReadU64(payload, &pos, &r.query_stats.prefetch_hits));
      UINDEX_RETURN_IF_ERROR(
          ReadU64(payload, &pos, &r.query_stats.prefetch_wasted));
      UINDEX_RETURN_IF_ERROR(
          ReadU64(payload, &pos, &r.query_stats.pool_hits));
      UINDEX_RETURN_IF_ERROR(
          ReadU64(payload, &pos, &r.query_stats.pool_misses));
      UINDEX_RETURN_IF_ERROR(
          ReadU64(payload, &pos, &r.query_stats.evictions));
      UINDEX_RETURN_IF_ERROR(
          ReadU64(payload, &pos, &r.query_stats.writebacks));
      UINDEX_RETURN_IF_ERROR(
          ReadU64(payload, &pos, &r.query_stats.epochs_published));
      UINDEX_RETURN_IF_ERROR(
          ReadU64(payload, &pos, &r.query_stats.pages_cow));
      UINDEX_RETURN_IF_ERROR(
          ReadU64(payload, &pos, &r.query_stats.commit_batches));
      UINDEX_RETURN_IF_ERROR(
          ReadU64(payload, &pos, &r.query_stats.commit_records));
      UINDEX_RETURN_IF_ERROR(
          ReadU64(payload, &pos, &r.query_stats.reader_pin_max_age_us));
      uint32_t n = 0;
      UINDEX_RETURN_IF_ERROR(ReadU32(payload, &pos, &n));
      if (payload.size() - pos < static_cast<size_t>(n) * 4) {
        return Status::Corruption("truncated oid list");
      }
      r.oids.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        r.oids.push_back(DecodeFixed32(payload.data() + pos));
        pos += 4;
      }
      break;
    }
    case Op::kError:
      UINDEX_RETURN_IF_ERROR(ReadU8(payload, &pos, &r.error_code));
      UINDEX_RETURN_IF_ERROR(ReadString(payload, &pos, &r.message));
      break;
    case Op::kBusy:
      UINDEX_RETURN_IF_ERROR(ReadString(payload, &pos, &r.message));
      break;
    case Op::kStaleMap:
      UINDEX_RETURN_IF_ERROR(ReadU64(payload, &pos, &r.map_version));
      UINDEX_RETURN_IF_ERROR(ReadString(payload, &pos, &r.message));
      break;
    case Op::kShardState: {
      uint8_t active = 0;
      UINDEX_RETURN_IF_ERROR(ReadU8(payload, &pos, &active));
      r.shard_active = active != 0;
      UINDEX_RETURN_IF_ERROR(ReadU32(payload, &pos, &r.self_index));
      UINDEX_RETURN_IF_ERROR(ReadString(payload, &pos, &r.map_blob));
      break;
    }
    case Op::kPong:
      break;
    case Op::kStats:
      UINDEX_RETURN_IF_ERROR(ReadU64(payload, &pos, &r.session_stats.queries));
      UINDEX_RETURN_IF_ERROR(ReadU64(payload, &pos, &r.session_stats.failed));
      UINDEX_RETURN_IF_ERROR(ReadU64(payload, &pos, &r.session_stats.rows));
      UINDEX_RETURN_IF_ERROR(
          ReadU64(payload, &pos, &r.session_stats.pages_read));
      UINDEX_RETURN_IF_ERROR(
          ReadU64(payload, &pos, &r.session_stats.nodes_parsed));
      UINDEX_RETURN_IF_ERROR(
          ReadU64(payload, &pos, &r.session_stats.node_cache_hits));
      UINDEX_RETURN_IF_ERROR(
          ReadU64(payload, &pos, &r.session_stats.prefetch_issued));
      UINDEX_RETURN_IF_ERROR(
          ReadU64(payload, &pos, &r.session_stats.prefetch_hits));
      UINDEX_RETURN_IF_ERROR(
          ReadU64(payload, &pos, &r.session_stats.prefetch_wasted));
      UINDEX_RETURN_IF_ERROR(
          ReadU64(payload, &pos, &r.session_stats.pool_hits));
      UINDEX_RETURN_IF_ERROR(
          ReadU64(payload, &pos, &r.session_stats.pool_misses));
      UINDEX_RETURN_IF_ERROR(
          ReadU64(payload, &pos, &r.session_stats.evictions));
      UINDEX_RETURN_IF_ERROR(
          ReadU64(payload, &pos, &r.session_stats.writebacks));
      UINDEX_RETURN_IF_ERROR(
          ReadU64(payload, &pos, &r.session_stats.epochs_published));
      UINDEX_RETURN_IF_ERROR(
          ReadU64(payload, &pos, &r.session_stats.pages_cow));
      UINDEX_RETURN_IF_ERROR(
          ReadU64(payload, &pos, &r.session_stats.commit_batches));
      UINDEX_RETURN_IF_ERROR(
          ReadU64(payload, &pos, &r.session_stats.commit_records));
      UINDEX_RETURN_IF_ERROR(
          ReadU64(payload, &pos, &r.session_stats.reader_pin_max_age_us));
      break;
    default:
      return Status::Corruption("unknown response op " +
                                std::to_string(static_cast<int>(r.op)));
  }
  UINDEX_RETURN_IF_ERROR(CheckDone(payload, pos));
  return r;
}

Status ErrorResponseToStatus(const Response& response) {
  switch (static_cast<Status::Code>(response.error_code)) {
    case Status::Code::kNotFound:
      return Status::NotFound(response.message);
    case Status::Code::kCorruption:
      return Status::Corruption(response.message);
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(response.message);
    case Status::Code::kAlreadyExists:
      return Status::AlreadyExists(response.message);
    case Status::Code::kNotSupported:
      return Status::NotSupported(response.message);
    case Status::Code::kResourceExhausted:
      return Status::ResourceExhausted(response.message);
    case Status::Code::kUnavailable:
      return Status::Unavailable(response.message);
    case Status::Code::kStaleVersion:
      return Status::StaleVersion(response.message);
    case Status::Code::kCycleDetected:
      return Status::CycleDetected(response.message);
    case Status::Code::kOk:
      break;
  }
  return Status::Corruption("error response with non-error code");
}

}  // namespace net
}  // namespace uindex
