#include "net/shard_map.h"

#include <algorithm>
#include <cstdio>

#include "util/coding.h"
#include "util/framing.h"

namespace uindex {
namespace net {

namespace {

/// Frame limit for the on-disk map record; a map is tiny, anything bigger
/// is damage.
constexpr uint32_t kMaxMapFrame = 1u << 20;

void PutString(std::string* out, const std::string& s) {
  PutFixed32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

Status ReadString(const Slice& blob, size_t* pos, std::string* out) {
  if (*pos + 4 > blob.size()) return Status::Corruption("truncated string");
  const uint32_t len = DecodeFixed32(blob.data() + *pos);
  *pos += 4;
  if (len > blob.size() || *pos + len > blob.size()) {
    return Status::Corruption("truncated string");
  }
  out->assign(blob.data() + *pos, len);
  *pos += len;
  return Status::OK();
}

}  // namespace

Status ShardMap::Validate() const {
  if (entries.empty()) return Status::InvalidArgument("shard map is empty");
  if (!entries[0].lo.empty()) {
    return Status::InvalidArgument(
        "shard map must cover the whole code space (first lo must be \"\")");
  }
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].host.empty()) {
      return Status::InvalidArgument("shard map entry has no host");
    }
    if (i > 0 && !(Slice(entries[i - 1].lo) < Slice(entries[i].lo))) {
      return Status::InvalidArgument(
          "shard map boundaries must be strictly increasing");
    }
  }
  return Status::OK();
}

std::string ShardMap::HiOf(size_t i) const {
  return i + 1 < entries.size() ? entries[i + 1].lo : std::string();
}

size_t ShardMap::ShardFor(const Slice& code) const {
  size_t i = entries.size() - 1;
  while (i > 0 && code < Slice(entries[i].lo)) --i;
  return i;
}

std::vector<std::string> ShardMap::Boundaries() const {
  std::vector<std::string> out;
  out.reserve(entries.size());
  for (const Entry& e : entries) out.push_back(e.lo);
  return out;
}

void ShardMap::EncodeBlob(std::string* out) const {
  PutFixed64(out, version);
  PutFixed32(out, static_cast<uint32_t>(entries.size()));
  for (const Entry& e : entries) {
    PutString(out, e.lo);
    PutString(out, e.host);
    PutFixed32(out, e.port);
  }
}

Result<ShardMap> ShardMap::DecodeBlob(const Slice& blob) {
  ShardMap map;
  size_t pos = 0;
  if (blob.size() < 12) return Status::Corruption("truncated shard map");
  map.version = DecodeFixed64(blob.data());
  const uint32_t n = DecodeFixed32(blob.data() + 8);
  pos = 12;
  // Each entry is at least 12 bytes; an absurd count is rejected before
  // any allocation.
  if (n > blob.size() / 12) return Status::Corruption("shard map count");
  map.entries.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    UINDEX_RETURN_IF_ERROR(ReadString(blob, &pos, &map.entries[i].lo));
    UINDEX_RETURN_IF_ERROR(ReadString(blob, &pos, &map.entries[i].host));
    if (pos + 4 > blob.size()) return Status::Corruption("truncated port");
    const uint32_t port = DecodeFixed32(blob.data() + pos);
    pos += 4;
    if (port > UINT16_MAX) return Status::Corruption("shard port range");
    map.entries[i].port = static_cast<uint16_t>(port);
  }
  if (pos != blob.size()) {
    return Status::Corruption("trailing bytes in shard map");
  }
  UINDEX_RETURN_IF_ERROR(map.Validate());
  return map;
}

Status ShardMap::Save(const std::string& path) const {
  UINDEX_RETURN_IF_ERROR(Validate());
  std::string blob;
  EncodeBlob(&blob);
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return Status::InvalidArgument("cannot create " + tmp);
  }
  Status s = WriteFrameToFile(file, Slice(blob));
  if (s.ok() && std::fflush(file) != 0) {
    s = Status::ResourceExhausted("flush failed for " + tmp);
  }
  std::fclose(file);
  if (s.ok() && std::rename(tmp.c_str(), path.c_str()) != 0) {
    s = Status::ResourceExhausted("rename failed for " + path);
  }
  if (!s.ok()) std::remove(tmp.c_str());
  return s;
}

Result<ShardMap> ShardMap::Load(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::NotFound("no shard map at " + path);
  std::string payload;
  Result<FrameRead> read = ReadFrameFromFile(file, &payload, kMaxMapFrame);
  std::fclose(file);
  if (!read.ok()) return read.status();
  if (read.value() != FrameRead::kFrame) {
    return Status::Corruption("shard map file holds no complete record");
  }
  return DecodeBlob(Slice(payload));
}

}  // namespace net
}  // namespace uindex
