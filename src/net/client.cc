#include "net/client.h"

#include <utility>

namespace uindex {
namespace net {

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                uint16_t port,
                                                int timeout_ms) {
  Result<std::unique_ptr<Conn>> conn = Conn::Dial(host, port, timeout_ms);
  UINDEX_RETURN_IF_ERROR(conn.status());
  conn.value()->set_io_timeout_ms(timeout_ms);
  std::unique_ptr<Client> client(new Client(std::move(conn).value()));
  client->timeout_ms_ = timeout_ms;
  Result<Response> hello = client->RoundTrip(EncodeHello());
  UINDEX_RETURN_IF_ERROR(hello.status());
  const Response& welcome = hello.value();
  if (welcome.op == Op::kError) return ErrorResponseToStatus(welcome);
  if (welcome.op == Op::kBusy) {
    return Status::ResourceExhausted("server busy: " + welcome.message);
  }
  if (welcome.op != Op::kWelcome) {
    return Status::Corruption("handshake: expected kWelcome");
  }
  if (welcome.version != kProtocolVersion) {
    return Status::InvalidArgument(
        "protocol version mismatch: server " +
        std::to_string(welcome.version) + ", client " +
        std::to_string(kProtocolVersion));
  }
  return client;
}

Client::~Client() { Close(); }

void Client::Close() {
  if (conn_ == nullptr) return;
  if (poisoned_.ok()) conn_->WriteFrame(Slice(EncodeGoodbye()));
  conn_->ShutdownBoth();
  conn_.reset();
}

Result<Response> Client::RoundTrip(const std::string& request) {
  if (conn_ == nullptr) return Status::InvalidArgument("client closed");
  if (!poisoned_.ok()) return poisoned_;
  Status sent = conn_->WriteFrame(Slice(request));
  if (!sent.ok()) {
    poisoned_ = sent;
    return sent;
  }
  std::string payload;
  Result<ReadOutcome> outcome =
      conn_->ReadFrame(&payload, kMaxResponseFrame, timeout_ms_);
  if (!outcome.ok()) {
    poisoned_ = outcome.status();
    return poisoned_;
  }
  if (outcome.value() != ReadOutcome::kFrame) {
    poisoned_ = Status::ResourceExhausted(
        outcome.value() == ReadOutcome::kClosed
            ? "server closed the connection"
            : "response timeout");
    return poisoned_;
  }
  Result<Response> response = DecodeResponse(Slice(payload));
  if (!response.ok()) poisoned_ = response.status();
  return response;
}

Result<Client::QueryResult> Client::Query(const std::string& oql) {
  Result<Response> result = RoundTrip(EncodeQuery(oql));
  UINDEX_RETURN_IF_ERROR(result.status());
  Response& response = result.value();
  switch (response.op) {
    case Op::kRows: {
      QueryResult out;
      out.oids = std::move(response.oids);
      out.count = response.count;
      out.used_index = response.used_index;
      out.plan = std::move(response.plan);
      out.stats = response.query_stats;
      return out;
    }
    case Op::kBusy:
      return Status::ResourceExhausted("server busy: " + response.message);
    case Op::kError:
      return ErrorResponseToStatus(response);
    default:
      poisoned_ = Status::Corruption("unexpected response to kQuery");
      return poisoned_;
  }
}

Result<Client::QueryResult> Client::ShardQuery(uint64_t map_version,
                                               const std::string& oql,
                                               uint64_t* server_version) {
  Result<Response> result = RoundTrip(EncodeShardQuery(map_version, oql));
  UINDEX_RETURN_IF_ERROR(result.status());
  Response& response = result.value();
  switch (response.op) {
    case Op::kRows: {
      QueryResult out;
      out.oids = std::move(response.oids);
      out.count = response.count;
      out.used_index = response.used_index;
      out.plan = std::move(response.plan);
      out.stats = response.query_stats;
      return out;
    }
    case Op::kStaleMap:
      if (server_version != nullptr) *server_version = response.map_version;
      return Status::StaleVersion(response.message);
    case Op::kBusy:
      return Status::ResourceExhausted("server busy: " + response.message);
    case Op::kError:
      return ErrorResponseToStatus(response);
    default:
      poisoned_ = Status::Corruption("unexpected response to kShardQuery");
      return poisoned_;
  }
}

namespace {

Result<Client::ShardState> ShardStateFrom(Response* response) {
  Client::ShardState out;
  out.active = response->shard_active;
  out.self_index = response->self_index;
  if (out.active) {
    Result<ShardMap> map = ShardMap::DecodeBlob(Slice(response->map_blob));
    UINDEX_RETURN_IF_ERROR(map.status());
    out.map = std::move(map).value();
  }
  return out;
}

}  // namespace

Result<Client::ShardState> Client::InstallShard(const ShardMap& map,
                                                uint32_t self_index) {
  std::string blob;
  map.EncodeBlob(&blob);
  Result<Response> result = RoundTrip(EncodeInstallShard(self_index, blob));
  UINDEX_RETURN_IF_ERROR(result.status());
  Response& response = result.value();
  if (response.op == Op::kError) return ErrorResponseToStatus(response);
  if (response.op != Op::kShardState) {
    poisoned_ = Status::Corruption("unexpected response to kInstallShard");
    return poisoned_;
  }
  return ShardStateFrom(&response);
}

Result<Client::ShardState> Client::GetShard() {
  Result<Response> result = RoundTrip(EncodeGetShard());
  UINDEX_RETURN_IF_ERROR(result.status());
  Response& response = result.value();
  if (response.op == Op::kError) return ErrorResponseToStatus(response);
  if (response.op != Op::kShardState) {
    poisoned_ = Status::Corruption("unexpected response to kGetShard");
    return poisoned_;
  }
  return ShardStateFrom(&response);
}

Status Client::Ping() {
  Result<Response> result = RoundTrip(EncodePing());
  UINDEX_RETURN_IF_ERROR(result.status());
  const Response& response = result.value();
  if (response.op == Op::kError) return ErrorResponseToStatus(response);
  if (response.op != Op::kPong) {
    poisoned_ = Status::Corruption("unexpected response to kPing");
    return poisoned_;
  }
  return Status::OK();
}

Result<Session::Stats> Client::SessionStats() {
  Result<Response> result = RoundTrip(EncodeSessionStatsRequest());
  UINDEX_RETURN_IF_ERROR(result.status());
  const Response& response = result.value();
  if (response.op == Op::kError) return ErrorResponseToStatus(response);
  if (response.op != Op::kStats) {
    poisoned_ = Status::Corruption("unexpected response to kSessionStats");
    return poisoned_;
  }
  return response.session_stats;
}

}  // namespace net
}  // namespace uindex
