#include "net/router.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "exec/shard_route.h"

namespace uindex {
namespace net {

namespace {

std::string EndpointKey(const std::string& host, uint16_t port) {
  return host + ":" + std::to_string(port);
}

// Sums `sub` into `total`; reader_pin_max_age_us is a gauge, so take the
// max.
void AccumulateStats(const WireQueryStats& sub, WireQueryStats* total) {
  total->pages_read += sub.pages_read;
  total->nodes_parsed += sub.nodes_parsed;
  total->node_cache_hits += sub.node_cache_hits;
  total->prefetch_issued += sub.prefetch_issued;
  total->prefetch_hits += sub.prefetch_hits;
  total->prefetch_wasted += sub.prefetch_wasted;
  total->pool_hits += sub.pool_hits;
  total->pool_misses += sub.pool_misses;
  total->evictions += sub.evictions;
  total->writebacks += sub.writebacks;
  total->epochs_published += sub.epochs_published;
  total->pages_cow += sub.pages_cow;
  total->commit_batches += sub.commit_batches;
  total->commit_records += sub.commit_records;
  total->reader_pin_max_age_us =
      std::max(total->reader_pin_max_age_us, sub.reader_pin_max_age_us);
}

}  // namespace

Result<std::unique_ptr<Router>> Router::Create(ShardMap map,
                                               const Database* planner,
                                               RouterOptions options) {
  UINDEX_RETURN_IF_ERROR(map.Validate());
  if (planner == nullptr) {
    return Status::InvalidArgument("router needs a planning database");
  }
  return std::unique_ptr<Router>(
      new Router(std::move(map), planner, std::move(options)));
}

Router::Router(ShardMap map, const Database* planner, RouterOptions options)
    : planner_(planner), options_(std::move(options)), map_(std::move(map)) {
  const size_t workers =
      options_.fanout_threads != 0
          ? options_.fanout_threads
          : std::max<size_t>(8, 2 * map_.entries.size());
  fanout_ = std::make_unique<exec::ThreadPool>(workers);
}

Router::~Router() {
  // The fan-out pool drains before the connection pool dies.
  fanout_.reset();
}

ShardMap Router::CurrentMap() const {
  std::lock_guard<std::mutex> lock(map_mu_);
  return map_;
}

std::unique_ptr<Client> Router::AcquireClient(const std::string& host,
                                              uint16_t port, Status* error) {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    auto it = idle_.find(EndpointKey(host, port));
    if (it != idle_.end() && !it->second.empty()) {
      std::unique_ptr<Client> client = std::move(it->second.back());
      it->second.pop_back();
      return client;
    }
  }
  Result<std::unique_ptr<Client>> dialed =
      Client::Connect(host, port, options_.subquery_timeout_ms);
  if (!dialed.ok()) {
    *error = dialed.status();
    return nullptr;
  }
  counters_.conns_created.fetch_add(1, std::memory_order_relaxed);
  return std::move(dialed).value();
}

void Router::ReleaseClient(const std::string& host, uint16_t port,
                           std::unique_ptr<Client> client) {
  if (client == nullptr) return;
  if (!client->healthy()) {
    // A transport failure sticks to the connection; returning it would
    // fail the next sub-query too. Drop it — the next acquire re-dials.
    counters_.conns_evicted.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::lock_guard<std::mutex> lock(pool_mu_);
  idle_[EndpointKey(host, port)].push_back(std::move(client));
}

Router::SubResult Router::RunSubQuery(const ShardMap& map, size_t shard,
                                      const std::string& oql) {
  SubResult out;
  out.shard = shard;
  const ShardMap::Entry& entry = map.entries[shard];
  Status dial;
  std::unique_ptr<Client> client =
      AcquireClient(entry.host, entry.port, &dial);
  if (client == nullptr) {
    out.result = dial;
    return out;
  }
  uint64_t server_version = 0;
  Result<Client::QueryResult> r =
      client->ShardQuery(map.version, oql, &server_version);
  if (!r.ok() && r.status().IsStaleVersion()) {
    out.stale = true;
    out.server_version = server_version;
  }
  out.result = std::move(r);
  ReleaseClient(entry.host, entry.port, std::move(client));
  return out;
}

Status Router::RefreshMap() {
  // Prefer the operator-maintained map file; fall back to asking the
  // shards themselves (the map is exchangeable over the wire), adopting
  // the highest installed version any of them reports.
  ShardMap fresh;
  bool have_fresh = false;
  if (!options_.map_path.empty()) {
    Result<ShardMap> loaded = ShardMap::Load(options_.map_path);
    if (loaded.ok()) {
      fresh = std::move(loaded).value();
      have_fresh = true;
    } else if (!loaded.status().IsNotFound()) {
      return loaded.status();
    }
  }
  if (!have_fresh) {
    const ShardMap current = CurrentMap();
    for (const ShardMap::Entry& entry : current.entries) {
      Status dial;
      std::unique_ptr<Client> client =
          AcquireClient(entry.host, entry.port, &dial);
      if (client == nullptr) continue;  // Best effort; others may answer.
      Result<Client::ShardState> state = client->GetShard();
      ReleaseClient(entry.host, entry.port, std::move(client));
      if (!state.ok() || !state.value().active) continue;
      if (!have_fresh || state.value().map.version > fresh.version) {
        fresh = std::move(state).value().map;
        have_fresh = true;
      }
    }
  }
  if (!have_fresh) {
    return Status::Unavailable("no shard map source answered the refresh");
  }
  UINDEX_RETURN_IF_ERROR(fresh.Validate());
  std::lock_guard<std::mutex> lock(map_mu_);
  if (fresh.version > map_.version) map_ = std::move(fresh);
  return Status::OK();
}

Result<Router::QueryOutcome> Router::Query(const std::string& oql) {
  // Plan locally: parse errors and unknown names fail here, before any
  // bytes hit the wire, with the same diagnostics a single node gives.
  Result<Database::RoutingPlan> plan = planner_->PlanOqlRouting(oql);
  if (!plan.ok()) {
    counters_.queries_failed.fetch_add(1, std::memory_order_relaxed);
    return plan.status();
  }

  for (int attempt = 0; attempt <= options_.max_stale_retries; ++attempt) {
    const ShardMap map = CurrentMap();
    const std::vector<size_t> candidates =
        exec::CandidateShards(plan.value().code_spans, map.Boundaries());
    counters_.shards_pruned.fetch_add(map.entries.size() - candidates.size(),
                                      std::memory_order_relaxed);
    if (candidates.empty()) {
      // No shard range intersects the query's code spans (possible only
      // for degenerate spans); an empty result is the correct answer.
      QueryOutcome out;
      out.used_index = plan.value().used_index;
      out.plan = plan.value().plan + " over 0/" +
                 std::to_string(map.entries.size()) + " shards (v" +
                 std::to_string(map.version) + ")";
      counters_.queries_ok.fetch_add(1, std::memory_order_relaxed);
      return out;
    }

    // Scatter... Every future is joined before anything else happens —
    // including the stale-retry path, which is what "drain in-flight
    // old-version sub-queries before refreshing" means.
    std::vector<exec::Future<SubResult>> futures;
    futures.reserve(candidates.size());
    for (const size_t shard : candidates) {
      counters_.subqueries_sent.fetch_add(1, std::memory_order_relaxed);
      futures.push_back(fanout_->Submit(
          [this, &map, shard, &oql] { return RunSubQuery(map, shard, oql); }));
    }
    std::vector<SubResult> subs;
    subs.reserve(futures.size());
    for (exec::Future<SubResult>& f : futures) subs.push_back(f.Take());

    // ...gather.
    bool any_stale = false;
    const SubResult* failed = nullptr;
    for (const SubResult& sub : subs) {
      if (sub.stale) {
        any_stale = true;
      } else if (!sub.result.ok() && failed == nullptr) {
        failed = &sub;
      }
    }
    if (any_stale) {
      // A split/rebalance moved the map under us. Refresh and rerun the
      // whole scatter: results computed under the old version are
      // discarded, never mixed across versions.
      counters_.stale_retries.fetch_add(1, std::memory_order_relaxed);
      const Status refreshed = RefreshMap();
      if (!refreshed.ok() && attempt == options_.max_stale_retries) {
        counters_.queries_failed.fetch_add(1, std::memory_order_relaxed);
        return refreshed;
      }
      // The installer may still be mid-rollout (map file ahead of the
      // servers, or vice versa); give it a beat before retrying.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    if (failed != nullptr) {
      const ShardMap::Entry& entry = map.entries[failed->shard];
      counters_.partial_failures.fetch_add(1, std::memory_order_relaxed);
      counters_.queries_failed.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable(
          "shard " + std::to_string(failed->shard) + " (" + entry.host +
          ":" + std::to_string(entry.port) +
          ") failed: " + failed->result.status().ToString() +
          "; partial results discarded");
    }

    // Merge. Served-range enforcement makes shard row sets disjoint, so
    // the sorted union of sorted streams is exactly the single-node row
    // set; counts and stats sum.
    QueryOutcome out;
    out.shards_queried = subs.size();
    out.used_index = true;
    for (SubResult& sub : subs) {
      Client::QueryResult& r = sub.result.value();
      out.count += r.count;
      out.used_index = out.used_index && r.used_index;
      AccumulateStats(r.stats, &out.stats);
      out.oids.insert(out.oids.end(), r.oids.begin(), r.oids.end());
    }
    std::sort(out.oids.begin(), out.oids.end());
    if (plan.value().limit != 0 && out.oids.size() > plan.value().limit) {
      // Each shard already applied LIMIT locally (capping its stream);
      // the merged stream re-applies it for the global cut.
      out.oids.resize(plan.value().limit);
    }
    out.plan = plan.value().plan + " over " + std::to_string(subs.size()) +
               "/" + std::to_string(map.entries.size()) + " shards (v" +
               std::to_string(map.version) + ")";
    counters_.queries_ok.fetch_add(1, std::memory_order_relaxed);
    return out;
  }

  counters_.queries_failed.fetch_add(1, std::memory_order_relaxed);
  return Status::Unavailable(
      "shard map still stale after " +
      std::to_string(options_.max_stale_retries) + " refreshes");
}

}  // namespace net
}  // namespace uindex
