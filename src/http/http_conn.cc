#include "http/http_conn.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace uindex {
namespace http {

namespace {

Status Errno(const char* what) {
  return Status::ResourceExhausted(std::string(what) + ": " +
                                   std::strerror(errno));
}

Status PollFd(int fd, short events, int timeout_ms, const char* what) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  for (;;) {
    const int n = ::poll(&pfd, 1, timeout_ms);
    if (n > 0) return Status::OK();
    if (n == 0) {
      return Status::ResourceExhausted(std::string(what) + " timeout");
    }
    if (errno == EINTR) continue;
    return Errno(what);
  }
}

std::string Lowercase(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

// Strips optional whitespace around a header value (RFC 9110 field-value
// OWS).
std::string TrimOws(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

}  // namespace

const char* StatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

HttpConn::HttpConn(int fd, HttpConnLimits limits)
    : fd_(fd), limits_(limits) {
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
}

HttpConn::~HttpConn() {
  if (fd_ >= 0) ::close(fd_);
}

void HttpConn::ShutdownBoth() { ::shutdown(fd_, SHUT_RDWR); }

Status HttpConn::FillBuffer(int timeout_ms, bool* eof) {
  *eof = false;
  char chunk[4096];
  for (;;) {
    const ssize_t r = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (r > 0) {
      buffer_.append(chunk, static_cast<size_t>(r));
      return Status::OK();
    }
    if (r == 0) {
      *eof = true;
      return Status::OK();
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      UINDEX_RETURN_IF_ERROR(PollFd(fd_, POLLIN, timeout_ms, "read"));
      continue;
    }
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

HttpConn::Outcome HttpConn::ReadRequest(HttpRequest* request,
                                        int* http_status,
                                        std::string* error) {
  *request = HttpRequest();
  *http_status = 400;
  error->clear();

  // ---- head: request line + headers, bounded by max_header_bytes -------
  size_t head_end = std::string::npos;
  bool started = !buffer_.empty();  // Pipelined bytes already count.
  for (;;) {
    head_end = buffer_.find("\r\n\r\n");
    if (head_end != std::string::npos) break;
    if (buffer_.size() > limits_.max_header_bytes) {
      *http_status = 431;
      *error = "request head exceeds " +
               std::to_string(limits_.max_header_bytes) + " bytes";
      return Outcome::kBadRequest;
    }
    bool eof = false;
    // Before the first byte the peer is merely idle; once a request has
    // started, a stall is a slow-loris and gets the (shorter) io timeout.
    const int timeout =
        started ? limits_.io_timeout_ms : limits_.idle_timeout_ms;
    const Status st = FillBuffer(timeout, &eof);
    if (!st.ok()) {
      if (!started) return Outcome::kIdleTimeout;
      *http_status = 408;
      *error = "timed out mid-request (slow read)";
      return Outcome::kBadRequest;
    }
    if (eof) {
      if (!started) return Outcome::kClosed;
      *error = "peer closed mid-request head";
      return Outcome::kBadRequest;
    }
    started = true;
  }
  if (head_end > limits_.max_header_bytes) {
    *http_status = 431;
    *error = "request head exceeds " +
             std::to_string(limits_.max_header_bytes) + " bytes";
    return Outcome::kBadRequest;
  }

  const std::string head = buffer_.substr(0, head_end);
  buffer_.erase(0, head_end + 4);

  // ---- request line ----------------------------------------------------
  const size_t line_end = head.find("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    *error = "malformed request line: \"" + request_line + "\"";
    return Outcome::kBadRequest;
  }
  request->method = request_line.substr(0, sp1);
  request->target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = request_line.substr(sp2 + 1);
  if (version == "HTTP/1.1") {
    request->http_1_0 = false;
  } else if (version == "HTTP/1.0") {
    request->http_1_0 = true;
  } else {
    *error = "unsupported HTTP version: \"" + version + "\"";
    return Outcome::kBadRequest;
  }
  if (request->method.empty() || request->target.empty() ||
      request->target[0] != '/') {
    *error = "malformed request line: \"" + request_line + "\"";
    return Outcome::kBadRequest;
  }

  // ---- headers ---------------------------------------------------------
  size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string line = head.substr(pos, eol - pos);
    pos = eol + 2;
    const size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      *error = "malformed header line: \"" + line + "\"";
      return Outcome::kBadRequest;
    }
    if (request->headers.size() >= limits_.max_header_count) {
      *http_status = 431;
      *error = "more than " + std::to_string(limits_.max_header_count) +
               " headers";
      return Outcome::kBadRequest;
    }
    request->headers.emplace_back(Lowercase(line.substr(0, colon)),
                                  TrimOws(line.substr(colon + 1)));
  }

  // ---- framing: Content-Length only (chunked is a typed 501) -----------
  if (request->FindHeader("transfer-encoding") != nullptr) {
    *http_status = 501;
    *error = "Transfer-Encoding is not supported; use Content-Length";
    return Outcome::kBadRequest;
  }
  size_t content_length = 0;
  if (const std::string* cl = request->FindHeader("content-length")) {
    if (cl->empty() || cl->size() > 12 ||
        cl->find_first_not_of("0123456789") != std::string::npos) {
      *error = "malformed Content-Length: \"" + *cl + "\"";
      return Outcome::kBadRequest;
    }
    content_length = static_cast<size_t>(std::stoull(*cl));
  }
  if (content_length > limits_.max_body_bytes) {
    *http_status = 413;
    *error = "body of " + std::to_string(content_length) +
             " bytes exceeds limit " +
             std::to_string(limits_.max_body_bytes);
    return Outcome::kBadRequest;
  }

  // ---- body ------------------------------------------------------------
  while (buffer_.size() < content_length) {
    bool eof = false;
    const Status st = FillBuffer(limits_.io_timeout_ms, &eof);
    if (!st.ok()) {
      *http_status = 408;
      *error = "timed out reading body (got " +
               std::to_string(buffer_.size()) + " of " +
               std::to_string(content_length) + " bytes)";
      return Outcome::kBadRequest;
    }
    if (eof) {
      *error = "peer closed with truncated body (got " +
               std::to_string(buffer_.size()) + " of " +
               std::to_string(content_length) + " bytes)";
      return Outcome::kBadRequest;
    }
  }
  request->body = buffer_.substr(0, content_length);
  buffer_.erase(0, content_length);

  // ---- keep-alive ------------------------------------------------------
  request->keep_alive = !request->http_1_0;
  if (const std::string* conn = request->FindHeader("connection")) {
    const std::string token = Lowercase(TrimOws(*conn));
    if (token == "close") request->keep_alive = false;
    if (token == "keep-alive") request->keep_alive = true;
  }
  return Outcome::kRequest;
}

Status HttpConn::WriteResponse(int status, const std::string& content_type,
                               const std::string& body, bool keep_alive) {
  std::string out;
  out.reserve(128 + body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += StatusReason(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n\r\n";
  out += body;
  size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      UINDEX_RETURN_IF_ERROR(
          PollFd(fd_, POLLOUT, limits_.io_timeout_ms, "write"));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::OK();
}

}  // namespace http
}  // namespace uindex
