#include "http/http_client.h"

#include <errno.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace uindex {
namespace http {

namespace {

Status Errno(const char* what) {
  return Status::ResourceExhausted(std::string(what) + ": " +
                                   std::strerror(errno));
}

Status PollFd(int fd, short events, int timeout_ms, const char* what) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  for (;;) {
    const int n = ::poll(&pfd, 1, timeout_ms);
    if (n > 0) return Status::OK();
    if (n == 0) {
      return Status::ResourceExhausted(std::string(what) + " timeout");
    }
    if (errno == EINTR) continue;
    return Errno(what);
  }
}

std::string Lowercase(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return s;
}

}  // namespace

Result<std::unique_ptr<HttpClient>> HttpClient::Connect(
    const std::string& host, uint16_t port, int timeout_ms) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string port_text = std::to_string(port);
  if (::getaddrinfo(host.c_str(), port_text.c_str(), &hints, &res) != 0 ||
      res == nullptr) {
    return Status::InvalidArgument("cannot resolve " + host);
  }
  Status last = Status::ResourceExhausted("no addresses for " + host);
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd =
        ::socket(ai->ai_family, ai->ai_socktype | SOCK_NONBLOCK, 0);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) != 0 &&
        errno != EINPROGRESS) {
      last = Errno("connect");
      ::close(fd);
      continue;
    }
    Status wait = PollFd(fd, POLLOUT, timeout_ms, "connect");
    if (!wait.ok()) {
      last = std::move(wait);
      ::close(fd);
      continue;
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0 ||
        err != 0) {
      last = Status::ResourceExhausted(
          std::string("connect: ") + std::strerror(err != 0 ? err : errno));
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ::freeaddrinfo(res);
    return std::unique_ptr<HttpClient>(new HttpClient(fd, timeout_ms));
  }
  ::freeaddrinfo(res);
  return last;
}

HttpClient::~HttpClient() {
  if (fd_ >= 0) ::close(fd_);
}

void HttpClient::ShutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

Status HttpClient::SendRaw(const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      UINDEX_RETURN_IF_ERROR(PollFd(fd_, POLLOUT, timeout_ms_, "write"));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::OK();
}

Status HttpClient::FillBuffer(bool* eof) {
  *eof = false;
  char chunk[4096];
  for (;;) {
    const ssize_t r = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (r > 0) {
      buffer_.append(chunk, static_cast<size_t>(r));
      return Status::OK();
    }
    if (r == 0) {
      *eof = true;
      return Status::OK();
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      UINDEX_RETURN_IF_ERROR(PollFd(fd_, POLLIN, timeout_ms_, "read"));
      continue;
    }
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

Result<HttpClient::Response> HttpClient::ReadResponse() {
  // ---- head ------------------------------------------------------------
  size_t head_end;
  for (;;) {
    head_end = buffer_.find("\r\n\r\n");
    if (head_end != std::string::npos) break;
    bool eof = false;
    UINDEX_RETURN_IF_ERROR(FillBuffer(&eof));
    if (eof) {
      return Status::Corruption("connection closed before response head");
    }
  }
  const std::string head = buffer_.substr(0, head_end);
  buffer_.erase(0, head_end + 4);

  Response response;
  const size_t line_end = head.find("\r\n");
  const std::string status_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  // "HTTP/1.1 200 OK"
  const size_t sp1 = status_line.find(' ');
  if (sp1 == std::string::npos || status_line.rfind("HTTP/1.", 0) != 0) {
    return Status::Corruption("malformed status line: \"" + status_line +
                              "\"");
  }
  response.status = std::atoi(status_line.c_str() + sp1 + 1);
  if (response.status < 100 || response.status > 599) {
    return Status::Corruption("malformed status line: \"" + status_line +
                              "\"");
  }

  size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string line = head.substr(pos, eol - pos);
    pos = eol + 2;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    size_t vb = colon + 1;
    while (vb < line.size() && (line[vb] == ' ' || line[vb] == '\t')) ++vb;
    response.headers.emplace_back(Lowercase(line.substr(0, colon)),
                                  line.substr(vb));
  }

  // ---- body ------------------------------------------------------------
  size_t content_length = 0;
  if (const std::string* cl = response.FindHeader("content-length")) {
    content_length = static_cast<size_t>(std::strtoull(cl->c_str(),
                                                       nullptr, 10));
  }
  while (buffer_.size() < content_length) {
    bool eof = false;
    UINDEX_RETURN_IF_ERROR(FillBuffer(&eof));
    if (eof) return Status::Corruption("connection closed mid-body");
  }
  response.body = buffer_.substr(0, content_length);
  buffer_.erase(0, content_length);
  return response;
}

Result<HttpClient::Response> HttpClient::RoundTrip(
    const std::string& request) {
  UINDEX_RETURN_IF_ERROR(SendRaw(request));
  return ReadResponse();
}

Result<HttpClient::Response> HttpClient::Get(const std::string& path) {
  return RoundTrip("GET " + path +
                   " HTTP/1.1\r\nHost: uindex\r\n"
                   "Connection: keep-alive\r\n\r\n");
}

Result<HttpClient::Response> HttpClient::Post(
    const std::string& path, const std::string& body,
    const std::string& content_type) {
  return RoundTrip("POST " + path + " HTTP/1.1\r\nHost: uindex\r\n" +
                   "Content-Type: " + content_type +
                   "\r\nContent-Length: " + std::to_string(body.size()) +
                   "\r\nConnection: keep-alive\r\n\r\n" + body);
}

}  // namespace http
}  // namespace uindex
