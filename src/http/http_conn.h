#ifndef UINDEX_HTTP_HTTP_CONN_H_
#define UINDEX_HTTP_HTTP_CONN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace uindex {
namespace http {

/// One parsed HTTP/1.1 request. Header names are lowercased at parse time
/// (HTTP headers are case-insensitive; lowercasing once keeps every lookup
/// a plain string compare).
struct HttpRequest {
  std::string method;   ///< "GET", "POST", ... (verbatim, case-sensitive).
  std::string target;   ///< Request target, e.g. "/v1/query".
  bool http_1_0 = false;  ///< Peer spoke HTTP/1.0 (default close).
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Whether the connection survives this exchange under the peer's
  /// `Connection` header and HTTP version defaults.
  bool keep_alive = true;

  const std::string* FindHeader(const std::string& lowercase_name) const {
    for (const auto& [name, value] : headers) {
      if (name == lowercase_name) return &value;
    }
    return nullptr;
  }
};

/// Bounds on what a peer may send. Every limit violation is a TYPED
/// rejection (the http_status below), never a silent close — the hostility
/// suite in tests/http_test.cc pins each one.
struct HttpConnLimits {
  size_t max_header_bytes = 8 * 1024;  ///< Request line + headers. → 431
  size_t max_header_count = 64;        ///< → 431
  size_t max_body_bytes = 1 << 20;     ///< Content-Length ceiling. → 413
  int io_timeout_ms = 5000;      ///< Mid-request stall (slow loris). → 408
  int idle_timeout_ms = 60000;   ///< Between requests on keep-alive.
};

/// A blocking HTTP/1.1 server-side connection: Content-Length framing,
/// keep-alive, bounded everything. Owns the fd. Mirrors `net::Conn`'s
/// robustness contract — a malformed or hostile request poisons only this
/// connection, and the poisoning is announced with a typed 4xx first.
///
/// Not thread-safe; one connection thread drives it (the server shape).
class HttpConn {
 public:
  enum class Outcome {
    kRequest,      ///< `*request` holds one complete request.
    kClosed,       ///< Peer closed cleanly between requests.
    kIdleTimeout,  ///< Nothing arrived within the idle window.
    kBadRequest,   ///< Typed rejection; `*http_status` + `*error` say why.
  };

  explicit HttpConn(int fd, HttpConnLimits limits);
  ~HttpConn();

  HttpConn(const HttpConn&) = delete;
  HttpConn& operator=(const HttpConn&) = delete;

  /// Reads and parses one request. On `kBadRequest`, `*http_status` is the
  /// response code to send (400/408/413/431/501) and `*error` a one-line
  /// reason; the caller writes the error response and closes.
  Outcome ReadRequest(HttpRequest* request, int* http_status,
                      std::string* error);

  /// Writes one response. `body` is sent verbatim with Content-Length
  /// framing; `keep_alive` controls the `Connection` header.
  Status WriteResponse(int status, const std::string& content_type,
                       const std::string& body, bool keep_alive);

  /// Unblocks a parked reader from another thread (shutdown path).
  void ShutdownBoth();

 private:
  // Pulls more bytes into buffer_. `timeout_ms` bounds the wait; sets
  // *eof when the peer closed.
  Status FillBuffer(int timeout_ms, bool* eof);

  int fd_;
  HttpConnLimits limits_;
  std::string buffer_;  ///< Unconsumed bytes (tolerates pipelined peers).
};

/// The reason phrase for every status code the gateway emits.
const char* StatusReason(int status);

}  // namespace http
}  // namespace uindex

#endif  // UINDEX_HTTP_HTTP_CONN_H_
