#include "http/gateway.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "util/json.h"

namespace uindex {
namespace http {

namespace {

// How often the accept loop wakes to check the stopping flag and reap
// finished connection threads (matches net::Server).
constexpr int kAcceptTickMs = 200;

// Status → HTTP code, kept 1:1 with the binary protocol's taxonomy: a
// shed is 429 (kBusy on the wire), a drain is 503 (kError/"shutting
// down"), a parse error is 400 carrying the same caret diagnostics.
int HttpStatusFor(const Status& status) {
  if (status.IsInvalidArgument() || status.IsCorruption() ||
      status.IsNotFound()) {
    return 400;
  }
  if (status.IsNotSupported()) return 501;
  if (status.IsResourceExhausted()) {
    return status.message().rfind("busy:", 0) == 0 ? 429 : 503;
  }
  if (status.IsUnavailable() || status.IsStaleVersion()) return 503;
  return 500;
}

void AppendStatsJson(const net::WireQueryStats& s, std::string* out) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "{\"pages_read\":%llu,\"nodes_parsed\":%llu,"
      "\"node_cache_hits\":%llu,\"prefetch_issued\":%llu,"
      "\"prefetch_hits\":%llu,\"prefetch_wasted\":%llu,"
      "\"pool_hits\":%llu,\"pool_misses\":%llu,\"evictions\":%llu,"
      "\"writebacks\":%llu,\"epochs_published\":%llu,\"pages_cow\":%llu,"
      "\"commit_batches\":%llu,\"commit_records\":%llu,"
      "\"reader_pin_max_age_us\":%llu}",
      static_cast<unsigned long long>(s.pages_read),
      static_cast<unsigned long long>(s.nodes_parsed),
      static_cast<unsigned long long>(s.node_cache_hits),
      static_cast<unsigned long long>(s.prefetch_issued),
      static_cast<unsigned long long>(s.prefetch_hits),
      static_cast<unsigned long long>(s.prefetch_wasted),
      static_cast<unsigned long long>(s.pool_hits),
      static_cast<unsigned long long>(s.pool_misses),
      static_cast<unsigned long long>(s.evictions),
      static_cast<unsigned long long>(s.writebacks),
      static_cast<unsigned long long>(s.epochs_published),
      static_cast<unsigned long long>(s.pages_cow),
      static_cast<unsigned long long>(s.commit_batches),
      static_cast<unsigned long long>(s.commit_records),
      static_cast<unsigned long long>(s.reader_pin_max_age_us));
  *out += buf;
}

uint64_t SteadySeconds() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

HttpGateway::HttpGateway(GatewayBackend* backend, GatewayOptions options)
    : backend_(backend), options_(std::move(options)) {}

Result<std::unique_ptr<HttpGateway>> HttpGateway::Start(
    GatewayBackend* backend, GatewayOptions options) {
  if (backend == nullptr) {
    return Status::InvalidArgument("gateway needs a backend");
  }
  std::unique_ptr<HttpGateway> gw(
      new HttpGateway(backend, std::move(options)));
  UINDEX_RETURN_IF_ERROR(
      gw->listener_.Open(gw->options_.host, gw->options_.port));
  gw->port_ = gw->listener_.port();
  gw->qps_bucket_start_ = SteadySeconds();
  gw->accept_thread_ = std::thread([g = gw.get()] { g->AcceptLoop(); });
  return gw;
}

HttpGateway::~HttpGateway() { Shutdown(); }

void HttpGateway::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = listener_.AcceptOnce(kAcceptTickMs);
    ReapFinished(/*join_all=*/false);
    if (fd < 0) continue;
    if (active_connections() >= options_.max_connections) {
      HttpConn reject(fd, options_.limits);
      reject.WriteResponse(503, "application/json",
                           "{\"error\":\"too many connections\"}\n",
                           /*keep_alive=*/false);
      continue;
    }
    counters_.accepted.fetch_add(1, std::memory_order_relaxed);
    counters_.active_connections.fetch_add(1, std::memory_order_relaxed);
    auto state = std::make_unique<ConnState>();
    state->conn = std::make_unique<HttpConn>(fd, options_.limits);
    ConnState* raw = state.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(state));
    }
    raw->thread = std::thread([this, raw] { ServeConnection(raw); });
  }
}

void HttpGateway::ServeConnection(ConnState* state) {
  HttpConn* conn = state->conn.get();
  for (;;) {
    HttpRequest request;
    int http_status = 0;
    std::string error;
    const HttpConn::Outcome outcome =
        conn->ReadRequest(&request, &http_status, &error);
    if (outcome == HttpConn::Outcome::kClosed ||
        outcome == HttpConn::Outcome::kIdleTimeout) {
      break;
    }
    if (outcome == HttpConn::Outcome::kBadRequest) {
      counters_.malformed_requests.fetch_add(1, std::memory_order_relaxed);
      WriteError(conn, http_status, error, /*keep_alive=*/false);
      break;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      WriteError(conn, 503, "gateway shutting down", /*keep_alive=*/false);
      break;
    }
    counters_.requests_total.fetch_add(1, std::memory_order_relaxed);
    RecordRequestForQps();
    if (!Dispatch(conn, request)) break;
    if (!request.keep_alive) break;
  }
  conn->ShutdownBoth();
  counters_.active_connections.fetch_sub(1, std::memory_order_relaxed);
  state->done.store(true, std::memory_order_release);
}

bool HttpGateway::Dispatch(HttpConn* conn, const HttpRequest& request) {
  if (request.target == "/healthz") {
    if (request.method != "GET") {
      return WriteError(conn, 405, "use GET", request.keep_alive);
    }
    return HandleHealthz(conn, request);
  }
  if (request.target == "/metrics") {
    if (request.method != "GET") {
      return WriteError(conn, 405, "use GET", request.keep_alive);
    }
    return HandleMetrics(conn, request);
  }
  if (request.target == "/v1/query") {
    if (request.method != "POST") {
      return WriteError(conn, 405, "use POST", request.keep_alive);
    }
    return HandleQuery(conn, request);
  }
  if (request.target == "/v1/dml") {
    if (request.method != "POST") {
      return WriteError(conn, 405, "use POST", request.keep_alive);
    }
    return HandleDml(conn, request);
  }
  return WriteError(conn, 404, "no such endpoint: " + request.target,
                    request.keep_alive);
}

bool HttpGateway::HandleHealthz(HttpConn* conn, const HttpRequest& request) {
  if (backend_->draining() || stopping_.load(std::memory_order_acquire)) {
    counters_.requests_server_error.fetch_add(1, std::memory_order_relaxed);
    return conn->WriteResponse(503, "application/json",
                               "{\"status\":\"draining\"}\n",
                               request.keep_alive)
        .ok();
  }
  counters_.requests_ok.fetch_add(1, std::memory_order_relaxed);
  return conn
      ->WriteResponse(200, "application/json", "{\"status\":\"ok\"}\n",
                      request.keep_alive)
      .ok();
}

bool HttpGateway::HandleMetrics(HttpConn* conn, const HttpRequest& request) {
  std::string body;
  body.reserve(2048);
  auto metric = [&body](const char* name, uint64_t v) {
    body += name;
    body += ' ';
    body += std::to_string(v);
    body += '\n';
  };
  metric("uindex_http_accepted_total", counters_.accepted.load());
  metric("uindex_http_active_connections",
         counters_.active_connections.load());
  metric("uindex_http_requests_total", counters_.requests_total.load());
  metric("uindex_http_requests_ok_total", counters_.requests_ok.load());
  metric("uindex_http_requests_client_error_total",
         counters_.requests_client_error.load());
  metric("uindex_http_requests_server_error_total",
         counters_.requests_server_error.load());
  metric("uindex_http_requests_shed_total", counters_.requests_shed.load());
  metric("uindex_http_malformed_requests_total",
         counters_.malformed_requests.load());
  {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "uindex_http_qps %.2f\n",
                  QpsOverWindow());
    body += buf;
  }
  backend_->AppendMetrics(&body);
  counters_.requests_ok.fetch_add(1, std::memory_order_relaxed);
  return conn
      ->WriteResponse(200, "text/plain; version=0.0.4", body,
                      request.keep_alive)
      .ok();
}

bool HttpGateway::HandleQuery(HttpConn* conn, const HttpRequest& request) {
  Result<json::Value> doc = json::Parse(request.body);
  if (!doc.ok()) {
    return WriteError(conn, 400, doc.status().message(),
                      request.keep_alive);
  }
  const json::Value* oql = doc.value().Find("oql");
  if (oql == nullptr || !oql->is_string()) {
    return WriteError(conn, 400,
                      "body must be {\"oql\": \"<query text>\"}",
                      request.keep_alive);
  }
  Result<QueryReply> reply = backend_->Query(oql->AsString());
  if (!reply.ok()) {
    return WriteError(conn, HttpStatusFor(reply.status()),
                      reply.status().message(), request.keep_alive);
  }
  const QueryReply& r = reply.value();
  std::string body;
  body.reserve(64 + r.oids.size() * 8);
  body += "{\"oids\":[";
  for (size_t i = 0; i < r.oids.size(); ++i) {
    if (i != 0) body += ',';
    body += std::to_string(r.oids[i]);
  }
  body += "],\"count\":";
  body += std::to_string(r.count);
  body += ",\"used_index\":";
  body += r.used_index ? "true" : "false";
  body += ",\"plan\":";
  json::AppendQuoted(&body, r.plan);
  body += ",\"stats\":";
  AppendStatsJson(r.stats, &body);
  body += "}\n";
  counters_.requests_ok.fetch_add(1, std::memory_order_relaxed);
  return conn
      ->WriteResponse(200, "application/json", body, request.keep_alive)
      .ok();
}

bool HttpGateway::HandleDml(HttpConn* conn, const HttpRequest& request) {
  Result<json::Value> doc = json::Parse(request.body);
  if (!doc.ok()) {
    return WriteError(conn, 400, doc.status().message(),
                      request.keep_alive);
  }
  const json::Value& body = doc.value();
  const json::Value* op = body.Find("op");
  if (op == nullptr || !op->is_string()) {
    return WriteError(conn, 400, "body must carry \"op\"",
                      request.keep_alive);
  }
  DmlOp dml;
  if (op->AsString() == "create_object") {
    dml.kind = DmlOp::Kind::kCreateObject;
    const json::Value* cls = body.Find("class");
    if (cls == nullptr || !cls->is_string()) {
      return WriteError(conn, 400,
                        "create_object needs \"class\": \"<name>\"",
                        request.keep_alive);
    }
    dml.class_name = cls->AsString();
  } else if (op->AsString() == "set_attr") {
    dml.kind = DmlOp::Kind::kSetAttr;
    const json::Value* oid = body.Find("oid");
    const json::Value* attr = body.Find("attr");
    const json::Value* value = body.Find("value");
    if (oid == nullptr || !oid->is_int() || attr == nullptr ||
        !attr->is_string() || value == nullptr) {
      return WriteError(
          conn, 400,
          "set_attr needs \"oid\": <int>, \"attr\": \"<name>\", "
          "\"value\": <int or string>",
          request.keep_alive);
    }
    dml.oid = static_cast<Oid>(oid->AsInt());
    dml.attr = attr->AsString();
    if (value->is_int()) {
      dml.value = Value::Int(value->AsInt());
    } else if (value->is_string()) {
      dml.value = Value::Str(value->AsString());
    } else {
      return WriteError(conn, 400,
                        "\"value\" must be an integer or a string",
                        request.keep_alive);
    }
  } else if (op->AsString() == "delete_object") {
    dml.kind = DmlOp::Kind::kDeleteObject;
    const json::Value* oid = body.Find("oid");
    if (oid == nullptr || !oid->is_int()) {
      return WriteError(conn, 400, "delete_object needs \"oid\": <int>",
                        request.keep_alive);
    }
    dml.oid = static_cast<Oid>(oid->AsInt());
  } else {
    return WriteError(conn, 400,
                      "unknown op \"" + op->AsString() +
                          "\" (create_object | set_attr | delete_object)",
                      request.keep_alive);
  }

  Oid created = 0;
  const Status status = backend_->Dml(dml, &created);
  if (!status.ok()) {
    return WriteError(conn, HttpStatusFor(status), status.message(),
                      request.keep_alive);
  }
  std::string out;
  if (dml.kind == DmlOp::Kind::kCreateObject) {
    out = "{\"oid\":" + std::to_string(created) + "}\n";
  } else {
    out = "{\"ok\":true}\n";
  }
  counters_.requests_ok.fetch_add(1, std::memory_order_relaxed);
  return conn->WriteResponse(200, "application/json", out,
                             request.keep_alive)
      .ok();
}

bool HttpGateway::WriteError(HttpConn* conn, int status,
                             const std::string& message, bool keep_alive) {
  if (status == 429) {
    counters_.requests_shed.fetch_add(1, std::memory_order_relaxed);
  } else if (status >= 500) {
    counters_.requests_server_error.fetch_add(1, std::memory_order_relaxed);
  } else {
    counters_.requests_client_error.fetch_add(1, std::memory_order_relaxed);
  }
  std::string body = "{\"error\":";
  json::AppendQuoted(&body, message);
  body += "}\n";
  return conn->WriteResponse(status, "application/json", body, keep_alive)
      .ok();
}

void HttpGateway::RecordRequestForQps() {
  const uint64_t now = SteadySeconds();
  std::lock_guard<std::mutex> lock(qps_mu_);
  if (now != qps_bucket_start_) {
    const uint64_t advance = now - qps_bucket_start_;
    // Shift the window; anything older than the window zeroes out.
    for (int i = kQpsWindowSecs - 1; i >= 0; --i) {
      const int64_t from = i - static_cast<int64_t>(advance);
      qps_buckets_[i] = from >= 0 ? qps_buckets_[from] : 0;
    }
    qps_bucket_start_ = now;
  }
  ++qps_buckets_[0];
}

double HttpGateway::QpsOverWindow() {
  std::lock_guard<std::mutex> lock(qps_mu_);
  uint64_t total = 0;
  // Skip the in-progress current second; average the completed ones.
  for (int i = 1; i < kQpsWindowSecs; ++i) total += qps_buckets_[i];
  return static_cast<double>(total) / (kQpsWindowSecs - 1);
}

void HttpGateway::ReapFinished(bool join_all) {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (join_all || (*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void HttpGateway::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    stopping_.store(true, std::memory_order_release);
    if (accept_thread_.joinable()) accept_thread_.join();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (const auto& state : conns_) state->conn->ShutdownBoth();
    }
    ReapFinished(/*join_all=*/true);
    listener_.Close();
  });
}

}  // namespace http
}  // namespace uindex
