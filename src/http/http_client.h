#ifndef UINDEX_HTTP_HTTP_CLIENT_H_
#define UINDEX_HTTP_HTTP_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace uindex {
namespace http {

/// A minimal blocking HTTP/1.1 client with keep-alive: one connection,
/// one request at a time, Content-Length framing only (all the gateway
/// emits). Serves the SLO harness, the hostility tests, and the
/// `http_probe` smoke binary — no curl dependency anywhere.
class HttpClient {
 public:
  struct Response {
    int status = 0;
    std::string body;
    std::vector<std::pair<std::string, std::string>> headers;  // lowercased

    const std::string* FindHeader(const std::string& lowercase_name) const {
      for (const auto& [name, value] : headers) {
        if (name == lowercase_name) return &value;
      }
      return nullptr;
    }
  };

  static Result<std::unique_ptr<HttpClient>> Connect(const std::string& host,
                                                     uint16_t port,
                                                     int timeout_ms = 5000);

  ~HttpClient();
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  Result<Response> Get(const std::string& path);
  Result<Response> Post(const std::string& path, const std::string& body,
                        const std::string& content_type = "application/json");

  /// Sends raw bytes verbatim — the hostility tests speak malformed HTTP
  /// through the same connection plumbing.
  Status SendRaw(const std::string& bytes);

  /// Reads one response after `SendRaw` (or checks how the server reacted
  /// to garbage).
  Result<Response> ReadResponse();

  /// Half-closes the write side (`shutdown(SHUT_WR)`) — the hostility
  /// tests use it to truncate a Content-Length body mid-stream while the
  /// read side stays open for the server's typed 400.
  void ShutdownWrite();

 private:
  explicit HttpClient(int fd, int timeout_ms)
      : fd_(fd), timeout_ms_(timeout_ms) {}

  Result<Response> RoundTrip(const std::string& request);
  Status FillBuffer(bool* eof);

  int fd_;
  int timeout_ms_;
  std::string buffer_;
};

}  // namespace http
}  // namespace uindex

#endif  // UINDEX_HTTP_HTTP_CLIENT_H_
