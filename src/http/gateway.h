#ifndef UINDEX_HTTP_GATEWAY_H_
#define UINDEX_HTTP_GATEWAY_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "http/backend.h"
#include "http/http_conn.h"
#include "net/listener.h"
#include "util/status.h"

namespace uindex {
namespace http {

/// Tuning knobs for an `HttpGateway`.
struct GatewayOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral; read the bound port from `port()`.
  size_t max_connections = 128;
  HttpConnLimits limits;  ///< Header/body bounds and timeouts.
};

/// The HTTP/JSON front end (DESIGN.md "HTTP gateway & SLO harness"):
///
///   POST /v1/query  {"oql": "..."}  → rows/count/plan + per-query IoStats
///   POST /v1/dml    {"op": "..."}   → create_object / set_attr / delete_object
///   GET  /healthz                   → 200 ok / 503 draining
///   GET  /metrics                   → text exposition of every counter
///
/// The gateway does NOT own execution: every query and mutation goes
/// through a `GatewayBackend`, which routes it onto the binary server's
/// worker pool under the binary server's admission gate — one budget for
/// both protocols, by construction. Threading mirrors `net::Server`: one
/// accept thread, one thread per connection, keep-alive until the peer
/// closes, errors poison only the offending connection.
///
/// Error mapping (kept 1:1 with Status codes so clients see the same
/// taxonomy binary clients do):
///   InvalidArgument/Corruption → 400   (body carries caret diagnostics)
///   NotFound                   → 400
///   busy: admission shed       → 429
///   shutting down, Unavailable → 503
///   NotSupported               → 501
///   anything else              → 500
class HttpGateway {
 public:
  struct Counters {
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> active_connections{0};
    std::atomic<uint64_t> requests_total{0};
    std::atomic<uint64_t> requests_ok{0};
    std::atomic<uint64_t> requests_client_error{0};
    std::atomic<uint64_t> requests_server_error{0};
    std::atomic<uint64_t> requests_shed{0};     ///< 429s (admission).
    std::atomic<uint64_t> malformed_requests{0};  ///< HTTP-layer 4xx.
  };

  /// Binds, listens, and starts the accept thread. `backend` must outlive
  /// the gateway.
  static Result<std::unique_ptr<HttpGateway>> Start(GatewayBackend* backend,
                                                    GatewayOptions options);

  /// Graceful shutdown (idempotent): stop accepting, finish in-flight
  /// requests, close every connection, join every thread. The underlying
  /// backend server's own drain is separate (and usually runs after).
  void Shutdown();

  ~HttpGateway();

  HttpGateway(const HttpGateway&) = delete;
  HttpGateway& operator=(const HttpGateway&) = delete;

  uint16_t port() const { return port_; }
  const Counters& counters() const { return counters_; }
  size_t active_connections() const {
    return counters_.active_connections.load(std::memory_order_relaxed);
  }

 private:
  struct ConnState {
    std::unique_ptr<HttpConn> conn;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  HttpGateway(GatewayBackend* backend, GatewayOptions options);

  void AcceptLoop();
  void ServeConnection(ConnState* state);
  // Routes one request; returns false when the connection should close.
  bool Dispatch(HttpConn* conn, const HttpRequest& request);
  bool HandleQuery(HttpConn* conn, const HttpRequest& request);
  bool HandleDml(HttpConn* conn, const HttpRequest& request);
  bool HandleHealthz(HttpConn* conn, const HttpRequest& request);
  bool HandleMetrics(HttpConn* conn, const HttpRequest& request);
  // Writes a JSON error body; tallies the right counter for `status`.
  bool WriteError(HttpConn* conn, int status, const std::string& message,
                  bool keep_alive);
  void ReapFinished(bool join_all);

  GatewayBackend* backend_;
  GatewayOptions options_;

  net::Listener listener_;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex conns_mu_;
  std::list<std::unique_ptr<ConnState>> conns_;

  // Requests completed in the last few one-second buckets, for the
  // /metrics QPS gauge (coarse by design; the SLO harness measures real
  // latency itself).
  std::mutex qps_mu_;
  static constexpr int kQpsWindowSecs = 5;
  uint64_t qps_bucket_start_ = 0;  ///< steady-clock seconds.
  uint64_t qps_buckets_[kQpsWindowSecs] = {0};
  void RecordRequestForQps();
  double QpsOverWindow();

  Counters counters_;
  std::once_flag shutdown_once_;
};

}  // namespace http
}  // namespace uindex

#endif  // UINDEX_HTTP_GATEWAY_H_
