#include "http/backend.h"

#include "db/session.h"
#include "storage/io_stats.h"

namespace uindex {
namespace http {

namespace {

void Metric(std::string* out, const char* name, uint64_t value) {
  *out += name;
  *out += ' ';
  *out += std::to_string(value);
  *out += '\n';
}

void MetricF(std::string* out, const char* name, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s %.6f\n", name, value);
  *out += buf;
}

void AppendGateMetrics(const net::AdmissionGate& gate, std::string* out) {
  Metric(out, "uindex_admission_inflight", gate.inflight());
  Metric(out, "uindex_admission_waiting", gate.waiting());
  Metric(out, "uindex_admission_max_inflight", gate.max_inflight());
  Metric(out, "uindex_admission_max_queued", gate.max_queued());
  Metric(out, "uindex_admission_admitted_total", gate.admitted_total());
  // Sheds across EVERY protocol sharing the gate (HTTP and binary).
  Metric(out, "uindex_admission_shed_total", gate.shed_total());
}

// A fresh per-request session starts at zero, so its post-query stats ARE
// the per-query delta — same numbers a binary kRows response carries.
net::WireQueryStats WireStatsOf(const Session::Stats& s) {
  net::WireQueryStats d;
  d.pages_read = s.pages_read;
  d.nodes_parsed = s.nodes_parsed;
  d.node_cache_hits = s.node_cache_hits;
  d.prefetch_issued = s.prefetch_issued;
  d.prefetch_hits = s.prefetch_hits;
  d.prefetch_wasted = s.prefetch_wasted;
  d.pool_hits = s.pool_hits;
  d.pool_misses = s.pool_misses;
  d.evictions = s.evictions;
  d.writebacks = s.writebacks;
  d.epochs_published = s.epochs_published;
  d.pages_cow = s.pages_cow;
  d.commit_batches = s.commit_batches;
  d.commit_records = s.commit_records;
  d.reader_pin_max_age_us = s.reader_pin_max_age_us;
  return d;
}

}  // namespace

// ---------------------------------------------------------- ServerBackend

Result<QueryReply> ServerBackend::Query(const std::string& oql) {
  Session session(server_->db());
  Result<Database::OqlResult> result =
      server_->ExecuteExternal(&session, oql);
  UINDEX_RETURN_IF_ERROR(result.status());
  QueryReply reply;
  reply.oids = std::move(result.value().oids);
  reply.count = result.value().count;
  reply.used_index = result.value().used_index;
  reply.plan = std::move(result.value().plan);
  reply.stats = WireStatsOf(session.stats());
  return reply;
}

Status ServerBackend::Dml(const DmlOp& op, Oid* created) {
  Database* db = server_->db();
  switch (op.kind) {
    case DmlOp::Kind::kCreateObject: {
      Result<ClassId> cls = db->schema().FindClass(op.class_name);
      UINDEX_RETURN_IF_ERROR(cls.status());
      Oid oid = 0;
      Status status = Status::OK();
      UINDEX_RETURN_IF_ERROR(server_->ExecuteExternalDml(
          [db, &cls, &oid, &status] {
            Result<Oid> r = db->CreateObject(cls.value());
            status = r.status();
            if (r.ok()) oid = r.value();
            return status;
          }));
      *created = oid;
      return status;
    }
    case DmlOp::Kind::kSetAttr:
      return server_->ExecuteExternalDml([db, &op] {
        return db->SetAttr(op.oid, op.attr, op.value);
      });
    case DmlOp::Kind::kDeleteObject:
      return server_->ExecuteExternalDml(
          [db, &op] { return db->DeleteObject(op.oid); });
  }
  return Status::InvalidArgument("unknown DML op");
}

void ServerBackend::AppendMetrics(std::string* out) const {
  AppendGateMetrics(server_->admission(), out);

  const net::Server::Counters& c = server_->counters();
  Metric(out, "uindex_server_accepted_total", c.accepted.load());
  Metric(out, "uindex_server_active_connections",
         c.active_connections.load());
  Metric(out, "uindex_server_queries_ok_total", c.queries_ok.load());
  Metric(out, "uindex_server_queries_failed_total", c.queries_failed.load());
  Metric(out, "uindex_server_busy_rejected_total", c.busy_rejected.load());
  Metric(out, "uindex_server_protocol_errors_total",
         c.protocol_errors.load());
  Metric(out, "uindex_server_stale_rejected_total", c.stale_rejected.load());

  // Database-wide IoStats: logical cache behaviour, physical buffer-pool
  // traffic, MVCC + group commit — the same counters `stats` shows in the
  // shell, as process-lifetime totals.
  const IoStats& io = server_->db()->buffers().stats();
  Metric(out, "uindex_io_pages_read_total", io.pages_read.load());
  Metric(out, "uindex_io_pages_written_total", io.pages_written.load());
  Metric(out, "uindex_io_nodes_parsed_total", io.nodes_parsed.load());
  Metric(out, "uindex_io_node_cache_hits_total", io.node_cache_hits.load());
  Metric(out, "uindex_io_prefetch_issued_total", io.prefetch_issued.load());
  Metric(out, "uindex_io_prefetch_hits_total", io.prefetch_hits.load());
  Metric(out, "uindex_io_prefetch_wasted_total",
         io.prefetch_wasted.load());
  const uint64_t pool_hits = io.pool_hits.load();
  const uint64_t pool_misses = io.pool_misses.load();
  Metric(out, "uindex_io_pool_hits_total", pool_hits);
  Metric(out, "uindex_io_pool_misses_total", pool_misses);
  MetricF(out, "uindex_io_pool_hit_rate",
          pool_hits + pool_misses == 0
              ? 0.0
              : static_cast<double>(pool_hits) /
                    static_cast<double>(pool_hits + pool_misses));
  Metric(out, "uindex_io_evictions_total", io.evictions.load());
  Metric(out, "uindex_io_writebacks_total", io.writebacks.load());
  Metric(out, "uindex_mvcc_epochs_published_total",
         io.epochs_published.load());
  Metric(out, "uindex_mvcc_pages_cow_total", io.pages_cow.load());
  Metric(out, "uindex_commit_batches_total", io.commit_batches.load());
  Metric(out, "uindex_commit_records_total", io.commit_records.load());
  Metric(out, "uindex_mvcc_reader_pin_max_age_us",
         io.reader_pin_max_age_us.load());

  const net::Server::ShardInfo shard = server_->shard_info();
  Metric(out, "uindex_shard_active", shard.active ? 1 : 0);
  Metric(out, "uindex_shard_map_version", shard.version);
  Metric(out, "uindex_shard_self_index", shard.self_index);
}

// ---------------------------------------------------------- RouterBackend

Result<QueryReply> RouterBackend::Query(const std::string& oql) {
  net::AdmissionGate& gate = server_->admission();
  switch (gate.Admit()) {
    case net::AdmissionGate::Outcome::kShuttingDown:
      return Status::ResourceExhausted("router shutting down");
    case net::AdmissionGate::Outcome::kBusy:
      return Status::ResourceExhausted(
          "busy: query shed by admission control; retry later");
    case net::AdmissionGate::Outcome::kAdmitted:
      break;
  }
  Result<net::Router::QueryOutcome> result =
      server_->router()->Query(oql);
  gate.Release();
  UINDEX_RETURN_IF_ERROR(result.status());
  QueryReply reply;
  reply.oids = std::move(result.value().oids);
  reply.count = result.value().count;
  reply.used_index = result.value().used_index;
  reply.plan = std::move(result.value().plan);
  reply.stats = result.value().stats;
  return reply;
}

Status RouterBackend::Dml(const DmlOp& op, Oid* created) {
  (void)op;
  (void)created;
  return Status::NotSupported(
      "DML is not available through the router front end");
}

void RouterBackend::AppendMetrics(std::string* out) const {
  AppendGateMetrics(server_->admission(), out);

  const net::RouterServer::Counters& c = server_->counters();
  Metric(out, "uindex_router_accepted_total", c.accepted.load());
  Metric(out, "uindex_router_active_connections",
         c.active_connections.load());
  Metric(out, "uindex_router_queries_ok_total", c.queries_ok.load());
  Metric(out, "uindex_router_queries_failed_total", c.queries_failed.load());
  Metric(out, "uindex_router_busy_rejected_total", c.busy_rejected.load());
  Metric(out, "uindex_router_protocol_errors_total",
         c.protocol_errors.load());

  const net::Router::Counters& r = server_->router()->counters();
  Metric(out, "uindex_scatter_queries_ok_total", r.queries_ok.load());
  Metric(out, "uindex_scatter_queries_failed_total",
         r.queries_failed.load());
  Metric(out, "uindex_scatter_subqueries_sent_total",
         r.subqueries_sent.load());
  Metric(out, "uindex_scatter_shards_pruned_total", r.shards_pruned.load());
  Metric(out, "uindex_scatter_stale_retries_total", r.stale_retries.load());
  Metric(out, "uindex_scatter_partial_failures_total",
         r.partial_failures.load());
  Metric(out, "uindex_scatter_conns_created_total", r.conns_created.load());
  Metric(out, "uindex_scatter_conns_evicted_total", r.conns_evicted.load());
}

}  // namespace http
}  // namespace uindex
