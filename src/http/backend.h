#ifndef UINDEX_HTTP_BACKEND_H_
#define UINDEX_HTTP_BACKEND_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/admission.h"
#include "net/protocol.h"
#include "net/router_server.h"
#include "net/server.h"
#include "objects/object.h"
#include "util/status.h"

namespace uindex {
namespace http {

/// One executed query, ready for JSON serialization: the
/// `Database::OqlResult` shape plus the same per-query `WireQueryStats`
/// delta a binary `kRows` response carries — the gateway exposes exactly
/// the observability the wire protocol has, not a subset.
struct QueryReply {
  std::vector<Oid> oids;
  uint64_t count = 0;
  bool used_index = false;
  std::string plan;
  net::WireQueryStats stats;
};

/// A parsed /v1/dml request body.
struct DmlOp {
  enum class Kind { kCreateObject, kSetAttr, kDeleteObject };
  Kind kind = Kind::kCreateObject;
  std::string class_name;  ///< kCreateObject
  Oid oid = 0;             ///< kSetAttr / kDeleteObject
  std::string attr;        ///< kSetAttr
  Value value;             ///< kSetAttr (int or string)
};

/// What the gateway talks to: one `Database` behind a `net::Server`, or a
/// sharded cluster behind a `net::RouterServer`. Either way the backend
/// routes execution through the process's ONE `net::AdmissionGate`, so an
/// HTTP request and a binary frame compete for the same budget and a shed
/// on either protocol lands in the same counter.
class GatewayBackend {
 public:
  virtual ~GatewayBackend() = default;

  virtual Result<QueryReply> Query(const std::string& oql) = 0;

  /// Executes one mutation. `created` receives the new oid for
  /// `kCreateObject` (untouched otherwise). `NotSupported` where the
  /// backend cannot mutate (the router front end) — the gateway maps it
  /// to a typed 501.
  virtual Status Dml(const DmlOp& op, Oid* created) = 0;

  /// Appends backend counters to the /metrics exposition (admission,
  /// IoStats, MVCC, shard/router state).
  virtual void AppendMetrics(std::string* out) const = 0;

  /// The shared admission budget (for gauges and shutdown coordination).
  virtual net::AdmissionGate& gate() = 0;

  /// True once the underlying server began a graceful drain.
  virtual bool draining() const = 0;
};

/// The single-server backend: queries and DML both run on the `Server`'s
/// worker pool under its admission gate, each HTTP request with its own
/// short-lived `db::Session` for per-request stats attribution.
class ServerBackend : public GatewayBackend {
 public:
  explicit ServerBackend(net::Server* server) : server_(server) {}

  Result<QueryReply> Query(const std::string& oql) override;
  Status Dml(const DmlOp& op, Oid* created) override;
  void AppendMetrics(std::string* out) const override;
  net::AdmissionGate& gate() override { return server_->admission(); }
  bool draining() const override { return server_->draining(); }

 private:
  net::Server* server_;
};

/// The router backend: queries scatter-gather through the cluster under
/// the `RouterServer`'s admission gate (the same one its binary clients
/// use). DML is `NotSupported` — the scatter path is read-only.
class RouterBackend : public GatewayBackend {
 public:
  explicit RouterBackend(net::RouterServer* server) : server_(server) {}

  Result<QueryReply> Query(const std::string& oql) override;
  Status Dml(const DmlOp& op, Oid* created) override;
  void AppendMetrics(std::string* out) const override;
  net::AdmissionGate& gate() override { return server_->admission(); }
  bool draining() const override { return server_->draining(); }

 private:
  net::RouterServer* server_;
};

}  // namespace http
}  // namespace uindex

#endif  // UINDEX_HTTP_BACKEND_H_
