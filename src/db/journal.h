#ifndef UINDEX_DB_JOURNAL_H_
#define UINDEX_DB_JOURNAL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/index_spec.h"
#include "objects/object.h"
#include "util/status.h"

namespace uindex {

/// A logical journal record: one Database mutation.
struct JournalRecord {
  enum class Op : uint8_t {
    kCreateClass = 1,     // name [+ parent name]
    kCreateReference = 2, // source, target, attr, multi
    kCreateIndex = 3,     // attr, kind, subclasses flag, class names, refs
    kCreateObject = 4,    // class name, expected oid
    kSetAttr = 5,         // oid, attr, value
    kDeleteObject = 6,    // oid
    kDropIndex = 7,       // oid = index position
  };
  Op op = Op::kCreateClass;
  std::string name;                    // Class name / attribute name.
  std::string parent;                  // Parent or target class name.
  std::vector<std::string> class_names;
  std::vector<std::string> ref_attrs;
  bool flag = false;                   // multi-valued / with-subclasses.
  uint8_t kind = 0;                    // Value kind for indexes.
  Oid oid = kInvalidOid;
  Value value;
};

/// Append-only, CRC-protected logical log of Database mutations.
///
/// Combined with a `PagerSnapshot` this is the library's snapshot+log
/// durability story: `Database::Checkpoint` writes a snapshot and truncates
/// the journal; on restart, `Database::OpenDurable` loads the snapshot (if
/// any) and replays the journal tail. A torn final record (partial write at
/// crash time) is tolerated and replay stops there; a corrupt record
/// *inside* the log is an error.
///
/// Record framing: the repo-wide [len u32][crc u32][payload] convention
/// (util/framing.h, shared with the wire protocol in net/); payload starts
/// with the op byte. Records reference classes by *name*, so a journal
/// remains valid across re-encodes of the class codes.
class Journal {
 public:
  /// Opens (creating if absent) the journal at `path` for appending.
  static Result<std::unique_ptr<Journal>> OpenForAppend(
      const std::string& path);

  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Appends one record and flushes it.
  Status Append(const JournalRecord& record);

  /// Truncates the journal (after a checkpoint made it redundant).
  Status Truncate();

  const std::string& path() const { return path_; }

  /// Reads every well-formed record from `path`. A clean end or a torn
  /// final record both end the list; mid-file corruption fails. If
  /// `valid_bytes` is non-null it receives the byte length of the
  /// well-formed prefix, so a torn tail can be truncated away before new
  /// records are appended.
  static Result<std::vector<JournalRecord>> ReadAll(
      const std::string& path, size_t* valid_bytes = nullptr);

  /// Serialization helpers (exposed for tests).
  static std::string EncodeRecord(const JournalRecord& record);
  static Result<JournalRecord> DecodeRecord(const Slice& payload);

 private:
  Journal(std::string path, std::FILE* file)
      : path_(std::move(path)), file_(file) {}

  std::string path_;
  std::FILE* file_;
};

}  // namespace uindex

#endif  // UINDEX_DB_JOURNAL_H_
