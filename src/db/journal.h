#ifndef UINDEX_DB_JOURNAL_H_
#define UINDEX_DB_JOURNAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/index_spec.h"
#include "objects/object.h"
#include "storage/env/env.h"
#include "util/status.h"

namespace uindex {

/// A logical journal record: one Database mutation.
struct JournalRecord {
  enum class Op : uint8_t {
    kCreateClass = 1,     // name [+ parent name]
    kCreateReference = 2, // source, target, attr, multi
    kCreateIndex = 3,     // attr, kind, subclasses flag, class names, refs
    kCreateObject = 4,    // class name, expected oid
    kSetAttr = 5,         // oid, attr, value
    kDeleteObject = 6,    // oid
    kDropIndex = 7,       // oid = index position
  };
  Op op = Op::kCreateClass;
  std::string name;                    // Class name / attribute name.
  std::string parent;                  // Parent or target class name.
  std::vector<std::string> class_names;
  std::vector<std::string> ref_attrs;
  bool flag = false;                   // multi-valued / with-subclasses.
  uint8_t kind = 0;                    // Value kind for indexes.
  Oid oid = kInvalidOid;
  Value value;
};

/// Durability policy knobs for a `Journal`.
struct JournalOptions {
  /// Default-durable: every `Append` fdatasyncs before reporting success.
  /// Turning this off batches syncs — the caller must then call `Sync()`
  /// at its own commit points; records appended after the last sync are
  /// lost on a crash (and recovered as a clean torn tail).
  bool sync_on_append = true;
};

/// Append-only, CRC-protected logical log of Database mutations.
///
/// Combined with a `PagerSnapshot` this is the library's snapshot+log
/// durability story: `Database::Checkpoint` writes a snapshot and rotates
/// in a fresh journal; on restart, `Database::OpenDurable` loads the
/// snapshot (if any) and replays the journal tail. All file I/O goes
/// through an `Env`, so appends are durable (fdatasync) when they return,
/// and the crash-fault harness (storage/env/fault_env.h) can exercise
/// every write/sync/rename the journal performs.
///
/// File layout: a header frame whose payload is
/// `"UJRN" ∥ version u32 ∥ generation u64`, then one frame per record, all
/// in the repo-wide `[len u32][crc u32][payload]` framing (util/framing.h,
/// shared with the wire protocol in net/). Record payloads start with the
/// op byte and reference classes by *name*, so a journal remains valid
/// across re-encodes of the class codes.
///
/// The *generation* pairs a journal with the snapshot whose state it
/// extends: `Database::Checkpoint` writes a snapshot stamped generation
/// g+1 and atomically rotates in a generation-g+1 journal. Recovery
/// replays the journal only when the generations match; an older journal
/// is a checkpoint's leftover (its records are inside the snapshot) and is
/// discarded, and a *newer* one means the snapshot it belongs to is
/// missing — that is refused, not silently dropped.
///
/// Corruption policy on replay (shared with util/framing.h): a torn or
/// CRC-corrupt *tail* — the shape of a crash mid-append — ends the record
/// list and is truncated away on reopen; corruption *mid-file* is refused
/// with a diagnostic, because everything after it is untrustworthy.
class Journal {
 public:
  /// Upper bound on one record frame; real records are far smaller, and
  /// the bound keeps a torn header's garbage length from looking like a
  /// giant allocation.
  static constexpr uint32_t kMaxRecordPayload = 64u << 20;

  /// Opens the journal at `path` for appending, reconciled with
  /// `generation`: a valid journal of the same generation keeps its
  /// records (any torn tail is truncated so new appends follow the last
  /// good record); an absent/empty/torn-header file, or one from another
  /// generation, is atomically replaced by a fresh journal. Mid-file
  /// corruption is refused.
  static Result<std::unique_ptr<Journal>> OpenForAppend(
      Env* env, const std::string& path, uint64_t generation,
      JournalOptions options = JournalOptions());

  /// Writes a fresh generation-`generation` journal at `path + ".new"` —
  /// durably, but invisible at `path` until `Publish`. This is the first
  /// half of the crash-atomic truncation `Database::Checkpoint` performs:
  /// stage, commit the snapshot, then publish; a crash in between leaves
  /// the old journal (still replayable) untouched.
  static Result<std::unique_ptr<Journal>> Stage(
      Env* env, const std::string& path, uint64_t generation,
      JournalOptions options = JournalOptions());

  /// Renames the staged file over `path` and syncs the directory. On
  /// failure the journal poisons itself (see `Append`).
  Status Publish();

  ~Journal() = default;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Appends one record; with `sync_on_append` (the default) it is on
  /// stable media when this returns OK. After any append or sync failure
  /// the journal is *poisoned*: every later `Append` fails too, because
  /// the file may end in a torn frame and appending after it would turn a
  /// recoverable tail into unrecoverable mid-file corruption.
  Status Append(const JournalRecord& record);

  /// Forces appended records to stable media (for batched-sync callers —
  /// the group-commit leader in db/commit_queue.h). The file data is
  /// already in the OS (`Append` flushes inline), so this is exactly one
  /// fdatasync. Safe to call concurrently with one `Append`er: the POSIX
  /// write/fdatasync pair needs no mutual exclusion, and the poison state
  /// is atomic.
  Status Sync();

  /// Marks the journal unusable with `reason` (e.g. when the caller can no
  /// longer prove the file matches the database state it acked).
  /// Thread-safe; first reason wins.
  void Poison(const std::string& reason);
  bool poisoned() const {
    return poisoned_.load(std::memory_order_acquire);
  }

  const std::string& path() const { return path_; }
  uint64_t generation() const { return generation_; }

  /// Everything `ReadAll` learned from a journal file.
  struct Replay {
    std::vector<JournalRecord> records;
    uint64_t generation = 0;
    /// False when the file is absent, empty, or its header frame is torn
    /// — all "nothing to replay, start fresh" conditions.
    bool header_valid = false;
    /// Byte length of the well-formed prefix (header + intact records),
    /// so a torn tail can be truncated away before appending.
    size_t valid_bytes = 0;
  };

  /// Reads the journal at `path`. A clean end or a crash-shaped tail
  /// (torn or CRC-corrupt final frame) ends the record list; corruption
  /// mid-file fails with Corruption.
  static Result<Replay> ReadAll(Env* env, const std::string& path);

  /// Serialization helpers (exposed for tests).
  static std::string EncodeRecord(const JournalRecord& record);
  static Result<JournalRecord> DecodeRecord(const Slice& payload);

 private:
  Journal(Env* env, std::string path, std::string staged_path,
          std::unique_ptr<WritableFile> file, uint64_t generation,
          JournalOptions options)
      : env_(env),
        path_(std::move(path)),
        staged_path_(std::move(staged_path)),
        file_(std::move(file)),
        generation_(generation),
        options_(options) {}

  Env* env_;
  std::string path_;
  std::string staged_path_;  // Non-empty between Stage and Publish.
  std::unique_ptr<WritableFile> file_;
  uint64_t generation_;
  JournalOptions options_;
  // Poison state is shared between the appender (writer mutex) and the
  // group-commit leader (any waiter thread): flag atomic, reason under its
  // own mutex, set-once before the release store so an acquire load
  // observing the flag also observes the reason.
  std::atomic<bool> poisoned_{false};
  mutable std::mutex poison_mu_;
  std::string poison_reason_;

  // Reads the reason after an acquire load saw the flag.
  std::string poison_reason() const {
    std::lock_guard<std::mutex> lock(poison_mu_);
    return poison_reason_;
  }
};

}  // namespace uindex

#endif  // UINDEX_DB_JOURNAL_H_
