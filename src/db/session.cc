#include "db/session.h"

namespace uindex {

std::string Session::Stats::ToString() const {
  return "queries=" + std::to_string(queries) +
         " failed=" + std::to_string(failed) +
         " rows=" + std::to_string(rows) +
         " pages_read=" + std::to_string(pages_read);
}

void Session::Account(bool ok, uint64_t rows, uint64_t pages_before) {
  if (ok) {
    ++stats_.queries;
    stats_.rows += rows;
  } else {
    ++stats_.failed;
  }
  const uint64_t now = db_->buffers().stats().pages_read;
  stats_.pages_read += now - pages_before;
}

Result<Database::SelectResult> Session::Select(
    const Database::Selection& selection) {
  const uint64_t before = db_->buffers().stats().pages_read;
  Result<Database::SelectResult> r = db_->Select(selection);
  Account(r.ok(), r.ok() ? r.value().oids.size() : 0, before);
  return r;
}

Result<QueryResult> Session::Execute(size_t index_pos, const Query& query) {
  const uint64_t before = db_->buffers().stats().pages_read;
  Result<QueryResult> r =
      parallel() ? db_->ExecuteParallel(index_pos, query, ctx_->pool())
                 : db_->Execute(index_pos, query);
  Account(r.ok(), r.ok() ? r.value().rows.size() : 0, before);
  return r;
}

Result<Database::OqlResult> Session::ExecuteOql(const std::string& oql) {
  const uint64_t before = db_->buffers().stats().pages_read;
  Result<Database::OqlResult> r = db_->ExecuteOql(oql);
  Account(r.ok(), r.ok() ? r.value().count : 0, before);
  return r;
}

}  // namespace uindex
