#include "db/session.h"

namespace uindex {

std::string Session::Stats::ToString() const {
  return "queries=" + std::to_string(queries) +
         " failed=" + std::to_string(failed) +
         " rows=" + std::to_string(rows) +
         " pages_read=" + std::to_string(pages_read) +
         " nodes_parsed=" + std::to_string(nodes_parsed) +
         " node_cache_hits=" + std::to_string(node_cache_hits) +
         " prefetch_issued=" + std::to_string(prefetch_issued) +
         " prefetch_hits=" + std::to_string(prefetch_hits) +
         " prefetch_wasted=" + std::to_string(prefetch_wasted) +
         " pool_hits=" + std::to_string(pool_hits) +
         " pool_misses=" + std::to_string(pool_misses) +
         " evictions=" + std::to_string(evictions) +
         " writebacks=" + std::to_string(writebacks) +
         (pool_hits + pool_misses > 0
              ? " pool_hit_rate=" +
                    std::to_string(static_cast<double>(pool_hits) /
                                   static_cast<double>(pool_hits +
                                                       pool_misses))
              : "") +
         " epochs_published=" + std::to_string(epochs_published) +
         " pages_cow=" + std::to_string(pages_cow) +
         " commit_batches=" + std::to_string(commit_batches) +
         " commit_batch_size_avg=" +
         (commit_batches > 0
              ? std::to_string(static_cast<double>(commit_records) /
                               static_cast<double>(commit_batches))
              : "0") +
         " reader_pin_max_age_us=" + std::to_string(reader_pin_max_age_us);
}

void Session::Account(bool ok, uint64_t rows, const IoStats& before) {
  if (ok) {
    ++stats_.queries;
    stats_.rows += rows;
  } else {
    ++stats_.failed;
  }
  const IoStats delta = db_->buffers().stats() - before;
  stats_.pages_read += delta.pages_read.load(std::memory_order_relaxed);
  stats_.nodes_parsed += delta.nodes_parsed.load(std::memory_order_relaxed);
  stats_.node_cache_hits +=
      delta.node_cache_hits.load(std::memory_order_relaxed);
  stats_.prefetch_issued +=
      delta.prefetch_issued.load(std::memory_order_relaxed);
  stats_.prefetch_hits += delta.prefetch_hits.load(std::memory_order_relaxed);
  stats_.prefetch_wasted +=
      delta.prefetch_wasted.load(std::memory_order_relaxed);
  stats_.pool_hits += delta.pool_hits.load(std::memory_order_relaxed);
  stats_.pool_misses += delta.pool_misses.load(std::memory_order_relaxed);
  stats_.evictions += delta.evictions.load(std::memory_order_relaxed);
  stats_.writebacks += delta.writebacks.load(std::memory_order_relaxed);
  stats_.epochs_published +=
      delta.epochs_published.load(std::memory_order_relaxed);
  stats_.pages_cow += delta.pages_cow.load(std::memory_order_relaxed);
  stats_.commit_batches +=
      delta.commit_batches.load(std::memory_order_relaxed);
  stats_.commit_records +=
      delta.commit_records.load(std::memory_order_relaxed);
  // Gauge: operator- carries the database-wide watermark through; fold it
  // as a max so the session reports the longest pin it ever observed.
  const uint64_t pin_age =
      delta.reader_pin_max_age_us.load(std::memory_order_relaxed);
  if (pin_age > stats_.reader_pin_max_age_us) {
    stats_.reader_pin_max_age_us = pin_age;
  }
}

Result<Database::SelectResult> Session::Select(
    const Database::Selection& selection) {
  const IoStats before = db_->buffers().stats();
  Result<Database::SelectResult> r = db_->Select(selection);
  Account(r.ok(), r.ok() ? r.value().oids.size() : 0, before);
  return r;
}

Result<QueryResult> Session::Execute(size_t index_pos, const Query& query) {
  const IoStats before = db_->buffers().stats();
  Result<QueryResult> r =
      parallel() ? db_->ExecuteParallel(index_pos, query, ctx_->pool())
                 : db_->Execute(index_pos, query);
  Account(r.ok(), r.ok() ? r.value().rows.size() : 0, before);
  return r;
}

Result<Database::OqlResult> Session::ExecuteOql(const std::string& oql) {
  const IoStats before = db_->buffers().stats();
  Result<Database::OqlResult> r = db_->ExecuteOql(oql);
  Account(r.ok(), r.ok() ? r.value().count : 0, before);
  return r;
}

}  // namespace uindex
