#ifndef UINDEX_DB_SESSION_H_
#define UINDEX_DB_SESSION_H_

#include <cstdint>
#include <string>

#include "db/database.h"
#include "exec/execution_context.h"
#include "storage/io_stats.h"

namespace uindex {

/// A per-client read handle on a `Database`.
///
/// Many sessions run concurrently against one database: every call goes
/// through the database's shared latch (queries run in parallel with each
/// other, DDL/DML waits for exclusivity), and when the session's
/// `ExecutionContext` carries a worker pool, raw index queries additionally
/// shard their Parscan across it (exec/parallel_parscan.h).
///
/// A `Session` itself is NOT thread-safe — it is the "one client" object;
/// give each client thread its own session (they are cheap: two pointers
/// and a stats block). Per-session statistics count this session's queries
/// and rows exactly; `pages_read` is attributed from the database-wide
/// counters, so with overlapping sessions it includes pages other sessions
/// touched mid-query (the per-query-epoch accounting model is global — see
/// the `Database` class comment).
class Session {
 public:
  struct Stats {
    uint64_t queries = 0;      ///< Calls that returned OK.
    uint64_t failed = 0;       ///< Calls that returned an error.
    uint64_t rows = 0;         ///< Rows/oids returned across all calls.
    uint64_t pages_read = 0;   ///< Page reads attributed to this session.
    uint64_t nodes_parsed = 0;    ///< Full node decompressions attributed.
    uint64_t node_cache_hits = 0; ///< Decoded-node cache hits attributed.
    uint64_t prefetch_issued = 0; ///< Background reads started.
    uint64_t prefetch_hits = 0;   ///< Demand reads served by a prefetch.
    uint64_t prefetch_wasted = 0; ///< Prefetches that served no demand read.
    uint64_t pool_hits = 0;       ///< Buffer-pool frame pins served in place.
    uint64_t pool_misses = 0;     ///< Frame pins that read the data file.
    uint64_t evictions = 0;       ///< Frames evicted from the bounded pool.
    uint64_t writebacks = 0;      ///< Dirty frames written to the data file.
    // MVCC + group commit, attributed like the counters above (database-
    // wide deltas folded per call); `reader_pin_max_age_us` is the max
    // gauge observed across this session's calls.
    uint64_t epochs_published = 0;  ///< Commit epochs made visible.
    uint64_t pages_cow = 0;         ///< Pages copied-on-write into a delta.
    uint64_t commit_batches = 0;    ///< Group-commit leader syncs.
    uint64_t commit_records = 0;    ///< Records those syncs covered.
    uint64_t reader_pin_max_age_us = 0;  ///< Longest-held reader pin seen.
    std::string ToString() const;
  };

  /// A serial session (no worker pool).
  explicit Session(const Database* db) : db_(db) {}

  /// A session executing raw queries with `ctx`'s pool (not owned; null ctx
  /// or a serial ctx behaves like the serial constructor).
  Session(const Database* db, const exec::ExecutionContext* ctx)
      : db_(db), ctx_(ctx) {}

  const Database& database() const { return *db_; }
  const Stats& stats() const { return stats_; }

  /// True when queries on this session shard across a worker pool.
  bool parallel() const {
    return ctx_ != nullptr && ctx_->pool() != nullptr;
  }

  /// `Database::Select` under the shared latch, with session accounting.
  Result<Database::SelectResult> Select(
      const Database::Selection& selection);

  /// Raw index query: parallel Parscan when the context has a pool, serial
  /// otherwise. Results are identical either way.
  Result<QueryResult> Execute(size_t index_pos, const Query& query);

  /// `Database::ExecuteOql` under the shared latch, with accounting.
  Result<Database::OqlResult> ExecuteOql(const std::string& oql);

 private:
  // Folds one finished call into the session stats; `before` is the
  // database-wide counter snapshot taken when the call started.
  void Account(bool ok, uint64_t rows, const IoStats& before);

  const Database* db_;
  const exec::ExecutionContext* ctx_ = nullptr;
  Stats stats_;
};

}  // namespace uindex

#endif  // UINDEX_DB_SESSION_H_
