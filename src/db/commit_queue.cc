#include "db/commit_queue.h"

#include <algorithm>

#include "storage/buffer_manager.h"

namespace uindex {

void CommitPipeline::Attach(Journal* journal) {
  std::lock_guard<std::mutex> lock(mu_);
  journal_ = journal;
  // Monotonic across rotations; everything appended so far was drained by
  // the caller (or failed, and those waiters already hold their error).
  appended_ = synced_ = std::max(appended_, synced_);
  failed_ = false;
  failure_ = Status::OK();
}

uint64_t CommitPipeline::OnAppended() {
  std::lock_guard<std::mutex> lock(mu_);
  if (journal_ == nullptr) return 0;
  return ++appended_;
}

void CommitPipeline::LeadSync(std::unique_lock<std::mutex>& lock,
                              uint64_t target) {
  sync_running_ = true;
  Journal* journal = journal_;
  const uint64_t base = synced_;
  lock.unlock();
  Status st = journal->Sync();
  lock.lock();
  sync_running_ = false;
  if (st.ok()) {
    synced_ = std::max(synced_, target);
    if (stats_ != nullptr && target > base) {
      stats_->RecordCommitBatch(target - base);
    }
  } else if (!failed_) {
    // First failure wins; the journal is now poisoned, so no later sync
    // can succeed and every unsynced waiter must see this.
    failed_ = true;
    failure_ = st;
  }
  cv_.notify_all();
}

Status CommitPipeline::WaitDurable(uint64_t seq) {
  if (seq == 0) return Status::OK();
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (synced_ >= seq) return Status::OK();
    if (failed_) return failure_;
    if (!sync_running_) {
      // Leader: sync through everything appended so far — the batch. Any
      // session that appended before this point is covered by this one
      // fdatasync and acked together with us.
      LeadSync(lock, appended_);
      continue;
    }
    cv_.wait(lock);
  }
}

Status CommitPipeline::SyncAll() {
  uint64_t target = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    target = appended_;
  }
  return WaitDurable(target);
}

uint64_t CommitPipeline::appended_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

uint64_t CommitPipeline::synced_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return synced_;
}

}  // namespace uindex
