#ifndef UINDEX_DB_DATABASE_H_
#define UINDEX_DB_DATABASE_H_

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/query.h"
#include "core/schema_catalog.h"
#include "core/uindex.h"
#include "core/update.h"
#include "db/commit_queue.h"
#include "db/journal.h"
#include "db/oql.h"
#include "objects/object_store.h"
#include "schema/encoder.h"
#include "schema/schema.h"
#include "storage/buffer_manager.h"
#include "storage/mvcc.h"
#include "storage/pager.h"

namespace uindex {

namespace exec {
class ThreadPool;
}  // namespace exec

/// Tuning knobs for a `Database`.
struct DatabaseOptions {
  /// Which page store backs the database.
  ///
  /// `kMemory` is the classic in-process `Pager` (every page resident).
  /// `kFile` stores pages in one data file (storage/file_pager.h) behind
  /// a bounded buffer pool of `cache_pages` frames, so the database can
  /// exceed RAM. `kDefault` resolves to `kFile` only when the
  /// UINDEX_BACKEND=file environment override is set AND no custom `env`
  /// is injected (a fault-injection env's crash-op schedule must never
  /// shift underneath an unrelated test); otherwise memory.
  ///
  /// Per-query page-read accounting is byte-identical across backends —
  /// the backend moves real I/O, never the paper metric.
  enum class Backend { kDefault, kMemory, kFile };
  Backend backend = Backend::kDefault;
  uint32_t page_size = 1024;
  /// Buffer-pool frames for the file backend (ignored by memory). 0 means
  /// the UINDEX_CACHE_PAGES environment override, or 256.
  size_t cache_pages = 0;
  /// Data-file path for the file backend. Empty auto-generates a
  /// process-unique path under /tmp that is removed on destruction.
  std::string data_path;
  /// Buffer-pool eviction policy; defaults from UINDEX_EVICTION
  /// ("clock" → CLOCK, anything else → LRU).
  static BufferPool::Eviction DefaultEviction();
  BufferPool::Eviction eviction = DefaultEviction();
  BTreeOptions btree;
  /// File system used by the durability layer (Save/Open, journal,
  /// checkpoint). Null means `Env::Default()` — the real POSIX one. Tests
  /// inject a `FaultInjectingEnv` here to crash the database at any chosen
  /// write/sync/rename and check what recovery finds.
  Env* env = nullptr;
  /// Keep a SchemaCatalog (the §4.1 schema-in-index) in sync with DDL.
  bool maintain_catalog = true;
  /// Workers on the background I/O pool that drives the asynchronous
  /// prefetch pipeline (storage/prefetch.h): leaf-chain readahead for
  /// forward scans and Parscan child-subtree prefetch. 0 — or the global
  /// UINDEX_PREFETCH=off escape hatch — disables prefetching (every fetch
  /// is a synchronous demand read). Page-read accounting is identical
  /// either way.
  size_t prefetch_threads = 4;
  /// Group commit (db/commit_queue.h): the journal is opened in
  /// batched-sync mode, DML appends release the writer serialization
  /// before waiting for durability, and a leader session fdatasyncs one
  /// whole batch of concurrent commits together. Off = the classic
  /// sync-on-every-append journal (the bench_mvcc baseline). Durability
  /// semantics are identical — a mutation is acked only once its record is
  /// on stable media; what changes is syncs per acked commit.
  bool group_commit = true;
};

/// The full-system façade: schema DDL, object DML, U-index management, and
/// query execution with automatic index selection — the layer an
/// application links against.
///
/// One `Database` owns its pager, buffer manager, object store, class
/// codes, schema catalog, and any number of U-indexes. DDL keeps the codes
/// and catalog current (paper Fig. 4); DML keeps every index current
/// (§3.5); `Select` routes a query to an index whose path can serve it, or
/// falls back to an extent scan.
///
/// Concurrency (DESIGN.md "MVCC & group commit"): queries and DML run
/// concurrently. Readers take the shared latch, pin the published commit
/// epoch (storage/mvcc.h), and execute against an immutable snapshot —
/// per-query `UIndex` views over the epoch's published index roots, chain-
/// revision page reads, and epoch-filtered object/extent resolution — so a
/// scan never observes a concurrent mutation. DML also runs under the
/// *shared* latch: writers serialize among themselves on a writer mutex,
/// copy-on-write their page changes into epoch `published+1`, publish that
/// epoch atomically, and (with `group_commit`) wait for durability only
/// after releasing the writer mutex so concurrent commits batch into one
/// fdatasync. Only DDL, `Save`, `Checkpoint`, and `EnableJournal` still
/// take the latch exclusively: they quiesce readers, fold every version
/// into base storage, and mutate in place. `Session` (db/session.h) is the
/// per-client handle layering per-session statistics and an
/// `exec::ExecutionContext` on top of this API. Note the per-query-epoch
/// page-read accounting is database-wide: concurrent queries share one
/// epoch, so per-query counts (`QueryCost`) are only exact when queries
/// don't overlap.
class Database {
 public:
  explicit Database(DatabaseOptions options = DatabaseOptions());

  /// Teardown order matters once background I/O exists: the prefetch
  /// scheduler must drain (and detach from the buffer manager) while the
  /// pool, indexes, buffers, and pager are all still alive. The explicit
  /// destructor documents and enforces that ordering; see its definition.
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Persists the whole database (pages + schema + codes + objects + index
  /// roots) to `path` atomically.
  Status Save(const std::string& path) const;

  /// Restores a database saved with `Save`. `options.btree` must match the
  /// saved database's options.
  static Result<std::unique_ptr<Database>> Open(
      const std::string& path, DatabaseOptions options = DatabaseOptions());

  // ----------------------------------------------------------- durability
  /// Starts logging every DDL/DML mutation to `path` (appending to an
  /// existing journal of the database's current generation; anything else
  /// at `path` is replaced). Together with `Checkpoint` this provides
  /// snapshot+log durability; see db/journal.h.
  Status EnableJournal(const std::string& path);

  /// Writes a snapshot to `snapshot_path` and rotates in a fresh journal
  /// (one must be enabled): the log's contents are now captured by the
  /// snapshot. Crash-atomic — the sequence is stage the next-generation
  /// journal, commit the snapshot (sync + rename + dir sync), publish the
  /// journal; a crash anywhere leaves a state `OpenDurable` recovers
  /// exactly (see DESIGN.md "Durability & crash recovery"). On failure the
  /// database may refuse further journaled mutations (fail-stop) rather
  /// than risk acking writes recovery would not replay.
  Status Checkpoint(const std::string& snapshot_path);

  /// Opens a durable database: loads `snapshot_path` if it exists (else
  /// starts empty), replays the journal at `journal_path` when its
  /// generation matches the snapshot's (an older journal is a checkpoint
  /// leftover and is ignored; a *newer* one means its snapshot is missing
  /// and is refused as Corruption), and leaves the journal enabled for
  /// further mutations.
  static Result<std::unique_ptr<Database>> OpenDurable(
      const std::string& snapshot_path, const std::string& journal_path,
      DatabaseOptions options = DatabaseOptions());

  // ------------------------------------------------------------------ DDL
  /// Creates a hierarchy root / subclass; assigns its class code and
  /// records it in the catalog.
  Result<ClassId> CreateClass(const std::string& name);
  Result<ClassId> CreateSubclass(const std::string& name, ClassId parent);

  /// Declares a REF attribute. Fails (re-encode required) if the edge
  /// inverts the established code order — the documented limit of
  /// incremental evolution (§4.3).
  Status CreateReference(ClassId source, ClassId target,
                         const std::string& attribute,
                         bool multi_valued = false);

  /// As CreateReference, but when the new edge inverts the code order it
  /// performs the full §4.3 re-encode (fresh codes, catalog and index
  /// rebuild) instead of failing.
  Status CreateReferenceWithReencode(ClassId source, ClassId target,
                                     const std::string& attribute,
                                     bool multi_valued = false);

  /// Builds a U-index over `spec` from current data and registers it for
  /// maintenance. Returns its position among the database's indexes.
  Result<size_t> CreateIndex(const PathSpec& spec);

  /// Drops index #`index_pos`, reclaiming its pages. Later indexes shift
  /// down by one position.
  Status DropIndex(size_t index_pos);

  /// Re-assigns every class code from scratch (a fresh topological order
  /// over the current schema) and rebuilds the catalog and every index —
  /// the paper's §4.3 escape hatch when schema evolution has invalidated
  /// the incremental encoding (e.g. a REF edge that must point "up" the
  /// current code order). Call after adding such an edge directly to the
  /// schema; `CreateReference` names this in its error message.
  Status Reencode();

  // ------------------------------------------------------------------ DML
  Result<Oid> CreateObject(ClassId cls);
  Status SetAttr(Oid oid, const std::string& name, Value value);
  Status DeleteObject(Oid oid);

  // ---------------------------------------------------------------- query
  /// A query bound to a target class: "objects of `cls` (and subclasses
  /// unless `exact`) whose `attr` (possibly reached through the refs of a
  /// registered index path) satisfies the predicate".
  struct Selection {
    ClassId cls = kInvalidClassId;
    bool with_subclasses = true;
    std::string attr;
    Value lo, hi;  ///< Inclusive range; equal for exact match.
  };

  /// Executes `selection`, preferring a registered U-index that can serve
  /// it; otherwise scans extents (and reports that it did). Results are
  /// sorted distinct oids of the target class.
  struct SelectResult {
    std::vector<Oid> oids;
    bool used_index = false;
    std::string index_description;
  };
  Result<SelectResult> Select(const Selection& selection) const;

  /// Runs a raw `Query` against index #`index_pos` (Parscan).
  Result<QueryResult> Execute(size_t index_pos, const Query& query) const;

  /// As `Execute`, but shards the query's partial-key intervals across
  /// `pool`'s workers (exec/parallel_parscan.h). Results and page-read
  /// totals are identical to the serial run; a null pool falls back to it.
  /// The shared latch is held for the whole scan, so concurrent DML waits.
  Result<QueryResult> ExecuteParallel(size_t index_pos, const Query& query,
                                      exec::ThreadPool* pool) const;

  /// Parses and executes an OQL-style statement (see db/oql.h). The
  /// planner drives the query through a registered U-index when one covers
  /// the value predicate's reference path (pushing IS restrictions into
  /// the index components), post-filtering the rest by object traversal;
  /// with no covering index it evaluates everything by traversal.
  struct OqlResult {
    std::vector<Oid> oids;   ///< Sorted distinct bindings (LIMIT applied;
                             ///< empty for COUNT queries).
    uint64_t count = 0;      ///< Number of bindings (pre-LIMIT).
    bool used_index = false;
    std::string plan;        ///< Human-readable plan description.
  };
  Result<OqlResult> ExecuteOql(const std::string& oql) const;

  // ------------------------------------------------------------- sharding
  /// The slice of the class-code space this database serves when it is one
  /// horizontal shard of a cluster (DESIGN.md "Sharding & scatter-gather"):
  /// raw class-code byte bounds [lo, hi) — empty `hi` means +infinity —
  /// plus the ShardMap version that installed them. The COD encoding keeps
  /// every class sub-tree contiguous in code space, so a range needs no
  /// class names and may even split a sub-tree mid-range.
  struct ServedRange {
    std::string lo;
    std::string hi;
    uint64_t version = 0;
  };

  /// Installs (or replaces) this database's served range. Thread-safe
  /// against concurrent queries: in-flight queries keep the range they
  /// started with; later queries see the new one. Every query then binds
  /// result objects only to classes whose code falls in [lo, hi) — the
  /// index path pushes the range into the head component's compiled
  /// intervals, the extent path filters by object class code.
  void SetServedRange(ServedRange range);

  /// The installed served range, or null when this database serves the
  /// whole code space (the single-node default).
  std::shared_ptr<const ServedRange> served_range() const;

  /// Router-facing compilation of an OQL statement — the planning half of
  /// `ExecuteOql` with no execution: which sorted, disjoint raw class-code
  /// intervals the statement's result (head) bindings can fall in, so a
  /// shard router can intersect them with its ShardMap and prune shards
  /// whose served ranges cannot own a result. Also surfaces the LIMIT /
  /// COUNT shape the router needs to merge shard streams.
  struct RoutingPlan {
    /// Sorted disjoint class-code intervals (empty hi = +infinity) that
    /// cover every class a result object may belong to.
    std::vector<ByteInterval> code_spans;
    bool used_index = false;  ///< Whether shards will drive an index.
    uint64_t limit = 0;       ///< The statement's LIMIT (0 = none).
    bool count_only = false;  ///< COUNT query: merge counts, not rows.
    std::string plan;         ///< Human-readable routing description.
  };
  Result<RoutingPlan> PlanOqlRouting(const std::string& oql) const;

  /// Explains how `selection` would execute: every candidate access path
  /// with a page-read estimate, and which one `Select` would pick.
  struct ExplainCandidate {
    std::string description;
    bool usable = false;
    std::string reason;          ///< Why unusable, when applicable.
    double estimated_pages = 0;  ///< Height + selectivity * leaves.
  };
  struct Explanation {
    std::vector<ExplainCandidate> candidates;  ///< Indexes, then the scan.
    size_t chosen = 0;                         ///< Index into candidates.
  };
  Result<Explanation> Explain(const Selection& selection) const;

  // ------------------------------------------------------------ accessors
  const Schema& schema() const { return schema_; }
  const ClassCoder& coder() const { return coder_; }
  ObjectStore& store() { return store_; }
  const ObjectStore& store() const { return store_; }
  BufferManager& buffers() { return buffers_; }
  const BufferManager& buffers() const { return buffers_; }
  const SchemaCatalog* catalog() const { return catalog_.get(); }
  size_t index_count() const { return indexes_.size(); }
  const UIndex& index(size_t pos) const { return *indexes_[pos]; }

  /// Total pages owned by all structures (footprint).
  uint64_t live_pages() const { return pager_->live_page_count(); }

  /// Non-OK when the requested file backend could not be set up and the
  /// database silently fell back to memory (construction cannot fail).
  const Status& backend_status() const { return backend_status_; }
  /// The file backend's data-file path; empty on the memory backend.
  const std::string& data_path() const { return data_path_; }

  /// The attached prefetch scheduler, or null when prefetching is disabled
  /// (`prefetch_threads == 0` or UINDEX_PREFETCH=off).
  PrefetchScheduler* prefetcher() const { return prefetcher_.get(); }

  // ---------------------------------------------------- MVCC introspection
  /// The current published commit epoch (tests / tools).
  uint64_t published_epoch() const { return pins_.published(); }
  /// Reader snapshots currently pinned.
  size_t active_snapshots() const { return pins_.active_pins(); }
  /// The group-commit pipeline (tests; inert when group_commit is off).
  CommitPipeline& commit_pipeline() { return pipeline_; }

 private:
  // The resolved page store plus the backend bookkeeping that travels with
  // it (data-file path ownership, memory-fallback status).
  struct StoreSetup {
    std::unique_ptr<PageStore> store;
    std::string data_path;
    bool owns_data_path = false;
    Status status;  // Non-OK: file backend failed, store is the fallback.
  };
  // Builds a fresh store per `options` (backend resolution, auto data
  // path); never fails — a file-backend failure falls back to memory with
  // the reason in `status`.
  static StoreSetup MakeFreshStore(const DatabaseOptions& options, Env* env);
  // `options.cache_pages`, or UINDEX_CACHE_PAGES, or 256.
  static size_t ResolvedCachePages(const DatabaseOptions& options);

  // All construction funnels here; the public constructor delegates with a
  // fresh store, `Open` with one restored from a snapshot.
  Database(DatabaseOptions options, StoreSetup setup);

  // Latch-free bodies for public entry points that other entry points call
  // while already holding the latch (the latch is not recursive).
  // `rename_attempted` is PagerSnapshot::Save's commit-point signal; see
  // Checkpoint.
  Status ReencodeLocked();
  Status SaveLocked(const std::string& path,
                    bool* rename_attempted = nullptr) const;

  // Creates the background I/O pool and prefetch scheduler when enabled;
  // both constructors call it after the buffer manager exists.
  void AttachPrefetcher();

  // Waits out all in-flight background reads. Exclusive-context entry
  // points (DDL/Save/Checkpoint) call this right after taking the unique
  // latch: background reads are readers of page bytes, and the latch only
  // excludes foreground readers; new prefetches cannot start while it is
  // held. DML does NOT drain per operation — CoW versioning keeps base
  // bytes stable under background reads — except when a deferred page free
  // is about to become physical (see ReclaimForWrite).
  void QuiescePrefetch();

  // True if index `idx` can answer `selection`, with the key position of
  // the target class written to `position`.
  bool IndexServes(const UIndex& idx, const Selection& selection,
                   size_t* position) const;

  // --- OQL planning helpers (db/oql_planner.cc). ---
  // A resolved condition path: the ref attrs walked and the class each
  // step lands on; `attr` non-empty when the path ends in a plain
  // attribute.
  struct ResolvedPath {
    std::vector<std::string> refs;
    std::vector<ClassId> classes;  // Class after each ref step.
    std::string attr;
  };
  Result<ResolvedPath> ResolveOqlPath(ClassId from,
                                      const OqlPath& path) const;
  // Inclusive attribute bounds for a value condition (kCompare/kBetween);
  // fails for operators inexpressible as inclusive ranges.
  static Status BoundsFor(const OqlCondition& cond, Value* lo, Value* hi);
  // Any-semantics traversal evaluation of one condition for `oid`.
  Result<bool> EvalOqlCondition(Oid oid, const OqlCondition& cond,
                                const ResolvedPath& resolved) const;

  // Applies a replayed journal record (journaling suppressed).
  Status ApplyRecord(const JournalRecord& record);
  // Appends to the journal if one is enabled; `*seq` receives the commit
  // sequence ticket to pass to `pipeline_.WaitDurable` (0 when nothing was
  // appended or group commit is off).
  Status Log(const JournalRecord& record, uint64_t* seq);

  // --------------------------------------------------------- MVCC plumbing
  // The per-epoch immutable state readers pin: for each index, the tree
  // root / tree size / entry count as of the epoch. Everything else a
  // query touches is epoch-resolved at a lower layer (pages through the
  // version table, objects through revision chains) or only mutated under
  // the exclusive latch (schema, coder, catalog, index specs).
  struct IndexSnapshot {
    PageId root = kInvalidPageId;
    uint64_t size = 0;
    uint64_t entries = 0;
  };
  struct DbState {
    uint64_t epoch = 0;
    std::vector<IndexSnapshot> indexes;
  };
  // RAII reader snapshot: pins {epoch, index-root state} atomically, so a
  // query resolves every page, object, and tree root "as of" one published
  // commit; reports the pin's held-age to the `reader_pin_max_age` gauge
  // on release.
  class ReadPin {
   public:
    explicit ReadPin(const Database* db)
        : db_(db),
          pin_(db->pins_.PinCurrent()),
          state_(std::static_pointer_cast<const DbState>(pin_.state)) {}
    ~ReadPin() {
      const uint64_t age_us = db_->pins_.Unpin(pin_);
      const_cast<BufferManager&>(db_->buffers_).RecordPinAge(age_us);
    }
    ReadPin(const ReadPin&) = delete;
    ReadPin& operator=(const ReadPin&) = delete;

    uint64_t epoch() const { return pin_.epoch; }

    // A read-only view of index `pos` frozen at the pinned epoch's
    // root/size/entries. The live `UIndex` is never scanned directly —
    // the writer mutates its root/size fields under writer_mu_.
    std::unique_ptr<UIndex> View(size_t pos) const {
      const UIndex& live = *db_->indexes_[pos];
      if (state_ != nullptr && pos < state_->indexes.size()) {
        const IndexSnapshot& m = state_->indexes[pos];
        return std::make_unique<UIndex>(live, m.root, m.size, m.entries);
      }
      // The state predates this index (created/restored under the
      // exclusive latch but not yet republished): live fields are stable
      // here, since any path that grows indexes_ excludes readers.
      return std::make_unique<UIndex>(live, live.btree().root(),
                                      live.btree().size(),
                                      live.entry_count());
    }

   private:
    const Database* db_;
    EpochPinRegistry::Pin pin_;
    std::shared_ptr<const DbState> state_;
  };
  // RAII for DDL bodies: republishes the current epoch's state (with
  // refreshed index roots) on every exit path — a failed DDL may still
  // have moved roots (e.g. a partial rebuild), and the published state
  // must never point at a stale root.
  struct RepublishGuard {
    explicit RepublishGuard(Database* db) : db(db) {}
    ~RepublishGuard() { db->PublishState(db->pins_.published()); }
    RepublishGuard(const RepublishGuard&) = delete;
    RepublishGuard& operator=(const RepublishGuard&) = delete;
    Database* db;
  };

  // Publishes `epoch` with the live indexes' current roots as its state.
  // Writer side: called under writer_mu_ (DML) or the exclusive latch
  // (DDL, which republishes the *same* epoch with refreshed roots).
  void PublishState(uint64_t epoch);
  // DML preamble, under writer_mu_: folds every version no pinned reader
  // can need into base storage (quiescing background reads first when a
  // deferred page free is about to become physical).
  void ReclaimForWrite();
  // Exclusive-context preamble (DDL/Save/Checkpoint), under the unique
  // latch: drains background I/O and folds ALL versions into base so
  // legacy in-place writes cannot be shadowed by a chain revision.
  void BeginExclusiveWrite();

  // DDL/Save/Checkpoint exclusive vs. everything else shared; see the
  // class comment.
  mutable std::shared_mutex latch_;
  // Serializes mutating sessions among themselves under the shared latch.
  // Held across reclaim -> CoW mutation -> journal append -> publish;
  // released before the group-commit durability wait.
  std::mutex writer_mu_;
  // Epoch pins + published state (mutable: readers pin under const entry
  // points).
  mutable EpochPinRegistry pins_;
  CommitPipeline pipeline_;
  DatabaseOptions options_;
  Env* env_;  // Resolved from options_.env; never null.
  // Checkpoint counter pairing the snapshot with its journal: the snapshot
  // metadata and the journal header both carry it, and recovery only
  // replays a journal whose generation matches the snapshot it loaded.
  uint64_t generation_ = 0;
  std::unique_ptr<PageStore> pager_;
  BufferManager buffers_;
  // File backend only: the data file's path, whether this database created
  // it (auto temp paths are removed on destruction), and the fallback
  // status (see backend_status()).
  std::string data_path_;
  bool owns_data_path_ = false;
  Status backend_status_;
  std::unique_ptr<Journal> journal_;
  // Served-range slot (sharding). Swapped whole under served_mu_ so an
  // install during a query is safe: readers copy the shared_ptr once up
  // front and never observe a half-written range.
  mutable std::mutex served_mu_;
  std::shared_ptr<const ServedRange> served_;
  Schema schema_;
  ClassCoder coder_;
  ObjectStore store_;
  IndexedDatabase maintainer_;
  std::unique_ptr<SchemaCatalog> catalog_;
  std::vector<std::unique_ptr<UIndex>> indexes_;
  // Background prefetch machinery, declared last so default member
  // destruction alone would already run it down first (the scheduler's
  // destructor drains and detaches); the explicit ~Database makes the
  // ordering visible. The pool must outlive the scheduler.
  std::unique_ptr<exec::ThreadPool> io_pool_;
  std::unique_ptr<PrefetchScheduler> prefetcher_;
};

}  // namespace uindex

#endif  // UINDEX_DB_DATABASE_H_
