#ifndef UINDEX_DB_OQL_H_
#define UINDEX_DB_OQL_H_

#include <string>
#include <vector>

#include "objects/object.h"
#include "util/status.h"

namespace uindex {

/// A tiny OQL-style query language over the Database façade, covering the
/// query shapes the paper motivates (§1-§3): attribute predicates reached
/// through reference paths, class-hierarchy targets, and in-path class
/// restrictions. Examples:
///
///   SELECT v FROM Vehicle* v WHERE v.Color = 'Red'
///   SELECT v FROM Truck* v
///     WHERE v.made-by.president.Age BETWEEN 50 AND 60
///   SELECT c FROM Company* c WHERE c.president.Age > 50
///   SELECT v FROM Vehicle* v
///     WHERE v.made-by.president.Age = 50
///       AND v.made-by IS JapaneseAutoCompany*
///   SELECT v FROM Vehicle* v WHERE v.Color IN ('Red', 'Blue')
///
/// Grammar (keywords case-insensitive; `*` on a class name means "with all
/// subclasses"):
///   query := SELECT target FROM ClassName['*'] ident
///            WHERE cond (AND cond)* [LIMIT integer]
///   target:= ident | COUNT '(' ident ')'
///   cond  := path cmp value
///          | path BETWEEN value AND value
///          | path IN '(' value (',' value)* ')'
///          | path IS ClassName['*']
///   path  := ident ('.' name)*          -- the ident is the FROM variable
///   cmp   := '=' | '<' | '<=' | '>' | '>='
///   value := integer | 'string'
struct OqlClassRef {
  std::string name;
  bool with_subclasses = false;
};

struct OqlPath {
  std::string var;
  std::vector<std::string> steps;  ///< Ref attrs, last may be an attribute.
};

struct OqlCondition {
  enum class Kind { kCompare, kBetween, kIn, kIs };
  Kind kind = Kind::kCompare;
  OqlPath path;
  std::string op;             ///< For kCompare.
  Value value1, value2;       ///< Operands (value2 for BETWEEN).
  std::vector<Value> values;  ///< For kIn.
  OqlClassRef class_ref;      ///< For kIs.
};

struct OqlQuery {
  std::string var;
  OqlClassRef from;
  std::vector<OqlCondition> conditions;
  bool count_only = false;   ///< SELECT COUNT(v).
  uint64_t limit = 0;        ///< 0 = unlimited.
};

/// Parses `text` into an AST. Pure syntax: names are resolved against the
/// schema by the planner (Database::Query). Parse errors are
/// `InvalidArgument` and carry the byte offset of the offending token plus
/// a caret-context snippet (util/diag.h), e.g.:
///
///   expected FROM at byte 9
///     SELECT v FORM Vehicle* v
///              ^
Result<OqlQuery> ParseOql(const std::string& text);

}  // namespace uindex

#endif  // UINDEX_DB_OQL_H_
