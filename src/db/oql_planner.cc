#include <algorithm>
#include <climits>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <utility>

#include "db/database.h"
#include "schema/class_code.h"

namespace uindex {

namespace {

// Order-preserving comparison of two values of the same kind.
int CompareValues(const Value& a, const Value& b) {
  std::string ia, ib;
  a.AppendOrderPreserving(&ia);
  b.AppendOrderPreserving(&ib);
  return Slice(ia).Compare(Slice(ib));
}

// Is `code` inside the half-open served slice [lo, hi) (empty hi = +inf)?
bool CodeServed(const Slice& code, const Database::ServedRange& served) {
  if (code < Slice(served.lo)) return false;
  return served.hi.empty() || code < Slice(served.hi);
}

}  // namespace

Result<Database::ResolvedPath> Database::ResolveOqlPath(
    ClassId from, const OqlPath& path) const {
  ResolvedPath out;
  ClassId current = from;
  for (size_t i = 0; i < path.steps.size(); ++i) {
    Result<RefEdge> edge = schema_.FindReference(current, path.steps[i]);
    if (edge.ok()) {
      out.refs.push_back(path.steps[i]);
      current = edge.value().target;
      out.classes.push_back(current);
      continue;
    }
    if (i + 1 == path.steps.size()) {
      out.attr = path.steps[i];  // Terminal attribute.
      return out;
    }
    return Status::InvalidArgument("'" + path.steps[i] +
                                   "' is not a reference of " +
                                   schema_.NameOf(current));
  }
  return out;  // Pure reference path (IS conditions).
}

Status Database::BoundsFor(const OqlCondition& cond, Value* lo, Value* hi) {
  const Value& v = cond.value1;
  if (cond.kind == OqlCondition::Kind::kBetween) {
    if (cond.value1.kind() != cond.value2.kind()) {
      return Status::InvalidArgument("BETWEEN operand kind mismatch");
    }
    *lo = cond.value1;
    *hi = cond.value2;
    return Status::OK();
  }
  if (cond.kind != OqlCondition::Kind::kCompare) {
    return Status::InvalidArgument("no range for this condition");
  }
  if (cond.op == "=") {
    *lo = v;
    *hi = v;
    return Status::OK();
  }
  if (v.kind() != Value::Kind::kInt) {
    // Open-ended string ranges are not expressible as inclusive bounds
    // here; the caller falls back to traversal for them.
    return Status::NotSupported("ordered comparison on non-int value");
  }
  const int64_t x = v.AsInt();
  if (cond.op == "<") {
    if (x == INT64_MIN) return Status::InvalidArgument("empty range");
    *lo = Value::Int(INT64_MIN);
    *hi = Value::Int(x - 1);
  } else if (cond.op == "<=") {
    *lo = Value::Int(INT64_MIN);
    *hi = Value::Int(x);
  } else if (cond.op == ">") {
    if (x == INT64_MAX) return Status::InvalidArgument("empty range");
    *lo = Value::Int(x + 1);
    *hi = Value::Int(INT64_MAX);
  } else if (cond.op == ">=") {
    *lo = Value::Int(x);
    *hi = Value::Int(INT64_MAX);
  } else {
    return Status::InvalidArgument("unknown operator " + cond.op);
  }
  return Status::OK();
}

Result<bool> Database::EvalOqlCondition(
    Oid oid, const OqlCondition& cond,
    const ResolvedPath& resolved) const {
  // Recursive any-semantics walk over the reference steps.
  struct Walker {
    const Database* db;
    const OqlCondition* cond;
    const ResolvedPath* resolved;

    Result<bool> AtEnd(Oid target) const {
      if (cond->kind == OqlCondition::Kind::kIs) {
        Result<const Object*> obj = db->store_.Get(target);
        if (!obj.ok()) return false;
        Result<ClassId> cls =
            db->schema_.FindClass(cond->class_ref.name);
        if (!cls.ok()) return cls.status();
        return cond->class_ref.with_subclasses
                   ? db->schema_.IsSubclassOf(obj.value()->cls, cls.value())
                   : obj.value()->cls == cls.value();
      }
      // Value condition: compare the terminal attribute.
      Result<const Object*> obj = db->store_.Get(target);
      if (!obj.ok()) return false;
      const Value* attr = obj.value()->FindAttr(resolved->attr);
      if (attr == nullptr) return false;
      switch (cond->kind) {
        case OqlCondition::Kind::kCompare: {
          if (attr->kind() != cond->value1.kind()) return false;
          const int c = CompareValues(*attr, cond->value1);
          if (cond->op == "=") return c == 0;
          if (cond->op == "<") return c < 0;
          if (cond->op == "<=") return c <= 0;
          if (cond->op == ">") return c > 0;
          if (cond->op == ">=") return c >= 0;
          return Status::InvalidArgument("unknown operator " + cond->op);
        }
        case OqlCondition::Kind::kBetween:
          if (attr->kind() != cond->value1.kind()) return false;
          return CompareValues(*attr, cond->value1) >= 0 &&
                 CompareValues(*attr, cond->value2) <= 0;
        case OqlCondition::Kind::kIn: {
          for (const Value& v : cond->values) {
            if (attr->kind() == v.kind() && *attr == v) return true;
          }
          return false;
        }
        case OqlCondition::Kind::kIs:
          return Status::InvalidArgument("unreachable");
      }
      return false;
    }

    Result<bool> Walk(Oid current, size_t step) const {
      if (step == resolved->refs.size()) return AtEnd(current);
      Result<const Object*> obj = db->store_.Get(current);
      if (!obj.ok()) return false;
      const Value* ref = obj.value()->FindAttr(resolved->refs[step]);
      if (ref == nullptr) return false;
      if (ref->kind() == Value::Kind::kRef) {
        return Walk(ref->AsRef(), step + 1);
      }
      if (ref->kind() == Value::Kind::kRefSet) {
        for (const Oid t : ref->AsRefSet()) {
          Result<bool> hit = Walk(t, step + 1);
          if (!hit.ok()) return hit;
          if (hit.value()) return true;
        }
        return false;
      }
      return false;
    }
  };
  return Walker{this, &cond, &resolved}.Walk(oid, 0);
}

Result<Database::OqlResult> Database::ExecuteOql(const std::string& oql) const {
  std::shared_lock lock(latch_);
  // Snapshot read: pin the published epoch — index scans run over views
  // frozen at its roots, traversals resolve objects as of it.
  ReadPin pin(this);
  ScopedEpoch scope(pin.epoch());
  // One coherent served-range view for the whole statement: a concurrent
  // shard-map install must not split a query across two range versions.
  const std::shared_ptr<const ServedRange> served = served_range();
  Result<OqlQuery> parsed = ParseOql(oql);
  if (!parsed.ok()) return parsed.status();
  const OqlQuery& q = parsed.value();

  Result<ClassId> from = schema_.FindClass(q.from.name);
  if (!from.ok()) return from.status();

  // Resolve every condition path up front.
  std::vector<ResolvedPath> resolved(q.conditions.size());
  for (size_t i = 0; i < q.conditions.size(); ++i) {
    Result<ResolvedPath> r = ResolveOqlPath(from.value(),
                                            q.conditions[i].path);
    if (!r.ok()) return r.status();
    resolved[i] = std::move(r).value();
    const bool is_value_cond =
        q.conditions[i].kind != OqlCondition::Kind::kIs;
    if (is_value_cond && resolved[i].attr.empty()) {
      return Status::InvalidArgument(
          "value condition must end in an attribute");
    }
    if (!is_value_cond && !resolved[i].attr.empty()) {
      return Status::InvalidArgument(
          "'" + resolved[i].attr + "' is not a reference (IS needs a "
          "reference path)");
    }
  }

  OqlResult out;
  std::vector<bool> consumed(q.conditions.size(), false);

  // --- Try to drive through a registered U-index. ---
  for (size_t ci = 0; ci < q.conditions.size() && !out.used_index; ++ci) {
    const OqlCondition& cond = q.conditions[ci];
    if (cond.kind == OqlCondition::Kind::kIs) continue;

    Value lo, hi;
    std::vector<Value> values;
    if (cond.kind == OqlCondition::Kind::kIn) {
      values = cond.values;
    } else if (!BoundsFor(cond, &lo, &hi).ok()) {
      continue;  // Not index-expressible; may still drive via another cond.
    }

    for (size_t pos = 0; pos < indexes_.size(); ++pos) {
      const PathSpec& spec = indexes_[pos]->spec();
      if (spec.indexed_attr != resolved[ci].attr) continue;
      if (spec.ref_attrs != resolved[ci].refs) continue;
      const Value& probe = cond.kind == OqlCondition::Kind::kIn
                               ? cond.values.front()
                               : cond.value1;
      if (spec.value_kind != probe.kind()) continue;
      const bool head_fits =
          spec.include_subclasses
              ? schema_.IsSubclassOf(from.value(), spec.classes[0])
              : from.value() == spec.classes[0];
      if (!head_fits) continue;

      // Build the index query: components tail -> head.
      Query iq;
      if (cond.kind == OqlCondition::Kind::kIn) {
        iq.values = values;
      } else {
        iq.lo = lo;
        iq.hi = hi;
      }
      const size_t length = spec.Length();
      for (size_t key_pos = 0; key_pos < length; ++key_pos) {
        const size_t head_pos = length - 1 - key_pos;  // 0 = FROM class.
        QueryComponent comp;
        if (head_pos == 0) {
          comp.selector.include.push_back(
              {from.value(), q.from.with_subclasses});
          if (served != nullptr) {
            // Shard restriction: result bindings must belong to classes
            // inside the served code slice. Compile intersects this with
            // the include term's code range, so out-of-range sub-trees
            // never even reach the scan.
            comp.selector.code_ranges.push_back({served->lo, served->hi});
          }
          comp.slot = ValueSlot::Wanted();
        } else {
          // Push down the first unconsumed IS condition whose reference
          // chain reaches exactly this position.
          for (size_t oi = 0; oi < q.conditions.size(); ++oi) {
            if (consumed[oi] ||
                q.conditions[oi].kind != OqlCondition::Kind::kIs) {
              continue;
            }
            if (resolved[oi].refs.size() != head_pos) continue;
            if (!std::equal(resolved[oi].refs.begin(),
                            resolved[oi].refs.end(),
                            spec.ref_attrs.begin())) {
              continue;
            }
            Result<ClassId> is_cls =
                schema_.FindClass(q.conditions[oi].class_ref.name);
            if (!is_cls.ok()) return is_cls.status();
            comp.selector.include.push_back(
                {is_cls.value(),
                 q.conditions[oi].class_ref.with_subclasses});
            consumed[oi] = true;
            break;
          }
        }
        iq.components.push_back(std::move(comp));
      }

      std::unique_ptr<UIndex> view = pin.View(pos);
      Result<QueryResult> r = view->Parscan(iq);
      if (!r.ok()) return r.status();
      out.oids = r.value().Distinct(length - 1);
      out.used_index = true;
      consumed[ci] = true;
      out.plan = "U-index on " + schema_.NameOf(spec.classes[0]) + "." +
                 spec.indexed_attr + " (path length " +
                 std::to_string(length) + ")";
      break;
    }
  }

  if (!out.used_index) {
    out.oids = q.from.with_subclasses ? store_.DeepExtentOf(from.value())
                                      : store_.ExtentOf(from.value());
    if (served != nullptr) {
      // Same shard restriction as the index path, by object class code.
      std::vector<Oid> kept;
      kept.reserve(out.oids.size());
      for (const Oid oid : out.oids) {
        Result<const Object*> obj = store_.Get(oid);
        if (!obj.ok()) continue;
        if (CodeServed(Slice(coder_.CodeOf(obj.value()->cls)), *served)) {
          kept.push_back(oid);
        }
      }
      out.oids = std::move(kept);
    }
    std::sort(out.oids.begin(), out.oids.end());
    out.plan = "extent traversal over " + q.from.name;
  }
  if (served != nullptr) {
    out.plan += " [shard v" + std::to_string(served->version) + "]";
  }

  // --- Post-filter with the remaining conditions by traversal. ---
  std::vector<Oid> filtered;
  for (const Oid oid : out.oids) {
    bool keep = true;
    for (size_t ci = 0; keep && ci < q.conditions.size(); ++ci) {
      if (consumed[ci]) continue;
      Result<bool> hit = EvalOqlCondition(oid, q.conditions[ci],
                                          resolved[ci]);
      if (!hit.ok()) return hit.status();
      keep = hit.value();
    }
    if (keep) filtered.push_back(oid);
  }
  out.oids = std::move(filtered);
  out.count = out.oids.size();
  if (q.count_only) {
    out.oids.clear();
  } else if (q.limit != 0 && out.oids.size() > q.limit) {
    out.oids.resize(q.limit);
  }
  return out;
}

void Database::SetServedRange(ServedRange range) {
  auto next = std::make_shared<const ServedRange>(std::move(range));
  std::lock_guard<std::mutex> guard(served_mu_);
  served_ = std::move(next);
}

std::shared_ptr<const Database::ServedRange> Database::served_range() const {
  std::lock_guard<std::mutex> guard(served_mu_);
  return served_;
}

Result<Database::RoutingPlan> Database::PlanOqlRouting(
    const std::string& oql) const {
  std::shared_lock lock(latch_);
  Result<OqlQuery> parsed = ParseOql(oql);
  if (!parsed.ok()) return parsed.status();
  const OqlQuery& q = parsed.value();

  Result<ClassId> from = schema_.FindClass(q.from.name);
  if (!from.ok()) return from.status();

  // Validate every condition up front so a malformed statement fails here,
  // at the router, instead of surfacing as a scatter-wide shard failure.
  for (const OqlCondition& cond : q.conditions) {
    Result<ResolvedPath> r = ResolveOqlPath(from.value(), cond.path);
    if (!r.ok()) return r.status();
    const bool is_value_cond = cond.kind != OqlCondition::Kind::kIs;
    if (is_value_cond && r.value().attr.empty()) {
      return Status::InvalidArgument(
          "value condition must end in an attribute");
    }
    if (!is_value_cond) {
      if (!r.value().attr.empty()) {
        return Status::InvalidArgument(
            "'" + r.value().attr + "' is not a reference (IS needs a "
            "reference path)");
      }
      Result<ClassId> is_cls = schema_.FindClass(cond.class_ref.name);
      if (!is_cls.ok()) return is_cls.status();
    }
  }

  RoutingPlan out;
  out.limit = q.limit;
  out.count_only = q.count_only;

  // Result bindings are objects of the FROM class (or its sub-tree): with
  // the COD encoding that is one contiguous code interval. An exact FROM
  // pins the single code — descendants all *extend* the code string, so
  // [code, code + '\0') contains the code and nothing else.
  const std::string& code = coder_.CodeOf(from.value());
  ByteInterval span;
  span.lo = code;
  span.hi = q.from.with_subclasses ? SubtreeUpperBound(Slice(code))
                                   : code + '\0';
  out.code_spans.push_back(std::move(span));

  // Mirror ExecuteOql's index selection (without executing) so the router
  // can report how shards will run the statement.
  for (size_t ci = 0; ci < q.conditions.size() && !out.used_index; ++ci) {
    const OqlCondition& cond = q.conditions[ci];
    if (cond.kind == OqlCondition::Kind::kIs) continue;
    Value lo, hi;
    if (cond.kind != OqlCondition::Kind::kIn &&
        !BoundsFor(cond, &lo, &hi).ok()) {
      continue;
    }
    Result<ResolvedPath> r = ResolveOqlPath(from.value(), cond.path);
    if (!r.ok()) return r.status();
    for (size_t pos = 0; pos < indexes_.size(); ++pos) {
      const PathSpec& spec = indexes_[pos]->spec();
      if (spec.indexed_attr != r.value().attr) continue;
      if (spec.ref_attrs != r.value().refs) continue;
      const Value& probe = cond.kind == OqlCondition::Kind::kIn
                               ? cond.values.front()
                               : cond.value1;
      if (spec.value_kind != probe.kind()) continue;
      const bool head_fits =
          spec.include_subclasses
              ? schema_.IsSubclassOf(from.value(), spec.classes[0])
              : from.value() == spec.classes[0];
      if (head_fits) {
        out.used_index = true;
        break;
      }
    }
  }

  out.plan = std::string("route ") + q.from.name +
             (q.from.with_subclasses ? "*" : "") + " via " +
             (out.used_index ? "U-index" : "extent traversal");
  return out;
}

}  // namespace uindex
