#ifndef UINDEX_DB_COMMIT_QUEUE_H_
#define UINDEX_DB_COMMIT_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "db/journal.h"
#include "util/status.h"

namespace uindex {

class BufferManager;

/// Group-commit pipeline in front of a batched-sync `Journal`.
///
/// Mutating sessions append their journal record (under the database's
/// writer serialization, so appends never interleave), register the append
/// here (`OnAppended`), release the writer lock, and then block in
/// `WaitDurable` until their record is on stable media. The first waiter
/// to find no sync in flight becomes the *leader*: it snapshots the
/// current append high-water mark, performs exactly one `Journal::Sync`,
/// and wakes every session whose record that sync covered. Sessions that
/// arrive while a sync is in flight simply wait — the next leader's sync
/// covers them too. Under contention, N concurrent commits thus cost one
/// fdatasync, not N.
///
/// Failure model is fail-stop, matching the journal's poison semantics: if
/// the leader's sync fails, every waiter at or below the batch high-water
/// mark — and every later committer, because the journal is now poisoned —
/// gets the same sticky error. No session is ever acked whose record is
/// not provably durable.
class CommitPipeline {
 public:
  /// `stats_sink` (may be null) receives per-batch accounting
  /// (`RecordCommitBatch`); the pipeline does not own either pointer.
  explicit CommitPipeline(BufferManager* stats_sink = nullptr)
      : stats_(stats_sink) {}

  CommitPipeline(const CommitPipeline&) = delete;
  CommitPipeline& operator=(const CommitPipeline&) = delete;

  /// Points the pipeline at (a new) journal. Caller must hold exclusive
  /// access AND have drained first (`SyncAll` — the checkpoint rotation
  /// path does), so no leader can still be inside the old journal's
  /// `Sync`. Sequence counters are NOT reset — they are tickets, and a
  /// committer that appended before the rotation may only reach
  /// `WaitDurable` after it; monotonic counters keep that wait a no-op
  /// (its record was covered by the pre-rotation drain). Clears any sticky
  /// failure. A null journal disables the pipeline (`OnAppended` then
  /// returns 0 and `WaitDurable(0)` is a no-op).
  void Attach(Journal* journal);

  /// Registers one successfully appended record and returns its commit
  /// sequence number (monotonic from 1). Call under the same serialization
  /// as the append itself so sequence order matches file order. Returns 0
  /// when no journal is attached.
  uint64_t OnAppended();

  /// Blocks until the record with sequence `seq` is durable (or the
  /// pipeline has failed). `seq == 0` — no journal write happened —
  /// returns OK immediately. May elect the calling thread leader to
  /// perform the batch sync.
  Status WaitDurable(uint64_t seq);

  /// Drains the pipeline: everything appended so far is made durable (or
  /// the failure is returned). Used before checkpoint rotation.
  Status SyncAll();

  /// Introspection for tests.
  uint64_t appended_seq() const;
  uint64_t synced_seq() const;

 private:
  // Leader body: syncs through `target` and publishes the result. Called
  // with `lock` held; unlocks around the sync itself.
  void LeadSync(std::unique_lock<std::mutex>& lock, uint64_t target);

  BufferManager* stats_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  Journal* journal_ = nullptr;
  uint64_t appended_ = 0;      // Highest sequence appended to the file.
  uint64_t synced_ = 0;        // Highest sequence known durable.
  bool sync_running_ = false;  // A leader is inside Journal::Sync.
  // Sticky first failure; once set, commits at sequences the failed sync
  // did not cover fail with it (fail-stop — the journal is poisoned).
  Status failure_ = Status::OK();
  bool failed_ = false;
};

}  // namespace uindex

#endif  // UINDEX_DB_COMMIT_QUEUE_H_
