#include "db/database.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <shared_mutex>

#include "exec/parallel_parscan.h"
#include "storage/env/env.h"
#include "storage/file_pager.h"
#include "storage/prefetch.h"
#include "storage/snapshot.h"
#include "util/coding.h"

namespace uindex {

namespace {

DatabaseOptions::Backend ResolveBackend(const DatabaseOptions& options) {
  if (options.backend != DatabaseOptions::Backend::kDefault) {
    return options.backend;
  }
  // The environment override only applies over the real file system: an
  // injected env usually belongs to a fault-injection test whose crash-op
  // schedule must not shift when the suite reruns under UINDEX_BACKEND.
  const char* env = std::getenv("UINDEX_BACKEND");
  if (env != nullptr && std::string(env) == "file" &&
      options.env == nullptr) {
    return DatabaseOptions::Backend::kFile;
  }
  return DatabaseOptions::Backend::kMemory;
}

std::string AutoDataPath() {
  static std::atomic<uint64_t> counter{0};
  return "/tmp/uindex-pages-" + std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

BufferPool::Eviction DatabaseOptions::DefaultEviction() {
  const char* env = std::getenv("UINDEX_EVICTION");
  if (env != nullptr && std::string(env) == "clock") {
    return BufferPool::Eviction::kClock;
  }
  return BufferPool::Eviction::kLru;
}

size_t Database::ResolvedCachePages(const DatabaseOptions& options) {
  if (options.cache_pages != 0) return options.cache_pages;
  const char* env = std::getenv("UINDEX_CACHE_PAGES");
  if (env != nullptr) {
    const long value = std::strtol(env, nullptr, 10);
    if (value > 0) return static_cast<size_t>(value);
  }
  return 256;
}

Database::StoreSetup Database::MakeFreshStore(const DatabaseOptions& options,
                                              Env* env) {
  StoreSetup setup;
  if (ResolveBackend(options) == DatabaseOptions::Backend::kFile) {
    setup.owns_data_path = options.data_path.empty();
    setup.data_path =
        setup.owns_data_path ? AutoDataPath() : options.data_path;
    Result<std::unique_ptr<FilePager>> pager =
        FilePager::Create(env, setup.data_path, options.page_size);
    if (pager.ok()) {
      setup.store = std::move(pager).value();
      return setup;
    }
    // Construction cannot fail, so fall back to memory and surface why
    // through backend_status().
    setup.status = pager.status();
    setup.data_path.clear();
    setup.owns_data_path = false;
  }
  setup.store = std::make_unique<Pager>(options.page_size);
  return setup;
}

Database::Database(DatabaseOptions options)
    : Database(options, MakeFreshStore(options, options.env != nullptr
                                                    ? options.env
                                                    : Env::Default())) {
  if (options_.maintain_catalog) {
    catalog_ = std::make_unique<SchemaCatalog>(&buffers_, options_.btree);
  }
}

Database::Database(DatabaseOptions options, StoreSetup setup)
    : pipeline_(&buffers_),
      options_(options),
      env_(options.env != nullptr ? options.env : Env::Default()),
      pager_(std::move(setup.store)),
      buffers_(pager_.get(), ResolvedCachePages(options), options.eviction),
      data_path_(std::move(setup.data_path)),
      owns_data_path_(setup.owns_data_path),
      backend_status_(std::move(setup.status)),
      store_(&schema_),
      maintainer_(&schema_, &store_) {
  AttachPrefetcher();
  // Epoch 0 is published from birth so a reader can always pin a state.
  PublishState(0);
}

// ---------------------------------------------------------------- MVCC core

void Database::PublishState(uint64_t epoch) {
  auto state = std::make_shared<DbState>();
  state->epoch = epoch;
  state->indexes.reserve(indexes_.size());
  for (const auto& index : indexes_) {
    state->indexes.push_back(IndexSnapshot{index->btree().root(),
                                           index->btree().size(),
                                           index->entry_count()});
  }
  const bool advanced = epoch > pins_.published();
  pins_.Publish(epoch, std::move(state));
  if (advanced) buffers_.RecordEpochPublished();
}

void Database::ReclaimForWrite() {
  const uint64_t horizon = pins_.ReclaimHorizon();
  if (buffers_.pending_free_count() != 0) {
    // A deferred free may become physical below, and an in-flight
    // background read of the dying page must not outlive it. The drain is
    // a fixed point for that page: a free only fires once the horizon
    // passed its death epoch, so every reader that could stage a *new*
    // prefetch of it is pinned at an epoch where the page no longer
    // exists.
    QuiescePrefetch();
  }
  buffers_.ReclaimVersionsThrough(horizon);
  store_.ReclaimBelow(horizon);
}

void Database::BeginExclusiveWrite() {
  QuiescePrefetch();
  // Fold EVERY chain revision into base storage: exclusive-context writes
  // go to base pages in place, and a surviving newer revision would shadow
  // them for all future readers. No reader pin can exist here (pins live
  // under the shared latch).
  buffers_.ForceReclaimAll();
  store_.ReclaimBelow(kLatestEpoch - 1);
}

Database::~Database() {
  // Shutdown ordering (satisfied implicitly by member order, made explicit
  // here): first the scheduler — its destructor drains every background
  // read and detaches from buffers_ — then the pool's workers join, and
  // only then may indexes, buffers, and the pager be destroyed. Reversing
  // any of these would let a background read touch freed pages.
  prefetcher_.reset();
  io_pool_.reset();
  // An auto-generated data file is scratch space (recovery rebuilds it
  // from snapshot+journal); unlinking while still open is fine on POSIX.
  if (owns_data_path_ && !data_path_.empty()) {
    env_->RemoveFile(data_path_);
  }
}

void Database::AttachPrefetcher() {
  if (options_.prefetch_threads == 0) return;
  if (!PrefetchScheduler::EnvEnabled()) return;
  io_pool_ = std::make_unique<exec::ThreadPool>(options_.prefetch_threads);
  prefetcher_ =
      std::make_unique<PrefetchScheduler>(&buffers_, io_pool_.get());
  buffers_.SetPrefetcher(prefetcher_.get());
}

void Database::QuiescePrefetch() {
  if (prefetcher_ != nullptr) prefetcher_->Drain();
}

// DDL runs under the exclusive latch in legacy in-place mode (see
// BeginExclusiveWrite); each body republishes the current epoch's state on
// every exit (RepublishGuard) and waits for journal durability only after
// the latch is released.

Result<ClassId> Database::CreateClass(const std::string& name) {
  uint64_t seq = 0;
  Result<ClassId> out = [&]() -> Result<ClassId> {
    std::unique_lock lock(latch_);
    BeginExclusiveWrite();
    RepublishGuard republish(this);
    Result<ClassId> cls = schema_.AddClass(name);
    if (!cls.ok()) return cls;
    UINDEX_RETURN_IF_ERROR(coder_.AssignNewClass(schema_, cls.value()));
    if (catalog_ != nullptr) {
      UINDEX_RETURN_IF_ERROR(
          catalog_->AddClass(Slice(coder_.CodeOf(cls.value())), name));
    }
    JournalRecord record;
    record.op = JournalRecord::Op::kCreateClass;
    record.name = name;
    UINDEX_RETURN_IF_ERROR(Log(record, &seq));
    return cls;
  }();
  if (!out.ok()) return out;
  UINDEX_RETURN_IF_ERROR(pipeline_.WaitDurable(seq));
  return out;
}

Result<ClassId> Database::CreateSubclass(const std::string& name,
                                         ClassId parent) {
  uint64_t seq = 0;
  Result<ClassId> out = [&]() -> Result<ClassId> {
    std::unique_lock lock(latch_);
    BeginExclusiveWrite();
    RepublishGuard republish(this);
    Result<ClassId> cls = schema_.AddSubclass(name, parent);
    if (!cls.ok()) return cls;
    UINDEX_RETURN_IF_ERROR(coder_.AssignNewClass(schema_, cls.value()));
    if (catalog_ != nullptr) {
      UINDEX_RETURN_IF_ERROR(
          catalog_->AddClass(Slice(coder_.CodeOf(cls.value())), name));
    }
    JournalRecord record;
    record.op = JournalRecord::Op::kCreateClass;
    record.name = name;
    record.parent = schema_.NameOf(parent);
    UINDEX_RETURN_IF_ERROR(Log(record, &seq));
    return cls;
  }();
  if (!out.ok()) return out;
  UINDEX_RETURN_IF_ERROR(pipeline_.WaitDurable(seq));
  return out;
}

Status Database::CreateReference(ClassId source, ClassId target,
                                 const std::string& attribute,
                                 bool multi_valued) {
  uint64_t seq = 0;
  Status st = [&]() -> Status {
    std::unique_lock lock(latch_);
    BeginExclusiveWrite();
    RepublishGuard republish(this);
    // Incremental evolution cannot reorder codes: the referenced hierarchy
    // must already sort below the referencing one (§4.3).
    const std::string& target_root =
        coder_.CodeOf(schema_.HierarchyRootOf(target));
    const std::string& source_root =
        coder_.CodeOf(schema_.HierarchyRootOf(source));
    if (!(Slice(target_root) < Slice(source_root))) {
      return Status::InvalidArgument(
          "REF " + schema_.NameOf(source) + "." + attribute +
          " would invert the class-code order; a re-encode (rebuild) is "
          "required (paper §4.3)");
    }
    UINDEX_RETURN_IF_ERROR(
        schema_.AddReference(source, target, attribute, multi_valued));
    if (catalog_ != nullptr) {
      UINDEX_RETURN_IF_ERROR(catalog_->AddReference(
          Slice(coder_.CodeOf(source)), attribute,
          Slice(coder_.CodeOf(target)), multi_valued));
    }
    JournalRecord record;
    record.op = JournalRecord::Op::kCreateReference;
    record.name = attribute;
    record.parent = schema_.NameOf(target);
    record.class_names = {schema_.NameOf(source)};
    record.flag = multi_valued;
    return Log(record, &seq);
  }();
  UINDEX_RETURN_IF_ERROR(st);
  return pipeline_.WaitDurable(seq);
}

Status Database::CreateReferenceWithReencode(ClassId source, ClassId target,
                                             const std::string& attribute,
                                             bool multi_valued) {
  uint64_t seq = 0;
  Status st = [&]() -> Status {
    std::unique_lock lock(latch_);
    BeginExclusiveWrite();
    RepublishGuard republish(this);
    UINDEX_RETURN_IF_ERROR(
        schema_.AddReference(source, target, attribute, multi_valued));
    if (coder_.Verify(schema_).ok()) {
      if (catalog_ != nullptr) {
        UINDEX_RETURN_IF_ERROR(catalog_->AddReference(
            Slice(coder_.CodeOf(source)), attribute,
            Slice(coder_.CodeOf(target)), multi_valued));
      }
    } else {
      UINDEX_RETURN_IF_ERROR(ReencodeLocked());
    }
    JournalRecord record;
    record.op = JournalRecord::Op::kCreateReference;
    record.name = attribute;
    record.parent = schema_.NameOf(target);
    record.class_names = {schema_.NameOf(source)};
    record.flag = multi_valued;
    record.kind = 1;  // Replay through the re-encoding variant.
    return Log(record, &seq);
  }();
  UINDEX_RETURN_IF_ERROR(st);
  return pipeline_.WaitDurable(seq);
}

Status Database::Reencode() {
  std::unique_lock lock(latch_);
  BeginExclusiveWrite();
  RepublishGuard republish(this);
  return ReencodeLocked();
}

Status Database::ReencodeLocked() {
  Result<ClassCoder> fresh = ClassCoder::Assign(schema_);
  if (!fresh.ok()) return fresh.status();
  coder_ = std::move(fresh).value();
  if (catalog_ != nullptr) {
    UINDEX_RETURN_IF_ERROR(catalog_->Clear());
    UINDEX_RETURN_IF_ERROR(catalog_->Store(schema_, coder_));
  }
  for (const auto& index : indexes_) {
    UINDEX_RETURN_IF_ERROR(index->Rebuild(store_));
  }
  return Status::OK();
}

Status Database::DropIndex(size_t index_pos) {
  uint64_t seq = 0;
  Status st = [&]() -> Status {
    std::unique_lock lock(latch_);
    BeginExclusiveWrite();
    if (index_pos >= indexes_.size()) {
      return Status::InvalidArgument("no such index");
    }
    RepublishGuard republish(this);
    maintainer_.UnregisterIndex(indexes_[index_pos].get());
    // Clear() frees the whole tree but re-creates an empty root; release
    // that final page too since the index object goes away.
    UINDEX_RETURN_IF_ERROR(indexes_[index_pos]->btree().Clear());
    buffers_.Free(indexes_[index_pos]->btree().root());
    indexes_.erase(indexes_.begin() + static_cast<ptrdiff_t>(index_pos));
    JournalRecord record;
    record.op = JournalRecord::Op::kDropIndex;
    record.oid = static_cast<Oid>(index_pos);
    return Log(record, &seq);
  }();
  UINDEX_RETURN_IF_ERROR(st);
  return pipeline_.WaitDurable(seq);
}

Result<size_t> Database::CreateIndex(const PathSpec& spec) {
  uint64_t seq = 0;
  Result<size_t> out = [&]() -> Result<size_t> {
    std::unique_lock lock(latch_);
    BeginExclusiveWrite();
    for (const ClassId cls : spec.classes) {
      if (!schema_.IsValidClass(cls)) {
        return Status::InvalidArgument("bad class in index spec");
      }
    }
    if (spec.ref_attrs.size() + 1 != spec.classes.size()) {
      return Status::InvalidArgument("ref attribute count mismatch");
    }
    RepublishGuard republish(this);
    auto index = std::make_unique<UIndex>(&buffers_, &schema_, &coder_, spec,
                                          options_.btree);
    UINDEX_RETURN_IF_ERROR(index->BuildFrom(store_));
    maintainer_.RegisterIndex(index.get());
    indexes_.push_back(std::move(index));

    JournalRecord record;
    record.op = JournalRecord::Op::kCreateIndex;
    record.name = spec.indexed_attr;
    record.kind = spec.value_kind == Value::Kind::kString ? 1 : 0;
    record.flag = spec.include_subclasses;
    for (const ClassId cls : spec.classes) {
      record.class_names.push_back(schema_.NameOf(cls));
    }
    record.ref_attrs = spec.ref_attrs;
    UINDEX_RETURN_IF_ERROR(Log(record, &seq));
    return indexes_.size() - 1;
  }();
  if (!out.ok()) return out;
  UINDEX_RETURN_IF_ERROR(pipeline_.WaitDurable(seq));
  return out;
}

// DML runs under the SHARED latch, concurrent with readers: mutating
// sessions serialize on writer_mu_, copy-on-write their page changes into
// epoch published+1 (ScopedEpoch makes every layer below stamp that
// epoch), publish the new epoch atomically, and only after releasing both
// locks wait for group-commit durability — which is what lets concurrent
// commits share one fdatasync. The epoch is published even when the
// operation failed: a failed maintainer op may have partially applied
// (exactly as it did under the old exclusive latch), and those effects
// must become visible at a defined epoch, not leak into a later one.

Result<Oid> Database::CreateObject(ClassId cls) {
  std::shared_lock lock(latch_);
  uint64_t seq = 0;
  Result<Oid> oid = [&]() -> Result<Oid> {
    std::lock_guard<std::mutex> writer(writer_mu_);
    ReclaimForWrite();
    const uint64_t w = pins_.published() + 1;
    buffers_.BeginWriteEpoch(w);
    Result<Oid> out = [&]() -> Result<Oid> {
      ScopedEpoch scope(w);
      Result<Oid> created = maintainer_.CreateObject(cls);
      if (!created.ok()) return created;
      JournalRecord record;
      record.op = JournalRecord::Op::kCreateObject;
      record.name = schema_.NameOf(cls);
      record.oid = created.value();
      UINDEX_RETURN_IF_ERROR(Log(record, &seq));
      return created;
    }();
    buffers_.EndWriteEpoch();
    PublishState(w);
    return out;
  }();
  lock.unlock();
  if (!oid.ok()) return oid;
  UINDEX_RETURN_IF_ERROR(pipeline_.WaitDurable(seq));
  return oid;
}

Status Database::SetAttr(Oid oid, const std::string& name, Value value) {
  std::shared_lock lock(latch_);
  uint64_t seq = 0;
  Status st = [&]() -> Status {
    std::lock_guard<std::mutex> writer(writer_mu_);
    ReclaimForWrite();
    const uint64_t w = pins_.published() + 1;
    buffers_.BeginWriteEpoch(w);
    Status out = [&]() -> Status {
      ScopedEpoch scope(w);
      JournalRecord record;
      record.op = JournalRecord::Op::kSetAttr;
      record.name = name;
      record.oid = oid;
      record.value = value;
      UINDEX_RETURN_IF_ERROR(
          maintainer_.SetAttr(oid, name, std::move(value)));
      return Log(record, &seq);
    }();
    buffers_.EndWriteEpoch();
    PublishState(w);
    return out;
  }();
  lock.unlock();
  UINDEX_RETURN_IF_ERROR(st);
  return pipeline_.WaitDurable(seq);
}

Status Database::DeleteObject(Oid oid) {
  std::shared_lock lock(latch_);
  uint64_t seq = 0;
  Status st = [&]() -> Status {
    std::lock_guard<std::mutex> writer(writer_mu_);
    ReclaimForWrite();
    const uint64_t w = pins_.published() + 1;
    buffers_.BeginWriteEpoch(w);
    Status out = [&]() -> Status {
      ScopedEpoch scope(w);
      UINDEX_RETURN_IF_ERROR(maintainer_.DeleteObject(oid));
      JournalRecord record;
      record.op = JournalRecord::Op::kDeleteObject;
      record.oid = oid;
      return Log(record, &seq);
    }();
    buffers_.EndWriteEpoch();
    PublishState(w);
    return out;
  }();
  lock.unlock();
  UINDEX_RETURN_IF_ERROR(st);
  return pipeline_.WaitDurable(seq);
}

bool Database::IndexServes(const UIndex& idx, const Selection& selection,
                           size_t* position) const {
  const PathSpec& spec = idx.spec();
  if (spec.indexed_attr != selection.attr) return false;
  if (spec.value_kind != selection.lo.kind()) return false;
  // The target class must sit at some path position (the selection's
  // class or an ancestor declared there).
  for (size_t pos = 0; pos < spec.Length(); ++pos) {
    const ClassId declared = spec.classes[pos];
    const bool fits =
        spec.include_subclasses
            ? schema_.IsSubclassOf(selection.cls, declared)
            : selection.cls == declared;
    if (fits) {
      // Key positions run tail -> head.
      *position = spec.Length() - 1 - pos;
      return true;
    }
  }
  return false;
}

Result<Database::SelectResult> Database::Select(
    const Selection& selection) const {
  std::shared_lock lock(latch_);
  if (!schema_.IsValidClass(selection.cls)) {
    return Status::InvalidArgument("bad class in selection");
  }
  // Snapshot read: pin the published epoch; every page fetch and object
  // lookup below resolves "as of" it, and index scans go through per-query
  // views frozen at its roots.
  ReadPin pin(this);
  ScopedEpoch scope(pin.epoch());
  SelectResult out;

  for (size_t pos = 0; pos < indexes_.size(); ++pos) {
    size_t position = 0;
    if (!IndexServes(*indexes_[pos], selection, &position)) continue;

    Query q = Query::Range(selection.lo, selection.hi);
    // Components tail -> head; constrain only the target position.
    for (size_t i = 0; i <= position; ++i) {
      if (i == position) {
        ClassSelector sel;
        sel.include.push_back(
            {selection.cls, selection.with_subclasses});
        q.With(std::move(sel), ValueSlot::Wanted());
      } else {
        q.With(ClassSelector::Any());
      }
    }
    std::unique_ptr<UIndex> view = pin.View(pos);
    Result<QueryResult> r = view->Parscan(q);
    if (!r.ok()) return r.status();
    out.oids = r.value().Distinct(position);
    out.used_index = true;
    out.index_description =
        "U-index on " +
        schema_.NameOf(indexes_[pos]->spec().classes[0]) + "." +
        indexes_[pos]->spec().indexed_attr;
    return out;
  }

  // Fallback: extent scan with reference chasing is not available without
  // a path; plain attribute scan over the class extent.
  const std::vector<Oid> extent =
      selection.with_subclasses ? store_.DeepExtentOf(selection.cls)
                                : store_.ExtentOf(selection.cls);
  for (const Oid oid : extent) {
    const Object* obj = store_.Get(oid).value();
    const Value* attr = obj->FindAttr(selection.attr);
    if (attr == nullptr || attr->kind() != selection.lo.kind()) continue;
    std::string image_lo, image_hi, image;
    selection.lo.AppendOrderPreserving(&image_lo);
    selection.hi.AppendOrderPreserving(&image_hi);
    attr->AppendOrderPreserving(&image);
    if (Slice(image) < Slice(image_lo) || Slice(image_hi) < Slice(image)) {
      continue;
    }
    out.oids.push_back(oid);
  }
  std::sort(out.oids.begin(), out.oids.end());
  out.used_index = false;
  out.index_description = "extent scan";
  return out;
}

Result<QueryResult> Database::Execute(size_t index_pos,
                                      const Query& query) const {
  std::shared_lock lock(latch_);
  if (index_pos >= indexes_.size()) {
    return Status::InvalidArgument("no such index");
  }
  ReadPin pin(this);
  ScopedEpoch scope(pin.epoch());
  return pin.View(index_pos)->Parscan(query);
}

Result<QueryResult> Database::ExecuteParallel(size_t index_pos,
                                              const Query& query,
                                              exec::ThreadPool* pool) const {
  std::shared_lock lock(latch_);
  if (index_pos >= indexes_.size()) {
    return Status::InvalidArgument("no such index");
  }
  ReadPin pin(this);
  ScopedEpoch scope(pin.epoch());
  std::unique_ptr<UIndex> view = pin.View(index_pos);
  if (pool == nullptr) return view->Parscan(query);
  // ParallelParscan re-establishes this thread's epoch on every worker.
  return exec::ParallelParscan(*view, query, pool);
}

Status Database::Log(const JournalRecord& record, uint64_t* seq) {
  if (journal_ == nullptr) return Status::OK();
  UINDEX_RETURN_IF_ERROR(journal_->Append(record));
  if (seq != nullptr) *seq = pipeline_.OnAppended();
  return Status::OK();
}

Status Database::EnableJournal(const std::string& path) {
  std::unique_lock lock(latch_);
  BeginExclusiveWrite();
  if (journal_ != nullptr) {
    // Drain batched appends out of the old journal before replacing it. A
    // failure here poisoned the old journal; the waiters that cared got
    // their error, and the file is being replaced anyway.
    pipeline_.SyncAll();
  }
  JournalOptions jopts;
  jopts.sync_on_append = !options_.group_commit;
  Result<std::unique_ptr<Journal>> journal =
      Journal::OpenForAppend(env_, path, generation_, jopts);
  if (!journal.ok()) return journal.status();
  journal_ = std::move(journal).value();
  pipeline_.Attach(options_.group_commit ? journal_.get() : nullptr);
  return Status::OK();
}

Status Database::Checkpoint(const std::string& snapshot_path) {
  std::unique_lock lock(latch_);
  if (journal_ == nullptr) {
    return Status::InvalidArgument("no journal enabled");
  }
  BeginExclusiveWrite();
  // Drain group commit first: every record appended so far must be durable
  // in the OLD journal before the snapshot that supersedes it is written —
  // and a sync failure aborts here, before anything is staged (the journal
  // is poisoned; fail-stop).
  UINDEX_RETURN_IF_ERROR(pipeline_.SyncAll());
  // File backend: push every dirty frame to the data file and sync it
  // BEFORE any protocol step, so a flush failure aborts the checkpoint
  // with nothing staged or committed. (The snapshot below re-reads pages
  // from the store, so it needs the newest bytes there anyway.)
  UINDEX_RETURN_IF_ERROR(buffers_.Flush(/*sync=*/true));
  // Crash-atomic checkpoint in three steps (DESIGN.md "Durability & crash
  // recovery"). 1: stage the generation-g+1 journal at `path + ".new"` —
  // durable but not yet visible at the journal path, so a crash here
  // changes nothing recovery sees.
  JournalOptions jopts;
  jopts.sync_on_append = !options_.group_commit;
  Result<std::unique_ptr<Journal>> staged =
      Journal::Stage(env_, journal_->path(), generation_ + 1, jopts);
  if (!staged.ok()) return staged.status();

  // 2: commit the snapshot, stamped g+1. Until its rename lands, recovery
  // still loads the old snapshot and replays the old (generation-g)
  // journal; after, it loads the new one and ignores that journal as
  // stale. Either way every acked mutation is recovered exactly once.
  ++generation_;
  bool rename_attempted = false;
  Status st = SaveLocked(snapshot_path, &rename_attempted);
  if (!st.ok()) {
    --generation_;
    if (rename_attempted) {
      // The failure came *after* the commit rename was issued, so the g+1
      // snapshot may be the one on disk — in which case recovery would
      // ignore the old journal we are still holding. Acking any further
      // append into it could silently lose that mutation: fail stop. (A
      // leftover `.new` staging file is harmless; the next Stage truncates
      // it, and recovery never reads it.)
      journal_->Poison("checkpoint failed after snapshot commit: " +
                       st.ToString());
    }
    return st;
  }

  // 3: publish the staged journal over the old one. On failure the old
  // journal file may or may not still be at the path, but both it and the
  // staged object are now poisoned — same fail-stop rationale as above.
  Status published = staged.value()->Publish();
  if (!published.ok()) {
    journal_->Poison("checkpoint publish failed: " + published.ToString());
    return published;
  }
  journal_ = std::move(staged).value();
  // Re-point group commit at the fresh journal (drained above, so no
  // leader can still be inside the old one's Sync).
  pipeline_.Attach(options_.group_commit ? journal_.get() : nullptr);
  return Status::OK();
}

Status Database::ApplyRecord(const JournalRecord& r) {
  switch (r.op) {
    case JournalRecord::Op::kCreateClass: {
      if (r.parent.empty()) return CreateClass(r.name).status();
      Result<ClassId> parent = schema_.FindClass(r.parent);
      if (!parent.ok()) return parent.status();
      return CreateSubclass(r.name, parent.value()).status();
    }
    case JournalRecord::Op::kCreateReference: {
      if (r.class_names.size() != 1) {
        return Status::Corruption("bad REF record");
      }
      Result<ClassId> source = schema_.FindClass(r.class_names[0]);
      if (!source.ok()) return source.status();
      Result<ClassId> target = schema_.FindClass(r.parent);
      if (!target.ok()) return target.status();
      if (r.kind != 0) {
        return CreateReferenceWithReencode(source.value(), target.value(),
                                           r.name, r.flag);
      }
      return CreateReference(source.value(), target.value(), r.name,
                             r.flag);
    }
    case JournalRecord::Op::kCreateIndex: {
      PathSpec spec;
      spec.indexed_attr = r.name;
      spec.value_kind =
          r.kind != 0 ? Value::Kind::kString : Value::Kind::kInt;
      spec.include_subclasses = r.flag;
      for (const std::string& name : r.class_names) {
        Result<ClassId> cls = schema_.FindClass(name);
        if (!cls.ok()) return cls.status();
        spec.classes.push_back(cls.value());
      }
      spec.ref_attrs = r.ref_attrs;
      return CreateIndex(spec).status();
    }
    case JournalRecord::Op::kCreateObject: {
      Result<ClassId> cls = schema_.FindClass(r.name);
      if (!cls.ok()) return cls.status();
      Result<Oid> oid = CreateObject(cls.value());
      if (!oid.ok()) return oid.status();
      if (oid.value() != r.oid) {
        return Status::Corruption("journal replay oid drift: expected " +
                                  std::to_string(r.oid) + " got " +
                                  std::to_string(oid.value()));
      }
      return Status::OK();
    }
    case JournalRecord::Op::kSetAttr:
      return SetAttr(r.oid, r.name, r.value);
    case JournalRecord::Op::kDeleteObject:
      return DeleteObject(r.oid);
    case JournalRecord::Op::kDropIndex:
      return DropIndex(r.oid);
  }
  return Status::Corruption("unknown journal op");
}

Result<std::unique_ptr<Database>> Database::OpenDurable(
    const std::string& snapshot_path, const std::string& journal_path,
    DatabaseOptions options) {
  Env* env = options.env != nullptr ? options.env : Env::Default();
  std::unique_ptr<Database> db;
  Result<std::unique_ptr<Database>> opened = Open(snapshot_path, options);
  if (opened.ok()) {
    db = std::move(opened).value();
  } else if (opened.status().IsNotFound()) {
    db = std::make_unique<Database>(options);  // Fresh database.
  } else {
    return opened.status();
  }

  Result<Journal::Replay> replay = Journal::ReadAll(env, journal_path);
  if (!replay.ok()) return replay.status();
  if (replay.value().header_valid) {
    if (replay.value().generation > db->generation_) {
      // The journal extends a snapshot newer than the one we loaded — that
      // snapshot is missing (lost rename, deleted file). Replaying against
      // the older snapshot would corrupt it, and skipping would silently
      // drop acked mutations: refuse.
      return Status::Corruption(
          "journal generation " +
          std::to_string(replay.value().generation) +
          " is newer than snapshot generation " +
          std::to_string(db->generation_) +
          "; the snapshot it extends is missing");
    }
    if (replay.value().generation == db->generation_) {
      for (const JournalRecord& record : replay.value().records) {
        UINDEX_RETURN_IF_ERROR(db->ApplyRecord(record));
      }
    }
    // Older generation: a checkpoint leftover whose records the snapshot
    // already contains — EnableJournal below replaces it.
  }
  // EnableJournal reconciles the file with our generation: same-generation
  // journals keep their records (minus any torn tail), anything else is
  // atomically replaced by a fresh one.
  UINDEX_RETURN_IF_ERROR(db->EnableJournal(journal_path));
  return db;
}

Result<Database::Explanation> Database::Explain(
    const Selection& selection) const {
  std::shared_lock lock(latch_);
  if (!schema_.IsValidClass(selection.cls)) {
    return Status::InvalidArgument("bad class in selection");
  }
  ReadPin pin(this);
  ScopedEpoch scope(pin.epoch());
  Explanation out;
  bool have_usable = false;

  for (size_t pos = 0; pos < indexes_.size(); ++pos) {
    const UIndex& index = *indexes_[pos];
    ExplainCandidate candidate;
    candidate.description =
        "U-index on " + schema_.NameOf(index.spec().classes[0]) + "." +
        index.spec().indexed_attr;
    size_t position = 0;
    if (!IndexServes(index, selection, &position)) {
      candidate.reason = "attribute or class not covered by this path";
      out.candidates.push_back(std::move(candidate));
      continue;
    }
    candidate.usable = true;

    // Cost model: one descent (tree height) plus the selectivity-scaled
    // share of the leaf level. Selectivity comes from the index's own
    // value range for int indexes; string predicates assume 10%. Stats
    // walk the pinned epoch's tree (the view), like any other read.
    std::unique_ptr<UIndex> view = pin.View(pos);
    Result<BTree::TreeStats> stats = view->btree().ComputeStats();
    if (!stats.ok()) return stats.status();
    double selectivity = 0.1;
    if (selection.lo.kind() == Value::Kind::kInt) {
      Result<std::pair<int64_t, int64_t>> range = view->IntValueRange();
      if (range.ok()) {
        const double domain =
            static_cast<double>(range.value().second) -
            static_cast<double>(range.value().first) + 1.0;
        const double span = static_cast<double>(selection.hi.AsInt()) -
                            static_cast<double>(selection.lo.AsInt()) + 1.0;
        selectivity = domain > 0 ? std::min(1.0, span / domain) : 1.0;
      }
    }
    candidate.estimated_pages =
        static_cast<double>(stats.value().height) +
        selectivity * static_cast<double>(stats.value().leaf_nodes);
    if (!have_usable) {
      out.chosen = out.candidates.size();
      have_usable = true;
    }
    out.candidates.push_back(std::move(candidate));
  }

  // The extent-scan fallback: every candidate object is an in-memory
  // fetch; approximate one "page" per 10 objects examined.
  ExplainCandidate scan;
  scan.description = "extent scan over " + schema_.NameOf(selection.cls);
  scan.usable = true;
  const size_t extent_size =
      selection.with_subclasses
          ? store_.DeepExtentOf(selection.cls).size()
          : store_.ExtentOf(selection.cls).size();
  scan.estimated_pages = static_cast<double>(extent_size) / 10.0;
  if (!have_usable) out.chosen = out.candidates.size();
  out.candidates.push_back(std::move(scan));
  return out;
}

namespace {

constexpr char kDbMagic[8] = {'U', 'I', 'D', 'X', 'D', 'B', '0', '1'};

void PutString(std::string* out, const std::string& s) {
  PutFixed32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

Status ReadString(const Slice& blob, size_t* pos, std::string* out) {
  if (*pos + 4 > blob.size()) return Status::Corruption("truncated string");
  const uint32_t len = DecodeFixed32(blob.data() + *pos);
  *pos += 4;
  if (*pos + len > blob.size()) return Status::Corruption("truncated string");
  out->assign(blob.data() + *pos, len);
  *pos += len;
  return Status::OK();
}

Status ReadU32(const Slice& blob, size_t* pos, uint32_t* out) {
  if (*pos + 4 > blob.size()) return Status::Corruption("truncated u32");
  *out = DecodeFixed32(blob.data() + *pos);
  *pos += 4;
  return Status::OK();
}

Status ReadU64(const Slice& blob, size_t* pos, uint64_t* out) {
  if (*pos + 8 > blob.size()) return Status::Corruption("truncated u64");
  *out = DecodeFixed64(blob.data() + *pos);
  *pos += 8;
  return Status::OK();
}

Status ReadU8(const Slice& blob, size_t* pos, uint8_t* out) {
  if (*pos + 1 > blob.size()) return Status::Corruption("truncated u8");
  *out = static_cast<uint8_t>(blob[*pos]);
  *pos += 1;
  return Status::OK();
}

}  // namespace

Status Database::Save(const std::string& path) const {
  // Exclusive: the snapshot machinery reads base page bytes directly, so
  // every chain revision must be folded into base first, which in turn
  // requires that no reader pin or concurrent writer exists.
  std::unique_lock lock(latch_);
  const_cast<Database*>(this)->BeginExclusiveWrite();
  return SaveLocked(path);
}

Status Database::SaveLocked(const std::string& path,
                            bool* rename_attempted) const {
  std::string meta;
  meta.append(kDbMagic, sizeof(kDbMagic));

  // Schema + codes.
  PutFixed32(&meta, static_cast<uint32_t>(schema_.class_count()));
  for (ClassId cls = 0; cls < schema_.class_count(); ++cls) {
    PutString(&meta, schema_.NameOf(cls));
    PutFixed32(&meta, schema_.SuperclassOf(cls));
    PutString(&meta, coder_.CodeOf(cls));
  }
  PutFixed32(&meta, static_cast<uint32_t>(schema_.references().size()));
  for (const RefEdge& e : schema_.references()) {
    PutFixed32(&meta, e.source);
    PutFixed32(&meta, e.target);
    PutString(&meta, e.attribute);
    meta.push_back(e.multi_valued ? 1 : 0);
  }

  // Objects.
  PutString(&meta, store_.Serialize());

  // Catalog.
  meta.push_back(catalog_ != nullptr ? 1 : 0);
  if (catalog_ != nullptr) {
    PutFixed32(&meta, catalog_->btree().root());
    PutFixed64(&meta, catalog_->btree().size());
  }

  // Indexes.
  PutFixed32(&meta, static_cast<uint32_t>(indexes_.size()));
  for (const auto& index : indexes_) {
    const PathSpec& spec = index->spec();
    PutFixed32(&meta, index->btree().root());
    PutFixed64(&meta, index->btree().size());
    meta.push_back(spec.include_subclasses ? 1 : 0);
    meta.push_back(spec.value_kind == Value::Kind::kString ? 1 : 0);
    PutString(&meta, spec.indexed_attr);
    PutFixed32(&meta, static_cast<uint32_t>(spec.classes.size()));
    for (const ClassId cls : spec.classes) PutFixed32(&meta, cls);
    for (const std::string& attr : spec.ref_attrs) PutString(&meta, attr);
  }

  // Checkpoint generation (absent in pre-generation snapshots, which read
  // back as generation 0).
  PutFixed64(&meta, generation_);

  // The snapshot reads page bytes from the store, not the pool's frames:
  // write dirty frames back first (no-op on the memory backend). No sync —
  // the snapshot file carries its own durability protocol.
  UINDEX_RETURN_IF_ERROR(buffers_.Flush(/*sync=*/false));
  return PagerSnapshot::Save(env_, *pager_, meta, path, rename_attempted);
}

Result<std::unique_ptr<Database>> Database::Open(const std::string& path,
                                                 DatabaseOptions options) {
  Env* env = options.env != nullptr ? options.env : Env::Default();

  // Restore into the store the resolved backend calls for: the snapshot
  // format is backend-agnostic, so a database saved in memory opens on the
  // file backend and vice versa.
  StoreSetup setup;
  PagerSnapshot::StoreFactory factory;
  if (ResolveBackend(options) == DatabaseOptions::Backend::kFile) {
    setup.owns_data_path = options.data_path.empty();
    setup.data_path =
        setup.owns_data_path ? AutoDataPath() : options.data_path;
    factory = [env, &setup](
                  uint32_t page_size) -> Result<std::unique_ptr<PageStore>> {
      Result<std::unique_ptr<FilePager>> pager =
          FilePager::Create(env, setup.data_path, page_size);
      if (!pager.ok()) return pager.status();
      return std::unique_ptr<PageStore>(std::move(pager).value());
    };
  } else {
    factory = [](uint32_t page_size) {
      return Result<std::unique_ptr<PageStore>>(
          std::make_unique<Pager>(page_size));
    };
  }
  Result<PagerSnapshot::Loaded> loaded = PagerSnapshot::Load(env, path,
                                                             factory);
  if (!loaded.ok()) return loaded.status();
  options.page_size = loaded.value().pager->page_size();

  setup.store = std::move(loaded.value().pager);
  std::unique_ptr<Database> db(new Database(options, std::move(setup)));
  const Slice meta(loaded.value().metadata);
  size_t pos = 0;
  if (meta.size() < sizeof(kDbMagic) ||
      std::memcmp(meta.data(), kDbMagic, sizeof(kDbMagic)) != 0) {
    return Status::Corruption("not a uindex database file");
  }
  pos = sizeof(kDbMagic);

  // Schema + codes.
  uint32_t class_count = 0;
  UINDEX_RETURN_IF_ERROR(ReadU32(meta, &pos, &class_count));
  std::vector<std::pair<ClassId, std::string>> assignments;
  for (uint32_t i = 0; i < class_count; ++i) {
    std::string name, code;
    uint32_t parent = 0;
    UINDEX_RETURN_IF_ERROR(ReadString(meta, &pos, &name));
    UINDEX_RETURN_IF_ERROR(ReadU32(meta, &pos, &parent));
    UINDEX_RETURN_IF_ERROR(ReadString(meta, &pos, &code));
    Result<ClassId> cls =
        parent == kInvalidClassId
            ? db->schema_.AddClass(name)
            : db->schema_.AddSubclass(name, parent);
    if (!cls.ok()) return cls.status();
    if (cls.value() != i) return Status::Corruption("class id drift");
    assignments.emplace_back(cls.value(), std::move(code));
  }
  Result<ClassCoder> coder = ClassCoder::FromAssignments(assignments);
  if (!coder.ok()) return coder.status();
  db->coder_ = std::move(coder).value();

  uint32_t ref_count = 0;
  UINDEX_RETURN_IF_ERROR(ReadU32(meta, &pos, &ref_count));
  for (uint32_t i = 0; i < ref_count; ++i) {
    uint32_t source = 0, target = 0;
    std::string attr;
    uint8_t multi = 0;
    UINDEX_RETURN_IF_ERROR(ReadU32(meta, &pos, &source));
    UINDEX_RETURN_IF_ERROR(ReadU32(meta, &pos, &target));
    UINDEX_RETURN_IF_ERROR(ReadString(meta, &pos, &attr));
    UINDEX_RETURN_IF_ERROR(ReadU8(meta, &pos, &multi));
    UINDEX_RETURN_IF_ERROR(
        db->schema_.AddReference(source, target, attr, multi != 0));
  }

  // Objects.
  std::string store_blob;
  UINDEX_RETURN_IF_ERROR(ReadString(meta, &pos, &store_blob));
  UINDEX_RETURN_IF_ERROR(db->store_.Deserialize(Slice(store_blob)));

  // Catalog.
  uint8_t has_catalog = 0;
  UINDEX_RETURN_IF_ERROR(ReadU8(meta, &pos, &has_catalog));
  if (has_catalog != 0) {
    uint32_t root = 0;
    uint64_t size = 0;
    UINDEX_RETURN_IF_ERROR(ReadU32(meta, &pos, &root));
    UINDEX_RETURN_IF_ERROR(ReadU64(meta, &pos, &size));
    db->catalog_ = std::make_unique<SchemaCatalog>(&db->buffers_, root,
                                                   size, options.btree);
  }

  // Indexes.
  uint32_t index_count = 0;
  UINDEX_RETURN_IF_ERROR(ReadU32(meta, &pos, &index_count));
  for (uint32_t i = 0; i < index_count; ++i) {
    uint32_t root = 0;
    uint64_t size = 0;
    uint8_t with_subclasses = 0, is_string = 0;
    PathSpec spec;
    UINDEX_RETURN_IF_ERROR(ReadU32(meta, &pos, &root));
    UINDEX_RETURN_IF_ERROR(ReadU64(meta, &pos, &size));
    UINDEX_RETURN_IF_ERROR(ReadU8(meta, &pos, &with_subclasses));
    UINDEX_RETURN_IF_ERROR(ReadU8(meta, &pos, &is_string));
    spec.include_subclasses = with_subclasses != 0;
    spec.value_kind =
        is_string != 0 ? Value::Kind::kString : Value::Kind::kInt;
    UINDEX_RETURN_IF_ERROR(ReadString(meta, &pos, &spec.indexed_attr));
    uint32_t path_len = 0;
    UINDEX_RETURN_IF_ERROR(ReadU32(meta, &pos, &path_len));
    for (uint32_t c = 0; c < path_len; ++c) {
      uint32_t cls = 0;
      UINDEX_RETURN_IF_ERROR(ReadU32(meta, &pos, &cls));
      spec.classes.push_back(cls);
    }
    for (uint32_t c = 0; c + 1 < path_len; ++c) {
      std::string attr;
      UINDEX_RETURN_IF_ERROR(ReadString(meta, &pos, &attr));
      spec.ref_attrs.push_back(std::move(attr));
    }
    auto index = std::make_unique<UIndex>(&db->buffers_, &db->schema_,
                                          &db->coder_, spec, options.btree,
                                          root, size);
    db->maintainer_.RegisterIndex(index.get());
    db->indexes_.push_back(std::move(index));
  }

  // Trailing checkpoint generation; snapshots from before generations
  // existed end right after the index section and stay at generation 0.
  if (pos < meta.size()) {
    UINDEX_RETURN_IF_ERROR(ReadU64(meta, &pos, &db->generation_));
  }
  // Re-publish epoch 0 now that the restored indexes exist, so the first
  // readers pin a state carrying their roots.
  db->PublishState(0);
  return db;
}

}  // namespace uindex
