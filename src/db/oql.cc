#include "db/oql.h"

#include <cctype>
#include <cstdlib>

#include "util/diag.h"

namespace uindex {

namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind {
    kIdent,    // names, keywords (case preserved; keyword match is ci)
    kInt,
    kString,
    kSymbol,   // one of = < <= > >= ( ) , . *
    kEnd,
  };
  Kind kind = Kind::kEnd;
  std::string text;
  int64_t int_value = 0;
  size_t offset = 0;  ///< Byte offset of the token's first character.
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '\'') {
        const size_t end = text_.find('\'', pos_ + 1);
        if (end == std::string::npos) {
          return ParseErrorAt(text_, pos_, "unterminated string literal");
        }
        Token t;
        t.offset = pos_;
        t.kind = Token::Kind::kString;
        t.text = text_.substr(pos_ + 1, end - pos_ - 1);
        out.push_back(std::move(t));
        pos_ = end + 1;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && pos_ + 1 < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
        size_t end = pos_ + 1;
        while (end < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[end]))) {
          ++end;
        }
        Token t;
        t.offset = pos_;
        t.kind = Token::Kind::kInt;
        t.text = text_.substr(pos_, end - pos_);
        t.int_value = std::strtoll(t.text.c_str(), nullptr, 10);
        out.push_back(std::move(t));
        pos_ = end;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        // Identifiers may contain '-' (the paper's "manufactured-by").
        size_t end = pos_ + 1;
        while (end < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[end])) ||
                text_[end] == '_' || text_[end] == '-')) {
          ++end;
        }
        Token t;
        t.offset = pos_;
        t.kind = Token::Kind::kIdent;
        t.text = text_.substr(pos_, end - pos_);
        out.push_back(std::move(t));
        pos_ = end;
        continue;
      }
      if (c == '<' || c == '>') {
        Token t;
        t.offset = pos_;
        t.kind = Token::Kind::kSymbol;
        t.text.push_back(c);
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
          t.text.push_back('=');
          ++pos_;
        }
        out.push_back(std::move(t));
        ++pos_;
        continue;
      }
      if (c == '=' || c == '(' || c == ')' || c == ',' || c == '.' ||
          c == '*') {
        Token t;
        t.offset = pos_;
        t.kind = Token::Kind::kSymbol;
        t.text.push_back(c);
        out.push_back(std::move(t));
        ++pos_;
        continue;
      }
      return ParseErrorAt(text_, pos_,
                          std::string("unexpected character '") + c + "'");
    }
    Token end_token;  // kEnd sentinel pointing just past the input.
    end_token.offset = text_.size();
    out.push_back(std::move(end_token));
    return out;
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

bool KeywordIs(const Token& t, const char* keyword) {
  if (t.kind != Token::Kind::kIdent) return false;
  const std::string& s = t.text;
  size_t i = 0;
  for (; keyword[i] != '\0'; ++i) {
    if (i >= s.size() ||
        std::toupper(static_cast<unsigned char>(s[i])) != keyword[i]) {
      return false;
    }
  }
  return i == s.size();
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  Parser(const std::string& text, std::vector<Token> tokens)
      : text_(text), tokens_(std::move(tokens)) {}

  Result<OqlQuery> Run() {
    OqlQuery query;
    UINDEX_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    if (KeywordIs(Peek(), "COUNT")) {
      ++pos_;
      query.count_only = true;
      UINDEX_RETURN_IF_ERROR(ExpectSymbol("("));
      UINDEX_RETURN_IF_ERROR(ExpectIdent(&query.var));
      UINDEX_RETURN_IF_ERROR(ExpectSymbol(")"));
    } else {
      UINDEX_RETURN_IF_ERROR(ExpectIdent(&query.var));
    }
    UINDEX_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    UINDEX_RETURN_IF_ERROR(ParseClassRef(&query.from));
    const size_t from_var_at = Peek().offset;
    std::string from_var;
    UINDEX_RETURN_IF_ERROR(ExpectIdent(&from_var));
    if (from_var != query.var) {
      return ParseErrorAt(text_, from_var_at,
                          "FROM variable '" + from_var +
                              "' does not match SELECT '" + query.var + "'");
    }
    UINDEX_RETURN_IF_ERROR(ExpectKeyword("WHERE"));
    for (;;) {
      OqlCondition cond;
      UINDEX_RETURN_IF_ERROR(ParseCondition(query.var, &cond));
      query.conditions.push_back(std::move(cond));
      if (!KeywordIs(Peek(), "AND")) break;
      ++pos_;
    }
    if (KeywordIs(Peek(), "LIMIT")) {
      ++pos_;
      if (Peek().kind != Token::Kind::kInt || Peek().int_value <= 0) {
        return Fail("LIMIT needs a positive integer");
      }
      query.limit = static_cast<uint64_t>(Next().int_value);
    }
    if (Peek().kind != Token::Kind::kEnd) {
      return Fail("trailing input after query: '" + Peek().text + "'");
    }
    return query;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }

  // Every parse error points at the current token's byte offset.
  Status Fail(const std::string& message) const {
    return ParseErrorAt(text_, Peek().offset, message);
  }

  Status ExpectKeyword(const char* keyword) {
    if (!KeywordIs(Peek(), keyword)) {
      return Fail(std::string("expected ") + keyword);
    }
    ++pos_;
    return Status::OK();
  }

  Status ExpectIdent(std::string* out) {
    if (Peek().kind != Token::Kind::kIdent) {
      return Fail("expected identifier, got '" + Peek().text + "'");
    }
    *out = Next().text;
    return Status::OK();
  }

  Status ExpectSymbol(const char* symbol) {
    if (Peek().kind != Token::Kind::kSymbol || Peek().text != symbol) {
      return Fail(std::string("expected '") + symbol + "', got '" +
                  Peek().text + "'");
    }
    ++pos_;
    return Status::OK();
  }

  Status ParseClassRef(OqlClassRef* out) {
    UINDEX_RETURN_IF_ERROR(ExpectIdent(&out->name));
    if (Peek().kind == Token::Kind::kSymbol && Peek().text == "*") {
      out->with_subclasses = true;
      ++pos_;
    }
    return Status::OK();
  }

  Status ParseValue(Value* out) {
    if (Peek().kind == Token::Kind::kInt) {
      *out = Value::Int(Next().int_value);
      return Status::OK();
    }
    if (Peek().kind == Token::Kind::kString) {
      *out = Value::Str(Next().text);
      return Status::OK();
    }
    return Fail("expected a value, got '" + Peek().text + "'");
  }

  Status ParseCondition(const std::string& var, OqlCondition* out) {
    // path := var ('.' name)*
    const size_t head_at = Peek().offset;
    std::string head;
    UINDEX_RETURN_IF_ERROR(ExpectIdent(&head));
    if (head != var) {
      return ParseErrorAt(text_, head_at, "unknown variable '" + head + "'");
    }
    out->path.var = head;
    while (Peek().kind == Token::Kind::kSymbol && Peek().text == ".") {
      ++pos_;
      std::string step;
      UINDEX_RETURN_IF_ERROR(ExpectIdent(&step));
      out->path.steps.push_back(std::move(step));
    }

    if (KeywordIs(Peek(), "BETWEEN")) {
      ++pos_;
      out->kind = OqlCondition::Kind::kBetween;
      UINDEX_RETURN_IF_ERROR(ParseValue(&out->value1));
      UINDEX_RETURN_IF_ERROR(ExpectKeyword("AND"));
      return ParseValue(&out->value2);
    }
    if (KeywordIs(Peek(), "IN")) {
      ++pos_;
      out->kind = OqlCondition::Kind::kIn;
      UINDEX_RETURN_IF_ERROR(ExpectSymbol("("));
      for (;;) {
        Value v;
        UINDEX_RETURN_IF_ERROR(ParseValue(&v));
        out->values.push_back(std::move(v));
        if (Peek().kind == Token::Kind::kSymbol && Peek().text == ",") {
          ++pos_;
          continue;
        }
        break;
      }
      return ExpectSymbol(")");
    }
    if (KeywordIs(Peek(), "IS")) {
      ++pos_;
      out->kind = OqlCondition::Kind::kIs;
      return ParseClassRef(&out->class_ref);
    }
    if (Peek().kind == Token::Kind::kSymbol &&
        (Peek().text == "=" || Peek().text == "<" || Peek().text == "<=" ||
         Peek().text == ">" || Peek().text == ">=")) {
      out->kind = OqlCondition::Kind::kCompare;
      out->op = Next().text;
      return ParseValue(&out->value1);
    }
    return Fail("expected an operator after path, got '" + Peek().text +
              "'");
  }

  const std::string& text_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<OqlQuery> ParseOql(const std::string& text) {
  Lexer lexer(text);
  Result<std::vector<Token>> tokens = lexer.Run();
  if (!tokens.ok()) return tokens.status();
  Parser parser(text, std::move(tokens).value());
  return parser.Run();
}

}  // namespace uindex
