#include "db/journal.h"

#include <cstring>

#include "util/coding.h"
#include "util/framing.h"

namespace uindex {

namespace {

constexpr char kHeaderMagic[4] = {'U', 'J', 'R', 'N'};
constexpr uint32_t kHeaderVersion = 1;
constexpr size_t kHeaderPayloadSize = 4 + 4 + 8;  // magic + version + gen

std::string EncodeHeaderPayload(uint64_t generation) {
  std::string out;
  out.append(kHeaderMagic, sizeof(kHeaderMagic));
  PutFixed32(&out, kHeaderVersion);
  PutFixed64(&out, generation);
  return out;
}

// Decodes a header-frame payload; wrong magic/size/version is Corruption
// (the framing CRC already passed, so this is not a torn tail).
Result<uint64_t> DecodeHeaderPayload(const Slice& payload) {
  if (payload.size() != kHeaderPayloadSize ||
      std::memcmp(payload.data(), kHeaderMagic, sizeof(kHeaderMagic)) != 0) {
    return Status::Corruption("bad journal header");
  }
  const uint32_t version = DecodeFixed32(payload.data() + 4);
  if (version != kHeaderVersion) {
    return Status::NotSupported("journal version " + std::to_string(version));
  }
  return DecodeFixed64(payload.data() + 8);
}

void PutString(std::string* out, const std::string& s) {
  PutFixed32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

Status ReadString(const Slice& blob, size_t* pos, std::string* out) {
  if (*pos + 4 > blob.size()) return Status::Corruption("truncated string");
  const uint32_t len = DecodeFixed32(blob.data() + *pos);
  *pos += 4;
  if (*pos + len > blob.size()) return Status::Corruption("truncated string");
  out->assign(blob.data() + *pos, len);
  *pos += len;
  return Status::OK();
}

}  // namespace

std::string Journal::EncodeRecord(const JournalRecord& r) {
  std::string out;
  out.push_back(static_cast<char>(r.op));
  PutString(&out, r.name);
  PutString(&out, r.parent);
  PutFixed32(&out, static_cast<uint32_t>(r.class_names.size()));
  for (const std::string& s : r.class_names) PutString(&out, s);
  PutFixed32(&out, static_cast<uint32_t>(r.ref_attrs.size()));
  for (const std::string& s : r.ref_attrs) PutString(&out, s);
  out.push_back(r.flag ? 1 : 0);
  out.push_back(static_cast<char>(r.kind));
  PutFixed32(&out, r.oid);
  AppendValueTo(r.value, &out);
  return out;
}

Result<JournalRecord> Journal::DecodeRecord(const Slice& payload) {
  if (payload.empty()) return Status::Corruption("empty record");
  JournalRecord r;
  r.op = static_cast<JournalRecord::Op>(payload[0]);
  size_t pos = 1;
  UINDEX_RETURN_IF_ERROR(ReadString(payload, &pos, &r.name));
  UINDEX_RETURN_IF_ERROR(ReadString(payload, &pos, &r.parent));
  uint32_t n = 0;
  if (pos + 4 > payload.size()) return Status::Corruption("truncated");
  n = DecodeFixed32(payload.data() + pos);
  pos += 4;
  for (uint32_t i = 0; i < n; ++i) {
    std::string s;
    UINDEX_RETURN_IF_ERROR(ReadString(payload, &pos, &s));
    r.class_names.push_back(std::move(s));
  }
  if (pos + 4 > payload.size()) return Status::Corruption("truncated");
  n = DecodeFixed32(payload.data() + pos);
  pos += 4;
  for (uint32_t i = 0; i < n; ++i) {
    std::string s;
    UINDEX_RETURN_IF_ERROR(ReadString(payload, &pos, &s));
    r.ref_attrs.push_back(std::move(s));
  }
  if (pos + 2 + 4 > payload.size()) return Status::Corruption("truncated");
  r.flag = payload[pos] != 0;
  r.kind = static_cast<uint8_t>(payload[pos + 1]);
  pos += 2;
  r.oid = DecodeFixed32(payload.data() + pos);
  pos += 4;
  Result<Value> value = ReadValueFrom(payload, &pos);
  if (!value.ok()) return value.status();
  r.value = std::move(value).value();
  if (pos != payload.size()) {
    return Status::Corruption("trailing bytes in record");
  }
  return r;
}

Result<std::unique_ptr<Journal>> Journal::Stage(Env* env,
                                                const std::string& path,
                                                uint64_t generation,
                                                JournalOptions options) {
  if (env == nullptr) env = Env::Default();
  const std::string staged = path + ".new";
  Result<std::unique_ptr<WritableFile>> file =
      env->NewWritableFile(staged, Env::WriteMode::kTruncate);
  if (!file.ok()) return file.status();
  const std::string header = EncodeHeaderPayload(generation);
  Status st = WriteFrameToFile(file.value().get(), Slice(header));
  if (st.ok()) st = file.value()->Flush();
  // The header must be durable before Publish can make this file the
  // journal: a crash after the publish rename but before these bytes hit
  // media would leave a headerless journal that recovery mistakes for a
  // stale one.
  if (st.ok()) st = file.value()->Sync();
  if (!st.ok()) {
    env->RemoveFile(staged);  // Best effort.
    return st;
  }
  return std::unique_ptr<Journal>(new Journal(
      env, path, staged, std::move(file).value(), generation, options));
}

Status Journal::Publish() {
  if (staged_path_.empty()) return Status::OK();
  Status st = env_->RenameFile(staged_path_, path_);
  if (st.ok()) st = env_->SyncDir(DirnameOf(path_));
  if (!st.ok()) {
    Poison("journal publish failed: " + st.ToString());
    return st;
  }
  staged_path_.clear();
  return Status::OK();
}

Result<std::unique_ptr<Journal>> Journal::OpenForAppend(
    Env* env, const std::string& path, uint64_t generation,
    JournalOptions options) {
  if (env == nullptr) env = Env::Default();
  Result<Replay> replay = ReadAll(env, path);
  if (!replay.ok()) return replay.status();

  if (!replay.value().header_valid ||
      replay.value().generation != generation) {
    // Absent, empty-or-torn header, or another checkpoint's journal: start
    // a fresh generation-stamped file. Stage+Publish rather than opening
    // `path` with truncation, so a crash mid-header cannot destroy an old
    // journal some other recovery path might still want to inspect.
    Result<std::unique_ptr<Journal>> staged =
        Stage(env, path, generation, options);
    if (!staged.ok()) return staged.status();
    UINDEX_RETURN_IF_ERROR(staged.value()->Publish());
    return staged;
  }

  // Same generation: keep the records, drop any torn tail so new appends
  // land after the last intact frame.
  Result<uint64_t> size = env->FileSize(path);
  if (!size.ok()) return size.status();
  if (replay.value().valid_bytes < size.value()) {
    UINDEX_RETURN_IF_ERROR(
        env->TruncateFile(path, replay.value().valid_bytes));
  }
  Result<std::unique_ptr<WritableFile>> file =
      env->NewWritableFile(path, Env::WriteMode::kAppend);
  if (!file.ok()) return file.status();
  return std::unique_ptr<Journal>(new Journal(
      env, path, /*staged_path=*/"", std::move(file).value(), generation,
      options));
}

Status Journal::Append(const JournalRecord& record) {
  if (poisoned()) {
    return Status::ResourceExhausted("journal poisoned: " + poison_reason());
  }
  const std::string payload = EncodeRecord(record);
  Status st = WriteFrameToFile(file_.get(), Slice(payload));
  if (st.ok()) st = file_->Flush();
  if (st.ok() && options_.sync_on_append) st = file_->Sync();
  if (!st.ok()) {
    // The file may now end in a torn frame; appending more would turn that
    // recoverable tail into mid-file corruption. Fail every later append.
    Poison("append failed: " + st.ToString());
  }
  return st;
}

Status Journal::Sync() {
  if (poisoned()) {
    return Status::ResourceExhausted("journal poisoned: " + poison_reason());
  }
  // No Flush: Append already flushed its frame inline (Flush is a no-op on
  // the POSIX env — writes go straight to the fd), so a sync is exactly
  // one fdatasync. This also keeps the fault-injection op sequence of a
  // single-threaded append+sync identical to the historical
  // sync_on_append path: [write][flush][sync].
  Status st = file_->Sync();
  if (!st.ok()) Poison("sync failed: " + st.ToString());
  return st;
}

void Journal::Poison(const std::string& reason) {
  std::lock_guard<std::mutex> lock(poison_mu_);
  if (poisoned_.load(std::memory_order_relaxed)) return;
  poison_reason_ = reason;
  poisoned_.store(true, std::memory_order_release);
}

Result<Journal::Replay> Journal::ReadAll(Env* env, const std::string& path) {
  if (env == nullptr) env = Env::Default();
  Replay out;
  Result<std::unique_ptr<SequentialFile>> opened =
      env->NewSequentialFile(path);
  if (!opened.ok()) {
    if (opened.status().IsNotFound()) return out;  // Nothing to replay.
    return opened.status();
  }
  SequentialFile* file = opened.value().get();

  std::string payload;
  size_t consumed = 0;
  Result<FrameRead> read =
      ReadFrameFromFile(file, &payload, kMaxRecordPayload, &consumed);
  if (!read.ok()) return read.status();
  if (read.value() != FrameRead::kFrame) return out;  // Empty or torn header.
  Result<uint64_t> generation = DecodeHeaderPayload(Slice(payload));
  if (!generation.ok()) return generation.status();
  out.header_valid = true;
  out.generation = generation.value();
  out.valid_bytes = consumed;

  for (;;) {
    // Shared framing policy (util/framing.h): a torn or CRC-corrupt tail
    // ends the list, a corrupt record *inside* the log is an error.
    read = ReadFrameFromFile(file, &payload, kMaxRecordPayload, &consumed);
    if (!read.ok()) return read.status();
    if (read.value() != FrameRead::kFrame) break;  // Clean end or torn tail.
    Result<JournalRecord> record = DecodeRecord(Slice(payload));
    if (!record.ok()) return record.status();
    out.records.push_back(std::move(record).value());
    out.valid_bytes = consumed;
  }
  return out;
}

}  // namespace uindex
