#include "db/journal.h"

#include "util/coding.h"
#include "util/framing.h"

namespace uindex {

namespace {

void PutString(std::string* out, const std::string& s) {
  PutFixed32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

Status ReadString(const Slice& blob, size_t* pos, std::string* out) {
  if (*pos + 4 > blob.size()) return Status::Corruption("truncated string");
  const uint32_t len = DecodeFixed32(blob.data() + *pos);
  *pos += 4;
  if (*pos + len > blob.size()) return Status::Corruption("truncated string");
  out->assign(blob.data() + *pos, len);
  *pos += len;
  return Status::OK();
}

}  // namespace

std::string Journal::EncodeRecord(const JournalRecord& r) {
  std::string out;
  out.push_back(static_cast<char>(r.op));
  PutString(&out, r.name);
  PutString(&out, r.parent);
  PutFixed32(&out, static_cast<uint32_t>(r.class_names.size()));
  for (const std::string& s : r.class_names) PutString(&out, s);
  PutFixed32(&out, static_cast<uint32_t>(r.ref_attrs.size()));
  for (const std::string& s : r.ref_attrs) PutString(&out, s);
  out.push_back(r.flag ? 1 : 0);
  out.push_back(static_cast<char>(r.kind));
  PutFixed32(&out, r.oid);
  AppendValueTo(r.value, &out);
  return out;
}

Result<JournalRecord> Journal::DecodeRecord(const Slice& payload) {
  if (payload.empty()) return Status::Corruption("empty record");
  JournalRecord r;
  r.op = static_cast<JournalRecord::Op>(payload[0]);
  size_t pos = 1;
  UINDEX_RETURN_IF_ERROR(ReadString(payload, &pos, &r.name));
  UINDEX_RETURN_IF_ERROR(ReadString(payload, &pos, &r.parent));
  uint32_t n = 0;
  if (pos + 4 > payload.size()) return Status::Corruption("truncated");
  n = DecodeFixed32(payload.data() + pos);
  pos += 4;
  for (uint32_t i = 0; i < n; ++i) {
    std::string s;
    UINDEX_RETURN_IF_ERROR(ReadString(payload, &pos, &s));
    r.class_names.push_back(std::move(s));
  }
  if (pos + 4 > payload.size()) return Status::Corruption("truncated");
  n = DecodeFixed32(payload.data() + pos);
  pos += 4;
  for (uint32_t i = 0; i < n; ++i) {
    std::string s;
    UINDEX_RETURN_IF_ERROR(ReadString(payload, &pos, &s));
    r.ref_attrs.push_back(std::move(s));
  }
  if (pos + 2 + 4 > payload.size()) return Status::Corruption("truncated");
  r.flag = payload[pos] != 0;
  r.kind = static_cast<uint8_t>(payload[pos + 1]);
  pos += 2;
  r.oid = DecodeFixed32(payload.data() + pos);
  pos += 4;
  Result<Value> value = ReadValueFrom(payload, &pos);
  if (!value.ok()) return value.status();
  r.value = std::move(value).value();
  if (pos != payload.size()) {
    return Status::Corruption("trailing bytes in record");
  }
  return r;
}

Result<std::unique_ptr<Journal>> Journal::OpenForAppend(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open journal " + path);
  }
  return std::unique_ptr<Journal>(new Journal(path, file));
}

Journal::~Journal() {
  if (file_ != nullptr) std::fclose(file_);
}

Status Journal::Append(const JournalRecord& record) {
  const std::string payload = EncodeRecord(record);
  UINDEX_RETURN_IF_ERROR(WriteFrameToFile(file_, Slice(payload)));
  if (std::fflush(file_) != 0) {
    return Status::ResourceExhausted("journal write failed");
  }
  return Status::OK();
}

Status Journal::Truncate() {
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::ResourceExhausted("journal truncate failed");
  }
  return Status::OK();
}

Result<std::vector<JournalRecord>> Journal::ReadAll(
    const std::string& path, size_t* valid_bytes) {
  std::vector<JournalRecord> out;
  if (valid_bytes != nullptr) *valid_bytes = 0;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return out;  // No journal: nothing to replay.
  std::string payload;
  size_t consumed = 0;
  for (;;) {
    // Shared framing policy (util/framing.h): a torn tail ends the list, a
    // corrupt record *inside* the log is an error.
    Result<FrameRead> read =
        ReadFrameFromFile(file, &payload, UINT32_MAX, &consumed);
    if (!read.ok()) {
      std::fclose(file);
      return read.status();
    }
    if (read.value() != FrameRead::kFrame) break;  // Clean end or torn tail.
    Result<JournalRecord> record = DecodeRecord(Slice(payload));
    if (!record.ok()) {
      std::fclose(file);
      return record.status();
    }
    out.push_back(std::move(record).value());
  }
  std::fclose(file);
  if (valid_bytes != nullptr) *valid_bytes = consumed;
  return out;
}

}  // namespace uindex
