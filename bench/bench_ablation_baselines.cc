// Ablation: the full baseline field (U-index, CG-tree, CH-tree, H-tree,
// plus the U-index driven by pure forward scanning) across the qualitative
// comparisons of paper §4.4 — exact match and ranges, few and many sets.
// The paper argues these orderings qualitatively; this bench measures them.

#include "bench/bench_common.h"

namespace uindex {
namespace bench {
namespace {

int Run() {
  SetExperiment::Options opts;
  opts.workload.num_objects = QuickMode() ? 20000 : 60000;
  opts.workload.num_sets = 40;
  opts.workload.num_distinct_keys = 1000;
  opts.with_chtree = true;
  opts.with_htree = true;
  opts.with_forward_uindex = true;

  std::printf("Baseline ablation: %u objects, 40 sets, 1000 different keys, "
              "reps=%d\n\n",
              opts.workload.num_objects, ExperimentReps());

  Result<std::unique_ptr<SetExperiment>> exp = SetExperiment::Create(opts);
  if (!exp.ok()) {
    std::fprintf(stderr, "setup: %s\n", exp.status().ToString().c_str());
    return 1;
  }

  struct Scenario {
    const char* label;
    double fraction;
    size_t sets_queried;
  };
  const Scenario scenarios[] = {
      {"exact match, 1 set", -1.0, 1},
      {"exact match, 8 sets", -1.0, 8},
      {"exact match, 40 sets", -1.0, 40},
      {"range 10%, 2 sets", 0.10, 2},
      {"range 10%, 10 sets", 0.10, 10},
      {"range 10%, 40 sets", 0.10, 40},
      {"range 2%, 2 sets", 0.02, 2},
      {"range 2%, 10 sets", 0.02, 10},
      {"range 0.5%, 10 sets", 0.005, 10},
  };

  auto structures = exp.value()->structures();
  JsonReport report("ablation_baselines");
  std::printf("%-24s", "scenario");
  for (const auto& s : structures) std::printf(" %16s", s.name.c_str());
  std::printf("\n");
  for (const Scenario& sc : scenarios) {
    std::printf("%-24s", sc.label);
    for (const auto& s : structures) {
      Result<double> pages = exp.value()->Measure(
          s, sc.sets_queried, /*near=*/true, sc.fraction, ExperimentReps(),
          /*seed=*/sc.sets_queried * 31 + (sc.fraction < 0 ? 0 : 1));
      if (!pages.ok()) {
        std::fprintf(stderr, "measure: %s\n",
                     pages.status().ToString().c_str());
        return 1;
      }
      std::printf(" %16.1f", pages.value());
      report.AddPages(std::string(sc.label) + "/" + s.name, pages.value());
    }
    std::printf("\n");
  }
  report.Write();
  std::printf(
      "\nExpected (paper §2/§4.4): CH-tree good on exact match but degrades\n"
      "on ranges (key grouping); H-tree best on ranges over few sets, cost\n"
      "proportional to #sets; CG-tree between the two; U-index close to\n"
      "CH-tree on exact match and strongest on small ranges / many sets.\n"
      "Forward scanning matches Parscan only here because these queries\n"
      "cover contiguous code ranges; Table 1's dispersed-class and partial-\n"
      "path queries show Parscan's advantage.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace uindex

int main() { return uindex::bench::Run(); }
