// Durability-layer benchmark: what the crash-consistency fixes cost, and
// proof that they cost the paper's metric nothing.
//
//   * journal append throughput, default-durable (fdatasync per Append)
//     vs batched (one Sync at the commit point) — the knob's price tag;
//   * journaled DML load and Checkpoint wall time on a real file system
//     (stage journal + snapshot sync/rename/dir-sync + publish);
//   * the page-read identity gate: the same query list on the live
//     database and on an OpenDurable-recovered twin must return
//     byte-identical rows and an identical fresh-epoch pages_read
//     aggregate. Recovery replays the journal through the ordinary DML
//     entry points, so the recovered trees are the same trees — the bench
//     exits non-zero if the durability machinery moved the cost metric.
//
// Reports to stdout and $UINDEX_BENCH_OUT_DIR/durability.json (default
// bench_results/durability.json).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "db/database.h"
#include "db/journal.h"
#include "storage/env/env.h"
#include "util/random.h"

namespace uindex {
namespace {

constexpr uint32_t kSubclasses = 4;
constexpr int64_t kKeys = 500;

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

JournalRecord SetAttrRecord(Oid oid, int64_t v) {
  JournalRecord r;
  r.op = JournalRecord::Op::kSetAttr;
  r.name = "Key";
  r.oid = oid;
  r.value = Value::Int(v);
  return r;
}

// Appends `n` records with the given sync policy and returns the wall
// time; batched mode syncs once at the end (inside the measured bracket —
// that final fdatasync is part of the batched commit's cost).
Result<double> AppendRun(Env* env, const std::string& path, bool durable,
                        int n) {
  env->RemoveFile(path);
  JournalOptions options;
  options.sync_on_append = durable;
  Result<std::unique_ptr<Journal>> journal =
      Journal::OpenForAppend(env, path, /*generation=*/0, options);
  if (!journal.ok()) return journal.status();
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < n; ++i) {
    UINDEX_RETURN_IF_ERROR(
        journal.value()->Append(SetAttrRecord(static_cast<Oid>(i), i)));
  }
  if (!durable) UINDEX_RETURN_IF_ERROR(journal.value()->Sync());
  return MillisSince(start);
}

int Run() {
  const int durable_appends = bench::QuickMode() ? 500 : 5000;
  const int batched_appends = bench::QuickMode() ? 20000 : 200000;
  const uint32_t num_objects = bench::QuickMode() ? 2000u : 10000u;
  const int num_queries = bench::QuickMode() ? 500 : 2000;

  Env* env = Env::Default();
  std::error_code ec;
  const std::filesystem::path work =
      std::filesystem::temp_directory_path() / "uindex_bench_durability";
  std::filesystem::remove_all(work, ec);
  std::filesystem::create_directories(work, ec);
  const std::string wal = (work / "bench.journal").string();
  const std::string snap = (work / "bench.udb").string();

  // --- Phase 1: append throughput, durable vs batched. -------------------
  Result<double> durable_ms =
      AppendRun(env, wal, /*durable=*/true, durable_appends);
  if (!durable_ms.ok()) {
    std::fprintf(stderr, "durable append run: %s\n",
                 durable_ms.status().ToString().c_str());
    return 1;
  }
  Result<double> batched_ms =
      AppendRun(env, wal, /*durable=*/false, batched_appends);
  if (!batched_ms.ok()) {
    std::fprintf(stderr, "batched append run: %s\n",
                 batched_ms.status().ToString().c_str());
    return 1;
  }
  const double durable_rate = durable_appends / (durable_ms.value() / 1e3);
  const double batched_rate = batched_appends / (batched_ms.value() / 1e3);
  env->RemoveFile(wal);

  // --- Phase 2: journaled load + checkpoint on the real file system. -----
  DatabaseOptions options;
  options.prefetch_threads = 0;  // Identical epochs live vs recovered.
  Result<std::unique_ptr<Database>> opened =
      Database::OpenDurable(snap, wal, options);
  if (!opened.ok()) {
    std::fprintf(stderr, "OpenDurable: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Database> db = std::move(opened).value();

  const auto load_start = std::chrono::steady_clock::now();
  const ClassId root = db->CreateClass("Item").value();
  std::vector<ClassId> subs;
  for (uint32_t i = 0; i < kSubclasses; ++i) {
    subs.push_back(
        db->CreateSubclass("Item" + std::to_string(i), root).value());
  }
  if (Result<size_t> idx = db->CreateIndex(
          PathSpec::ClassHierarchy(root, "Key", Value::Kind::kInt));
      !idx.ok()) {
    std::fprintf(stderr, "index: %s\n", idx.status().ToString().c_str());
    return 1;
  }
  Random rng(0xD17A);
  std::vector<Oid> oids;
  oids.reserve(num_objects);
  for (uint32_t i = 0; i < num_objects; ++i) {
    Result<Oid> oid = db->CreateObject(subs[i % subs.size()]);
    if (!oid.ok() ||
        !db->SetAttr(oid.value(), "Key",
                     Value::Int(static_cast<int64_t>(rng.Uniform(kKeys))))
             .ok()) {
      std::fprintf(stderr, "load failed at object %u\n", i);
      return 1;
    }
    oids.push_back(oid.value());
  }
  const double load_ms = MillisSince(load_start);

  const auto ckpt_start = std::chrono::steady_clock::now();
  if (Status st = db->Checkpoint(snap); !st.ok()) {
    std::fprintf(stderr, "checkpoint: %s\n", st.ToString().c_str());
    return 1;
  }
  const double checkpoint_ms = MillisSince(ckpt_start);
  Result<uint64_t> snap_bytes = env->FileSize(snap);

  // A post-checkpoint tail so recovery exercises snapshot + replay, not
  // just the snapshot.
  for (uint32_t i = 0; i < num_objects / 10; ++i) {
    if (!db->SetAttr(oids[rng.Uniform(oids.size())], "Key",
                     Value::Int(static_cast<int64_t>(rng.Uniform(kKeys))))
             .ok()) {
      std::fprintf(stderr, "tail update %u failed\n", i);
      return 1;
    }
  }

  // --- Phase 3: page-read identity gate, live vs recovered twin. ---------
  std::vector<Database::Selection> queries;
  queries.reserve(num_queries);
  Random qrng(0xCAFE);
  for (int q = 0; q < num_queries; ++q) {
    Database::Selection sel;
    sel.cls = root;
    sel.attr = "Key";
    sel.lo = sel.hi = Value::Int(static_cast<int64_t>(qrng.Uniform(kKeys)));
    queries.push_back(sel);
  }

  auto run_queries = [&](Database& target, std::vector<std::vector<Oid>>* rows,
                         uint64_t* pages) -> Status {
    target.buffers().BeginQuery();  // Fresh epoch: count each page once.
    const IoStats base = target.buffers().stats();
    rows->clear();
    rows->reserve(queries.size());
    for (const Database::Selection& sel : queries) {
      Result<Database::SelectResult> r = target.Select(sel);
      if (!r.ok()) return r.status();
      if (!r.value().used_index) {
        return Status::Corruption("query fell back to an extent scan");
      }
      rows->push_back(std::move(r.value().oids));
    }
    *pages = (target.buffers().stats() - base)
                 .pages_read.load(std::memory_order_relaxed);
    return Status::OK();
  };

  std::vector<std::vector<Oid>> live_rows;
  uint64_t live_pages = 0;
  if (Status st = run_queries(*db, &live_rows, &live_pages); !st.ok()) {
    std::fprintf(stderr, "live query phase: %s\n", st.ToString().c_str());
    return 1;
  }
  db.reset();

  const auto recover_start = std::chrono::steady_clock::now();
  Result<std::unique_ptr<Database>> recovered =
      Database::OpenDurable(snap, wal, options);
  if (!recovered.ok()) {
    std::fprintf(stderr, "recovery: %s\n",
                 recovered.status().ToString().c_str());
    return 1;
  }
  const double recover_ms = MillisSince(recover_start);

  std::vector<std::vector<Oid>> twin_rows;
  uint64_t twin_pages = 0;
  if (Status st = run_queries(*recovered.value(), &twin_rows, &twin_pages);
      !st.ok()) {
    std::fprintf(stderr, "recovered query phase: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  bool identical = live_rows == twin_rows;
  if (!identical) {
    std::fprintf(stderr, "FAIL: recovered twin returned different rows\n");
  }
  if (live_pages != twin_pages) {
    identical = false;
    std::fprintf(stderr,
                 "FAIL: pages_read moved across recovery: live %llu, "
                 "recovered %llu\n",
                 static_cast<unsigned long long>(live_pages),
                 static_cast<unsigned long long>(twin_pages));
  }

  std::printf("bench_durability: %u objects, %d queries%s\n", num_objects,
              num_queries, bench::QuickMode() ? " (quick mode)" : "");
  std::printf("  %-34s %10s %14s\n", "phase", "wall ms", "rate");
  std::printf("  %-34s %10.1f %11.0f/s\n", "journal append (sync each)",
              durable_ms.value(), durable_rate);
  std::printf("  %-34s %10.1f %11.0f/s\n", "journal append (batched sync)",
              batched_ms.value(), batched_rate);
  std::printf("  %-34s %10.1f %14s\n", "journaled DML load", load_ms, "-");
  std::printf("  %-34s %10.1f %11llu B\n", "checkpoint (snapshot+rotate)",
              checkpoint_ms,
              static_cast<unsigned long long>(
                  snap_bytes.ok() ? snap_bytes.value() : 0));
  std::printf("  %-34s %10.1f %14s\n", "recovery (snapshot+replay)",
              recover_ms, "-");
  std::printf("  identity gate: rows %s, pages_read %llu %s %llu\n",
              live_rows == twin_rows ? "identical" : "DIFFER",
              static_cast<unsigned long long>(live_pages),
              live_pages == twin_pages ? "==" : "!=",
              static_cast<unsigned long long>(twin_pages));

  std::string json_text;
  {
    bench::AppendF(
        &json_text,
        "{\n  \"bench\": \"durability\",\n  \"quick_mode\": %s,\n"
        "  \"append_sync_each\": {\"n\": %d, \"wall_ms\": %.1f, "
        "\"per_sec\": %.0f},\n"
        "  \"append_batched\": {\"n\": %d, \"wall_ms\": %.1f, "
        "\"per_sec\": %.0f},\n"
        "  \"load_wall_ms\": %.1f,\n  \"checkpoint_wall_ms\": %.1f,\n"
        "  \"snapshot_bytes\": %llu,\n  \"recover_wall_ms\": %.1f,\n"
        "  \"pages_read\": {\"live\": %llu, \"recovered\": %llu},\n"
        "  \"identity\": %s\n}\n",
        bench::QuickMode() ? "true" : "false", durable_appends,
        durable_ms.value(), durable_rate, batched_appends,
        batched_ms.value(), batched_rate, load_ms, checkpoint_ms,
        static_cast<unsigned long long>(
            snap_bytes.ok() ? snap_bytes.value() : 0),
        recover_ms, static_cast<unsigned long long>(live_pages),
        static_cast<unsigned long long>(twin_pages),
        identical ? "true" : "false");
    bench::WriteArtifact("durability", json_text);
  }

  std::filesystem::remove_all(work, ec);
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace uindex

int main() { return uindex::Run(); }
