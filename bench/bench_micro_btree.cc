// Microbenchmarks (google-benchmark) for the substrate operations: B-tree
// insert/point-get/scan, key encode/decode, and Parscan vs forward scan on
// a fixed workload. CPU-time oriented, complementing the page-read benches.
//
// Before the registered benchmarks run, a custom main() executes the
// decoded-node cache A/B proof: a Table-1-style query mix (value ranges
// crossed with set subsets, answered by both Parscan and forward scanning,
// repeated) with the cache on and off. Rows and page reads must be
// identical and Node::Parse calls must drop at least 3x, or the binary
// exits non-zero.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "btree/btree.h"
#include "core/uindex.h"
#include "util/random.h"
#include "workload/database_generator.h"

namespace uindex {
namespace {

std::string MakeKey(uint64_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user/%012llu",
                static_cast<unsigned long long>(i));
  return buf;
}

void BM_BTreeInsertSequential(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Pager pager(1024);
    BufferManager buffers(&pager);
    BTree tree(&buffers);
    state.ResumeTiming();
    for (int64_t i = 0; i < state.range(0); ++i) {
      benchmark::DoNotOptimize(
          tree.Insert(Slice(MakeKey(static_cast<uint64_t>(i))),
                      Slice("value")));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeInsertSequential)->Arg(10000);

void BM_BTreeInsertRandom(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Pager pager(1024);
    BufferManager buffers(&pager);
    BTree tree(&buffers);
    Random rng(1);
    state.ResumeTiming();
    for (int64_t i = 0; i < state.range(0); ++i) {
      benchmark::DoNotOptimize(
          tree.Put(Slice(MakeKey(rng.Next() % 1000000)), Slice("value")));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeInsertRandom)->Arg(10000);

void BM_BTreeInsertBatchSorted(benchmark::State& state) {
  std::vector<std::pair<std::string, std::string>> entries;
  for (int64_t i = 0; i < state.range(0); ++i) {
    entries.emplace_back(MakeKey(static_cast<uint64_t>(i)), "value");
  }
  for (auto _ : state) {
    state.PauseTiming();
    Pager pager(1024);
    BufferManager buffers(&pager);
    BTree tree(&buffers);
    state.ResumeTiming();
    benchmark::DoNotOptimize(tree.InsertBatch(entries));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeInsertBatchSorted)->Arg(10000);

void BM_BTreePointGet(benchmark::State& state) {
  Pager pager(1024);
  BufferManager buffers(&pager);
  BTree tree(&buffers);
  for (uint64_t i = 0; i < 50000; ++i) {
    (void)tree.Insert(Slice(MakeKey(i)), Slice("value"));
  }
  Random rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Get(Slice(MakeKey(rng.Next() % 50000))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreePointGet);

void BM_BTreeFullScan(benchmark::State& state) {
  Pager pager(1024);
  BufferManager buffers(&pager);
  BTree tree(&buffers);
  for (uint64_t i = 0; i < 50000; ++i) {
    (void)tree.Insert(Slice(MakeKey(i)), Slice("value"));
  }
  for (auto _ : state) {
    auto it = tree.NewIterator();
    uint64_t n = 0;
    for (it.SeekToFirst(); it.Valid(); it.Next()) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * 50000);
}
BENCHMARK(BM_BTreeFullScan);

struct ParscanFixture {
  ParscanFixture()
      : hier(std::move(BuildSetHierarchy(40)).value()),
        pager(1024),
        buffers(&pager),
        spec(PathSpec::ClassHierarchy(hier.root, "key", Value::Kind::kInt)),
        index(&buffers, &hier.schema, hier.coder.get(), spec) {
    SetWorkloadConfig cfg;
    cfg.num_objects = 60000;
    cfg.num_sets = 40;
    cfg.num_distinct_keys = 1000;
    for (const Posting& p : GeneratePostings(cfg)) {
      UIndex::Entry entry;
      entry.path = {{hier.sets[p.set_index], p.oid}};
      entry.key =
          index.key_encoder().EncodeEntry(Value::Int(p.key), entry.path);
      (void)index.InsertEntry(entry);
    }
  }

  Query RangeQuery() const {
    Query q = Query::Range(Value::Int(100), Value::Int(119));
    ClassSelector sel;
    for (int i = 0; i < 5; ++i) sel.include.push_back({hier.sets[i], false});
    q.With(sel, ValueSlot::Wanted());
    return q;
  }

  SetHierarchy hier;
  Pager pager;
  BufferManager buffers;
  PathSpec spec;
  UIndex index;
};

ParscanFixture& SharedFixture() {
  static ParscanFixture* fixture = new ParscanFixture();
  return *fixture;
}

void BM_ParscanRange(benchmark::State& state) {
  ParscanFixture& f = SharedFixture();
  const Query q = f.RangeQuery();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.index.Parscan(q));
  }
}
BENCHMARK(BM_ParscanRange);

void BM_ForwardScanRange(benchmark::State& state) {
  ParscanFixture& f = SharedFixture();
  const Query q = f.RangeQuery();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.index.ForwardScan(q));
  }
}
BENCHMARK(BM_ForwardScanRange);

void BM_KeyEncodeDecode(benchmark::State& state) {
  ParscanFixture& f = SharedFixture();
  const KeyEncoder& enc = f.index.key_encoder();
  Random rng(3);
  for (auto _ : state) {
    const std::string key = enc.EncodeEntry(
        Value::Int(static_cast<int64_t>(rng.Uniform(1000))),
        {{f.hier.sets[rng.Uniform(40)], static_cast<Oid>(rng.Next())}});
    benchmark::DoNotOptimize(enc.Decode(Slice(key)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KeyEncodeDecode);

// The tentpole acceptance check: the decoded-node cache must cut
// Node::Parse calls >= 3x on a Table-1-style query mix while leaving the
// result rows and the paper's page-read metric untouched.
int RunCacheExperiment() {
  ParscanFixture& f = SharedFixture();
  NodeCache* const cache = f.index.btree().node_cache();
  bench::JsonReport report("micro_btree");
  if (cache == nullptr) {
    std::fprintf(stderr,
                 "decoded-node cache disabled (UINDEX_NODE_CACHE=off or a "
                 "zero budget); skipping the parse-reduction check\n");
    report.Write();
    return 0;
  }

  // Table-1-style mix: five value ranges, each crossed with a different
  // 8-set subset of the 40-set hierarchy (the query 1-4 shape).
  std::vector<Query> queries;
  for (int lo = 0; lo < 1000; lo += 200) {
    Query q = Query::Range(Value::Int(lo), Value::Int(lo + 19));
    ClassSelector sel;
    for (int i = 0; i < 8; ++i) {
      sel.include.push_back({f.hier.sets[(lo / 200 + i * 5) % 40], false});
    }
    q.With(sel, ValueSlot::Wanted());
    queries.push_back(std::move(q));
  }

  const int reps = 3;
  struct Outcome {
    size_t rows = 0;
    double ns = 0;
    IoStats delta;
    bool ok = true;
  };
  auto run_mix = [&](bool enabled) {
    Outcome out;
    cache->set_enabled(enabled);
    bench::StatsTimer timer(&f.buffers);
    for (int r = 0; r < reps; ++r) {
      for (const Query& q : queries) {
        f.buffers.BeginQuery();  // Fresh read epoch: count this query's pages.
        Result<QueryResult> par = f.index.Parscan(q);
        Result<QueryResult> fwd = f.index.ForwardScan(q);
        if (!par.ok() || !fwd.ok() ||
            par.value().rows != fwd.value().rows) {
          out.ok = false;
          continue;
        }
        out.rows += par.value().rows.size();
      }
    }
    out.ns = timer.ElapsedNs();
    out.delta = timer.Delta();
    return out;
  };

  const Outcome on = run_mix(true);
  const Outcome off = run_mix(false);
  cache->set_enabled(true);

  report.Add("cache=on/table1_mix", on.ns, on.delta);
  report.Add("cache=off/table1_mix", off.ns, off.delta);
  report.Write();

  const uint64_t parses_on =
      on.delta.nodes_parsed.load(std::memory_order_relaxed);
  const uint64_t parses_off =
      off.delta.nodes_parsed.load(std::memory_order_relaxed);
  const uint64_t pages_on =
      on.delta.pages_read.load(std::memory_order_relaxed);
  const uint64_t pages_off =
      off.delta.pages_read.load(std::memory_order_relaxed);
  std::printf(
      "node-cache A/B (Table-1 mix, %d reps x %zu queries):\n"
      "  rows    on=%zu off=%zu\n"
      "  pages   on=%llu off=%llu\n"
      "  parses  on=%llu off=%llu (%.1fx fewer)\n\n",
      reps, queries.size(), on.rows, off.rows,
      static_cast<unsigned long long>(pages_on),
      static_cast<unsigned long long>(pages_off),
      static_cast<unsigned long long>(parses_on),
      static_cast<unsigned long long>(parses_off),
      static_cast<double>(parses_off) /
          static_cast<double>(parses_on > 0 ? parses_on : 1));
  if (!on.ok || !off.ok || on.rows != off.rows) {
    std::fprintf(stderr, "FAIL: result rows differ with the cache on/off\n");
    return 1;
  }
  if (pages_on != pages_off) {
    std::fprintf(stderr, "FAIL: page reads differ with the cache on/off\n");
    return 1;
  }
  if (parses_off < 3 * (parses_on > 0 ? parses_on : 1)) {
    std::fprintf(stderr, "FAIL: node cache saved < 3x Node::Parse calls\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace uindex

int main(int argc, char** argv) {
  const int rc = uindex::RunCacheExperiment();
  if (rc != 0) return rc;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
