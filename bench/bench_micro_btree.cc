// Microbenchmarks (google-benchmark) for the substrate operations: B-tree
// insert/point-get/scan, key encode/decode, and Parscan vs forward scan on
// a fixed workload. CPU-time oriented, complementing the page-read benches.

#include <benchmark/benchmark.h>

#include "btree/btree.h"
#include "core/uindex.h"
#include "util/random.h"
#include "workload/database_generator.h"

namespace uindex {
namespace {

std::string MakeKey(uint64_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user/%012llu",
                static_cast<unsigned long long>(i));
  return buf;
}

void BM_BTreeInsertSequential(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Pager pager(1024);
    BufferManager buffers(&pager);
    BTree tree(&buffers);
    state.ResumeTiming();
    for (int64_t i = 0; i < state.range(0); ++i) {
      benchmark::DoNotOptimize(
          tree.Insert(Slice(MakeKey(static_cast<uint64_t>(i))),
                      Slice("value")));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeInsertSequential)->Arg(10000);

void BM_BTreeInsertRandom(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Pager pager(1024);
    BufferManager buffers(&pager);
    BTree tree(&buffers);
    Random rng(1);
    state.ResumeTiming();
    for (int64_t i = 0; i < state.range(0); ++i) {
      benchmark::DoNotOptimize(
          tree.Put(Slice(MakeKey(rng.Next() % 1000000)), Slice("value")));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeInsertRandom)->Arg(10000);

void BM_BTreeInsertBatchSorted(benchmark::State& state) {
  std::vector<std::pair<std::string, std::string>> entries;
  for (int64_t i = 0; i < state.range(0); ++i) {
    entries.emplace_back(MakeKey(static_cast<uint64_t>(i)), "value");
  }
  for (auto _ : state) {
    state.PauseTiming();
    Pager pager(1024);
    BufferManager buffers(&pager);
    BTree tree(&buffers);
    state.ResumeTiming();
    benchmark::DoNotOptimize(tree.InsertBatch(entries));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeInsertBatchSorted)->Arg(10000);

void BM_BTreePointGet(benchmark::State& state) {
  Pager pager(1024);
  BufferManager buffers(&pager);
  BTree tree(&buffers);
  for (uint64_t i = 0; i < 50000; ++i) {
    (void)tree.Insert(Slice(MakeKey(i)), Slice("value"));
  }
  Random rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Get(Slice(MakeKey(rng.Next() % 50000))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreePointGet);

void BM_BTreeFullScan(benchmark::State& state) {
  Pager pager(1024);
  BufferManager buffers(&pager);
  BTree tree(&buffers);
  for (uint64_t i = 0; i < 50000; ++i) {
    (void)tree.Insert(Slice(MakeKey(i)), Slice("value"));
  }
  for (auto _ : state) {
    auto it = tree.NewIterator();
    uint64_t n = 0;
    for (it.SeekToFirst(); it.Valid(); it.Next()) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * 50000);
}
BENCHMARK(BM_BTreeFullScan);

struct ParscanFixture {
  ParscanFixture()
      : hier(std::move(BuildSetHierarchy(40)).value()),
        pager(1024),
        buffers(&pager),
        spec(PathSpec::ClassHierarchy(hier.root, "key", Value::Kind::kInt)),
        index(&buffers, &hier.schema, hier.coder.get(), spec) {
    SetWorkloadConfig cfg;
    cfg.num_objects = 60000;
    cfg.num_sets = 40;
    cfg.num_distinct_keys = 1000;
    for (const Posting& p : GeneratePostings(cfg)) {
      UIndex::Entry entry;
      entry.path = {{hier.sets[p.set_index], p.oid}};
      entry.key =
          index.key_encoder().EncodeEntry(Value::Int(p.key), entry.path);
      (void)index.InsertEntry(entry);
    }
  }

  Query RangeQuery() const {
    Query q = Query::Range(Value::Int(100), Value::Int(119));
    ClassSelector sel;
    for (int i = 0; i < 5; ++i) sel.include.push_back({hier.sets[i], false});
    q.With(sel, ValueSlot::Wanted());
    return q;
  }

  SetHierarchy hier;
  Pager pager;
  BufferManager buffers;
  PathSpec spec;
  UIndex index;
};

ParscanFixture& SharedFixture() {
  static ParscanFixture* fixture = new ParscanFixture();
  return *fixture;
}

void BM_ParscanRange(benchmark::State& state) {
  ParscanFixture& f = SharedFixture();
  const Query q = f.RangeQuery();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.index.Parscan(q));
  }
}
BENCHMARK(BM_ParscanRange);

void BM_ForwardScanRange(benchmark::State& state) {
  ParscanFixture& f = SharedFixture();
  const Query q = f.RangeQuery();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.index.ForwardScan(q));
  }
}
BENCHMARK(BM_ForwardScanRange);

void BM_KeyEncodeDecode(benchmark::State& state) {
  ParscanFixture& f = SharedFixture();
  const KeyEncoder& enc = f.index.key_encoder();
  Random rng(3);
  for (auto _ : state) {
    const std::string key = enc.EncodeEntry(
        Value::Int(static_cast<int64_t>(rng.Uniform(1000))),
        {{f.hier.sets[rng.Uniform(40)], static_cast<Oid>(rng.Next())}});
    benchmark::DoNotOptimize(enc.Decode(Slice(key)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KeyEncodeDecode);

}  // namespace
}  // namespace uindex

BENCHMARK_MAIN();
