// Wall-clock benchmark of the asynchronous prefetch pipeline
// (storage/prefetch.h): leaf-chain readahead under ForwardScan and child-
// subtree prefetch under Parscan, each measured with the scheduler attached
// vs detached on the identical query sequence.
//
// The device model is the simulated page-read latency
// (BufferManager::SetSimulatedReadLatency, default 100 us, overridable via
// UINDEX_SIM_READ_LATENCY): every counted read sleeps, the paper's "pages
// read == query time" model made literal. Background reads perform the
// sleep off the query thread and the demand fetch joins them, so prefetch
// turns a serial chain of device waits into an overlapped one without
// moving a single counter the paper reports.
//
// Hard gates (non-zero exit on violation):
//   * rows and pages_read byte-identical with prefetch on vs off, per leg;
//   * >= 2.0x wall-clock speedup on the leaf-chain forward scan;
//   * >= 1.5x on the multi-interval serial Parscan.

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "core/uindex.h"
#include "exec/parallel_parscan.h"
#include "exec/thread_pool.h"
#include "storage/prefetch.h"
#include "workload/database_generator.h"

namespace uindex {
namespace {

struct Leg {
  double on_ms = 0;
  double off_ms = 0;
  uint64_t pages_on = 0;
  uint64_t pages_off = 0;
  bool identical = true;
  IoStats delta_on;   // Counter deltas over all reps, scheduler attached.
  IoStats delta_off;  // ... and detached.
  double speedup() const { return on_ms > 0 ? off_ms / on_ms : 0; }
};

int Run() {
  if (!PrefetchScheduler::EnvEnabled()) {
    std::printf("bench_prefetch: UINDEX_PREFETCH=off, nothing to measure\n");
    return 0;
  }
  const uint32_t num_objects = bench::ExperimentObjects();
  const uint32_t num_sets = 40;
  const uint64_t num_keys = 1000;
  const int reps = bench::QuickMode() ? 2 : 3;
  const size_t io_threads = 4;

  SetHierarchy hier = std::move(BuildSetHierarchy(num_sets)).value();
  Pager pager(1024);
  BufferManager buffers(&pager);
  if (buffers.simulated_read_latency_us() == 0) {
    buffers.SetSimulatedReadLatency(100);
  }
  const uint32_t latency_us = buffers.simulated_read_latency_us();
  PathSpec spec =
      PathSpec::ClassHierarchy(hier.root, "key", Value::Kind::kInt);
  UIndex index(&buffers, &hier.schema, hier.coder.get(), spec);

  SetWorkloadConfig cfg;
  cfg.num_objects = num_objects;
  cfg.num_sets = num_sets;
  cfg.num_distinct_keys = num_keys;
  buffers.SetSimulatedReadLatency(0);  // Load at memory speed.
  for (const Posting& p : GeneratePostings(cfg)) {
    UIndex::Entry entry;
    entry.path = {{hier.sets[p.set_index], p.oid}};
    entry.key =
        index.key_encoder().EncodeEntry(Value::Int(p.key), entry.path);
    if (Status s = index.InsertEntry(entry); !s.ok()) {
      std::fprintf(stderr, "build: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  buffers.SetSimulatedReadLatency(latency_us);
  buffers.ResetStats();

  exec::ThreadPool io_pool(io_threads);
  PrefetchScheduler prefetcher(&buffers, &io_pool);

  // The full leaf chain: every key, every set. ForwardScan seeks once and
  // sweeps every leaf — the workload readahead was built for.
  Query sweep = Query::Range(Value::Int(0),
                             Value::Int(static_cast<int64_t>(num_keys) - 1));
  {
    ClassSelector sel;
    for (size_t i = 0; i < num_sets; ++i) {
      sel.include.push_back({hier.sets[i], false});
    }
    sweep.With(sel, ValueSlot::Wanted());
  }

  // Table-1 query 3/4 shape: a 5% key range x every other set fans out
  // into many partial-key intervals, so Parscan's internal nodes carry
  // wide surviving child sets — the unit its pre-pass batches.
  Query multi = Query::Range(Value::Int(0), Value::Int(49));
  {
    ClassSelector sel;
    for (size_t i = 0; i < num_sets; i += 2) {
      sel.include.push_back({hier.sets[i], false});
    }
    multi.With(sel, ValueSlot::Wanted());
  }

  auto run_leg = [&](const Query& query, auto execute) -> Result<Leg> {
    Leg leg;
    std::vector<std::vector<Oid>> rows_on, rows_off;
    for (const bool on : {true, false}) {
      if (on) {
        buffers.SetPrefetcher(&prefetcher);
      } else {
        buffers.SetPrefetcher(nullptr);
        prefetcher.Drain();
      }
      bench::StatsTimer timer(&buffers);
      const auto start = std::chrono::steady_clock::now();
      uint64_t pages = 0;
      for (int r = 0; r < reps; ++r) {
        QueryCost cost(&buffers);
        Result<QueryResult> res = execute(query);
        if (!res.ok()) return res.status();
        pages = cost.PagesRead();
        if (r == 0) (on ? rows_on : rows_off) = res.value().rows;
        if (res.value().rows != (on ? rows_on : rows_off)) {
          leg.identical = false;  // Reps must agree with themselves too.
        }
      }
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count() /
                        reps;
      if (on) {
        leg.on_ms = ms;
        leg.pages_on = pages;
        leg.delta_on = timer.Delta();
      } else {
        leg.off_ms = ms;
        leg.pages_off = pages;
        leg.delta_off = timer.Delta();
      }
    }
    buffers.SetPrefetcher(&prefetcher);
    if (rows_on != rows_off) leg.identical = false;
    if (leg.pages_on != leg.pages_off) leg.identical = false;
    return leg;
  };

  std::printf(
      "prefetch bench: %u objects, %u sets, %llu distinct keys, "
      "%u us simulated read latency, %zu I/O workers%s\n\n",
      num_objects, num_sets, static_cast<unsigned long long>(num_keys),
      latency_us, io_threads, bench::QuickMode() ? " [QUICK MODE]" : "");

  bench::JsonReport report("prefetch");
  bool ok = true;

  auto print_leg = [&](const char* name, const Leg& leg, double gate) {
    std::printf(
        "  %-22s off=%8.2f ms  on=%8.2f ms  speedup=%5.2fx (gate %.1fx)  "
        "pages=%llu/%llu  rows %s\n",
        name, leg.off_ms, leg.on_ms, leg.speedup(), gate,
        static_cast<unsigned long long>(leg.pages_on),
        static_cast<unsigned long long>(leg.pages_off),
        leg.identical ? "identical" : "DIVERGED");
    const uint64_t issued =
        leg.delta_on.prefetch_issued.load(std::memory_order_relaxed);
    const uint64_t hits =
        leg.delta_on.prefetch_hits.load(std::memory_order_relaxed);
    const uint64_t wasted =
        leg.delta_on.prefetch_wasted.load(std::memory_order_relaxed);
    std::printf(
        "  %-22s prefetch_issued=%llu prefetch_hits=%llu "
        "prefetch_wasted=%llu\n",
        "", static_cast<unsigned long long>(issued),
        static_cast<unsigned long long>(hits),
        static_cast<unsigned long long>(wasted));
    report.Add(std::string(name) + "/prefetch=on", leg.on_ms * 1e6,
               leg.delta_on);
    report.Add(std::string(name) + "/prefetch=off", leg.off_ms * 1e6,
               leg.delta_off);
    if (!leg.identical) {
      std::fprintf(stderr, "FAIL: %s diverged with prefetch on vs off\n",
                   name);
      ok = false;
    }
    if (gate > 0 && leg.speedup() < gate) {
      std::fprintf(stderr, "FAIL: %s speedup %.2fx below the %.1fx gate\n",
                   name, leg.speedup(), gate);
      ok = false;
    }
  };

  // Leg 1: leaf-chain readahead under the full forward sweep.
  {
    Result<Leg> leg = run_leg(
        sweep, [&](const Query& q) { return index.ForwardScan(q); });
    if (!leg.ok()) {
      std::fprintf(stderr, "forward-scan leg: %s\n",
                   leg.status().ToString().c_str());
      return 1;
    }
    print_leg("forward-scan", leg.value(), 2.0);
  }

  // Leg 2: child-subtree prefetch under the serial multi-interval Parscan.
  {
    Result<Leg> leg =
        run_leg(multi, [&](const Query& q) { return index.Parscan(q); });
    if (!leg.ok()) {
      std::fprintf(stderr, "parscan leg: %s\n",
                   leg.status().ToString().c_str());
      return 1;
    }
    print_leg("parscan-multi", leg.value(), 1.5);
  }

  // Leg 3 (informational, no gate): prefetch composed with the parallel
  // Parscan — workers share the dedup'd background reads, and the steal
  // rule keeps a saturated pool from ever deadlocking a demand fetch.
  {
    exec::ThreadPool workers(4);
    Result<Leg> leg = run_leg(multi, [&](const Query& q) {
      return exec::ParallelParscan(index, q, &workers);
    });
    if (!leg.ok()) {
      std::fprintf(stderr, "parallel leg: %s\n",
                   leg.status().ToString().c_str());
      return 1;
    }
    print_leg("parscan-parallel-4", leg.value(), 0);
  }

  buffers.SetPrefetcher(nullptr);
  prefetcher.Drain();
  report.Write();
  if (!ok) return 1;
  std::printf(
      "\nAll gates passed: identical rows and pages_read, background I/O "
      "only moved wall-clock time.\n");
  return 0;
}

}  // namespace
}  // namespace uindex

int main() { return uindex::Run(); }
