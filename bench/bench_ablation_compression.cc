// Ablation: front compression on vs off (paper §4.2 "Storage Cost"). The
// U-index's long encoded keys are only viable because of front
// compression; this bench quantifies the storage and page-read difference
// on a class-hierarchy workload and on a 3-class path workload.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/uindex.h"
#include "workload/database_generator.h"
#include "workload/query_generator.h"

namespace uindex {
namespace bench {
namespace {

struct BuildResult {
  uint64_t pages = 0;
  uint64_t leaf_nodes = 0;
  double exact_reads = 0;
  double range_reads = 0;
};

Result<BuildResult> BuildAndMeasure(const SetHierarchy& hier,
                                    const std::vector<Posting>& postings,
                                    const SetWorkloadConfig& cfg,
                                    bool compression) {
  Pager pager(cfg.page_size);
  BufferManager buffers(&pager);
  BTreeOptions options;
  options.prefix_compression = compression;
  UIndexSetAdapter adapter(&buffers, &hier, options);
  for (const Posting& p : postings) {
    UINDEX_RETURN_IF_ERROR(adapter.Insert(Value::Int(p.key),
                                          hier.sets[p.set_index], p.oid));
  }
  BuildResult out;
  out.pages = pager.live_page_count();
  out.leaf_nodes =
      std::move(adapter.index().btree().ComputeStats()).value().leaf_nodes;

  Random rng(99);
  const int reps = ExperimentReps();
  uint64_t exact_total = 0, range_total = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const SetQuerySpec eq = MakeExactMatchQuery(cfg, 4, true, rng);
    std::vector<ClassId> classes;
    for (size_t i : eq.set_indexes) classes.push_back(hier.sets[i]);
    QueryCost cost(&buffers);
    UINDEX_RETURN_IF_ERROR(
        adapter.Search(Value::Int(eq.lo), Value::Int(eq.hi), classes)
            .status());
    exact_total += cost.PagesRead();

    const SetQuerySpec rq = MakeRangeQuery(cfg, 0.02, 4, true, rng);
    classes.clear();
    for (size_t i : rq.set_indexes) classes.push_back(hier.sets[i]);
    QueryCost range_cost(&buffers);
    UINDEX_RETURN_IF_ERROR(
        adapter.Search(Value::Int(rq.lo), Value::Int(rq.hi), classes)
            .status());
    range_total += range_cost.PagesRead();
  }
  out.exact_reads = static_cast<double>(exact_total) / reps;
  out.range_reads = static_cast<double>(range_total) / reps;
  return out;
}

int Run() {
  SetWorkloadConfig cfg;
  cfg.num_objects = QuickMode() ? 20000 : 60000;
  cfg.num_sets = 40;
  cfg.num_distinct_keys = 1000;

  const SetHierarchy hier = std::move(BuildSetHierarchy(cfg.num_sets)).value();
  const std::vector<Posting> postings = GeneratePostings(cfg);

  std::printf("Front-compression ablation: %u postings, 40 sets, 1000 keys\n\n",
              cfg.num_objects);
  std::printf("%-16s %12s %12s %14s %14s\n", "compression", "pages",
              "leaf nodes", "exact reads", "range2% reads");
  JsonReport report("ablation_compression");
  for (const bool compression : {true, false}) {
    Result<BuildResult> r =
        BuildAndMeasure(hier, postings, cfg, compression);
    if (!r.ok()) {
      std::fprintf(stderr, "run: %s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("%-16s %12llu %12llu %14.1f %14.1f\n",
                compression ? "on (paper)" : "off",
                static_cast<unsigned long long>(r.value().pages),
                static_cast<unsigned long long>(r.value().leaf_nodes),
                r.value().exact_reads, r.value().range_reads);
    const std::string base = compression ? "compression=on" : "compression=off";
    report.AddPages(base + "/build_pages",
                    static_cast<double>(r.value().pages));
    report.AddPages(base + "/exact_reads", r.value().exact_reads);
    report.AddPages(base + "/range2%_reads", r.value().range_reads);
  }
  report.Write();
  std::printf(
      "\nExpected: compression shrinks the tree (higher fanout) and with it\n"
      "every page-read figure — the effect §4.2 credits for making the\n"
      "U-index's long encoded keys affordable.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace uindex

int main() { return uindex::bench::Run(); }
