// Scatter-gather shard-router benchmark (src/net/router.h): one logical
// fig5 database partitioned by class-code range across N in-process
// uindex servers (each a full replica fenced to its served range), driven
// through the Router. Three phases:
//
//   A. Correctness + cost accounting, per topology N in {1, 2, 4}:
//      every routed query must return byte-identical rows (and counts) to
//      the single-node baseline. Single-shard-routable queries must cost
//      exactly the baseline's aggregate pages_read; scattered queries
//      must cost exactly the sum of the per-range partitioned baseline
//      (the scatter layer itself reads zero extra pages — the replica
//      descent overhead vs one node is reported, not hidden).
//
//   B. Throughput scaling: each shard models one I/O-bound process
//      (1 query worker, simulated per-page read latency), so on any core
//      count the topology's capacity is the number of shards sleeping in
//      parallel. Gates: >= 1.7x QPS at 2 shards, >= 3x at 4, vs the same
//      1-worker single node (UINDEX_BENCH_NO_TIMING_GATES=1 waives the
//      ratios but never the row checks).
//
//   C. Split/rebalance under load: while clients stream queries through a
//      2-shard router, the map file is rewritten with a moved class-code
//      boundary (v2) and installed on the live servers. The router must
//      absorb the move through the stale-rejection fence — zero failed
//      queries, all rows still byte-identical, and at least one recorded
//      stale retry proving the fence actually fired.
//
// Reports to stdout and shard.json in every artifact directory
// (bench_common.h WriteArtifact; CI uploads it as BENCH_shard.json).

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "db/database.h"
#include "net/router.h"
#include "net/server.h"
#include "net/shard_map.h"
#include "util/random.h"

namespace uindex {
namespace {

constexpr uint32_t kSubclasses = 8;
constexpr int64_t kKeys = 1000;
// Phase B/C load generators. Enough that the deepest topology (4 shards)
// keeps several queries queued per shard — random key choice makes the
// offered load uneven, and a shallow queue would let shards idle and
// understate the scaling.
constexpr int kClients = 16;
// Phase B's simulated per-page read latency. Deliberately device-scale
// (1ms, a loaded disk): the phase models I/O-bound shards, and the sleep
// must dominate per-query CPU even on a single-core host or the scaling
// gate would measure the scheduler instead of the topology.
constexpr uint32_t kSimLatencyUs = 1000;

struct Expected {
  std::vector<Oid> oids;
  uint64_t count = 0;
};

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// The fig5 shape every replica is built to: one root, kSubclasses leaves,
// a class-hierarchy index on an int key, deterministic key assignment —
// so all replicas (and the baseline) are identical databases.
Status BuildReplica(Database* db, uint32_t num_objects,
                    std::vector<ClassId>* subs_out) {
  Result<ClassId> root = db->CreateClass("Item");
  if (!root.ok()) return root.status();
  std::vector<ClassId> subs;
  for (uint32_t i = 0; i < kSubclasses; ++i) {
    Result<ClassId> sub =
        db->CreateSubclass("Item" + std::to_string(i), root.value());
    if (!sub.ok()) return sub.status();
    subs.push_back(sub.value());
  }
  UINDEX_RETURN_IF_ERROR(
      db->CreateIndex(
            PathSpec::ClassHierarchy(root.value(), "Key", Value::Kind::kInt))
          .status());
  Random rng(0x5AAD);
  for (uint32_t i = 0; i < num_objects; ++i) {
    Result<Oid> oid = db->CreateObject(subs[i % subs.size()]);
    if (!oid.ok()) return oid.status();
    UINDEX_RETURN_IF_ERROR(
        db->SetAttr(oid.value(), "Key",
                    Value::Int(static_cast<int64_t>(rng.Uniform(kKeys)))));
  }
  if (subs_out != nullptr) *subs_out = std::move(subs);
  return Status::OK();
}

// The shard map for N shards over the subclass axis: shard k owns the
// code range starting at subclass k*kSubclasses/N (shard 0 from "", so
// the root and everything below the first boundary is covered too).
net::ShardMap MakeMap(const Database& coder_db,
                      const std::vector<ClassId>& subs,
                      const std::vector<uint16_t>& ports, uint64_t version,
                      size_t split_numerator = 0) {
  net::ShardMap map;
  map.version = version;
  const size_t n = ports.size();
  for (size_t k = 0; k < n; ++k) {
    net::ShardMap::Entry e;
    size_t cut = k * kSubclasses / n;
    if (k == 1 && split_numerator != 0) cut = split_numerator;  // Phase C v2.
    e.lo = k == 0 ? "" : coder_db.coder().CodeOf(subs[cut]);
    e.host = "127.0.0.1";
    e.port = ports[k];
    map.entries.push_back(std::move(e));
  }
  return map;
}

// One running topology: N servers over the replica pool + a router.
struct Topology {
  std::vector<std::unique_ptr<net::Server>> servers;
  std::unique_ptr<net::Router> router;
  net::ShardMap map;
};

Result<Topology> StartTopology(std::vector<std::unique_ptr<Database>>& pool,
                               const std::vector<ClassId>& subs,
                               const Database* planner, size_t n,
                               uint64_t version, size_t worker_threads,
                               const std::string& map_path = "") {
  Topology topo;
  std::vector<uint16_t> ports;
  for (size_t k = 0; k < n; ++k) {
    net::ServerOptions so;
    so.worker_threads = worker_threads;
    so.max_inflight_queries = worker_threads;
    so.max_queued_queries = 256;
    Result<std::unique_ptr<net::Server>> s =
        net::Server::Start(pool[k].get(), so);
    if (!s.ok()) return s.status();
    ports.push_back(s.value()->port());
    topo.servers.push_back(std::move(s).value());
  }
  topo.map = MakeMap(*planner, subs, ports, version);
  for (size_t k = 0; k < n; ++k) {
    UINDEX_RETURN_IF_ERROR(
        topo.servers[k]->InstallShard(topo.map, static_cast<uint32_t>(k)));
  }
  net::RouterOptions ro;
  ro.map_path = map_path;
  Result<std::unique_ptr<net::Router>> router =
      net::Router::Create(topo.map, planner, ro);
  if (!router.ok()) return router.status();
  topo.router = std::move(router).value();
  return topo;
}

// Aggregate pages_read delta across a set of databases for one bracket of
// work: fresh epoch on each, run, sum the per-manager deltas.
class PagesBracket {
 public:
  explicit PagesBracket(const std::vector<Database*>& dbs) : dbs_(dbs) {
    for (Database* db : dbs_) {
      db->buffers().BeginQuery();
      base_.push_back(
          db->buffers().stats().pages_read.load(std::memory_order_relaxed));
    }
  }
  uint64_t Sum() const {
    uint64_t sum = 0;
    for (size_t i = 0; i < dbs_.size(); ++i) {
      sum += dbs_[i]->buffers().stats().pages_read.load(
                 std::memory_order_relaxed) -
             base_[i];
    }
    return sum;
  }

 private:
  std::vector<Database*> dbs_;
  std::vector<uint64_t> base_;
};

int Fail(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  return 1;
}

int Run() {
  // Seven identical replicas get built serially (5 shard pool + baseline
  // + planner), and per-object DML cost grows with database size — 40k
  // keeps the full-scale build inside a couple of minutes while still
  // doubling the quick-mode working set.
  const uint32_t num_objects = bench::QuickMode() ? 20000u : 40000u;
  const int scale_queries = bench::QuickMode() ? 400 : 1600;
  const int rebalance_queries = bench::QuickMode() ? 1200 : 4000;
  const bool no_timing_gates =
      std::getenv("UINDEX_BENCH_NO_TIMING_GATES") != nullptr;

  std::printf("bench_shard: fig5 mixes over sharded topologies, %u objects "
              "per replica%s\n\n",
              num_objects, bench::QuickMode() ? " (quick mode)" : "");

  // Replica pool (the 4-shard topology's worth), plus the single-node
  // baseline and the router's planning replica — all identical builds.
  DatabaseOptions dbo;
  dbo.prefetch_threads = 0;
  std::vector<std::unique_ptr<Database>> pool;
  std::vector<ClassId> subs;
  for (int i = 0; i < 4; ++i) {
    pool.push_back(std::make_unique<Database>(dbo));
    if (Status s = BuildReplica(pool.back().get(), num_objects,
                                i == 0 ? &subs : nullptr);
        !s.ok()) {
      return Fail("replica build: %s\n", s.ToString().c_str());
    }
  }
  Database baseline(dbo), planner(dbo);
  if (!BuildReplica(&baseline, num_objects, nullptr).ok() ||
      !BuildReplica(&planner, num_objects, nullptr).ok()) {
    return Fail("baseline build failed\n");
  }

  // Query mixes. "exact" queries name classes shard 0 owns in every
  // topology (single-shard-routable); "scatter" queries span the root.
  Random qrng(0xC0DE);
  std::vector<std::string> mix_exact, mix_scatter;
  for (int q = 0; q < 60; ++q) {
    mix_exact.push_back("SELECT i FROM Item" + std::to_string(q % 2) +
                        " i WHERE i.Key = " +
                        std::to_string(qrng.Uniform(kKeys)));
  }
  for (int q = 0; q < 30; ++q) {
    mix_scatter.push_back("SELECT i FROM Item* i WHERE i.Key = " +
                          std::to_string(qrng.Uniform(kKeys)));
  }
  for (int q = 0; q < 20; ++q) {
    const int64_t lo = static_cast<int64_t>(qrng.Uniform(kKeys - 6));
    mix_scatter.push_back("SELECT i FROM Item* i WHERE i.Key BETWEEN " +
                          std::to_string(lo) + " AND " +
                          std::to_string(lo + 5));
  }
  for (int q = 0; q < 10; ++q) {
    mix_scatter.push_back("SELECT COUNT(i) FROM Item* i WHERE i.Key = " +
                          std::to_string(qrng.Uniform(kKeys)));
  }

  // Ground truth for every query in every mix, from the baseline.
  std::map<std::string, Expected> expected;
  auto learn = [&](const std::vector<std::string>& mix) -> Status {
    for (const std::string& q : mix) {
      if (expected.count(q) != 0) continue;
      Result<Database::OqlResult> r = baseline.ExecuteOql(q);
      if (!r.ok()) return r.status();
      expected[q] = {std::move(r.value().oids), r.value().count};
    }
    return Status::OK();
  };
  if (Status s = learn(mix_exact); !s.ok()) {
    return Fail("baseline: %s\n", s.ToString().c_str());
  }
  if (Status s = learn(mix_scatter); !s.ok()) {
    return Fail("baseline: %s\n", s.ToString().c_str());
  }

  bench::JsonReport report("shard");
  std::string gate_log;

  // --- Phase A: correctness + page accounting per topology -------------
  std::printf("  phase A: byte-identical rows and exact page accounting\n");
  for (const size_t n : {1u, 2u, 4u}) {
    Result<Topology> topo =
        StartTopology(pool, subs, &planner, n, /*version=*/n,
                      /*worker_threads=*/2);
    if (!topo.ok()) {
      return Fail("topology %zu: %s\n", n, topo.status().ToString().c_str());
    }
    std::vector<Database*> shard_dbs;
    for (size_t k = 0; k < n; ++k) shard_dbs.push_back(pool[k].get());

    auto run_mix = [&](const std::vector<std::string>& mix,
                       const char* label) -> Result<uint64_t> {
      PagesBracket bracket(shard_dbs);
      for (const std::string& q : mix) {
        Result<net::Router::QueryOutcome> r = topo.value().router->Query(q);
        if (!r.ok()) return r.status();
        const Expected& want = expected[q];
        if (r.value().oids != want.oids || r.value().count != want.count) {
          return Status::Corruption("rows differ from baseline (" +
                                    std::string(label) + "): " + q);
        }
      }
      return bracket.Sum();
    };

    // Single-shard-routable queries: exact page parity with one node.
    PagesBracket base_exact({&baseline});
    for (const std::string& q : mix_exact) (void)baseline.ExecuteOql(q);
    const uint64_t baseline_exact_pages = base_exact.Sum();
    Result<uint64_t> routed_exact = run_mix(mix_exact, "exact");
    if (!routed_exact.ok()) {
      return Fail("phase A exact, %zu shards: %s\n", n,
                  routed_exact.status().ToString().c_str());
    }
    if (routed_exact.value() != baseline_exact_pages) {
      return Fail("FAIL: exact mix pages: %zu shards read %llu, baseline "
                  "%llu\n",
                  n,
                  static_cast<unsigned long long>(routed_exact.value()),
                  static_cast<unsigned long long>(baseline_exact_pages));
    }

    // Scattered queries: exact parity with the partitioned baseline (the
    // same served ranges executed serially on one replica).
    PagesBracket base_scatter({&baseline});
    for (const std::string& q : mix_scatter) (void)baseline.ExecuteOql(q);
    const uint64_t baseline_scatter_pages = base_scatter.Sum();
    uint64_t partitioned_pages = 0;
    for (size_t k = 0; k < n; ++k) {
      planner.SetServedRange({topo.value().map.entries[k].lo,
                              topo.value().map.HiOf(k),
                              topo.value().map.version});
      PagesBracket part({&planner});
      for (const std::string& q : mix_scatter) {
        Result<Database::OqlResult> r = planner.ExecuteOql(q);
        if (!r.ok()) {
          return Fail("partitioned baseline: %s\n",
                      r.status().ToString().c_str());
        }
      }
      partitioned_pages += part.Sum();
    }
    planner.SetServedRange({"", "", /*version=*/n});  // Back to full range.
    Result<uint64_t> routed_scatter = run_mix(mix_scatter, "scatter");
    if (!routed_scatter.ok()) {
      return Fail("phase A scatter, %zu shards: %s\n", n,
                  routed_scatter.status().ToString().c_str());
    }
    if (routed_scatter.value() != partitioned_pages) {
      return Fail("FAIL: scatter mix pages: %zu shards read %llu, "
                  "partitioned baseline %llu\n",
                  n,
                  static_cast<unsigned long long>(routed_scatter.value()),
                  static_cast<unsigned long long>(partitioned_pages));
    }
    const double amplification =
        baseline_scatter_pages == 0
            ? 1.0
            : static_cast<double>(routed_scatter.value()) /
                  static_cast<double>(baseline_scatter_pages);
    std::printf("    %zu shard(s): rows identical; exact-mix pages %llu == "
                "baseline; scatter-mix pages %llu == partitioned "
                "(%.2fx one-node)\n",
                n, static_cast<unsigned long long>(routed_exact.value()),
                static_cast<unsigned long long>(routed_scatter.value()),
                amplification);
    const std::string base = "A/shards=" + std::to_string(n);
    report.AddScalar(base + "/exact_pages", "pages",
                     static_cast<double>(routed_exact.value()));
    report.AddScalar(base + "/scatter_pages", "pages",
                     static_cast<double>(routed_scatter.value()));
    report.AddScalar(base + "/scatter_amplification", "ratio",
                     amplification);
    for (auto& server : topo.value().servers) server->Shutdown();
  }

  // --- Phase B: QPS scaling with I/O-bound shards ----------------------
  std::printf("\n  phase B: QPS scaling, 1-worker shards, %uus simulated "
              "page latency, %d clients\n",
              kSimLatencyUs, kClients);
  std::vector<std::string> load;
  Random lrng(0xFA57);
  for (int q = 0; q < scale_queries; ++q) {
    load.push_back("SELECT i FROM Item" +
                   std::to_string(lrng.Uniform(kSubclasses)) +
                   " i WHERE i.Key = " +
                   std::to_string(lrng.Uniform(kKeys)));
  }
  if (Status s = learn(load); !s.ok()) {
    return Fail("baseline: %s\n", s.ToString().c_str());
  }
  // A tight bounded LRU (far smaller than the index) plus the simulated
  // latency makes every descent actually pay for its pages, as a
  // larger-than-RAM shard would.
  for (auto& db : pool) {
    db->buffers().SetCapacity(16);
    db->buffers().SetSimulatedReadLatency(kSimLatencyUs);
  }
  // One timed drive of an n-shard topology; returns wall milliseconds and
  // merges per-query latencies into `lat`.
  auto drive = [&](size_t n, bench::LatencyRecorder* lat) -> Result<double> {
    Result<Topology> topo =
        StartTopology(pool, subs, &planner, n, /*version=*/10 + n,
                      /*worker_threads=*/1);
    if (!topo.ok()) return topo.status();
    net::Router* router = topo.value().router.get();
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    std::vector<bench::LatencyRecorder> lats(kClients);
    const auto start = std::chrono::steady_clock::now();
    for (int t = 0; t < kClients; ++t) {
      threads.emplace_back([&, t] {
        const size_t per = (load.size() + kClients - 1) / kClients;
        const size_t lo = t * per;
        const size_t hi = std::min(load.size(), lo + per);
        for (size_t q = lo; q < hi; ++q) {
          const auto sent = std::chrono::steady_clock::now();
          Result<net::Router::QueryOutcome> r = router->Query(load[q]);
          if (!r.ok() || r.value().oids != expected[load[q]].oids) {
            failures.fetch_add(1);
            return;
          }
          lats[t].Record(MillisSince(sent) * 1000.0);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    const double wall_ms = MillisSince(start);
    for (const bench::LatencyRecorder& l : lats) lat->Merge(l);
    for (auto& server : topo.value().servers) server->Shutdown();
    if (failures.load() != 0) {
      return Status::Unavailable(std::to_string(failures.load()) +
                                 " client failures");
    }
    return wall_ms;
  };
  std::map<size_t, double> qps_by_n;
  for (const size_t n : {1u, 2u, 4u}) {
    // Best of two runs: one scheduler hiccup on a loaded CI box must not
    // masquerade as a scaling regression.
    double wall_ms = 0;
    bench::LatencyRecorder lat;
    for (int attempt = 0; attempt < 2; ++attempt) {
      bench::LatencyRecorder attempt_lat;
      Result<double> run = drive(n, &attempt_lat);
      if (!run.ok()) {
        return Fail("FAIL: phase B, %zu shards: %s\n", n,
                    run.status().ToString().c_str());
      }
      if (attempt == 0 || run.value() < wall_ms) {
        wall_ms = run.value();
        lat = attempt_lat;
      }
    }
    const double qps = load.size() / (wall_ms / 1000.0);
    qps_by_n[n] = qps;
    std::printf("    %zu shard(s): %7.0f QPS  (%.1f ms, %zu queries, "
                "best of 2; p50 %.0f us, p99 %.0f us, p999 %.0f us)\n",
                n, qps, wall_ms, load.size(), lat.PercentileUs(50),
                lat.PercentileUs(99), lat.PercentileUs(99.9));
    const std::string base = "B/shards=" + std::to_string(n);
    report.AddScalar(base + "/qps", "qps", qps);
    report.AddScalar(base + "/p50_us", "us", lat.PercentileUs(50));
    report.AddScalar(base + "/p99_us", "us", lat.PercentileUs(99));
    report.AddScalar(base + "/p999_us", "us", lat.PercentileUs(99.9));
  }
  for (auto& db : pool) db->buffers().SetSimulatedReadLatency(0);
  const double speedup2 = qps_by_n[2] / qps_by_n[1];
  const double speedup4 = qps_by_n[4] / qps_by_n[1];
  report.AddScalar("B/speedup_2", "ratio", speedup2);
  report.AddScalar("B/speedup_4", "ratio", speedup4);
  std::printf("    speedup: %.2fx @2 (gate >= 1.7), %.2fx @4 (gate >= 3)%s\n",
              speedup2, speedup4,
              no_timing_gates ? "  [timing gates waived]" : "");
  if (!no_timing_gates && (speedup2 < 1.7 || speedup4 < 3.0)) {
    return Fail("FAIL: QPS scaling below gate: %.2fx @2, %.2fx @4\n",
                speedup2, speedup4);
  }

  // --- Phase C: class-code split/rebalance under live load -------------
  std::printf("\n  phase C: boundary split v1 -> v2 under load, 2 shards\n");
  const std::filesystem::path map_file =
      std::filesystem::temp_directory_path() /
      ("uindex_bench_shard_" + std::to_string(::getpid()) + ".map");
  Result<Topology> topo =
      StartTopology(pool, subs, &planner, 2, /*version=*/21,
                    /*worker_threads=*/2, map_file.string());
  if (!topo.ok()) {
    return Fail("topology: %s\n", topo.status().ToString().c_str());
  }
  if (Status s = topo.value().map.Save(map_file.string()); !s.ok()) {
    return Fail("map save: %s\n", s.ToString().c_str());
  }
  std::vector<std::string> cload;
  Random crng(0x5EED);
  for (int q = 0; q < rebalance_queries; ++q) {
    cload.push_back(q % 4 == 0
                        ? "SELECT i FROM Item* i WHERE i.Key = " +
                              std::to_string(crng.Uniform(kKeys))
                        : "SELECT i FROM Item" +
                              std::to_string(crng.Uniform(kSubclasses)) +
                              " i WHERE i.Key = " +
                              std::to_string(crng.Uniform(kKeys)));
  }
  if (Status s = learn(cload); !s.ok()) {
    return Fail("baseline: %s\n", s.ToString().c_str());
  }
  std::atomic<int> c_failures{0};
  std::atomic<size_t> c_done{0};
  std::vector<std::thread> c_threads;
  constexpr int kLoaders = 4;
  for (int t = 0; t < kLoaders; ++t) {
    c_threads.emplace_back([&, t] {
      const size_t per = (cload.size() + kLoaders - 1) / kLoaders;
      const size_t lo = t * per;
      const size_t hi = std::min(cload.size(), lo + per);
      for (size_t q = lo; q < hi; ++q) {
        Result<net::Router::QueryOutcome> r =
            topo.value().router->Query(cload[q]);
        if (!r.ok() || r.value().oids != expected[cload[q]].oids) {
          if (!r.ok()) {
            std::fprintf(stderr, "phase C query failed: %s\n",
                         r.status().ToString().c_str());
          }
          c_failures.fetch_add(1);
          return;
        }
        c_done.fetch_add(1);
      }
    });
  }
  // Move the boundary (split point subclass 4 -> 2) once the load is
  // genuinely in flight: file first, then the live servers — the order a
  // real rollout uses so a stale-rejected router can always refresh.
  while (c_done.load() < cload.size() / 4) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::vector<uint16_t> ports;
  for (auto& e : topo.value().map.entries) ports.push_back(e.port);
  const net::ShardMap v2 =
      MakeMap(planner, subs, ports, /*version=*/22, /*split_numerator=*/2);
  if (Status s = v2.Save(map_file.string()); !s.ok()) {
    return Fail("v2 save: %s\n", s.ToString().c_str());
  }
  for (size_t k = 0; k < topo.value().servers.size(); ++k) {
    if (Status s = topo.value().servers[k]->InstallShard(
            v2, static_cast<uint32_t>(k));
        !s.ok()) {
      return Fail("v2 install: %s\n", s.ToString().c_str());
    }
  }
  for (std::thread& t : c_threads) t.join();
  const uint64_t stale_retries =
      topo.value().router->counters().stale_retries.load();
  for (auto& server : topo.value().servers) server->Shutdown();
  std::error_code ec;
  std::filesystem::remove(map_file, ec);
  if (c_failures.load() != 0) {
    return Fail("FAIL: phase C: %d failures during rebalance\n",
                c_failures.load());
  }
  if (stale_retries == 0) {
    return Fail("FAIL: phase C: rebalance never hit the stale fence\n");
  }
  std::printf("    %zu queries, 0 failures, rows identical, %llu stale "
              "retries through the fence\n",
              cload.size(), static_cast<unsigned long long>(stale_retries));
  report.AddScalar("C/stale_retries", "count",
                   static_cast<double>(stale_retries));
  report.AddScalar("C/failures", "count", 0.0);

  report.Write();
  return 0;
}

}  // namespace
}  // namespace uindex

int main() { return uindex::Run(); }
