// Ablation: buffer-pool sensitivity. The paper counts page reads with
// unlimited per-query memory ("utilizing any page which is already in
// memory", §3.3); a deployed system runs a bounded, persistent buffer pool.
// This bench replays the same mixed query stream against U-index and
// CG-tree under LRU pools of increasing size and reports reads (≈ I/Os)
// per query — showing how the paper's conclusions carry to steady state.

#include <cstdio>

#include "bench/bench_common.h"

namespace uindex {
namespace bench {
namespace {

int Run() {
  SetExperiment::Options opts;
  opts.workload.num_objects = QuickMode() ? 20000 : 60000;
  opts.workload.num_sets = 40;
  opts.workload.num_distinct_keys = 1000;

  std::printf("Buffer-pool ablation: %u objects, 40 sets, 1000 keys, mixed "
              "query stream (exact m=4 / range 2%% m=4), reps=%d\n\n",
              opts.workload.num_objects, ExperimentReps());

  Result<std::unique_ptr<SetExperiment>> exp = SetExperiment::Create(opts);
  if (!exp.ok()) {
    std::fprintf(stderr, "setup: %s\n", exp.status().ToString().c_str());
    return 1;
  }
  auto structures = exp.value()->structures();
  JsonReport report("ablation_cache");

  const size_t capacities[] = {16, 64, 256, 1024, 0};  // 0 = paper model.
  std::printf("%-18s", "pool (pages)");
  for (const auto& s : structures) {
    std::printf(" %12s-ex %12s-rg", s.name.c_str(), s.name.c_str());
  }
  std::printf("\n");

  for (const size_t capacity : capacities) {
    if (capacity == 0) {
      std::printf("%-18s", "unbounded (paper)");
    } else {
      char label[32];
      std::snprintf(label, sizeof(label), "%zu", capacity);
      std::printf("%-18s", label);
    }
    for (const auto& s : structures) {
      s.buffers->SetCapacity(capacity);
      // Warm the pool with one pass of *different* queries, then measure a
      // fresh stream (steady state, not a replay).
      for (int pass = 0; pass < 2; ++pass) {
        Result<double> exact = exp.value()->Measure(
            s, 4, true, -1.0, ExperimentReps(),
            11 + static_cast<uint64_t>(pass) * 101);
        Result<double> range = exp.value()->Measure(
            s, 4, true, 0.02, ExperimentReps(),
            12 + static_cast<uint64_t>(pass) * 101);
        if (!exact.ok() || !range.ok()) {
          std::fprintf(stderr, "measure failed\n");
          return 1;
        }
        if (pass == 1) {
          std::printf(" %15.1f %15.1f", exact.value(), range.value());
          const std::string base =
              (capacity == 0 ? std::string("pool=unbounded")
                             : "pool=" + std::to_string(capacity)) +
              "/" + s.name;
          report.AddPages(base + "/exact", exact.value());
          report.AddPages(base + "/range2%", range.value());
        }
      }
      s.buffers->SetCapacity(0);  // Restore for the next row's fairness.
    }
    std::printf("\n");
  }
  report.Write();
  std::printf(
      "\nExpected: reads fall as the pool grows (upper levels pin); the\n"
      "relative ordering of the structures is capacity-stable, so the\n"
      "paper's unbounded-memory conclusions carry over to bounded pools.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace uindex

int main() { return uindex::bench::Run(); }
