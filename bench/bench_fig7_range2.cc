// Reproduces Figure 7 of the paper: range queries spanning 2% of the
// keyspace, U-index vs CG-tree, over 40-set and 8-set hierarchies with
// unique / 100 / 1000 distinct keys.

#include "bench/bench_common.h"

int main() {
  return uindex::bench::RunFigure(
      "Figure 7: Range Queries (2% of keyspace)", "fig7_range2",
      /*fraction=*/0.02, /*key_counts=*/{0, 100, 1000});
}
