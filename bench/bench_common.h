#ifndef UINDEX_BENCH_BENCH_COMMON_H_
#define UINDEX_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "workload/experiment.h"

namespace uindex {
namespace bench {

/// True when the benches run in quick mode (smaller databases, fewer
/// repetitions) — set UINDEX_BENCH_QUICK=1. Full mode reproduces the
/// paper's parameters exactly.
inline bool QuickMode() {
  const char* env = std::getenv("UINDEX_BENCH_QUICK");
  return env != nullptr && env[0] == '1';
}

inline uint32_t ExperimentObjects() {
  return QuickMode() ? 30000u : 150000u;  // Paper: 150,000 objects.
}

inline int ExperimentReps() {
  return QuickMode() ? 25 : 100;  // Paper: averages over 100 repetitions.
}

/// The x-axis of the paper's figures: sets queried out of `total`.
inline std::vector<size_t> SetsQueriedAxis(uint32_t total) {
  if (total >= 40) return {1, 10, 20, 30, 40};
  return {1, 2, 4, 6, 8};
}

inline const char* KeysLabel(const SetWorkloadConfig& cfg) {
  if (cfg.unique_keys()) return "unique keys";
  static thread_local char buf[64];
  std::snprintf(buf, sizeof(buf), "%llu different keys",
                static_cast<unsigned long long>(cfg.num_distinct_keys));
  return buf;
}

/// Runs one figure panel: measures U-index (near and non-near sets) and
/// CG-tree page reads across the sets-queried axis and prints a table row
/// per x value. `fraction < 0` means exact match.
inline Status RunPanel(SetExperiment& exp, double fraction, uint64_t seed) {
  const SetWorkloadConfig& cfg = exp.config();
  std::printf("    %-6s  %14s  %18s  %10s\n", "sets", "U-index(near)",
              "U-index(non-near)", "CG-tree");
  auto structures = exp.structures();
  const SetExperiment::Structure& uindex = structures[0];
  const SetExperiment::Structure& cgtree = structures[1];
  const int reps = ExperimentReps();
  for (const size_t m : SetsQueriedAxis(cfg.num_sets)) {
    Result<double> u_near = exp.Measure(uindex, m, true, fraction, reps,
                                        seed);
    if (!u_near.ok()) return u_near.status();
    Result<double> u_far = exp.Measure(uindex, m, false, fraction, reps,
                                       seed + 1);
    if (!u_far.ok()) return u_far.status();
    // The CG-tree is insensitive to set adjacency (paper §5.1): measure on
    // the same randomly chosen sets as the near series.
    Result<double> cg = exp.Measure(cgtree, m, true, fraction, reps, seed);
    if (!cg.ok()) return cg.status();
    std::printf("    %-6zu  %14.1f  %18.1f  %10.1f\n", m, u_near.value(),
                u_far.value(), cg.value());
  }
  return Status::OK();
}

/// Builds the experiment for one (num_sets, num_keys) panel.
inline Result<std::unique_ptr<SetExperiment>> MakePanel(
    uint32_t num_sets, uint64_t num_distinct_keys) {
  SetExperiment::Options opts;
  opts.workload.num_objects = ExperimentObjects();
  opts.workload.num_sets = num_sets;
  opts.workload.num_distinct_keys =
      num_distinct_keys == 0 ? opts.workload.num_objects
                             : num_distinct_keys;
  return SetExperiment::Create(opts);
}

/// Runs a whole figure: panels over {40, 8} sets x key counts, one
/// fraction. `key_counts` uses 0 for "unique".
inline int RunFigure(const char* title, double fraction,
                     const std::vector<uint64_t>& key_counts) {
  std::printf("%s\n", title);
  std::printf("objects=%u, page=1024B, reps=%d%s\n\n", ExperimentObjects(),
              ExperimentReps(),
              QuickMode() ? " [QUICK MODE - set UINDEX_BENCH_QUICK=0 for "
                            "paper-scale]"
                          : "");
  for (const uint32_t num_sets : {40u, 8u}) {
    for (const uint64_t keys : key_counts) {
      Result<std::unique_ptr<SetExperiment>> exp = MakePanel(num_sets, keys);
      if (!exp.ok()) {
        std::fprintf(stderr, "panel setup failed: %s\n",
                     exp.status().ToString().c_str());
        return 1;
      }
      std::printf("  -- %u sets, %s --\n", num_sets,
                  KeysLabel(exp.value()->config()));
      Status s = RunPanel(*exp.value(), fraction,
                          /*seed=*/num_sets * 1000 + keys);
      if (!s.ok()) {
        std::fprintf(stderr, "panel failed: %s\n", s.ToString().c_str());
        return 1;
      }
      std::printf("\n");
    }
  }
  return 0;
}

}  // namespace bench
}  // namespace uindex

#endif  // UINDEX_BENCH_BENCH_COMMON_H_
